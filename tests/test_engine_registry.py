"""Unit tests for the pluggable system/application registry."""

import pytest

from repro.engine.registry import (
    API_FAMILIES,
    Capabilities,
    SystemSpec,
    application_names,
    get_application,
    get_system,
    system_codes,
)
from repro.core.systems import APPLICATIONS, SYSTEMS, SystemInstance, make_system
from repro.errors import InvalidValue
from repro.graphs.datasets import get_dataset

SMALL = "road-USA-W"


class TestRegistry:
    def test_derived_tuples_match_registrations(self):
        assert SYSTEMS == system_codes() == ("SS", "GB", "LS")
        assert APPLICATIONS == application_names()
        assert APPLICATIONS == ("bfs", "cc", "ktruss", "pr", "sssp", "tc")

    def test_unknown_system_suggests(self):
        with pytest.raises(InvalidValue) as exc:
            get_system("GBX")
        assert "GB" in str(exc.value) and "known systems" in str(exc.value)

    def test_make_system_raises_through_registry(self):
        with pytest.raises(InvalidValue):
            make_system("GPU")

    def test_unknown_application_suggests(self):
        with pytest.raises(InvalidValue) as exc:
            get_application("pagerank")
        assert "pr" in str(exc.value)

    def test_get_application_returns_name(self):
        assert get_application("bfs") == "bfs"

    def test_invalid_api_family_rejected(self):
        with pytest.raises(InvalidValue):
            SystemSpec(code="XX", description="x", api="cuda")
        assert API_FAMILIES == ("lagraph", "lonestar")


class TestCapabilities:
    def test_capability_flags(self):
        ss, gb, ls = (get_system(c) for c in ("SS", "GB", "LS"))
        assert ss.capabilities.masks and not ss.capabilities.fusion
        assert gb.capabilities.diag_fast_path and gb.capabilities.masks
        assert not ss.capabilities.diag_fast_path
        assert ls.capabilities.fusion and ls.capabilities.async_scheduling
        assert ls.capabilities.priority_scheduling
        assert not ls.capabilities.masks

    def test_api_families(self):
        assert get_system("SS").api == "lagraph"
        assert get_system("GB").api == "lagraph"
        assert get_system("LS").api == "lonestar"

    def test_defaults_all_false(self):
        caps = Capabilities()
        assert not any(getattr(caps, f) for f in (
            "fusion", "masks", "async_scheduling", "priority_scheduling",
            "diag_fast_path", "huge_pages", "work_stealing"))


class TestInstanceWiring:
    def test_instance_exposes_spec(self):
        inst = SystemInstance("LS", get_dataset(SMALL))
        assert inst.spec is get_system("LS")
        assert inst.api == "lonestar"
        assert inst.capabilities.fusion
        assert inst.backend is None and inst.runtime.name == "galois"

    def test_instance_unknown_code_suggests(self):
        with pytest.raises(InvalidValue) as exc:
            SystemInstance("SSS", get_dataset(SMALL))
        assert "Did you mean" in str(exc.value)

    def test_factories_build_per_system_stacks(self):
        ss = SystemInstance("SS", get_dataset(SMALL))
        gb = SystemInstance("GB", get_dataset(SMALL))
        assert ss.backend.name == "suitesparse"
        assert ss.machine.allocator.name == "suitesparse"
        assert gb.machine.allocator.name == "galois"
        assert gb.backend.supports_diag_opt
