"""Smoke-run every example script (they are part of the public surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, args=()):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "both APIs agree" in proc.stdout
    assert "simulated seconds" in proc.stdout


def test_road_navigation():
    proc = run_example("road_navigation.py")
    assert proc.returncode == 0, proc.stderr
    assert "all variants agree" in proc.stdout
    assert "bulk-synchronous" in proc.stdout


def test_web_community_analysis():
    proc = run_example("web_community_analysis.py")
    assert proc.returncode == 0, proc.stderr
    assert "triangles" in proc.stdout
    assert "truss core" in proc.stdout


def test_api_comparison_study():
    proc = run_example("api_comparison_study.py", ["road-USA-W", "rmat22"])
    assert proc.returncode == 0, proc.stderr
    assert "average speedups" in proc.stdout
    assert "Lonestar over SuiteSparse" in proc.stdout


def test_key_actors():
    proc = run_example("key_actors.py")
    assert proc.returncode == 0, proc.stderr
    assert "couriers" in proc.stdout
    assert "top actors by betweenness" in proc.stdout
