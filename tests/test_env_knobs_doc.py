"""Lint-style guard: the EXPERIMENTS.md knob table is complete and live.

Every ``REPRO_*`` environment variable the harness reads must have a row
in the consolidated "Environment knobs" table (EXPERIMENTS.md), the table
must carry no stale rows for knobs the code no longer mentions, and the
generator template (``scripts/make_experiments_md.py``) must agree with
the generated file — the same discipline ``tests/test_error_hygiene.py``
applies to exception naming.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: A complete knob name: REPRO_ followed by underscore-separated words.
#: Prefix mentions like ``REPRO_SERVICE_*`` in prose (trailing underscore)
#: are not knobs and are skipped.
KNOB = re.compile(r"REPRO_[A-Z0-9]+(?:_[A-Z0-9]+)*")

#: A table row documenting one knob: ``| `REPRO_X` | default | meaning |``.
TABLE_ROW = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`\s*\|", re.MULTILINE)


def knobs_in_sources():
    """Every complete REPRO_* name mentioned anywhere under src/repro."""
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for match in KNOB.finditer(text):
            # Skip family-prefix prose like ``REPRO_SERVICE_*`` — the
            # match stops before the trailing underscore/star.
            if text[match.end():match.end() + 1] in ("_", "*"):
                continue
            names.add(match.group(0))
    assert names, f"no REPRO_ knobs found under {SRC}"
    return names


def documented_knobs(text):
    return set(TABLE_ROW.findall(text))


class TestEnvKnobTable:
    def test_every_source_knob_is_documented(self):
        documented = documented_knobs((ROOT / "EXPERIMENTS.md").read_text())
        missing = knobs_in_sources() - documented
        assert not missing, (
            "knob(s) read in src/ but missing from the EXPERIMENTS.md "
            f"'Environment knobs' table: {sorted(missing)}")

    def test_no_stale_table_rows(self):
        documented = documented_knobs((ROOT / "EXPERIMENTS.md").read_text())
        stale = documented - knobs_in_sources()
        assert not stale, (
            "EXPERIMENTS.md documents knob(s) no source file mentions: "
            f"{sorted(stale)}")

    def test_generator_template_matches_generated_file(self):
        generated = documented_knobs((ROOT / "EXPERIMENTS.md").read_text())
        template = documented_knobs(
            (ROOT / "scripts" / "make_experiments_md.py").read_text())
        assert template == generated, (
            "EXPERIMENTS.md and the scripts/make_experiments_md.py HEADER "
            "document different knob sets; edit them together")

    def test_validator_known_set_matches_sources(self):
        # The fail-fast validator's allowlist must track the knobs the
        # tree actually mentions — an unlisted real knob would make the
        # validator reject a legitimate environment, and a leftover name
        # would let a removed knob linger unnoticed.
        from repro.service.config import KNOWN_KNOBS

        assert set(KNOWN_KNOBS) == knobs_in_sources(), (
            "repro.service.config.KNOWN_KNOBS and the REPRO_* names "
            "mentioned under src/repro have drifted apart; edit them "
            "together")

    def test_table_is_nonempty_and_has_service_knobs(self):
        documented = documented_knobs((ROOT / "EXPERIMENTS.md").read_text())
        assert {"REPRO_FAULTS", "REPRO_CELL_RETRIES",
                "REPRO_CELL_DEADLINE",
                "REPRO_CHAOS_KILL_CELLS"} <= documented
