"""Tables, figures, variants and the CLI runner on a reduced grid."""

import numpy as np
import pytest

from repro.core import figures, tables
from repro.core.runner import main as runner_main
from repro.core.variants import VARIANTS, run_problem_variants, run_variant

GRAPHS = ["road-USA-W", "rmat22"]
APPS = ["bfs", "cc"]


class TestTable1:
    def test_all_nine_rows(self):
        t = tables.table1()
        assert len(t.data) == 9
        assert "road-USA" in t.text and "uk07" in t.text

    def test_properties_sane(self):
        t = tables.table1(GRAPHS)
        p = t.data["road-USA-W"]
        assert p.approx_diameter > 1000  # road networks are high diameter
        q = t.data["rmat22"]
        assert q.max_out_degree > 50 * q.avg_degree  # power law


class TestTable2:
    def test_grid_and_highlight(self):
        t = tables.table2(GRAPHS, APPS)
        assert len(t.data) == len(GRAPHS) * len(APPS) * 3
        assert "*" in t.text
        # Exactly one fastest per (app, graph) among ok cells.
        for app in APPS:
            for g in GRAPHS:
                row = [t.data[(app, s, g)] for s in ("SS", "GB", "LS")]
                ok = [r for r in row if r.status == "ok"]
                fastest = min(ok, key=lambda r: r.seconds)
                assert fastest.seconds <= min(r.seconds for r in ok)

    def test_lonestar_wins_bfs_cells(self):
        t = tables.table2(GRAPHS, ["bfs"])
        for g in GRAPHS:
            ls = t.data[("bfs", "LS", g)].seconds
            assert ls <= t.data[("bfs", "GB", g)].seconds
            assert ls <= t.data[("bfs", "SS", g)].seconds


class TestTable3:
    def test_mrss_grid(self):
        t = tables.table3(GRAPHS, ["bfs"])
        for key, cell in t.data.items():
            assert cell.mrss_gb > 0


class TestTable4:
    def test_ratios_above_one(self):
        t = tables.table4(GRAPHS, APPS)
        for app in APPS:
            assert t.data[app]["instructions"] > 1.0
            assert t.data[app]["memory_accesses"] > 0.5


class TestVariants:
    def test_pr_variant_speedups(self):
        results = run_problem_variants("pr", "rmat22")
        assert set(results) == set(VARIANTS["pr"])
        assert all(r.status == "ok" for r in results.values())
        # ls beats gb; gb-res beats gb (Figure 3a orderings).
        assert results["ls"].seconds < results["gb"].seconds
        assert results["gb-res"].seconds < results["gb"].seconds

    def test_pr_answers_match(self):
        results = run_problem_variants("pr", "road-USA-W")
        assert len({r.answer for r in results.values()}) == 1

    def test_cc_variants(self):
        results = run_problem_variants("cc", "road-USA-W")
        # Afforest fastest; sv beats bulk-sync FastSV on the high-diameter
        # road graph (Figure 3c).
        assert results["ls"].seconds <= results["ls-sv"].seconds
        assert results["ls-sv"].seconds < results["gb"].seconds
        assert len({r.answer for r in results.values()}) == 1

    def test_sssp_variants(self):
        results = run_problem_variants("sssp", "road-USA-W")
        assert results["ls"].seconds < results["gb"].seconds / 10
        assert results["ls-notile"].seconds < results["gb"].seconds
        assert len({r.answer for r in results.values()}) == 1

    def test_tc_variants(self):
        results = run_problem_variants("tc", "rmat22")
        assert results["ls"].seconds < results["gb"].seconds
        # gb-ll never does more multiply work than gb-sort: its L-only
        # product bounds every dot by the shorter (lower-degree) row.  On
        # power-law inputs the two can tie; the win is decisive on web
        # crawls (Figure 3b), asserted below via counters.
        assert (results["gb-ll"].counters["memory_accesses"]
                <= results["gb-sort"].counters["memory_accesses"] * 1.1)
        assert results["gb-ll"].seconds < results["gb"].seconds
        assert len({r.answer for r in results.values()}) == 1

    def test_unknown_variant(self):
        from repro.errors import InvalidValue

        with pytest.raises(InvalidValue):
            run_variant("pr", "gb-magic", "rmat22")


class TestFigures:
    def test_figure2_series(self):
        f = figures.figure2(apps=["bfs"], graphs=["rmat22"])
        key = ("bfs", "rmat22", "LS")
        assert key in f.series
        sweep = f.series[key]
        assert sweep[1] >= sweep[56]
        assert "t56" in f.text

    def test_figure2_gap_persists_across_threads(self):
        # Figure 2: both systems scale, the gap remains.
        f = figures.figure2(apps=["sssp"], graphs=["road-USA-W"])
        for p in (1, 56):
            gb_t = f.series[("sssp", "road-USA-W", "GB")][p]
            ls_t = f.series[("sssp", "road-USA-W", "LS")][p]
            assert gb_t > ls_t

    def test_figure3_speedups(self):
        f = figures.figure3(problems=["cc"], graphs=["road-USA-W"])
        assert f.series[("cc", "road-USA-W", "gb")] == pytest.approx(1.0)
        assert f.series[("cc", "road-USA-W", "ls")] > 1.0


class TestTable5:
    def test_variant_ratio_rows(self):
        t = tables.table5(["rmat22"])
        assert "pr gb-res/ls-soa" in t.data
        assert "cc gb/ls-sv" in t.data
        # gb-res iterates the residual twice per round: more instructions
        # than the fused ls-soa loop (Table V).
        assert t.data["pr gb-res/ls-soa"]["instructions"] > 1.0


class TestRunner:
    def test_cli_table1(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_subset_grid(self, capsys):
        assert runner_main(["table2", "--graphs", "road-USA-W",
                            "--apps", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "bfs LS" in out

    def test_cli_save_load(self, tmp_path, capsys):
        path = str(tmp_path / "cells.json")
        assert runner_main(["table2", "--graphs", "road-USA-W",
                            "--apps", "bfs", "--save", path]) == 0
        assert runner_main(["table2", "--graphs", "road-USA-W",
                            "--apps", "bfs", "--load", path]) == 0

    def test_cli_save_load_roundtrip_preserves_cells(self, tmp_path,
                                                     capsys,
                                                     isolated_grid):
        import dataclasses

        from repro.core import experiments

        def persisted(results):
            # wall_seconds is measured, not modeled; it is not saved.
            return {k: dataclasses.replace(r, wall_seconds=0.0)
                    for k, r in results.items()}

        path = str(tmp_path / "cells.json")
        assert runner_main(["table2", "--graphs", "rmat22",
                            "--apps", "bfs", "--save", path]) == 0
        saved = experiments.all_results()
        experiments.clear_cache()
        assert runner_main(["table2", "--graphs", "rmat22",
                            "--apps", "bfs", "--load", path]) == 0
        err = capsys.readouterr().err
        assert "loaded 3 cached cells" in err
        assert persisted(experiments.all_results()) == persisted(saved)

    def test_cli_explain(self, capsys):
        assert runner_main(["explain", "--system", "LS",
                            "--graphs", "rmat22", "--apps", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "LS bfs rmat22:" in out

    def test_cli_rejects_unknown_names(self, capsys):
        assert runner_main(["table2", "--graphs", "no-such-graph"]) == 2
        err = capsys.readouterr().err
        assert "no-such-graph" in err and "known graphs" in err
        assert runner_main(["table2", "--apps", "sorting"]) == 2
        err = capsys.readouterr().err
        assert "sorting" in err and "known applications" in err

    def test_cli_resume_requires_journal(self, capsys):
        assert runner_main(["table2", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_cli_resume_skips_journaled_cells(self, tmp_path, capsys,
                                              isolated_grid):
        from repro.core.checkpoint import CellJournal
        from repro.core.experiments import CellResult

        journal = tmp_path / "j.jsonl"
        for system in ("SS", "GB", "LS"):
            CellJournal(journal).append(CellResult(
                system=system, app="bfs", graph="rmat22", status="ok",
                seconds=424242.0, mrss_gb=1.0, counters={}, answer=0))
        assert runner_main(["table2", "--graphs", "rmat22", "--apps",
                            "bfs", "--journal", str(journal),
                            "--resume"]) == 0
        captured = capsys.readouterr()
        assert "resumed 3 journaled cells" in captured.err
        assert "424242.00" in captured.out  # recalled, not re-run

    def test_cli_journal_records_cells(self, tmp_path, capsys,
                                       isolated_grid):
        from repro.core.checkpoint import CellJournal

        journal = tmp_path / "j.jsonl"
        assert runner_main(["table2", "--graphs", "rmat22", "--apps",
                            "bfs", "--journal", str(journal)]) == 0
        assert len(CellJournal(journal).load()) == 3


class TestSelectionValidation:
    def test_unknown_names_listed_with_known_ones(self):
        from repro.core.experiments import validate_selection
        from repro.errors import InvalidValue

        validate_selection(graphs=["rmat22"], apps=["bfs"])  # no raise
        with pytest.raises(InvalidValue, match="known graphs"):
            validate_selection(graphs=["rmat22", "typo-graph"])
        with pytest.raises(InvalidValue, match="known applications"):
            validate_selection(apps=["bfs", "typo-app"])

    def _bench_conftest(self):
        import importlib.util
        import pathlib

        path = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_bench_session_rejects_bad_graph_env(self, monkeypatch):
        conftest = self._bench_conftest()
        monkeypatch.setenv("REPRO_BENCH_GRAPHS", "rmat22,typo-graph")
        with pytest.raises(pytest.UsageError, match="typo-graph"):
            conftest.pytest_sessionstart(None)

    def test_bench_session_rejects_bad_app_env(self, monkeypatch):
        conftest = self._bench_conftest()
        monkeypatch.setenv("REPRO_BENCH_APPS", "bfs,sorting")
        with pytest.raises(pytest.UsageError, match="sorting"):
            conftest.pytest_sessionstart(None)

    def test_bench_session_accepts_defaults(self):
        self._bench_conftest().pytest_sessionstart(None)


class TestTable4Detail:
    def test_per_graph_ratios(self):
        from repro.core.tables import table4_detail

        t = table4_detail("bfs", ["road-USA-W", "road-USA"])
        assert "road-USA" in t.data
        # The matrix API's extra passes show up in total memory accesses on
        # the round-dominated road graphs (paper §V-B bfs).
        for g in t.data:
            assert t.data[g]["memory_accesses"] > 1.0
            assert t.data[g]["instructions"] > 1.0

    def test_failed_cells_annotated(self):
        from repro.core.tables import table4_detail
        from repro.core.experiments import run_cell

        # uk07 tc: SS OOMs, but GB/LS complete -> numeric row expected.
        t = table4_detail("cc", ["road-USA-W"])
        assert t.text.count("\n") >= 1
