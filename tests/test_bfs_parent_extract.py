"""Parent BFS variants, submatrix extract, and the explain CLI."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro.graphblas as gb
from repro.errors import DimensionMismatch, InvalidValue
from repro.galois.graph import Graph
from repro.lagraph import bfs_parent as la_parent
from repro.lonestar import bfs as ls_bfs
from repro.lonestar import bfs_parent as ls_parent
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

from tests.conftest import pattern_matrix, random_digraph


@pytest.fixture(scope="module")
def graph_pair():
    csr, _ = random_digraph(n=150, m=700, seed=7)
    return csr


def fresh(csr):
    return Graph(GaloisRuntime(Machine()), csr)


class TestParentBfs:
    def test_parent_validity(self, graph_pair):
        csr = graph_pair
        levels = ls_bfs(fresh(csr), 0)
        parent = ls_parent(fresh(csr), 0)
        for v in range(csr.nrows):
            if v == 0:
                assert parent[v] == 0
            elif levels[v] > 0:
                p = parent[v]
                assert levels[p] == levels[v] - 1
                assert csr.get(int(p), v) is not None
            else:
                assert parent[v] == -1

    def test_stacks_agree(self, graph_pair, backend):
        csr = graph_pair
        ls = ls_parent(fresh(csr), 3)
        pv = la_parent(backend, pattern_matrix(backend, csr), 3)
        la = np.where(pv.present_mask(), pv.dense_values(fill=-1), -1)
        assert np.array_equal(ls, la)

    def test_min_predecessor_tiebreak(self, backend):
        from repro.sparse.csr import build_csr

        # Both 1 and 2 reach 3 at the same level: parent must be 1.
        csr = build_csr(4, 4, [0, 0, 1, 2], [1, 2, 3, 3], None)
        parent = ls_parent(fresh(csr), 0)
        assert parent[3] == 1
        pv = la_parent(backend, pattern_matrix(backend, csr), 0)
        assert pv.extract_element(3) == 1

    def test_isolated_source(self):
        from repro.sparse.csr import build_csr

        csr = build_csr(3, 3, [1], [2], None)
        parent = ls_parent(fresh(csr), 0)
        assert parent[0] == 0 and parent[1] == -1


class TestExtractMatrix:
    @pytest.fixture
    def matrix(self, backend):
        M = sp.random(12, 12, density=0.3, random_state=2).tocsr()
        M.data = np.round(M.data * 9) + 1
        coo = M.tocoo()
        A = gb.Matrix.from_coo(backend, gb.FP64, 12, 12, coo.row, coo.col,
                               coo.data)
        return A, M

    def test_fancy_index_equivalence(self, backend, matrix):
        A, M = matrix
        I, J = [3, 0, 7], [1, 5, 9, 2]
        C = gb.Matrix(backend, gb.FP64, len(I), len(J))
        gb.extractMatrix(C, A, I, J)
        assert np.allclose(C.csr.to_scipy().toarray(),
                           M.toarray()[np.ix_(I, J)])

    def test_duplicate_indices_replicate(self, backend, matrix):
        A, M = matrix
        I, J = [7, 7], [1, 1]
        C = gb.Matrix(backend, gb.FP64, 2, 2)
        gb.extractMatrix(C, A, I, J)
        assert np.allclose(C.csr.to_scipy().toarray(),
                           M.toarray()[np.ix_(I, J)])

    def test_grb_all(self, backend, matrix):
        A, M = matrix
        C = gb.Matrix(backend, gb.FP64, 12, 12)
        gb.extractMatrix(C, A, gb.GrB_ALL, gb.GrB_ALL)
        assert np.allclose(C.csr.to_scipy().toarray(), M.toarray())

    def test_shape_checked(self, backend, matrix):
        A, _ = matrix
        with pytest.raises(DimensionMismatch):
            gb.extractMatrix(gb.Matrix(backend, gb.FP64, 2, 2), A, [0], [0])

    def test_range_checked(self, backend, matrix):
        A, _ = matrix
        with pytest.raises(InvalidValue):
            gb.extractMatrix(gb.Matrix(backend, gb.FP64, 1, 1), A, [99], [0])

    def test_empty_selection(self, backend, matrix):
        A, _ = matrix
        C = gb.Matrix(backend, gb.FP64, 0, 0)
        gb.extractMatrix(C, A, [], [])
        assert C.nvals == 0


class TestExplainCli:
    def test_explain_target(self, capsys):
        from repro.core.runner import main

        assert main(["explain", "--system", "LS", "--graphs", "road-USA-W",
                     "--apps", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "time breakdown" in out
        assert "fixed (launch/barrier/call)" in out
