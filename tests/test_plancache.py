"""Tests for the per-graph kernel plan cache (repro.sparse.plancache).

The cache memoizes pure-structural decisions — segreduce plan selection,
the join engine's hoisted keys and sticky merge/densify choice, the pull
loop weights — on the host CSR's ``_plan_cache`` slot.  These tests pin
the bookkeeping (hits/misses/entries), the invalidation path, the
disabled-mode passthrough, and that cached plans replay the exact value
the deriving code would recompute.
"""

import numpy as np
import pytest

from repro.sparse import plancache
from repro.sparse.csr import build_csr
from repro.sparse.join import row_pair_join
from repro.sparse.segreduce import segment_reduce, select_plan

from tests.conftest import random_digraph


@pytest.fixture(autouse=True)
def live_cache():
    """Force the cache on with clean stats; restore the env setting after.

    The CI matrix runs the suite with ``REPRO_PLAN_CACHE=0`` to prove
    cache hits cannot change results; these bookkeeping tests need the
    cache live regardless, so they toggle it explicitly.
    """
    previous = plancache.set_enabled(True)
    plancache.reset_stats()
    try:
        yield
    finally:
        plancache.set_enabled(previous)
        plancache.reset_stats()


def _matrix():
    return random_digraph(n=60, m=240, seed=5)[0]


class TestBookkeeping:
    def test_miss_then_hit(self):
        csr = _matrix()
        assert plancache.get(csr, "k", ("a",)) is None
        plancache.put(csr, "k", ("a",), "plan-a")
        assert plancache.get(csr, "k", ("a",)) == "plan-a"
        stats = plancache.plan_cache_stats()
        assert stats["k"] == {"hits": 1, "misses": 1, "entries": 1}
        assert plancache.hit_rate() == 0.5

    def test_cached_derives_once(self):
        csr = _matrix()
        calls = []
        for _ in range(3):
            value = plancache.cached(csr, "k", (), lambda: calls.append(1))
        # derive() returning None is never stored; a real value is.
        assert len(calls) == 3
        value = plancache.cached(csr, "k2", ("x",), lambda: "v")
        assert value == "v"
        assert plancache.cached(csr, "k2", ("x",), lambda: "other") == "v"

    def test_none_host_misses_without_stats(self):
        assert plancache.get(None, "k", ()) is None
        plancache.put(None, "k", (), "v")
        assert plancache.plan_cache_stats() == {}
        assert plancache.hit_rate() is None

    def test_slotless_host_always_misses(self):
        host = object()
        plancache.put(host, "k", (), "v")
        assert plancache.get(host, "k", ()) is None

    def test_summary_line_mentions_each_kernel(self):
        csr = _matrix()
        plancache.cached(csr, "segreduce", (), lambda: "p")
        plancache.cached(csr, "segreduce", (), lambda: "p")
        line = plancache.summary_line()
        assert "segreduce" in line and "1/2 hits" in line


class TestDisabledMode:
    def test_disabled_cache_never_stores_or_hits(self):
        plancache.set_enabled(False)
        csr = _matrix()
        derived = []
        for _ in range(2):
            plancache.cached(csr, "k", (), lambda: derived.append(1) or "v")
        assert len(derived) == 2
        assert csr._plan_cache is None
        assert plancache.summary_line().startswith("plan-cache: disabled")

    def test_segment_reduce_identical_with_cache_toggled(self):
        csr = _matrix()
        vals = np.random.default_rng(0).random(csr.nvals)
        ids = csr.row_ids()
        on = segment_reduce(vals, ids, csr.nrows, "plus",
                            dtype=np.float64, row_splits=csr.indptr,
                            cache_on=csr)
        plancache.set_enabled(False)
        off = segment_reduce(vals, ids, csr.nrows, "plus",
                             dtype=np.float64, row_splits=csr.indptr,
                             cache_on=csr)
        assert np.array_equal(on, off)


class TestInvalidation:
    def test_invalidate_memos_drops_cached_plans(self):
        csr = _matrix()
        plancache.put(csr, "k", (), "stale")
        csr.invalidate_memos()
        assert csr._plan_cache is None
        assert plancache.get(csr, "k", ()) is None
        # The dropped entry is subtracted from the bookkeeping.
        assert plancache.plan_cache_stats()["k"]["entries"] == 0

    def test_drop_is_idempotent(self):
        csr = _matrix()
        plancache.drop(csr)
        plancache.drop(csr)
        assert csr._plan_cache is None


class TestKernelIntegration:
    def test_segreduce_plan_cached_and_correct(self):
        csr = _matrix()
        vals = np.random.default_rng(1).random(csr.nvals)
        for _ in range(2):
            out = segment_reduce(vals, csr.row_ids(), csr.nrows, "plus",
                                 dtype=np.float64, row_splits=csr.indptr,
                                 cache_on=csr)
        stats = plancache.plan_cache_stats()["segreduce"]
        assert stats == {"hits": 1, "misses": 1, "entries": 1}
        key = ("segreduce", ("plus", np.dtype(np.float64).str, False, True))
        assert csr._plan_cache[key] == select_plan(
            "plus", np.float64, False, True)
        naive = np.zeros(csr.nrows)
        np.add.at(naive, csr.row_ids(), vals)
        assert np.array_equal(out, naive)

    def test_join_hoisted_keys_memoized(self):
        csr = _matrix()
        rows = np.arange(min(8, csr.nrows), dtype=np.int64)
        first = row_pair_join(csr, rows, csr, rows)
        second = row_pair_join(csr, rows, csr, rows)
        assert plancache.plan_cache_stats()["join_keys"]["hits"] >= 1
        assert np.array_equal(first.hits, second.hits)

    def test_join_sticky_plan_replays_identically(self):
        csr = _matrix()
        rows = np.arange(min(8, csr.nrows), dtype=np.int64)
        adaptive = row_pair_join(csr, rows, csr, rows)
        assert "join_plan" in plancache.plan_cache_stats()
        sticky = row_pair_join(csr, rows, csr, rows)
        for field in ("hits", "a_pos", "b_pos", "out_seg"):
            assert np.array_equal(getattr(adaptive, field),
                                  getattr(sticky, field))
