"""Regression tests for specific bugs found during development."""

import numpy as np
import pytest

import repro.graphblas as gb
from repro.graphblas.ops import PLUS_PAIR, PLUS_TIMES, monoid
from repro.perf.machine import Machine
from repro.suitesparse import SuiteSparseBackend

from tests.conftest import pattern_matrix, random_digraph


class TestTransposeAllocationLeak:
    """replace_csr used to leak the cached transpose's allocation: every
    pr/ktruss round re-derived and re-charged a CSC view, driving big-graph
    runs to spurious OOMs."""

    def test_replace_releases_transpose(self, gb_backend):
        csr = random_digraph(n=80, m=400)[0]
        A = pattern_matrix(gb_backend, csr)
        live0 = gb_backend.machine.allocator.live_bytes
        for _ in range(10):
            A.transposed_csr()
            A.replace_csr(A.csr.copy())
        live1 = gb_backend.machine.allocator.live_bytes
        assert live1 - live0 < 2 * csr.nbytes

    def test_free_releases_transpose(self, gb_backend):
        csr = random_digraph(n=80, m=400)[0]
        A = pattern_matrix(gb_backend, csr)
        A.transposed_csr()
        A.free()
        assert gb_backend.machine.allocator.live_bytes < csr.nbytes

    def test_repeated_mxm_bounded_memory(self, gb_backend):
        """A ktruss-like loop must not grow the modeled RSS round by round."""
        csr = random_digraph(n=60, m=500)[1]
        S = pattern_matrix(gb_backend, csr, "S")
        C = gb.Matrix(gb_backend, gb.INT64, csr.nrows, csr.ncols, label="C")
        from repro.graphblas.descriptor import REPLACE_STRUCT

        peaks = []
        for _ in range(5):
            gb.mxm(C, S, S, PLUS_PAIR, mask=S, desc=REPLACE_STRUCT)
            peaks.append(gb_backend.machine.allocator.live_bytes)
        assert peaks[-1] <= peaks[0] + csr.nbytes


class TestDecrementalKtrussSharedTriangles:
    """Pre-killing a whole removal wave dropped decrements for triangles
    shared by two doomed edges; removals must be sequentialized."""

    def test_two_doomed_edges_one_triangle(self):
        from repro.galois.graph import Graph
        from repro.lonestar import ktruss
        from repro.runtime.galois_rt import GaloisRuntime
        from repro.sparse.csr import build_csr

        # Triangle 0-1-2 with pendant edges at 0 and 1: at k=4 every edge
        # dies, and edges (0,2) and (1,2) share the only triangle.
        rows = [0, 1, 0, 2, 1, 2, 0, 3, 1, 4]
        cols = [1, 0, 2, 0, 2, 1, 3, 0, 4, 1]
        sym = build_csr(5, 5, rows, cols, None)
        graph = Graph(GaloisRuntime(Machine()), sym)
        alive, _ = ktruss(graph, k=4)
        assert alive.sum() == 0


class TestSparseVxmEmptyFrontierRows:
    """Push kernels must survive frontiers whose rows are all empty."""

    def test_vxm_from_sink_vertices(self, backend):
        from repro.sparse.csr import build_csr

        csr = build_csr(4, 4, [0], [1], None)
        A = gb.Matrix.from_csr(backend, gb.BOOL, csr)
        f = gb.Vector(backend, gb.BOOL, 4)
        f.set_element(3, True)  # vertex with no out-edges
        from repro.graphblas.ops import LOR_LAND

        out = gb.Vector(backend, gb.BOOL, 4)
        gb.vxm(out, f, A, LOR_LAND)
        assert out.nvals == 0


class TestEukaryaSsspConfiguration:
    """The eukarya weight pathology: 32-bit distances overflow, so the
    harness must run it with 64-bit (the paper's special case, §IV)."""

    def test_weights_overflow_int32_on_two_hops(self):
        from repro.graphs.datasets import get_dataset

        _, w = get_dataset("eukarya").build()
        assert int(w.max()) * 2 > np.iinfo(np.int32).max

    def test_dataset_flags(self):
        from repro.graphs.datasets import get_dataset

        ds = get_dataset("eukarya")
        assert ds.dist_64bit and ds.sssp_delta == 1 << 20


class TestEmptyTwinPositions:
    def test_empty_matrix(self):
        from repro.sparse.csr import build_csr
        from repro.sparse.tricount import twin_positions

        empty = build_csr(3, 3, [], [], None)
        assert len(twin_positions(empty)) == 0


class TestJsonSerialization:
    def test_numpy_counters_serialize(self, tmp_path):
        from repro.core import experiments

        experiments.clear_cache()
        experiments.run_cell("LS", "bfs", "road-USA-W")
        path = str(tmp_path / "cells.json")
        experiments.save_results(path)  # must not raise on numpy scalars
        assert experiments.load_results(path) == 1
