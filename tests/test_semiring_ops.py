"""Unit tests for the numpy operator layer under the semirings."""

import numpy as np
import pytest

from repro.errors import InvalidValue
from repro.sparse.semiring_ops import (
    BINARY_FNS,
    MONOID_FNS,
    MonoidFn,
    SegmentReducer,
    identity_for,
)


class TestIdentity:
    @pytest.mark.parametrize("kind,dtype,expected", [
        ("plus", np.int64, 0),
        ("times", np.float64, 1.0),
        ("min", np.float64, np.inf),
        ("min", np.int32, np.iinfo(np.int32).max),
        ("max", np.int64, np.iinfo(np.int64).min),
        ("max", np.float32, -np.inf),
        ("lor", np.bool_, False),
        ("land", np.bool_, True),
    ])
    def test_identities(self, kind, dtype, expected):
        assert identity_for(kind, dtype) == expected

    def test_min_identity_is_dtype_aware(self):
        # This distinction is what makes eukarya's 32-bit distances
        # overflow-prone while 64-bit works (paper §IV).
        assert identity_for("min", np.int32) < identity_for("min", np.int64)

    def test_unknown_kind(self):
        with pytest.raises(InvalidValue):
            identity_for("xor", np.int64)


class TestBinaryFns:
    def test_first_second_pair(self):
        a = np.array([1.0, 2.0])
        b = np.array([10.0, 20.0])
        assert np.array_equal(BINARY_FNS["first"].apply(a, b), a)
        assert np.array_equal(BINARY_FNS["second"].apply(a, b), b)
        assert np.array_equal(BINARY_FNS["pair"].apply(a, b), [1.0, 1.0])

    def test_pair_with_scalar_broadcast(self):
        out = BINARY_FNS["pair"].apply(np.arange(3), 7)
        assert np.array_equal(out, [1, 1, 1])

    @pytest.mark.parametrize("name,a,b,expected", [
        ("plus", 2, 3, 5), ("minus", 2, 3, -1), ("times", 2, 3, 6),
        ("min", 2, 3, 2), ("max", 2, 3, 3), ("div", 6, 3, 2),
        ("lor", True, False, True), ("land", True, False, False),
        ("eq", 2, 2, True), ("ne", 2, 2, False), ("lt", 2, 3, True),
        ("gt", 2, 3, False), ("le", 3, 3, True), ("ge", 2, 3, False),
    ])
    def test_arith_and_compare(self, name, a, b, expected):
        assert BINARY_FNS[name].apply(a, b) == expected

    def test_no_function_raises(self):
        from repro.sparse.semiring_ops import BinaryFn

        with pytest.raises(InvalidValue):
            BinaryFn("mystery").apply(1, 2)


class TestMonoidReduceAll:
    def test_empty_gives_identity(self):
        assert MONOID_FNS["min"].reduce_all(np.array([]), np.int64) == \
            np.iinfo(np.int64).max

    def test_plus_int_no_overflow_dtype(self):
        vals = np.array([2**30, 2**30, 2**30], dtype=np.int32)
        assert MONOID_FNS["plus"].reduce_all(vals) == 3 * 2**30

    @pytest.mark.parametrize("kind,vals,expected", [
        ("plus", [1, 2, 3], 6), ("times", [2, 3, 4], 24),
        ("min", [5, 2, 9], 2), ("max", [5, 2, 9], 9),
        ("lor", [0, 0, 1], True), ("land", [1, 1, 0], False),
    ])
    def test_reductions(self, kind, vals, expected):
        assert MONOID_FNS[kind].reduce_all(np.array(vals)) == expected

    def test_bad_kind(self):
        with pytest.raises(InvalidValue):
            MonoidFn("nand")


class TestSegmentReducer:
    def test_plus_unsorted_segments(self):
        r = SegmentReducer(MONOID_FNS["plus"])
        out = r.reduce(np.array([1.0, 2.0, 3.0, 4.0]),
                       np.array([2, 0, 2, 1]), 3)
        assert np.array_equal(out, [2.0, 4.0, 4.0])

    def test_min_with_identity_fill(self):
        r = SegmentReducer(MONOID_FNS["min"])
        out = r.reduce(np.array([5, 3], dtype=np.int64),
                       np.array([1, 1]), 3, dtype=np.int64)
        assert out[0] == np.iinfo(np.int64).max
        assert out[1] == 3

    def test_max(self):
        r = SegmentReducer(MONOID_FNS["max"])
        out = r.reduce(np.array([5.0, 7.0, 1.0]), np.array([0, 0, 1]), 2)
        assert np.array_equal(out, [7.0, 1.0])

    def test_lor_counts_truthiness(self):
        r = SegmentReducer(MONOID_FNS["lor"])
        out = r.reduce(np.array([0, 1, 0]), np.array([0, 1, 2]), 3,
                       dtype=np.bool_)
        assert np.array_equal(out, [False, True, False])

    def test_empty_input(self):
        r = SegmentReducer(MONOID_FNS["plus"])
        out = r.reduce(np.array([]), np.array([], dtype=np.int64), 2)
        assert np.array_equal(out, [0.0, 0.0])

    def test_touched(self):
        r = SegmentReducer(MONOID_FNS["plus"])
        touched = r.touched(np.array([0, 2, 2]), 4)
        assert np.array_equal(touched, [True, False, True, False])
