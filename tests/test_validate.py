"""Cross-system validation module and its CLI target."""

import pytest

from repro.core.runner import main as runner_main
from repro.core.validate import ValidationRow, render, validate_graph


class TestValidateGraph:
    def test_all_agree_on_small_graph(self):
        rows = validate_graph("road-USA-W", apps=("bfs", "cc"))
        assert len(rows) == 2
        assert all(r.agreed for r in rows)
        assert all(r.completed == 3 for r in rows)

    def test_render_reports_agreement(self):
        rows = validate_graph("road-USA-W", apps=("bfs",))
        text = render(rows)
        assert "AGREE" in text
        assert "all applications agree" in text

    def test_mismatch_detected(self):
        row = ValidationRow(app="bfs", graph="x",
                            answers={"SS": 1, "GB": 2, "LS": 1},
                            statuses={"SS": "ok", "GB": "ok", "LS": "ok"})
        assert not row.agreed
        text = render([row])
        assert "MISMATCH" in text

    def test_failed_systems_excluded_from_agreement(self):
        row = ValidationRow(app="tc", graph="x",
                            answers={"SS": None, "GB": 5, "LS": 5},
                            statuses={"SS": "OOM", "GB": "ok", "LS": "ok"})
        assert row.agreed
        assert row.completed == 2

    def test_cli_target(self, capsys):
        assert runner_main(["validate", "--graphs", "road-USA-W",
                            "--apps", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "cross-system validation" in out
