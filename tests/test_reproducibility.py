"""Determinism guarantees: same seeds, same graphs, same simulated times."""

import numpy as np
import pytest

from repro.core.experiments import run_cell
from repro.graphs import datasets
from repro.graphs.datasets import get_dataset


class TestDatasetDeterminism:
    def test_rebuild_is_identical(self):
        ds = get_dataset("rmat22")
        csr1, w1 = ds.build()
        fingerprint1 = (csr1.nvals, int(csr1.indices.sum()),
                        int(w1.sum()))
        datasets.clear_cache()
        csr2, w2 = ds.build()
        assert fingerprint1 == (csr2.nvals, int(csr2.indices.sum()),
                                int(w2.sum()))

    def test_symmetric_rebuild_identical(self):
        ds = get_dataset("road-USA-W")
        sym1, _ = ds.build_symmetric()
        datasets.clear_cache()
        sym2, _ = ds.build_symmetric()
        assert np.array_equal(sym1.indices, sym2.indices)


class TestCellDeterminism:
    def test_same_cell_same_time(self):
        a = run_cell("LS", "bfs", "road-USA-W", use_cache=False)
        b = run_cell("LS", "bfs", "road-USA-W", use_cache=False)
        assert a.seconds == b.seconds
        assert a.counters == b.counters
        assert a.answer == b.answer

    def test_graphblas_cell_deterministic(self):
        a = run_cell("GB", "cc", "road-USA-W", use_cache=False)
        b = run_cell("GB", "cc", "road-USA-W", use_cache=False)
        assert a.seconds == b.seconds
        assert a.mrss_gb == b.mrss_gb


class TestDescriptorConstants:
    def test_replace_comp_matches_algorithm2(self):
        from repro.graphblas.descriptor import REPLACE_COMP

        assert REPLACE_COMP.replace and REPLACE_COMP.mask_comp
        assert not REPLACE_COMP.mask_structure

    def test_descriptors_hashable_and_frozen(self):
        from repro.graphblas.descriptor import DEFAULT_DESC, Descriptor

        assert hash(DEFAULT_DESC) == hash(Descriptor())
        with pytest.raises(Exception):
            DEFAULT_DESC.replace = True
