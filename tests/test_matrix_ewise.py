"""Matrix element-wise operations (GrB_eWiseAdd/Mult/apply on matrices)."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro.graphblas as gb
from repro.errors import DimensionMismatch
from repro.graphblas.ops import binary, monoid, unary


def rand_matrix(backend, n, density, seed, label="M"):
    mat = sp.random(n, n, density=density, random_state=seed).tocsr()
    mat.data = np.round(mat.data * 9) + 1
    coo = mat.tocoo()
    return gb.Matrix.from_coo(backend, gb.FP64, n, n, coo.row, coo.col,
                              coo.data, label=label), mat


class TestEWiseAddMatrix:
    def test_matches_scipy_sum(self, backend):
        A, SA = rand_matrix(backend, 30, 0.15, 1)
        B, SB = rand_matrix(backend, 30, 0.15, 2)
        C = gb.Matrix(backend, gb.FP64, 30, 30)
        gb.eWiseAddMatrix(C, A, B, monoid("plus"))
        assert np.allclose(C.csr.to_scipy().toarray(),
                           (SA + SB).toarray())

    def test_union_pattern(self, backend):
        A, SA = rand_matrix(backend, 20, 0.1, 3)
        B, SB = rand_matrix(backend, 20, 0.1, 4)
        C = gb.Matrix(backend, gb.FP64, 20, 20)
        gb.eWiseAddMatrix(C, A, B, monoid("plus"))
        assert C.nvals == ((SA != 0) + (SB != 0)).nnz

    def test_min_combine(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0], [1], [5.0])
        B = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0, 1], [1, 0],
                               [3.0, 9.0])
        C = gb.Matrix(backend, gb.FP64, 2, 2)
        gb.eWiseAddMatrix(C, A, B, monoid("min"))
        assert C.extract_element(0, 1) == 3.0
        assert C.extract_element(1, 0) == 9.0

    def test_shape_mismatch(self, backend):
        A = gb.Matrix(backend, gb.FP64, 2, 2)
        B = gb.Matrix(backend, gb.FP64, 3, 3)
        with pytest.raises(DimensionMismatch):
            gb.eWiseAddMatrix(gb.Matrix(backend, gb.FP64, 2, 2), A, B,
                              monoid("plus"))

    def test_empty_operand(self, backend):
        A, SA = rand_matrix(backend, 10, 0.2, 5)
        E = gb.Matrix(backend, gb.FP64, 10, 10)
        C = gb.Matrix(backend, gb.FP64, 10, 10)
        gb.eWiseAddMatrix(C, A, E, monoid("plus"))
        assert C.nvals == A.nvals


class TestEWiseMultMatrix:
    def test_matches_scipy_hadamard(self, backend):
        A, SA = rand_matrix(backend, 30, 0.2, 6)
        B, SB = rand_matrix(backend, 30, 0.2, 7)
        C = gb.Matrix(backend, gb.FP64, 30, 30)
        gb.eWiseMultMatrix(C, A, B, binary("times"))
        assert np.allclose(C.csr.to_scipy().toarray(),
                           SA.multiply(SB).toarray())

    def test_intersection_pattern(self, backend):
        A, SA = rand_matrix(backend, 25, 0.2, 8)
        B, SB = rand_matrix(backend, 25, 0.2, 9)
        C = gb.Matrix(backend, gb.FP64, 25, 25)
        gb.eWiseMultMatrix(C, A, B, binary("times"))
        assert C.nvals == (SA != 0).multiply(SB != 0).nnz

    def test_noncommutative_order(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0], [0], [10.0])
        B = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0], [0], [4.0])
        C = gb.Matrix(backend, gb.FP64, 2, 2)
        gb.eWiseMultMatrix(C, A, B, binary("minus"))
        assert C.extract_element(0, 0) == 6.0

    def test_disjoint_patterns_empty(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [0], [1], [1.0])
        B = gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [1], [2], [1.0])
        C = gb.Matrix(backend, gb.FP64, 3, 3)
        gb.eWiseMultMatrix(C, A, B, binary("times"))
        assert C.nvals == 0


class TestApplyMatrix:
    def test_unary_over_pattern(self, backend):
        A, SA = rand_matrix(backend, 15, 0.2, 10)
        C = gb.Matrix(backend, gb.FP64, 15, 15)
        gb.applyMatrix(C, unary("ainv"), A)
        assert np.allclose(C.csr.to_scipy().toarray(), -SA.toarray())
        assert C.nvals == A.nvals

    def test_bound_binop(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0, 1], [1, 0],
                               [2.0, 3.0])
        C = gb.Matrix(backend, gb.FP64, 2, 2)
        gb.applyMatrix(C, binary("times").bind_first(10), A)
        assert C.extract_element(0, 1) == 20.0

    def test_charges_machine(self, backend):
        A, _ = rand_matrix(backend, 15, 0.2, 11)
        C = gb.Matrix(backend, gb.FP64, 15, 15)
        before = backend.machine.counters.instructions
        gb.applyMatrix(C, unary("one"), A)
        assert backend.machine.counters.instructions > before
