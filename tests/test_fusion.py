"""Equivalence tests for the wall-clock fused operator pipeline.

The contract of :mod:`repro.graphblas.pipeline` is that fusion is a pure
wall-clock artifact: with fusion on or off, every driver produces
bit-identical result vectors, the machine's modeled counters are equal,
and the recorded op-event streams agree once the wall-clock-only
``fused``/``bytes_not_materialized`` stamps are stripped.  These tests
pin that contract per driver and per backend, and pin the downstream
promise that ``cells.json`` — the persisted modeled artifact — is
byte-identical either way.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.graphblas as gb
from repro.core import experiments
from repro.galoisblas import GaloisBLASBackend
from repro.graphblas import pipeline
from repro.lagraph import bfs, delta_stepping, pagerank_gb_res
from repro.perf.machine import Machine
from repro.sparse.csr import CSRMatrix
from repro.suitesparse import SuiteSparseBackend

from tests.conftest import random_digraph

BACKENDS = {"SS": SuiteSparseBackend, "GB": GaloisBLASBackend}


def _graphs():
    csr, _sym = random_digraph(n=120, m=700, seed=9)
    pattern = CSRMatrix(csr.nrows, csr.ncols, csr.indptr, csr.indices, None)
    return pattern, csr


def _run_driver(backend_cls, app, fused):
    """One driver run: (values, present, counters, stripped events)."""
    pattern, weighted = _graphs()
    previous = pipeline.set_enabled(fused)
    try:
        backend = backend_cls(Machine())
        A = gb.Matrix.from_csr(backend, gb.BOOL, pattern, label="A")
        Aw = gb.Matrix.from_csr(backend, gb.INT64, weighted, label="Aw")
        if app == "pr":
            vec = pagerank_gb_res(backend, A, iters=6)
        elif app == "bfs":
            vec = bfs(backend, A, 0)
        else:
            vec = delta_stepping(backend, Aw, 0, delta=16)
    finally:
        pipeline.set_enabled(previous)
    stripped = tuple(replace(e, fused=False, bytes_not_materialized=0)
                     for e in backend.machine.context.events)
    return (vec._values.copy(), vec._present.copy(),
            backend.machine.counters.as_dict(), stripped)


@pytest.mark.parametrize("system", sorted(BACKENDS))
@pytest.mark.parametrize("app", ["pr", "bfs", "sssp"])
class TestFusedEquivalence:
    def test_results_bit_identical(self, system, app):
        fused = _run_driver(BACKENDS[system], app, fused=True)
        plain = _run_driver(BACKENDS[system], app, fused=False)
        assert np.array_equal(fused[0], plain[0])
        assert fused[0].dtype == plain[0].dtype
        assert np.array_equal(fused[1], plain[1])

    def test_modeled_counters_identical(self, system, app):
        fused = _run_driver(BACKENDS[system], app, fused=True)
        plain = _run_driver(BACKENDS[system], app, fused=False)
        assert fused[2] == plain[2]

    def test_event_streams_identical_modulo_fused_stamp(self, system, app):
        fused = _run_driver(BACKENDS[system], app, fused=True)
        plain = _run_driver(BACKENDS[system], app, fused=False)
        assert fused[3] == plain[3]


@pytest.mark.parametrize("app", ["pr", "bfs", "sssp"])
def test_drivers_actually_fuse(app):
    """The rewired hot loops hit the fused path, without fallbacks."""
    pipeline.reset_fusion_stats()
    previous = pipeline.set_enabled(True)
    try:
        _run_driver(GaloisBLASBackend, app, fused=True)
    finally:
        pipeline.set_enabled(previous)
    stats = pipeline.fusion_stats()
    assert stats["chains"] > 0
    assert stats["fused_ops"] > stats["chains"]
    assert stats["fallbacks"] == 0
    assert stats["bytes_not_materialized"] > 0


def test_disabled_pipeline_emits_no_fused_events():
    _values, _present, _counters, _events = _run_driver(
        GaloisBLASBackend, "pr", fused=False)
    previous = pipeline.set_enabled(False)
    try:
        pattern, _weighted = _graphs()
        backend = GaloisBLASBackend(Machine())
        A = gb.Matrix.from_csr(backend, gb.BOOL, pattern, label="A")
        pagerank_gb_res(backend, A, iters=6)
    finally:
        pipeline.set_enabled(previous)
    assert not any(e.fused for e in backend.machine.context.events)


def test_fusion_respects_backend_opt_out():
    """A backend that opts out of wall-clock fusion is left alone."""
    pattern, _weighted = _graphs()
    previous = pipeline.set_enabled(True)
    try:
        backend = GaloisBLASBackend(Machine())
        backend.supports_wallclock_fusion = False
        A = gb.Matrix.from_csr(backend, gb.BOOL, pattern, label="A")
        pipe = pipeline.FusedPipeline(backend)
        assert not pipe.enabled
        pagerank_gb_res(backend, A, iters=2)
    finally:
        pipeline.set_enabled(previous)
    assert not any(e.fused for e in backend.machine.context.events)


@pytest.mark.usefixtures("isolated_grid")
def test_cells_snapshot_byte_identical_with_fusion_toggled(tmp_path):
    """The persisted modeled artifact does not depend on the fusion knob."""
    paths = {}
    for fused in (True, False):
        previous = pipeline.set_enabled(fused)
        try:
            experiments.clear_cache()
            for app in ("pr", "bfs"):
                experiments.run_cell("GB", app, "road-USA-W")
            path = tmp_path / f"cells_fused_{fused}.json"
            experiments.save_results(str(path))
            paths[fused] = path.read_bytes()
        finally:
            pipeline.set_enabled(previous)
    assert paths[True] == paths[False]
