"""Property-style tests for the fast-path segment reduction engine.

Checks :func:`repro.sparse.segreduce.segment_reduce` against a naive Python
reference for every monoid kind x dtype, plus the precision regression the
engine fixes (integer sums routed through float64) and bit-identical
equivalence of the rewired lonestar kernels against the seed's
``np.ufunc.at`` formulations.
"""

import numpy as np
import pytest

from repro.galois.graph import Graph
from repro.lonestar import afforest, bfs, delta_stepping, pagerank, shiloach_vishkin
from repro.lonestar.bfs import bfs_parent
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import build_csr
from repro.sparse.segreduce import (
    group_reduce,
    identity_for,
    scatter_reduce,
    segment_reduce,
    segment_starts,
)

from tests.conftest import random_digraph

KINDS = ("plus", "times", "min", "max", "lor", "land")
DTYPES = (np.int32, np.int64, np.float32, np.float64, np.bool_)


def naive_reduce(values, ids, n_segments, kind, dtype):
    """One-value-at-a-time Python reference for segment_reduce."""
    dtype = np.dtype(dtype)
    out = np.full(n_segments, identity_for(kind, dtype), dtype=dtype)
    combine = {
        "plus": np.add, "times": np.multiply, "min": np.minimum,
        "max": np.maximum, "land": np.minimum,
    }
    for v, s in zip(np.asarray(values).astype(dtype), ids):
        if kind == "lor":
            out[s] = dtype.type(out[s] or bool(v))
        else:
            out[s] = combine[kind](out[s], v)
    return out


def sample_values(rng, n, dtype, kind):
    """Values valid for the monoid: 0/1 for the logical kinds."""
    dtype = np.dtype(dtype)
    if kind in ("lor", "land") or dtype.kind == "b":
        return rng.integers(0, 2, n).astype(dtype)
    if dtype.kind == "f":
        return (rng.standard_normal(n) * 8).astype(dtype)
    return rng.integers(-50, 50, n).astype(dtype)


class TestSegmentReduceProperty:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    def test_unsorted_ids_match_reference(self, kind, dtype):
        rng = np.random.default_rng(7)
        n_seg = 13
        ids = rng.integers(0, n_seg, 200)
        values = sample_values(rng, 200, dtype, kind)
        got = segment_reduce(values, ids, n_seg, kind, dtype=dtype)
        want = naive_reduce(values, ids, n_seg, kind, dtype)
        assert got.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    def test_sorted_fast_path_matches(self, kind, dtype):
        rng = np.random.default_rng(11)
        n_seg = 17
        ids = np.sort(rng.integers(0, n_seg, 300))
        values = sample_values(rng, 300, dtype, kind)
        slow = segment_reduce(values, ids, n_seg, kind, dtype=dtype)
        fast = segment_reduce(values, ids, n_seg, kind, dtype=dtype,
                              sorted_ids=True)
        np.testing.assert_array_equal(slow, fast)

    @pytest.mark.parametrize("kind", KINDS)
    def test_row_splits_fast_path_matches(self, kind):
        rng = np.random.default_rng(13)
        n_seg = 9
        lens = rng.integers(0, 12, n_seg)  # includes empty segments
        splits = np.concatenate(([0], np.cumsum(lens)))
        ids = np.repeat(np.arange(n_seg), lens)
        values = sample_values(rng, int(lens.sum()), np.int64, kind)
        want = naive_reduce(values, ids, n_seg, kind, np.int64)
        got = segment_reduce(values, None, n_seg, kind, dtype=np.int64,
                             row_splits=splits)
        np.testing.assert_array_equal(got, want)
        got_ids = segment_reduce(values, ids, n_seg, kind, dtype=np.int64,
                                 row_splits=splits)
        np.testing.assert_array_equal(got_ids, want)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    def test_empty_input_is_identity(self, kind, dtype):
        out = segment_reduce(np.empty(0, dtype=dtype), np.empty(0, np.int64),
                             5, kind, dtype=dtype)
        assert len(out) == 5
        np.testing.assert_array_equal(
            out, np.full(5, identity_for(kind, dtype), dtype=dtype))

    @pytest.mark.parametrize("kind", KINDS)
    def test_single_segment(self, kind):
        rng = np.random.default_rng(3)
        values = sample_values(rng, 64, np.int64, kind)
        out = segment_reduce(values, np.zeros(64, np.int64), 1, kind,
                             dtype=np.int64)
        want = naive_reduce(values, np.zeros(64, np.int64), 1, kind, np.int64)
        np.testing.assert_array_equal(out, want)

    def test_untouched_segments_keep_identity(self):
        out = segment_reduce([5, 3], [1, 1], 4, "min", dtype=np.int64)
        assert out[1] == 3
        assert (out[[0, 2, 3]] == np.iinfo(np.int64).max).all()

    @pytest.mark.parametrize("kind", ("plus", "min", "lor"))
    def test_out_of_range_id_raises_on_every_plan(self, kind):
        # The bincount plans must fail as loudly as ufunc.at would, not
        # silently drop out-of-range contributions.
        from repro.errors import IndexOutOfBounds

        with pytest.raises((IndexOutOfBounds, IndexError)):
            segment_reduce(np.array([1.0, 2.0]), np.array([0, 7]), 3, kind)

    def test_segment_starts(self):
        ids = np.array([0, 0, 2, 2, 2, 5])
        np.testing.assert_array_equal(segment_starts(ids), [0, 2, 5])
        assert len(segment_starts(np.empty(0, np.int64))) == 0


class TestIntegerPrecisionRegression:
    """The satellite bug: int64 sums were routed through float64 weights."""

    def test_large_int64_sum_is_exact(self):
        # 2**53 + 1 is the first integer float64 cannot represent; a
        # float64 round-trip silently turns the sum into 2**53.
        big = np.array([2**53, 1, 2**60, -(2**60)], dtype=np.int64)
        ids = np.zeros(4, dtype=np.int64)
        out = segment_reduce(big, ids, 1, "plus", dtype=np.int64)
        assert out[0] == 2**53 + 1

    def test_segment_reducer_plus_is_exact(self):
        from repro.sparse.semiring_ops import MONOID_FNS, SegmentReducer

        reducer = SegmentReducer(MONOID_FNS["plus"])
        values = np.array([2**53, 1, 1, -1], dtype=np.int64)
        ids = np.array([0, 0, 1, 1], dtype=np.int64)
        out = reducer.reduce(values, ids, 2, dtype=np.int64)
        np.testing.assert_array_equal(out, [2**53 + 1, 0])

    def test_float_plus_unchanged_bincount_order(self):
        # Float sums must keep np.add.at's sequential accumulation order.
        rng = np.random.default_rng(5)
        values = rng.standard_normal(500)
        ids = rng.integers(0, 20, 500)
        want = np.zeros(20)
        np.add.at(want, ids, values)
        got = segment_reduce(values, ids, 20, "plus", dtype=np.float64)
        np.testing.assert_array_equal(got, want)

    def test_build_csr_min_dedup_preserves_dtype(self):
        # The satellite fix in csr.py: dedup-on-build kept a float64
        # round-trip that truncated large int64 weights.
        big = 2**53
        rows = np.array([0, 0, 1])
        cols = np.array([1, 1, 0])
        vals = np.array([big + 1, big + 3, 7], dtype=np.int64)
        csr = build_csr(2, 2, rows, cols, vals, dedup="min")
        assert csr.values.dtype == np.int64
        np.testing.assert_array_equal(csr.values, [big + 1, 7])

    def test_build_csr_sum_dedup_exact_int(self):
        rows = np.array([0, 0])
        cols = np.array([1, 1])
        vals = np.array([2**53, 1], dtype=np.int64)
        csr = build_csr(1, 2, rows, cols, vals, dedup="sum")
        assert csr.values[0] == 2**53 + 1


class TestScatterAndGroupReduce:
    @pytest.mark.parametrize("kind,ufunc", [
        ("plus", np.add), ("min", np.minimum), ("max", np.maximum),
    ])
    def test_scatter_reduce_matches_ufunc_at(self, kind, ufunc):
        rng = np.random.default_rng(17)
        ids = rng.integers(0, 40, 300)
        values = rng.standard_normal(300)
        want = rng.standard_normal(40)
        got = want.copy()
        ufunc.at(want, ids, values)
        scatter_reduce(got, ids, values, kind)
        np.testing.assert_array_equal(got, want)

    def test_scatter_reduce_empty_noop(self):
        out = np.arange(4, dtype=np.int64)
        scatter_reduce(out, np.empty(0, np.int64), np.empty(0, np.int64),
                       "min")
        np.testing.assert_array_equal(out, np.arange(4))

    def test_scatter_reduce_casts_to_out_dtype(self):
        out = np.full(3, 10.0)
        scatter_reduce(out, np.array([1, 1]), np.array([3, 4], np.int64),
                       "min")
        np.testing.assert_array_equal(out, [10.0, 3.0, 10.0])

    @pytest.mark.parametrize("kind", ("plus", "min", "max"))
    def test_group_reduce_matches_unique_formulation(self, kind):
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 50, 400)
        values = rng.standard_normal(400)
        uniq, inverse = np.unique(keys, return_inverse=True)
        want = naive_reduce(values, inverse, len(uniq), kind, np.float64)
        got_keys, got_vals = group_reduce(keys, values, 50, kind,
                                          dtype=np.float64)
        np.testing.assert_array_equal(got_keys, uniq)
        np.testing.assert_allclose(got_vals, want, rtol=1e-12)


def _graph(csr, weights=None):
    return Graph(GaloisRuntime(Machine()), csr, weights)


class TestRewireEquivalence:
    """Algorithm outputs are bit-identical to the seed's ufunc.at kernels."""

    @pytest.fixture(scope="class")
    def inputs(self):
        csr, sym = random_digraph(n=120, m=700, seed=9)
        return csr, sym

    def test_bfs_levels(self, inputs):
        csr, _ = inputs
        dist = bfs(_graph(csr), 0)
        # Seed-style reference round: unbuffered test-and-set per frontier.
        n = csr.nrows
        inf = np.iinfo(np.uint32).max
        ref = np.full(n, inf, dtype=np.uint32)
        ref[0] = 1
        frontier = [0]
        level = 1
        while frontier:
            level += 1
            nxt = set()
            for u in frontier:
                for v in csr.indices[csr.indptr[u]:csr.indptr[u + 1]]:
                    if ref[v] == inf:
                        ref[v] = level
                        nxt.add(int(v))
            frontier = sorted(nxt)
        np.testing.assert_array_equal(
            dist, np.where(ref == inf, 0, ref).astype(np.int32))

    def test_bfs_parent_min_tiebreak(self, inputs):
        csr, _ = inputs
        parent = bfs_parent(_graph(csr), 0)
        n = csr.nrows
        ref = np.full(n, -1, dtype=np.int64)
        ref[0] = 0
        frontier = [0]
        while frontier:
            stage = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            fresh = set()
            for u in frontier:
                for v in csr.indices[csr.indptr[u]:csr.indptr[u + 1]]:
                    if ref[v] == -1:
                        stage[v] = min(stage[v], u)
                        fresh.add(int(v))
            for v in fresh:
                ref[v] = stage[v]
            frontier = sorted(fresh)
        np.testing.assert_array_equal(parent, ref)

    def test_sssp_distances(self, inputs):
        csr, _ = inputs
        dist = delta_stepping(_graph(csr, csr.values), 0, delta=8)
        # Bellman-Ford reference: exact shortest path in int64.
        n = csr.nrows
        inf = np.iinfo(np.int64).max
        ref = np.full(n, inf, dtype=np.int64)
        ref[0] = 0
        for _ in range(n):
            changed = False
            for u in range(n):
                if ref[u] == inf:
                    continue
                lo, hi = csr.indptr[u], csr.indptr[u + 1]
                for v, w in zip(csr.indices[lo:hi], csr.values[lo:hi]):
                    if ref[u] + w < ref[v]:
                        ref[v] = ref[u] + w
                        changed = True
            if not changed:
                break
        np.testing.assert_array_equal(dist, ref)

    def test_pagerank_bitwise(self, inputs):
        csr, _ = inputs
        rank = pagerank(_graph(csr), iters=6)
        # Seed formulation: the exact same round arithmetic, but with the
        # unbuffered np.add.at scatter the engine replaced.
        n = csr.nrows
        damping = 0.85
        base = (1.0 - damping) / n
        ref_rank = np.full(n, base)
        residual = np.full(n, base)
        out_deg = np.diff(csr.indptr).astype(np.float64)
        safe_deg = np.where(out_deg == 0, 1.0, out_deg)
        rows = np.repeat(np.arange(n), np.diff(csr.indptr))
        for _ in range(6):
            active = np.flatnonzero(residual > 0)
            sel = np.isin(rows, active)
            dsts = csr.indices[sel]
            seg_src = rows[sel]
            contrib = damping * residual / safe_deg
            new_residual = np.zeros(n)
            np.add.at(new_residual, dsts, contrib[seg_src])
            ref_rank += new_residual
            residual = new_residual
        np.testing.assert_array_equal(rank, ref_rank)

    def test_cc_labels_bitwise(self, inputs):
        _, sym = inputs
        labels = shiloach_vishkin(_graph(sym))
        n = sym.nrows
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(sym.indptr))
        cols = sym.indices.astype(np.int64)
        ref = np.arange(n, dtype=np.int64)
        while True:
            before = ref.copy()
            np.minimum.at(ref, before[rows], before[cols])
            np.minimum.at(ref, before[cols], before[rows])
            while True:
                pp = ref[ref]
                if np.array_equal(pp, ref):
                    break
                ref[:] = pp
            if np.array_equal(ref, before):
                break
        np.testing.assert_array_equal(labels, ref)

    def test_afforest_matches_sv_partition(self, inputs):
        _, sym = inputs
        aff = afforest(_graph(sym))
        sv = shiloach_vishkin(_graph(sym))
        # Same partition: labels within each sv component are constant.
        for c in np.unique(sv):
            members = np.flatnonzero(sv == c)
            assert len(np.unique(aff[members])) == 1


class TestStructuralMetadataCache:
    def test_row_ids_cached_and_correct(self):
        csr, _ = random_digraph(n=60, m=200, seed=1)
        want = np.repeat(np.arange(csr.nrows, dtype=np.int64),
                         np.diff(csr.indptr))
        got = csr.row_ids()
        np.testing.assert_array_equal(got, want)
        assert csr.row_ids() is got  # memoized
        assert not got.flags.writeable

    def test_row_degrees_cached(self):
        csr, _ = random_digraph(n=60, m=200, seed=2)
        deg = csr.row_degrees()
        np.testing.assert_array_equal(deg, np.diff(csr.indptr))
        assert csr.row_degrees() is deg

    def test_graph_in_degrees_cached(self):
        csr, _ = random_digraph(n=60, m=200, seed=4)
        g = _graph(csr)
        ind = g.in_degrees()
        np.testing.assert_array_equal(
            ind, np.bincount(csr.indices, minlength=csr.nrows))
        assert g.in_degrees() is ind
