"""Unit tests for the cost model, scheduling and the Machine bundle."""

import numpy as np
import pytest

from repro.errors import InvalidValue, TimeoutError
from repro.perf.costmodel import (
    CostModel,
    CostParams,
    LoopCost,
    Schedule,
    THREAD_POINTS,
    static_block_imbalance,
)
from repro.perf.machine import Machine
from repro.perf.memmodel import CacheHierarchy


def model():
    return CostModel(CacheHierarchy())


class TestStaticImbalance:
    def test_uniform_weights_balanced(self):
        # Block boundaries round to whole items, so a ~1% wobble remains.
        imb = static_block_imbalance(np.ones(1000))
        assert all(1.0 <= v < 1.05 for v in imb.values())

    def test_skewed_prefix_imbalanced(self):
        w = np.ones(1000)
        w[:10] = 1000.0
        imb = static_block_imbalance(w)
        assert imb[56] > 5.0
        assert imb[1] == 1.0

    def test_fewer_items_than_threads(self):
        imb = static_block_imbalance(np.ones(3))
        assert imb[56] == 1.0

    def test_empty(self):
        assert static_block_imbalance(np.array([]))[8] == 1.0


class TestLoopTime:
    def test_serial_equals_sum(self):
        m = model()
        loop = LoopCost(Schedule.SERIAL, instructions=100,
                        hits={"l1": 10}, barrier=False)
        t = m.work_time_ns(loop, 56)
        assert t == pytest.approx(100 * 0.4 + 10 * 1.0)

    def test_parallel_scales_down(self):
        m = model()
        loop = LoopCost(Schedule.STEAL, instructions=10000)
        assert m.work_time_ns(loop, 56) < m.work_time_ns(loop, 1)

    def test_more_threads_never_slower(self):
        m = model()
        loop = LoopCost(Schedule.STEAL, instructions=5000,
                        hits={"dram": 100}, max_item_frac=0.01)
        times = [m.loop_time_ns(loop, p) for p in THREAD_POINTS]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.05 + 10000  # barrier growth tolerance

    def test_max_item_bound(self):
        m = model()
        loop = LoopCost(Schedule.STEAL, instructions=10000,
                        max_item_frac=0.5, barrier=False)
        serial = m.work_time_ns(loop, 1)
        assert m.work_time_ns(loop, 56) >= serial * 0.5

    def test_dram_speedup_capped(self):
        p = CostParams()
        m = CostModel(CacheHierarchy(), p)
        loop = LoopCost(Schedule.STEAL, hits={"dram": 10000}, barrier=False)
        cap = p.level_speedup_cap[3]
        t_inf = m.work_time_ns(loop, 10_000)
        assert t_inf == pytest.approx(10000 * 80.0 / cap)

    def test_huge_pages_discount(self):
        m = model()
        a = LoopCost(Schedule.STEAL, hits={"dram": 1000}, huge_pages=True)
        b = LoopCost(Schedule.STEAL, hits={"dram": 1000}, huge_pages=False)
        assert m.work_time_ns(a, 56) < m.work_time_ns(b, 56)

    def test_fixed_costs_not_scaled(self):
        m = model()
        loop = LoopCost(Schedule.STEAL, instructions=1000, fixed_ns=5000.0)
        t1 = m.loop_time_ns(loop, 56, time_scale=1.0)
        t2 = m.loop_time_ns(loop, 56, time_scale=100.0)
        work = m.work_time_ns(loop, 56)
        fixed = m.fixed_time_ns(loop, 56)
        assert t1 == pytest.approx(work + fixed)
        assert t2 == pytest.approx(work * 100 + fixed)

    def test_barrier_only_on_barrier_loops(self):
        m = model()
        with_b = LoopCost(Schedule.STEAL, barrier=True)
        without = LoopCost(Schedule.STEAL, barrier=False)
        assert m.fixed_time_ns(with_b, 8) > m.fixed_time_ns(without, 8)

    def test_invalid_threads(self):
        with pytest.raises(InvalidValue):
            model().work_time_ns(LoopCost(Schedule.STEAL), 0)


class TestMachine:
    def test_charge_accumulates_counters(self):
        from repro.perf.memmodel import AccessStream

        m = Machine()
        m.charge_loop(Schedule.STEAL, instructions=100,
                      streams=[AccessStream(1024, 10)],
                      n_items=10)
        assert m.counters.instructions == 100
        assert m.counters.l1 == 10
        assert m.counters.loops == 1

    def test_serial_loops_not_counted_as_loops(self):
        m = Machine()
        m.charge_loop(Schedule.SERIAL, instructions=10, barrier=False)
        assert m.counters.loops == 0

    def test_round_counter(self):
        m = Machine()
        m.round()
        m.round()
        assert m.counters.rounds == 2

    def test_simulated_seconds_thread_sweep_consistent(self):
        m = Machine(threads=56)
        for _ in range(5):
            m.charge_loop(Schedule.STEAL, instructions=100000,
                          n_items=1000)
        default = m.simulated_seconds()
        recomputed = m.simulated_seconds(56)
        assert default == pytest.approx(recomputed)
        assert m.simulated_seconds(1) > default

    def test_timeout_raises(self):
        m = Machine(timeout_seconds=1e-6)
        with pytest.raises(TimeoutError):
            for _ in range(100):
                m.charge_loop(Schedule.STEAL, instructions=10**7)

    def test_time_scale_multiplies_work(self):
        m1 = Machine(time_scale=1.0)
        m2 = Machine(time_scale=50.0)
        for m in (m1, m2):
            m.charge_loop(Schedule.STEAL, instructions=10**6, barrier=False,
                          fixed_ns=0.0)
        assert m2.simulated_seconds() == pytest.approx(
            m1.simulated_seconds() * 50.0)

    def test_heavy_tail_item_keeps_fraction(self):
        # A hub item (weight >> mean) stays an indivisible chunk even at
        # paper scale; a uniform item's fraction is scaled away.
        m_hub = Machine(time_scale=1000.0)
        w = np.ones(100)
        w[0] = 10000.0
        loop = m_hub.charge_loop(Schedule.STEAL, instructions=10,
                                 weights=w, n_items=100)
        assert loop.max_item_frac == pytest.approx(10000.0 / w.sum())
        m_flat = Machine(time_scale=1000.0)
        loop2 = m_flat.charge_loop(Schedule.STEAL, instructions=10,
                                   weights=np.ones(100), n_items=100)
        assert loop2.max_item_frac == pytest.approx(0.01 / 1000.0)

    def test_reset_measurement_keeps_mrss(self):
        m = Machine()
        m.allocator.allocate(10**6, "x")
        m.charge_loop(Schedule.STEAL, instructions=10)
        peak = m.mrss_bytes()
        m.reset_measurement()
        assert m.counters.instructions == 0
        assert m.simulated_seconds() == 0.0
        assert m.mrss_bytes() == peak
