"""Cross-stack parity: the three systems must agree on *answers*, and the
trace-derived loop/round counts must agree with the modeled counters.

This is the protocol's end-to-end invariant (see repro/engine/analysis.py):
every parallel loop the machine charges is attributed to exactly one
recorded OpEvent and every round() appends one synthetic round event, so
``summarize(events).loops == PerfCounters.loops`` (and likewise rounds)
must hold on every (system, app, graph) cell — not approximately, exactly.
"""

import pytest

from repro.core.systems import APPLICATIONS, SYSTEMS
from repro.engine.analysis import crosscheck, run_traced, summarize

GRAPHS = ("road-USA-W", "rmat22")  # one high-diameter, one power-law


@pytest.fixture(scope="module")
def grid():
    """All (system, app, graph) traced cells, computed once."""
    return {
        (system, app, graph): run_traced(system, app, graph)
        for graph in GRAPHS
        for app in APPLICATIONS
        for system in SYSTEMS
    }


class TestAnswerParity:
    @pytest.mark.parametrize("graph", GRAPHS)
    @pytest.mark.parametrize("app", APPLICATIONS)
    def test_systems_agree(self, grid, app, graph):
        answers = {grid[(s, app, graph)].answer for s in SYSTEMS}
        assert len(answers) == 1, f"{app}/{graph} disagreement: {answers}"


class TestTraceParity:
    @pytest.mark.parametrize("graph", GRAPHS)
    @pytest.mark.parametrize("app", APPLICATIONS)
    def test_trace_matches_modeled_counters(self, grid, app, graph):
        for system in SYSTEMS:
            cell = grid[(system, app, graph)]
            assert crosscheck(cell) == []

    def test_summary_is_pure_function_of_events(self, grid):
        cell = grid[("GB", "bfs", GRAPHS[0])]
        assert summarize(cell.events) == cell.summary

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_ls_fewer_loops_than_gb(self, grid, graph):
        # The paper's core finding: the matrix API pays more parallel
        # loops (one per API call) than the fused graph API.
        for app in APPLICATIONS:
            gb = grid[("GB", app, graph)].summary
            ls = grid[("LS", app, graph)].summary
            assert ls.loops <= gb.loops
