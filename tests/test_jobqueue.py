"""The durable job queue: state machine, leases, retry, tenancy, torn WAL.

Everything here is single-process and clock-injected — the queue's whole
contract (exactly-once commit, lease fencing, backoff windows, admission
caps, crash recovery of a torn SQLite WAL) is testable without spawning a
single worker.  The multi-process drills that drive real workers through
the queue live in ``tests/test_serve.py``.
"""

import shutil

import pytest

from repro import errors
from repro.service.config import (KNOWN_KNOBS, QueueConfig,
                                  validate_env_knobs)
from repro.service.queue import (DEAD, DONE, ERR, LEASED, QUEUED,
                                 JobQueue, backoff_seconds)

GRAPH = "road-USA-W"

#: Small budgets so every path (retry, dead-letter) is a few steps away.
CONFIG = QueueConfig(max_attempts=3, backoff_base=0.1, backoff_cap=1.0,
                     defer_seconds=0.5, lease_seconds=5.0)


@pytest.fixture
def clock():
    """A settable clock: ``clock.now`` is the queue's current time."""
    class _Clock:
        now = 1000.0

        def __call__(self):
            return self.now

    return _Clock()


@pytest.fixture
def queue(tmp_path, clock):
    q = JobQueue(tmp_path / "q.db", CONFIG, clock=clock)
    yield q
    q.close()


def ok_row(system="GB", app="bfs", graph=GRAPH, status="ok"):
    return {"system": system, "app": app, "graph": graph,
            "status": status, "seconds": 1.5 if status == "ok" else None,
            "mrss_gb": 0.25, "counters": {"loops": 3.0}, "answer": None,
            "thread_sweep": {}, "attempts": 1}


class TestSubmit:
    def test_submit_and_get_roundtrip(self, queue, clock):
        job = queue.submit("GB", "bfs", GRAPH, params={"sweep": True},
                           tenant="alice", priority=2, idem_key="k")
        assert job.state == QUEUED and job.attempts == 0
        assert job.key == ("GB", "bfs", GRAPH)
        fetched = queue.get(job.id)
        assert fetched == job
        assert fetched.params == {"sweep": True}
        assert fetched.created == clock.now
        assert queue.get(99_999) is None

    def test_payload_is_validated_with_suggestions(self, queue):
        with pytest.raises(errors.InvalidValue, match="GB"):
            queue.submit("GBX", "bfs", GRAPH)
        with pytest.raises(errors.InvalidValue, match="bfs"):
            queue.submit("GB", "bsf", GRAPH)
        with pytest.raises(errors.InvalidValue):
            queue.submit("GB", "bfs", "no-such-graph")
        with pytest.raises(errors.InvalidValue, match="tenant"):
            queue.submit("GB", "bfs", GRAPH, tenant="")

    def test_idempotency_key_dedups_even_terminal_jobs(self, queue):
        job = queue.submit("GB", "bfs", GRAPH, idem_key="cell-1")
        assert queue.submit("GB", "bfs", GRAPH, idem_key="cell-1").id \
            == job.id
        leased = queue.lease(job.id, "w")
        assert queue.complete(job.id, "w", leased.attempts, ok_row())
        again = queue.submit("GB", "bfs", GRAPH, idem_key="cell-1")
        assert again.id == job.id and again.state == DONE
        assert queue.find("cell-1").id == job.id
        assert queue.find("never-used") is None

    def test_keyless_submissions_are_always_new_jobs(self, queue):
        a = queue.submit("GB", "bfs", GRAPH)
        b = queue.submit("GB", "bfs", GRAPH)
        assert a.id != b.id

    def test_tenant_admission_cap(self, tmp_path, clock):
        q = JobQueue(tmp_path / "capped.db",
                     QueueConfig(tenant_max_active=2), clock=clock)
        q.submit("GB", "bfs", GRAPH, tenant="alice")
        q.submit("LS", "bfs", GRAPH, tenant="alice")
        with pytest.raises(errors.AdmissionDenied, match="alice"):
            q.submit("SS", "bfs", GRAPH, tenant="alice")
        # Other tenants are unaffected; terminal jobs free the cap.
        q.submit("SS", "bfs", GRAPH, tenant="bob")
        job = q.peek_ready()
        leased = q.lease(job.id, "w")
        assert q.complete(job.id, "w", leased.attempts, ok_row())
        q.submit("SS", "cc", GRAPH, tenant="alice")
        q.close()

    def test_priority_then_fifo_dispatch_order(self, queue):
        low = queue.submit("GB", "bfs", GRAPH, priority=0)
        high = queue.submit("LS", "bfs", GRAPH, priority=5)
        assert queue.peek_ready().id == high.id
        queue.lease(high.id, "w")
        assert queue.peek_ready().id == low.id


class TestLeaseLifecycle:
    def test_lease_is_exclusive_and_tokened(self, queue):
        job = queue.submit("GB", "bfs", GRAPH)
        leased = queue.lease(job.id, "w1")
        assert leased.state == LEASED and leased.attempts == 1
        assert leased.lease_deadline == queue.clock() + 5.0
        assert queue.lease(job.id, "w2") is None  # already taken

    def test_complete_is_exactly_once(self, queue):
        job = queue.submit("GB", "bfs", GRAPH)
        leased = queue.lease(job.id, "w1")
        assert queue.complete(job.id, "w1", leased.attempts, ok_row())
        done = queue.get(job.id)
        assert done.state == DONE and done.result["status"] == "ok"
        # Duplicate and stale commits are both rejected no-ops.
        assert not queue.complete(job.id, "w1", leased.attempts, ok_row())
        assert not queue.complete(job.id, "w2", leased.attempts, ok_row())
        assert queue.get(job.id).result == done.result

    def test_stale_token_cannot_commit_after_retry(self, queue, clock):
        job = queue.submit("GB", "bfs", GRAPH)
        first = queue.lease(job.id, "w1")
        queue.fail(job.id, "w1", first.attempts, "worker died")
        clock.now += 60
        second = queue.lease(job.id, "w2")
        # The zombie first worker's result arrives late: fenced out.
        assert not queue.complete(job.id, "w1", first.attempts, ok_row())
        assert queue.get(job.id).state == LEASED
        assert queue.complete(job.id, "w2", second.attempts, ok_row())

    def test_err_rows_are_terminal_with_result(self, queue):
        job = queue.submit("GB", "bfs", GRAPH)
        leased = queue.lease(job.id, "w")
        assert queue.complete(job.id, "w", leased.attempts,
                              ok_row(status="ERR"))
        got = queue.get(job.id)
        assert got.state == ERR and got.result["status"] == "ERR"

    def test_fail_requeues_with_backoff_then_dead_letters(self, queue,
                                                          clock):
        job = queue.submit("GB", "bfs", GRAPH)
        for attempt in range(1, CONFIG.max_attempts + 1):
            leased = queue.lease(job.id, "w")
            assert leased is not None and leased.attempts == attempt
            state = queue.fail(job.id, "w", attempt, f"crash {attempt}")
            if attempt < CONFIG.max_attempts:
                assert state == QUEUED
                requeued = queue.get(job.id)
                assert requeued.not_before > clock.now  # backoff window
                assert queue.peek_ready() is None
                clock.now = requeued.not_before + 0.01
            else:
                assert state == DEAD
        dead = queue.get(job.id)
        assert dead.state == DEAD and "crash 3" in dead.note
        assert not queue.has_open_jobs()
        kinds = [e["kind"] for e in queue.events(job.id)]
        assert kinds == ["submitted", "leased", "requeued", "leased",
                         "requeued", "leased", "dead"]

    def test_defer_charges_no_attempt(self, queue, clock):
        job = queue.submit("GB", "bfs", GRAPH)
        assert queue.defer(job.id, note="breaker open")
        deferred = queue.get(job.id)
        assert deferred.state == QUEUED and deferred.attempts == 0
        assert deferred.not_before == clock.now + CONFIG.defer_seconds
        assert queue.peek_ready() is None
        assert queue.counts()["deferred"] == 1
        clock.now += CONFIG.defer_seconds + 0.01
        assert queue.peek_ready().id == job.id

    def test_renew_extends_only_the_owners_live_lease(self, queue, clock):
        job = queue.submit("GB", "bfs", GRAPH)
        queue.lease(job.id, "w1")
        clock.now += 3
        assert queue.renew(job.id, "w1")
        assert queue.get(job.id).lease_deadline == clock.now + 5.0
        assert not queue.renew(job.id, "w2")


class TestCrashRecovery:
    def test_expired_lease_is_requeued(self, queue, clock):
        job = queue.submit("GB", "bfs", GRAPH)
        queue.lease(job.id, "dead-supervisor")
        assert queue.expire_leases() == []  # still live
        clock.now += 6
        assert queue.expire_leases() == [job.id]
        assert queue.get(job.id).state == QUEUED

    def test_requeue_orphans_takes_over_immediately(self, queue):
        job = queue.submit("GB", "bfs", GRAPH)
        queue.lease(job.id, "dead-supervisor")
        assert queue.requeue_orphans() == [job.id]
        requeued = queue.get(job.id)
        assert requeued.state == QUEUED
        assert "orphaned lease" in requeued.note

    def test_state_survives_reopen(self, tmp_path, clock):
        path = tmp_path / "q.db"
        q = JobQueue(path, CONFIG, clock=clock)
        job = q.submit("GB", "bfs", GRAPH, idem_key="persists")
        leased = q.lease(job.id, "w")
        q.complete(job.id, "w", leased.attempts, ok_row())
        q.close()
        q2 = JobQueue(path, CONFIG, clock=clock)
        reloaded = q2.get(job.id)
        assert reloaded.state == DONE and reloaded.result["status"] == "ok"
        assert q2.submit("GB", "bfs", GRAPH, idem_key="persists").id \
            == job.id
        assert [e["kind"] for e in q2.events(job.id)] \
            == ["submitted", "leased", "done"]
        q2.close()

    def test_torn_wal_tail_recovers_longest_valid_prefix(self, tmp_path,
                                                         clock):
        """The satellite drill: SIGKILL mid-WAL-append loses only the tail.

        A copy of the database files taken while the writer is still open
        is exactly what a kill leaves on disk: all committed transactions
        live in ``q.db-wal`` (never checkpointed).  Tearing bytes off the
        WAL's end simulates the interrupted final write; SQLite's frame
        checksums must recover the longest valid prefix — whole jobs,
        in submission order, never a corrupt row — and the recovered
        database must accept new writes.
        """
        path = tmp_path / "q.db"
        q = JobQueue(path, CONFIG, clock=clock)
        apps = ("bfs", "cc", "pr", "sssp", "tc", "ktruss")
        for i, app in enumerate(apps):
            q.submit("GB", app, GRAPH, idem_key=f"k{i}")
        wal = tmp_path / "q.db-wal"
        assert wal.exists() and wal.stat().st_size > 0
        crash_dir = tmp_path / "crash"
        crash_dir.mkdir()
        shutil.copy(path, crash_dir / "q.db")
        shutil.copy(wal, crash_dir / "q.db-wal")
        q.close()

        torn = crash_dir / "q.db-wal"
        with open(torn, "r+b") as f:
            f.truncate(torn.stat().st_size - 100)  # mid-frame tear

        recovered = JobQueue(crash_dir / "q.db", CONFIG, clock=clock)
        jobs = recovered.jobs()
        # A strict prefix: the torn final frame dropped at least the
        # last submission, and nothing interior was lost or reordered.
        assert len(jobs) < len(apps)
        assert [j.idem_key for j in jobs] \
            == [f"k{i}" for i in range(len(jobs))]
        for job in jobs:
            assert job.state == QUEUED and job.app in apps
        # The recovered queue is fully writable: the lost submission can
        # simply be resubmitted (fresh — its key died with the tail).
        resubmitted = recovered.submit("GB", apps[-1], GRAPH,
                                      idem_key=f"k{len(apps) - 1}")
        assert resubmitted.state == QUEUED
        recovered.close()

    def test_mismatched_schema_is_rejected(self, tmp_path, clock):
        path = tmp_path / "q.db"
        q = JobQueue(path, CONFIG, clock=clock)
        q._conn.execute("UPDATE queue_meta SET value='99' "
                        "WHERE key='schema'")
        q._conn.commit()
        q.close()
        with pytest.raises(errors.InvalidValue, match="schema"):
            JobQueue(path, CONFIG, clock=clock)


class TestBackoff:
    def test_deterministic_and_exponential(self):
        assert backoff_seconds(7, 2, 0.5, 30.0) \
            == backoff_seconds(7, 2, 0.5, 30.0)
        bases = [backoff_seconds(1, a, 0.5, 1000.0) / (0.5 * 2 ** (a - 1))
                 for a in range(1, 6)]
        # Jitter stretches each delay by a factor in [1, 1.5).
        assert all(1.0 <= b < 1.5 for b in bases)

    def test_cap_bounds_the_delay(self):
        assert backoff_seconds(1, 30, 0.5, 2.0) < 2.0 * 1.5

    def test_jitter_differs_across_jobs(self):
        delays = {backoff_seconds(job_id, 1, 0.5, 30.0)
                  for job_id in range(20)}
        assert len(delays) > 1


class TestQueueConfig:
    def test_from_env_reads_all_knobs(self):
        cfg = QueueConfig.from_env({
            "REPRO_JOB_MAX_ATTEMPTS": "5", "REPRO_JOB_BACKOFF": "0.5",
            "REPRO_JOB_BACKOFF_CAP": "60", "REPRO_JOB_DEFER": "2",
            "REPRO_LEASE_SECONDS": "7", "REPRO_TENANT_MAX_ACTIVE": "9"})
        assert cfg.max_attempts == 5
        assert cfg.backoff_base == 0.5 and cfg.backoff_cap == 60.0
        assert cfg.defer_seconds == 2.0 and cfg.lease_seconds == 7.0
        assert cfg.tenant_max_active == 9

    def test_invalid_values_fail_fast(self):
        with pytest.raises(errors.InvalidValue):
            QueueConfig(max_attempts=0)
        with pytest.raises(errors.InvalidValue):
            QueueConfig(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(errors.InvalidValue):
            QueueConfig(lease_seconds=0)
        with pytest.raises(errors.InvalidValue):
            QueueConfig.from_env({"REPRO_JOB_MAX_ATTEMPTS": "many"})


class TestKnobValidator:
    def test_clean_environment_passes(self):
        assert validate_env_knobs({"PATH": "/bin",
                                   "REPRO_FAULTS": "x"}) == ()

    def test_typo_fails_fast_with_suggestion(self):
        with pytest.raises(errors.InvalidValue,
                           match="REPRO_CELL_RETRIES"):
            validate_env_knobs({"REPRO_CELL_RETIRES": "1"})

    def test_every_known_knob_is_accepted(self):
        assert validate_env_knobs({k: "1" for k in KNOWN_KNOBS
                                   if k != "REPRO_ALLOW_UNKNOWN_KNOBS"}) \
            == ()

    def test_escape_hatch_downgrades_to_warning(self, capsys):
        unknown = validate_env_knobs({"REPRO_TOTALLY_NEW_KNOB": "1",
                                      "REPRO_ALLOW_UNKNOWN_KNOBS": "1"})
        assert unknown == ("REPRO_TOTALLY_NEW_KNOB",)
        assert "REPRO_TOTALLY_NEW_KNOB" in capsys.readouterr().err
