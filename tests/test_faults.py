"""Fault injection (repro.faults) and graceful per-cell failure."""

import pytest

from repro import errors, faults
from repro.core import experiments, tables
from repro.core.experiments import ERR, OK, OOM, TIMEOUT, run_cell
from repro.core.variants import run_variant

CELL = ("LS", "bfs", "rmat22")  # the cheapest real cell


def run(plan=None, cell=CELL, **kwargs):
    kwargs.setdefault("use_cache", False)
    if plan is None:
        return run_cell(*cell, **kwargs)
    with faults.injected(plan):
        return run_cell(*cell, **kwargs)


class TestFaultSpec:
    def test_window_matching(self):
        spec = faults.FaultSpec("kernel", "fault", nth=3, times=2)
        assert [spec.matches("kernel", n) for n in (2, 3, 4, 5)] == \
            [False, True, True, False]
        assert not spec.matches("alloc", 3)

    def test_wildcard_site_and_forever(self):
        spec = faults.FaultSpec("*", "fault", nth=2, times=0)
        assert spec.matches("alloc", 2) and spec.matches("kernel", 99)

    def test_invalid_specs_rejected(self):
        with pytest.raises(errors.InvalidValue):
            faults.FaultSpec("gpu", "fault")
        with pytest.raises(errors.InvalidValue):
            faults.FaultSpec("kernel", "segfault")
        with pytest.raises(errors.InvalidValue):
            faults.FaultSpec("kernel", "fault", nth=0)

    def test_parse_spec_roundtrip(self):
        spec = faults.plan.parse_spec("alloc:oom:transient:nth=7:times=2")
        assert spec == faults.FaultSpec("alloc", "oom", nth=7, times=2,
                                        transient=True)
        for bad in ("kernel", "kernel:fault:nth=x", "kernel:fault:loud"):
            with pytest.raises(errors.InvalidValue):
                faults.plan.parse_spec(bad)

    def test_plan_from_env(self):
        env = {"REPRO_FAULTS": "kernel:fault:transient:nth=5; alloc:oom"}
        plan = faults.plan_from_env(env)
        assert len(plan.specs) == 2 and plan.specs[0].transient
        assert faults.plan_from_env({}) is None
        env = {"REPRO_FAULTS_RATE": "0.5", "REPRO_FAULTS_SEED": "11"}
        plan = faults.plan_from_env(env)
        assert plan.rate == 0.5 and plan.seed == 11


class TestPlanDeterminism:
    def test_counters_are_per_site(self):
        plan = faults.FaultPlan()
        plan.trip("kernel")
        plan.trip("kernel")
        plan.trip("alloc")
        assert plan.counts == {"kernel": 2, "alloc": 1}

    def test_seeded_rate_replays_identically(self):
        def fire_pattern():
            plan = faults.FaultPlan(rate=0.3, seed=42)
            fired = []
            for i in range(50):
                try:
                    plan.trip("kernel")
                    fired.append(False)
                except faults.TransientFault:
                    fired.append(True)
            return fired

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_uninstalled_plan_is_noop(self):
        faults.clear()
        faults.trip("kernel")  # must not raise


@pytest.mark.usefixtures("isolated_grid")
class TestRunCellFailurePaths:
    def test_transient_fault_retried_to_ok(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  nth=1, transient=True)])
        baseline = run()
        result = run(plan)
        assert result.status == OK
        assert result.attempts == 2
        assert result.error is None
        # The retry's answer and modeled time match an uninjected run.
        assert result.answer == baseline.answer
        assert result.seconds == baseline.seconds

    def test_transient_faults_exhaust_to_err(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  nth=1, times=0,
                                                  transient=True)])
        policy = faults.RetryPolicy(max_attempts=3, backoff_base=0.0)
        result = run(plan, retry=policy)
        assert result.status == ERR
        assert result.attempts == 3
        assert result.error["type"] == "TransientFault"

    def test_permanent_fault_is_err_not_retried(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault", nth=1)])
        result = run(plan)
        assert result.status == ERR
        assert result.attempts == 1
        assert result.error["type"] == "InjectedFault"
        assert "kernel trip #1" in result.error["message"]
        assert result.error["traceback"]

    def test_injected_oom_keeps_paper_annotation(self):
        plan = faults.FaultPlan([faults.FaultSpec("alloc", "oom", nth=2)])
        result = run(plan, cell=("GB", "bfs", "rmat22"))
        assert result.status == OOM
        assert result.error is None

    def test_injected_timeout_keeps_paper_annotation(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "timeout",
                                                  nth=3)])
        result = run(plan)
        assert result.status == TIMEOUT
        assert result.error is None

    def test_fatal_fault_escapes_run_cell(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fatal", nth=2)])
        with pytest.raises(faults.FatalFault):
            run(plan)

    def test_unexpected_exception_becomes_err(self, monkeypatch):
        from repro.core import systems

        def boom(self, app):
            raise ZeroDivisionError("synthetic harness bug")

        monkeypatch.setattr(systems.SystemInstance, "run", boom)
        result = run()
        assert result.status == ERR
        assert result.error["type"] == "ZeroDivisionError"
        assert "synthetic harness bug" in result.error["message"]

    def test_wallclock_watchdog_converts_to_err(self):
        result = run(wall_budget=-1.0)
        assert result.status == ERR
        assert result.attempts == 1
        assert result.error["type"] == "WallClockExceeded"

    def test_wallclock_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_WALL_BUDGET", "-1")
        assert run().status == ERR
        monkeypatch.delenv("REPRO_CELL_WALL_BUDGET")
        assert run().status == OK


@pytest.mark.usefixtures("isolated_grid")
class TestRenderingWithErrCells:
    def test_table2_renders_err_without_aborting(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  nth=1, times=0)])
        with faults.injected(plan):
            t = tables.table2(["rmat22"], ["bfs"])
        assert "ERR" in t.text
        assert all(c.status == ERR for c in t.data.values())

    def test_one_err_cell_leaves_others_intact(self, monkeypatch):
        from repro.core import systems

        original = systems.SystemInstance.run

        def selective(self, app):
            if self.code == "GB":
                raise RuntimeError("GB-only failure")
            return original(self, app)

        monkeypatch.setattr(systems.SystemInstance, "run", selective)
        t = tables.table2(["rmat22"], ["bfs"])
        assert t.data[("bfs", "GB", "rmat22")].status == ERR
        assert t.data[("bfs", "SS", "rmat22")].status == OK
        assert t.data[("bfs", "LS", "rmat22")].status == OK
        assert "*" in t.text  # a fastest cell is still highlighted

    def test_table3_and_figure2_tolerate_err(self):
        from repro.core import figures

        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  nth=1, times=0)])
        with faults.injected(plan):
            t3 = tables.table3(["rmat22"], ["bfs"])
            f2 = figures.figure2(apps=["bfs"], graphs=["rmat22"])
        assert len(t3.data) == 3
        assert "ERR" in f2.text

    def test_variant_err_recorded_not_raised(self):
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault", nth=1)])
        with faults.injected(plan):
            r = run_variant("pr", "ls", "rmat22", use_cache=False)
        assert r.status == ERR
        assert r.error["type"] == "InjectedFault"


class TestRetryPolicy:
    def test_backoff_growth_and_cap(self):
        policy = faults.RetryPolicy(max_attempts=5, backoff_base=0.1,
                                    backoff_factor=2.0, backoff_cap=0.3)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == \
            [0.1, 0.2, 0.3, 0.3]

    def test_wait_uses_injected_sleep(self):
        slept = []
        policy = faults.RetryPolicy(backoff_base=0.05, sleep=slept.append)
        policy.wait(1)
        assert slept == [0.05]

    def test_invalid_policy_rejected(self):
        with pytest.raises(errors.InvalidValue):
            faults.RetryPolicy(max_attempts=0)
        with pytest.raises(errors.InvalidValue):
            faults.RetryPolicy(backoff_base=-1.0)
