"""Lonestar algorithms validated against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.galois.graph import Graph
from repro.lonestar import (
    afforest,
    bfs,
    delta_stepping,
    ktruss,
    pagerank,
    shiloach_vishkin,
    triangle_count,
)
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

from tests.conftest import assert_partition_equal, nx_digraph, random_digraph


@pytest.fixture(scope="module")
def oracle():
    csr, sym = random_digraph()
    G = nx_digraph(csr)
    return csr, sym, G, G.to_undirected()


def fresh_graph(csr, weights=None):
    return Graph(GaloisRuntime(Machine()), csr, weights)


class TestBfs:
    def test_levels_match_oracle(self, oracle):
        csr, _, G, _ = oracle
        dist = bfs(fresh_graph(csr), 0)
        ref = nx.single_source_shortest_path_length(G, 0)
        for v in range(csr.nrows):
            assert dist[v] == (ref[v] + 1 if v in ref else 0)

    def test_matches_lagraph(self, oracle, ss_backend):
        from repro.lagraph import bfs as la_bfs
        from tests.conftest import pattern_matrix

        csr = oracle[0]
        ls = bfs(fresh_graph(csr), 2)
        la = la_bfs(ss_backend, pattern_matrix(ss_backend, csr), 2)
        assert np.array_equal(ls, la.dense_values())

    def test_single_fused_loop_per_round(self, oracle):
        csr = oracle[0]
        g = fresh_graph(csr)
        bfs(g, 0)
        m = g.runtime.machine
        # One do_all per round (Algorithm 1), plus the distance-array
        # initialization loop: the loop-fusion property.
        assert m.counters.loops == m.counters.rounds + 1


class TestSssp:
    @pytest.mark.parametrize("tiled", [True, False])
    def test_matches_dijkstra(self, oracle, tiled):
        csr, _, G, _ = oracle
        g = fresh_graph(csr, csr.values)
        dist = delta_stepping(g, 0, delta=64, tiled=tiled)
        ref = nx.single_source_dijkstra_path_length(G, 0)
        inf = np.iinfo(np.int64).max
        for v in range(csr.nrows):
            assert dist[v] == ref.get(v, inf)

    def test_delta_invariance(self, oracle):
        csr = oracle[0]
        a = delta_stepping(fresh_graph(csr, csr.values), 1, delta=8)
        b = delta_stepping(fresh_graph(csr, csr.values), 1, delta=1 << 13)
        assert np.array_equal(a, b)

    def test_requires_weights(self, oracle):
        with pytest.raises(ValueError):
            delta_stepping(fresh_graph(oracle[0]), 0, delta=8)

    def test_no_global_barriers_inside_buckets(self, oracle):
        csr = oracle[0]
        g = fresh_graph(csr, csr.values)
        delta_stepping(g, 0, delta=64)
        m = g.runtime.machine
        barriers = sum(1 for r in m.loop_records if r.barrier)
        slices = sum(1 for r in m.loop_records if not r.barrier
                     and r.n_items > 0)
        assert barriers <= m.counters.rounds + 2
        assert slices >= barriers  # asynchronous slices dominate


class TestCc:
    def test_afforest_partition(self, oracle):
        _, sym, _, Gu = oracle
        labels = afforest(fresh_graph(sym))
        assert_partition_equal(labels, nx.connected_components(Gu))

    def test_sv_partition(self, oracle):
        _, sym, _, Gu = oracle
        labels = shiloach_vishkin(fresh_graph(sym))
        assert_partition_equal(labels, nx.connected_components(Gu))

    def test_afforest_equals_sv_labels(self, oracle):
        sym = oracle[1]
        a = afforest(fresh_graph(sym))
        b = shiloach_vishkin(fresh_graph(sym))
        assert np.array_equal(a, b)  # both produce min-id labels

    def test_afforest_fewer_instructions_than_sv(self, oracle):
        # The fine-grained advantage (Table IV / Figure 3c).
        sym = oracle[1]
        ga = fresh_graph(sym)
        afforest(ga)
        gs = fresh_graph(sym)
        shiloach_vishkin(gs)
        assert (ga.runtime.machine.counters.instructions
                < gs.runtime.machine.counters.instructions)

    def test_edgeless(self):
        from repro.sparse.csr import build_csr

        sym = build_csr(4, 4, [], [], None)
        assert np.array_equal(afforest(fresh_graph(sym)), np.arange(4))


class TestTc:
    def test_matches_oracle(self, oracle):
        _, sym, _, Gu = oracle
        ref = sum(nx.triangles(Gu).values()) // 3
        assert triangle_count(fresh_graph(sym)) == ref

    def test_no_intermediate_matrix_allocated(self, oracle):
        # Materialization check: the counting loop allocates nothing
        # beyond the sorted graph + L built in preprocessing.
        sym = oracle[1]
        g = fresh_graph(sym)
        alloc = g.runtime.machine.allocator
        triangle_count(g)
        labels = [a for a in [] ]  # counting itself adds no allocations
        assert alloc.live_bytes < 3 * sym.nbytes + 4096


class TestKtruss:
    def _oracle_truss(self, Gu, k):
        H = Gu.copy()
        changed = True
        while changed:
            changed = False
            for u, v in list(H.edges()):
                if len(set(H[u]) & set(H[v])) < k - 2:
                    H.remove_edge(u, v)
                    changed = True
        return H.number_of_edges()

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_oracle(self, oracle, k):
        _, sym, _, Gu = oracle
        alive, rounds = ktruss(fresh_graph(sym), k)
        assert alive.sum() == 2 * self._oracle_truss(Gu, k)

    def test_matches_lagraph(self, oracle, gb_backend):
        from repro.lagraph import ktruss as la_ktruss
        from tests.conftest import pattern_matrix

        sym = oracle[1]
        alive, _ = ktruss(fresh_graph(sym), 4)
        S, _ = la_ktruss(gb_backend, pattern_matrix(gb_backend, sym), 4)
        assert alive.sum() == S.nvals

    def test_alive_pattern_is_symmetric(self, oracle):
        sym = oracle[1]
        from repro.sparse.tricount import twin_positions

        alive, _ = ktruss(fresh_graph(sym), 4)
        twin = twin_positions(sym)
        assert np.array_equal(alive, alive[twin])


class TestPagerank:
    def test_layouts_identical(self, oracle):
        csr = oracle[0]
        a = pagerank(fresh_graph(csr), iters=10, layout="aos")
        b = pagerank(fresh_graph(csr), iters=10, layout="soa")
        assert np.array_equal(a, b)

    def test_matches_lagraph(self, oracle, gb_backend):
        from repro.lagraph import pagerank_gb_res
        from tests.conftest import pattern_matrix

        csr = oracle[0]
        ls = pagerank(fresh_graph(csr), iters=10)
        la = pagerank_gb_res(gb_backend, pattern_matrix(gb_backend, csr),
                             iters=10).dense_values()
        assert np.allclose(ls, la, rtol=1e-10)

    def test_unknown_layout(self, oracle):
        with pytest.raises(ValueError):
            pagerank(fresh_graph(oracle[0]), layout="csr")

    def test_soa_more_memory_traffic_than_aos(self, oracle):
        # The Figure 3a data-layout effect.
        csr = oracle[0]
        ga = fresh_graph(csr)
        pagerank(ga, iters=10, layout="aos")
        gs = fresh_graph(csr)
        pagerank(gs, iters=10, layout="soa")
        assert (gs.runtime.machine.counters.memory_accesses()
                > ga.runtime.machine.counters.memory_accesses())
