"""Unit tests for the CSR storage layer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DimensionMismatch, IndexOutOfBounds, InvalidValue
from repro.sparse.csr import CSRMatrix, build_csr, gather_rows


@pytest.fixture
def small():
    # 4x5 matrix with a mix of row densities.
    rows = [0, 0, 1, 3, 3, 3]
    cols = [1, 4, 0, 0, 2, 4]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    return build_csr(4, 5, rows, cols, np.array(vals))


class TestBuild:
    def test_shape_and_nvals(self, small):
        assert (small.nrows, small.ncols) == (4, 5)
        assert small.nvals == 6

    def test_rows_sorted(self, small):
        for i in range(small.nrows):
            cols, _ = small.row(i)
            assert np.all(np.diff(cols) > 0)

    def test_empty_row(self, small):
        cols, vals = small.row(2)
        assert len(cols) == 0 and len(vals) == 0

    def test_get_present_and_absent(self, small):
        assert small.get(0, 4) == 2.0
        assert small.get(0, 3) is None

    def test_row_out_of_range(self, small):
        with pytest.raises(IndexOutOfBounds):
            small.row(4)

    def test_col_index_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            build_csr(2, 2, [0], [5], None)

    def test_row_index_negative(self):
        with pytest.raises(IndexOutOfBounds):
            build_csr(2, 2, [-1], [0], None)

    def test_length_mismatch(self):
        with pytest.raises(DimensionMismatch):
            build_csr(2, 2, [0, 1], [0], None)

    def test_dedup_last(self):
        m = build_csr(2, 2, [0, 0], [1, 1], np.array([5.0, 9.0]),
                      dedup="last")
        assert m.nvals == 1
        assert m.get(0, 1) == 9.0

    def test_dedup_sum(self):
        m = build_csr(2, 2, [0, 0], [1, 1], np.array([5.0, 9.0]),
                      dedup="sum")
        assert m.get(0, 1) == 14.0

    def test_dedup_min(self):
        m = build_csr(2, 2, [0, 0, 1], [1, 1, 0],
                      np.array([5.0, 2.0, 7.0]), dedup="min")
        assert m.get(0, 1) == 2.0
        assert m.get(1, 0) == 7.0

    def test_dedup_error(self):
        with pytest.raises(InvalidValue):
            build_csr(2, 2, [0, 0], [1, 1], np.array([1.0, 2.0]),
                      dedup="error")

    def test_pattern_only(self):
        m = build_csr(3, 3, [0, 1], [1, 2], None)
        assert m.values is None
        assert m.get(0, 1) is True
        assert np.all(m.value_array() == 1)


class TestTransforms:
    def test_transpose_matches_scipy(self, small):
        t = small.transpose()
        ref = small.to_scipy().T.tocsr()
        assert (t.to_scipy() != ref).nnz == 0

    def test_transpose_twice_is_identity(self, small):
        tt = small.transpose().transpose()
        assert (tt.to_scipy() != small.to_scipy()).nnz == 0

    def test_tril_triu_partition(self):
        m = build_csr(5, 5, [0, 1, 2, 3, 2], [1, 0, 2, 1, 4],
                      np.arange(5, dtype=np.float64))
        low = m.extract_tril(strict=True)
        up = m.extract_triu(strict=True)
        diag = m.nvals - low.nvals - up.nvals
        assert diag == 1  # the (2,2) entry
        assert low.nvals + up.nvals + 1 == m.nvals

    def test_filter_entries(self, small):
        keep = small.value_array() > 3.0
        f = small.filter_entries(keep)
        assert f.nvals == 3
        assert f.get(3, 2) == 5.0

    def test_filter_wrong_length(self, small):
        with pytest.raises(DimensionMismatch):
            small.filter_entries(np.ones(2, dtype=bool))

    def test_permute_roundtrip(self):
        rng = np.random.default_rng(0)
        m = build_csr(6, 6, rng.integers(0, 6, 12), rng.integers(0, 6, 12),
                      None)
        perm = rng.permutation(6).astype(np.int64)
        p = m.permute(perm)
        ref = m.to_scipy().toarray()[np.ix_(perm, perm)]
        assert np.array_equal(p.to_scipy().toarray(), ref)

    def test_permute_requires_square(self, small):
        with pytest.raises(DimensionMismatch):
            small.permute(np.arange(4))

    def test_copy_is_deep(self, small):
        c = small.copy()
        c.values[0] = 99
        assert small.values[0] != 99

    def test_nbytes_counts_values(self, small):
        pattern = CSRMatrix(small.nrows, small.ncols, small.indptr,
                            small.indices, None)
        assert small.nbytes > pattern.nbytes


class TestGatherRows:
    def test_matches_manual_concatenation(self, small):
        rows = np.array([3, 0, 3])
        cols, positions, seg = gather_rows(small, rows)
        expected = np.concatenate([small.row(3)[0], small.row(0)[0],
                                   small.row(3)[0]])
        assert np.array_equal(cols, expected)
        assert np.array_equal(small.indices[positions], cols)

    def test_segment_ids(self, small):
        rows = np.array([0, 2, 3])
        _, _, seg = gather_rows(small, rows)
        # row 0 has 2 entries, row 2 none, row 3 three.
        assert np.array_equal(seg, [0, 0, 2, 2, 2])

    def test_empty_request(self, small):
        cols, positions, seg = gather_rows(small, np.array([], dtype=np.int64))
        assert len(cols) == len(positions) == len(seg) == 0

    def test_all_empty_rows(self, small):
        cols, _, _ = gather_rows(small, np.array([2, 2]))
        assert len(cols) == 0
