"""Betweenness centrality (extension problem) on both stacks."""

import networkx as nx
import numpy as np
import pytest

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.lagraph import betweenness_centrality as la_bc
from repro.lonestar import betweenness_centrality as ls_bc
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

from tests.conftest import pattern_matrix, random_digraph


@pytest.fixture(scope="module")
def oracle():
    csr, _ = random_digraph(n=90, m=450, seed=11)
    import networkx as nx

    rows = np.repeat(np.arange(csr.nrows), np.diff(csr.indptr))
    G = nx.DiGraph()
    G.add_nodes_from(range(csr.nrows))
    G.add_edges_from(zip(rows.tolist(), csr.indices.tolist()))
    ref = nx.betweenness_centrality(G, normalized=False)
    return csr, ref


def fresh_graph(csr):
    return Graph(GaloisRuntime(Machine()), csr)


class TestLonestarBC:
    def test_exact_all_sources(self, oracle):
        csr, ref = oracle
        got = ls_bc(fresh_graph(csr), range(csr.nrows))
        assert all(abs(got[v] - ref[v]) < 1e-9 for v in range(csr.nrows))

    def test_partial_batch_is_partial(self, oracle):
        csr, ref = oracle
        partial = ls_bc(fresh_graph(csr), [0, 1, 2])
        full = ls_bc(fresh_graph(csr), range(csr.nrows))
        assert partial.sum() <= full.sum() + 1e-9

    def test_star_center(self):
        from repro.sparse.csr import build_csr

        # Star: all paths 1->k->j pass through the center 0.
        leaves = np.arange(1, 6)
        src = np.concatenate([leaves, np.zeros(5, dtype=np.int64)])
        dst = np.concatenate([np.zeros(5, dtype=np.int64), leaves])
        csr = build_csr(6, 6, src, dst, None)
        got = ls_bc(fresh_graph(csr), range(6))
        assert got[0] == pytest.approx(5 * 4)  # ordered leaf pairs
        assert np.allclose(got[1:], 0.0)


class TestLAGraphBC:
    def test_exact_all_sources(self, backend, oracle):
        csr, ref = oracle
        A = pattern_matrix(backend, csr)
        got = la_bc(backend, A, range(csr.nrows)).dense_values()
        assert all(abs(got[v] - ref[v]) < 1e-9 for v in range(csr.nrows))

    def test_matches_lonestar_on_batch(self, backend, oracle):
        csr, _ = oracle
        batch = [3, 17, 42]
        A = pattern_matrix(backend, csr)
        la = la_bc(backend, A, batch).dense_values()
        ls = ls_bc(fresh_graph(csr), batch)
        assert np.allclose(la, ls)

    def test_materializes_per_level_sigmas(self, gb_backend, oracle):
        """The matrix-API BC retains one sigma vector per BFS level: its
        allocation count grows with the depth (limitation #2)."""
        csr, _ = oracle
        A = pattern_matrix(gb_backend, csr)
        start = gb_backend.machine.allocator.total_allocations
        la_bc(gb_backend, A, [0])
        la_allocs = gb_backend.machine.allocator.total_allocations - start

        g = fresh_graph(csr)
        start_allocs = g.runtime.machine.allocator.total_allocations
        ls_bc(g, [0])
        ls_allocs = (g.runtime.machine.allocator.total_allocations
                     - start_allocs)
        assert la_allocs > ls_allocs

    def test_matrix_api_slower(self, gb_backend, oracle):
        csr, _ = oracle
        A = pattern_matrix(gb_backend, csr)
        gb_backend.machine.reset_measurement()
        la_bc(gb_backend, A, [0, 1])
        t_matrix = gb_backend.machine.simulated_seconds()

        g = fresh_graph(csr)
        g.runtime.machine.reset_measurement()
        ls_bc(g, [0, 1])
        t_graph = g.runtime.machine.simulated_seconds()
        assert t_graph < t_matrix
