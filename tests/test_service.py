"""The supervised worker pool: crash/hang recovery, breakers, identity.

The expensive guarantees are exercised on a tiny grid (one graph, one or
two apps) so every drill spawns real processes but stays seconds-cheap:

* kill-and-requeue — a worker SIGKILLed mid-cell is reaped and respawned,
  the cell requeued, and the finished grid is byte-identical to a clean
  sequential run;
* poison quarantine — a cell that kills its worker on *every* attempt
  ends as ``ERR``/``PoisonedCell`` after ``max_crashes`` tries without
  stalling the rest of the pool;
* hang detection — a worker stuck forever blows the per-cell deadline,
  is killed, and the cell completes on requeue;
* circuit breaking — a forced-open breaker reroutes cells to a
  capability-compatible fallback with a visible ``degraded`` flag.
"""

import json

import pytest

from repro import errors, faults
from repro.core import checkpoint, experiments
from repro.core.experiments import ERR, OK, CellResult
from repro.core.runner import main as runner_main
from repro.engine.registry import compatible_fallbacks
from repro.service import CellTask, ChaosPlan, CircuitBreaker, \
    ServiceConfig, Supervisor, grid_tasks
from repro.service.breaker import BreakerBoard, CLOSED, HALF_OPEN, OPEN
from repro.service.chaos import ChaosSpec
from repro.service.chaos import parse_spec as parse_chaos_spec
from repro.service.heartbeat import WorkerHealth
from repro.service.worker import json_clean_row

GRAPH = "road-USA-W"

#: A ServiceConfig tuned for tests: fast beats, short hang deadline.
FAST = ServiceConfig(heartbeat_interval=0.05, heartbeat_timeout=10.0,
                     cell_deadline=8.0)


def snapshot_bytes() -> str:
    """The memo serialized the way ``save_results`` writes cells.json."""
    rows = [experiments.cell_to_row(v)
            for v in experiments.all_results().values()]
    rows.sort(key=lambda r: (r["system"], r["app"], r["graph"]))
    return json.dumps(rows, sort_keys=True, indent=1,
                      default=experiments._jsonify)


def sequential_baseline(apps=("bfs",)):
    """Run the tiny grid in-process and return its snapshot bytes."""
    for app in apps:
        for system in ("SS", "GB", "LS"):
            experiments.run_cell(system, app, GRAPH)
    baseline = snapshot_bytes()
    experiments.clear_cache()
    return baseline


class TestGridTasks:
    def test_canonical_app_major_order(self):
        tasks = grid_tasks(["g1", "g2"], ["bfs", "cc"])
        assert all(isinstance(t, CellTask) for t in tasks)
        keys = [t.key for t in tasks]
        assert keys[0] == ("SS", "bfs", "g1")
        assert keys[1] == ("SS", "bfs", "g2")
        assert keys[2] == ("GB", "bfs", "g1")
        assert keys[6] == ("SS", "cc", "g1")
        assert [t.index for t in tasks] == list(range(12))
        assert not any(t.sweep for t in tasks)

    def test_sweep_corner_marks_gb_ls_only(self):
        tasks = grid_tasks(["g1", "g2"], ["bfs"],
                           sweep_apps=["bfs"], sweep_graphs=["g2"])
        swept = {t.key for t in tasks if t.sweep}
        assert swept == {("GB", "bfs", "g2"), ("LS", "bfs", "g2")}

    def test_sweep_cells_outside_grid_are_appended(self):
        tasks = grid_tasks(["g1"], ["bfs"],
                           sweep_apps=["pr"], sweep_graphs=["g1"])
        assert [t.key for t in tasks[-2:]] == [("GB", "pr", "g1"),
                                               ("LS", "pr", "g1")]
        assert all(t.sweep for t in tasks[-2:])
        assert len({t.key for t in tasks}) == len(tasks)


class TestOrderedCommitter:
    def _cell(self, app):
        return CellResult(system="GB", app=app, graph=GRAPH, status=OK,
                          seconds=1.0, mrss_gb=0.1, counters={},
                          answer=None)

    def test_commits_in_index_order(self, isolated_grid):
        committer = checkpoint.OrderedCommitter(3)
        committer.offer(2, self._cell("pr"))
        committer.offer(1, self._cell("cc"))
        assert committer.committed == 0 and committer.pending() == 2
        committer.offer(0, self._cell("bfs"))
        assert committer.committed == 3 and committer.done
        assert ("GB", "pr", GRAPH) in experiments.all_results()

    def test_skip_unblocks_later_indexes(self, isolated_grid):
        committer = checkpoint.OrderedCommitter(2)
        committer.offer(1, self._cell("bfs"))
        assert not committer.done
        committer.skip(0)
        assert committer.done and committer.committed == 1

    def test_journal_receives_cells_in_order(self, isolated_grid,
                                             tmp_path):
        journal = checkpoint.CellJournal(str(tmp_path / "j.jsonl"))
        committer = checkpoint.OrderedCommitter(2, journal=journal)
        committer.offer(1, self._cell("cc"))
        committer.offer(0, self._cell("bfs"))
        apps = [record["cell"]["app"] for record in
                (json.loads(line) for line in
                 (tmp_path / "j.jsonl").read_text().splitlines())]
        assert apps == ["bfs", "cc"]


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("GB", threshold=3, cooldown=2)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record(ok=False)
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("GB", threshold=2, cooldown=2)
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == CLOSED

    def test_half_open_probe_and_recovery(self):
        breaker = CircuitBreaker("GB", threshold=1, cooldown=3)
        breaker.record(ok=False)
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown ticks down on decisions
        assert not breaker.allow()
        assert breaker.allow()      # the half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record(ok=True)
        assert breaker.state == CLOSED and breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("GB", threshold=1, cooldown=2)
        breaker.record(ok=False)
        assert not breaker.allow()
        assert breaker.allow()      # the probe
        breaker.record(ok=False)
        assert breaker.state == OPEN and not breaker.allow()

    def test_zero_threshold_never_trips(self):
        breaker = CircuitBreaker("GB", threshold=0, cooldown=1)
        for _ in range(50):
            breaker.record(ok=False)
        assert breaker.state == CLOSED and breaker.allow()

    def test_forced_open_stays_open(self):
        breaker = CircuitBreaker("GB", threshold=5, cooldown=1,
                                 forced_open=True)
        for _ in range(10):
            assert not breaker.allow()

    def test_board_routes_to_compatible_closed_fallback(self):
        board = BreakerBoard(("SS", "GB", "LS"), threshold=1, cooldown=99,
                             forced_open=("GB",))
        assert board.route("SS") is None
        fallback = board.route("GB")
        assert fallback in compatible_fallbacks("GB")
        assert board.open_codes() == ("GB",)

    def test_board_runs_in_place_without_healthy_fallback(self):
        board = BreakerBoard(("SS", "GB", "LS"), threshold=1, cooldown=99,
                             forced_open=("SS", "GB", "LS"))
        assert board.route("GB") is None


class TestChaosPlan:
    def test_parse_spec_with_attempt(self):
        spec = parse_chaos_spec("GB:bfs:road-USA-W:attempt=2", "kill")
        assert spec == ChaosSpec("GB", "bfs", "road-USA-W", attempt=2,
                                 action="kill")

    def test_parse_rejects_garbage(self):
        with pytest.raises(errors.InvalidValue):
            parse_chaos_spec("GB:bfs", "kill")
        with pytest.raises(errors.InvalidValue):
            parse_chaos_spec("GB:bfs:g:retries=2", "kill")
        with pytest.raises(errors.InvalidValue):
            ChaosSpec("GB", "bfs", "g", action="explode")

    def test_attempt_scoping(self):
        plan = ChaosPlan((parse_chaos_spec("GB:bfs:g:attempt=1", "kill"),
                          parse_chaos_spec("LS:cc:g", "hang")))
        assert plan.action_for("GB", "bfs", "g", 1) == "kill"
        assert plan.action_for("GB", "bfs", "g", 2) is None
        assert plan.action_for("LS", "cc", "g", 7) == "hang"
        assert plan.action_for("SS", "bfs", "g", 1) is None

    def test_random_channel_kills_first_attempt_only(self):
        plan = ChaosPlan(kill_rate=1.0, seed=3)
        assert plan.action_for("GB", "bfs", "g", 1) == "kill"
        assert plan.action_for("GB", "bfs", "g", 2) is None

    def test_random_channel_is_order_independent(self):
        a = ChaosPlan(kill_rate=0.5, seed=11)
        b = ChaosPlan(kill_rate=0.5, seed=11)
        cells = [("GB", app, g) for app in ("bfs", "cc", "pr")
                 for g in ("g1", "g2")]
        forward = [a.action_for(s, ap, g, 1) for s, ap, g in cells]
        backward = [b.action_for(s, ap, g, 1)
                    for s, ap, g in reversed(cells)]
        assert forward == list(reversed(backward))

    def test_from_env_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_KILL_CELLS", "GB:bfs")
        with pytest.raises(errors.InvalidValue):
            ChaosPlan.from_env()
        monkeypatch.setenv("REPRO_CHAOS_KILL_CELLS", "")
        monkeypatch.setenv("REPRO_CHAOS_KILL_RATE", "1.5")
        with pytest.raises(errors.InvalidValue):
            ChaosPlan.from_env()


class TestServiceConfig:
    def test_env_knobs_are_validated(self, monkeypatch):
        for name, bad in [("REPRO_SERVICE_HEARTBEAT", "zero"),
                          ("REPRO_CELL_DEADLINE", "-1"),
                          ("REPRO_CELL_MAX_CRASHES", "0"),
                          ("REPRO_BREAKER_THRESHOLD", "-2"),
                          ("REPRO_BREAKER_FORCE_OPEN", "XX")]:
            monkeypatch.setenv(name, bad)
            with pytest.raises(errors.InvalidValue):
                ServiceConfig.from_env()
            monkeypatch.delenv(name)

    def test_env_knobs_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "12.5")
        monkeypatch.setenv("REPRO_CELL_MAX_CRASHES", "5")
        monkeypatch.setenv("REPRO_BREAKER_FORCE_OPEN", "GB,LS")
        config = ServiceConfig.from_env()
        assert config.cell_deadline == 12.5
        assert config.max_crashes == 5
        assert config.breaker_force_open == ("GB", "LS")

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(errors.InvalidValue):
            ServiceConfig(heartbeat_interval=5.0, heartbeat_timeout=1.0)


class TestWorkerHealth:
    def test_deadline_applies_only_in_flight(self):
        health = WorkerHealth(0)
        assert not health.over_deadline(0.0, now=1e9)
        health.started(7)
        assert health.over_deadline(0.0, now=health.task_started + 1)
        health.finished()
        assert not health.over_deadline(0.0, now=1e9)

    def test_staleness(self):
        health = WorkerHealth(0)
        assert health.stale(5.0, now=health.last_beat + 6)
        health.beat()
        assert not health.stale(5.0, now=health.last_beat + 4)


class TestRetryKnob:
    def test_env_overrides_attempts(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "7")
        assert faults.retry_policy_from_env().max_attempts == 7

    def test_unset_keeps_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_RETRIES", raising=False)
        default = faults.RetryPolicy(max_attempts=4)
        assert faults.retry_policy_from_env(default=default) is default

    def test_malformed_value_fails_at_install(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "two")
        with pytest.raises(errors.InvalidValue):
            faults.install_from_env()
        monkeypatch.setenv("REPRO_CELL_RETRIES", "0")
        with pytest.raises(errors.InvalidValue):
            faults.install_from_env()

    def test_run_cell_honors_the_knob(self, isolated_grid, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "1")
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  transient=True)])
        with faults.injected(plan):
            result = experiments.run_cell("GB", "bfs", GRAPH,
                                          use_cache=False)
        assert result.status == ERR  # one attempt: the transient sticks
        monkeypatch.setenv("REPRO_CELL_RETRIES", "3")
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                                  nth=1, transient=True)])
        with faults.injected(plan):
            result = experiments.run_cell("GB", "bfs", GRAPH,
                                          use_cache=False)
        assert result.status == OK and result.attempts == 2


class TestJsonCleanRow:
    def test_row_survives_json_round_trip(self, isolated_grid):
        result = experiments.run_cell("GB", "bfs", GRAPH)
        row = json_clean_row(result)
        assert row == json.loads(json.dumps(row))
        rebuilt = experiments.cell_from_row(row)
        assert rebuilt.key == result.key
        assert rebuilt.seconds == result.seconds


@pytest.mark.slow
class TestSupervisorDrills:
    """Real multi-process drills; each spawns 2 spawn-context workers."""

    def test_kill_and_requeue_byte_identical(self, isolated_grid,
                                             monkeypatch, tmp_path):
        baseline = sequential_baseline(apps=("bfs",))

        monkeypatch.setenv("REPRO_CHAOS_KILL_CELLS",
                           f"GB:bfs:{GRAPH}:attempt=1")
        journal = checkpoint.attach(tmp_path / "par.jsonl", fresh=True)
        supervisor = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                                config=FAST, journal=journal)
        results = supervisor.run()
        experiments.set_journal(None)

        assert supervisor.stats["crashes"] >= 1
        assert supervisor.stats["requeued"] >= 1
        assert supervisor.stats["respawns"] >= 1
        assert all(r.status == OK for r in results.values())
        assert snapshot_bytes() == baseline

        # The journal committed in canonical task order despite the chaos.
        keys = [tuple(json.loads(line)["cell"][f]
                      for f in ("system", "app", "graph"))
                for line in (tmp_path / "par.jsonl").read_text()
                .splitlines()]
        assert keys == [t.key for t in grid_tasks([GRAPH], ["bfs"])]

    def test_poison_cell_is_quarantined(self, isolated_grid, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_KILL_CELLS", f"LS:bfs:{GRAPH}")
        config = ServiceConfig(heartbeat_interval=0.05, max_crashes=2)
        supervisor = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                                config=config)
        results = supervisor.run()

        poisoned = results[("LS", "bfs", GRAPH)]
        assert poisoned.status == ERR
        assert poisoned.error["type"] == "PoisonedCell"
        assert poisoned.attempts == 2
        assert supervisor.stats["quarantined"] == 1
        assert results[("SS", "bfs", GRAPH)].status == OK
        assert results[("GB", "bfs", GRAPH)].status == OK

    def test_hung_worker_blows_deadline_and_recovers(self, isolated_grid,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_HANG_CELLS",
                           f"SS:bfs:{GRAPH}:attempt=1")
        config = ServiceConfig(heartbeat_interval=0.05, cell_deadline=2.0)
        supervisor = Supervisor(grid_tasks([GRAPH], ["bfs"],
                                           systems=("SS",)), workers=1,
                                config=config)
        results = supervisor.run()
        assert results[("SS", "bfs", GRAPH)].status == OK
        assert supervisor.stats["crashes"] >= 1

    def test_prewarm_runs_before_cells_and_keeps_identity(
            self, isolated_grid):
        baseline = sequential_baseline(apps=("bfs",))

        supervisor = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                                config=FAST)
        results = supervisor.run()

        # Every worker prewarms each graph that still has pending cells
        # exactly once before accepting its first cell, so a worker's
        # first cell deadline never includes dataset generation time.
        assert supervisor.stats["prewarmed"] >= 1
        assert supervisor.stats["prewarmed"] <= 2  # workers x graphs
        assert "prewarmed" in supervisor.describe()
        assert all(r.status == OK for r in results.values())
        assert snapshot_bytes() == baseline

    def test_forced_open_breaker_reroutes_with_degraded_flag(
            self, isolated_grid):
        config = ServiceConfig(heartbeat_interval=0.05,
                               breaker_force_open=("GB",))
        supervisor = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                                config=config)
        results = supervisor.run()

        rerouted = results[("GB", "bfs", GRAPH)]
        assert rerouted.system == "GB"  # grid stays keyed as asked
        assert rerouted.degraded is not None
        assert rerouted.degraded["via"] in compatible_fallbacks("GB")
        assert "circuit breaker" in rerouted.degraded["reason"]
        assert "~" in rerouted.display()  # visible in Table II cells
        assert supervisor.stats["rerouted"] >= 1
        assert results[("SS", "bfs", GRAPH)].degraded is None
        # The flag survives the row round trip (journal / cells.json).
        row = experiments.cell_to_row(rerouted)
        assert row["degraded"]["via"] == rerouted.degraded["via"]
        assert "degraded" not in experiments.cell_to_row(
            results[("SS", "bfs", GRAPH)])


@pytest.mark.slow
class TestRunnerServiceCLI:
    def test_workers_flag_matches_sequential(self, isolated_grid,
                                             capsys):
        assert runner_main(["table2", "--graphs", GRAPH, "--apps", "bfs",
                            "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        experiments.clear_cache()
        assert runner_main(["table2", "--graphs", GRAPH, "--apps",
                            "bfs"]) == 0
        assert capsys.readouterr().out == parallel_out

    def test_rejects_nonpositive_workers(self, capsys):
        assert runner_main(["table2", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestRunnerStatusSummary:
    def test_summary_printed_to_stderr(self, isolated_grid, capsys):
        assert runner_main(["table2", "--graphs", GRAPH,
                            "--apps", "bfs"]) == 0
        err = capsys.readouterr().err
        assert "(cells: ok=3 TO=0 OOM=0 ERR=0 CANCELLED=0)" in err

    def test_strict_fails_on_err_cells(self, isolated_grid, monkeypatch,
                                       capsys):
        monkeypatch.setenv("REPRO_FAULTS", "kernel:fault:nth=1:times=0")
        assert runner_main(["table2", "--graphs", GRAPH, "--apps", "bfs",
                            "--strict"]) == 1
        err = capsys.readouterr().err
        assert "--strict" in err and "ERR" in err

    def test_default_still_exits_zero_on_err_cells(self, isolated_grid,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kernel:fault:nth=1:times=0")
        assert runner_main(["table2", "--graphs", GRAPH,
                            "--apps", "bfs"]) == 0


class TestAllTargetIncludesValidate:
    def test_all_renders_every_target(self, monkeypatch, capsys):
        from repro.core import runner as runner_module

        seen = []
        monkeypatch.setattr(
            runner_module, "_render",
            lambda target, graphs, apps: (seen.append(target)
                                          or f"<{target}>"))
        assert runner_main(["all"]) == 0
        assert seen == ["table1", "table2", "table3", "table4", "table5",
                        "figure2", "figure3", "validate"]
        assert "<validate>" in capsys.readouterr().out
