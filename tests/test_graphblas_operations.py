"""GraphBLAS operation semantics: masks, accumulators, descriptors."""

import numpy as np
import pytest

import repro.graphblas as gb
from repro.errors import DimensionMismatch, InvalidValue
from repro.graphblas.descriptor import (
    Descriptor,
    GrB_ALL,
    REPLACE_COMP,
    REPLACE_STRUCT,
)
from repro.graphblas.ops import LOR_LAND, MIN_PLUS, PLUS_PAIR, PLUS_TIMES, binary, monoid


def vec(backend, gtype, size, pairs=()):
    v = gb.Vector(backend, gtype, size)
    for i, x in pairs:
        v.set_element(i, x)
    return v


def chain_matrix(backend):
    # 0 -> 1 -> 2 -> 3 with weights 1, 2, 3.
    return gb.Matrix.from_coo(backend, gb.FP64, 4, 4, [0, 1, 2], [1, 2, 3],
                              [1.0, 2.0, 3.0])


class TestMxvVxm:
    def test_mxv_dense_pull(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(i, float(i + 1)) for i in range(4)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.mxv(w, A, u, PLUS_TIMES)
        # w[0] = A[0,1]*u[1] = 2; w[1] = 2*3 = 6; w[2] = 3*4 = 12.
        assert w.extract_element(0) == 2.0
        assert w.extract_element(2) == 12.0
        assert w.nvals == 3  # row 3 empty -> no entry

    def test_mxv_sparse_push(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(1, 5.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.mxv(w, A, u, PLUS_TIMES)
        assert w.nvals == 1
        assert w.extract_element(0) == 1.0 * 5.0

    def test_vxm_pushes_forward(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(1, 5.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.vxm(w, u, A, PLUS_TIMES)
        assert w.nvals == 1
        assert w.extract_element(2) == 10.0

    def test_min_plus_relaxation(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(0, 0.0), (1, 100.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.vxm(w, u, A, MIN_PLUS)
        assert w.extract_element(1) == 1.0  # 0 + w(0,1)
        assert w.extract_element(2) == 102.0

    def test_transpose_descriptor(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(1, 1.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.mxv(w, A, u, PLUS_TIMES, desc=Descriptor(transpose_a=True))
        # A' x u: w[2] = A[1,2] = 2.
        assert w.extract_element(2) == 2.0

    def test_dimension_checks(self, backend):
        A = chain_matrix(backend)
        with pytest.raises(DimensionMismatch):
            gb.mxv(gb.Vector(backend, gb.FP64, 4), A,
                   gb.Vector(backend, gb.FP64, 3), PLUS_TIMES)
        with pytest.raises(DimensionMismatch):
            gb.vxm(gb.Vector(backend, gb.FP64, 3),
                   gb.Vector(backend, gb.FP64, 4), A, PLUS_TIMES)

    def test_accumulator_merges(self, backend):
        A = chain_matrix(backend)
        u = vec(backend, gb.FP64, 4, [(0, 1.0)])
        w = vec(backend, gb.FP64, 4, [(1, 10.0), (3, 7.0)])
        gb.vxm(w, u, A, PLUS_TIMES, accum=binary("plus"))
        assert w.extract_element(1) == 11.0  # accum(10, 1*1)
        assert w.extract_element(3) == 7.0   # untouched entry kept


class TestMasks:
    def test_value_mask(self, backend):
        u = vec(backend, gb.INT32, 4, [(i, i) for i in range(4)])
        mask = vec(backend, gb.INT32, 4, [(1, 1), (2, 0), (3, 5)])
        w = gb.Vector(backend, gb.INT32, 4)
        gb.assign(w, 9, mask=mask)
        # mask true where present AND nonzero: 1 and 3.
        assert w.nvals == 2
        assert w.extract_element(1) == 9 and w.extract_element(3) == 9

    def test_structural_mask_ignores_values(self, backend):
        mask = vec(backend, gb.INT32, 4, [(1, 0)])
        w = gb.Vector(backend, gb.INT32, 4)
        gb.assign(w, 9, mask=mask, desc=Descriptor(mask_structure=True))
        assert w.extract_element(1) == 9

    def test_complement_mask(self, backend):
        mask = vec(backend, gb.BOOL, 3, [(0, True)])
        w = gb.Vector(backend, gb.INT32, 3)
        gb.assign(w, 5, mask=mask, desc=Descriptor(mask_comp=True))
        assert w.nvals == 2
        assert sorted(w.indices().tolist()) == [1, 2]

    def test_replace_clears_outside_mask(self, backend):
        w = vec(backend, gb.INT32, 4, [(0, 1), (1, 1), (2, 1)])
        mask = vec(backend, gb.BOOL, 4, [(1, True)])
        gb.assign(w, 9, mask=mask, desc=Descriptor(replace=True))
        assert w.nvals == 1
        assert w.extract_element(1) == 9

    def test_no_replace_keeps_outside_mask(self, backend):
        w = vec(backend, gb.INT32, 4, [(0, 1)])
        mask = vec(backend, gb.BOOL, 4, [(1, True)])
        gb.assign(w, 9, mask=mask)
        assert w.extract_element(0) == 1

    def test_algorithm2_frontier_update(self, backend):
        # The bfs idiom: f<!dist,replace> = f vxm A.
        A = gb.Matrix.from_coo(backend, gb.BOOL, 3, 3, [0, 1], [1, 2],
                               [True, True])
        dist = vec(backend, gb.INT32, 3, [(i, 0) for i in range(3)])
        dist.set_element(0, 1)
        f = vec(backend, gb.BOOL, 3, [(0, True)])
        gb.vxm(f, f, A, LOR_LAND, mask=dist, desc=REPLACE_COMP)
        assert f.indices().tolist() == [1]


class TestElementWise:
    def test_ewise_add_union(self, backend):
        u = vec(backend, gb.FP64, 4, [(0, 1.0), (1, 2.0)])
        v = vec(backend, gb.FP64, 4, [(1, 10.0), (2, 20.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.eWiseAdd(w, u, v, monoid("plus"))
        assert w.nvals == 3
        assert w.extract_element(0) == 1.0
        assert w.extract_element(1) == 12.0
        assert w.extract_element(2) == 20.0

    def test_ewise_mult_intersection(self, backend):
        u = vec(backend, gb.FP64, 4, [(0, 2.0), (1, 3.0)])
        v = vec(backend, gb.FP64, 4, [(1, 10.0), (2, 20.0)])
        w = gb.Vector(backend, gb.FP64, 4)
        gb.eWiseMult(w, u, v, binary("times"))
        assert w.nvals == 1
        assert w.extract_element(1) == 30.0

    def test_ewise_min_alias_safe(self, backend):
        w = vec(backend, gb.INT64, 3, [(0, 5), (1, 9)])
        v = vec(backend, gb.INT64, 3, [(0, 7), (1, 2)])
        gb.eWiseAdd(w, w, v, monoid("min"))
        assert w.extract_element(0) == 5 and w.extract_element(1) == 2

    def test_apply_with_bound_op(self, backend):
        u = vec(backend, gb.FP64, 3, [(0, 2.0), (2, 4.0)])
        w = gb.Vector(backend, gb.FP64, 3)
        gb.apply(w, binary("times").bind_first(10), u)
        assert w.extract_element(2) == 40.0
        assert w.nvals == 2


class TestAssignExtract:
    def test_assign_scalar_all(self, backend):
        w = gb.Vector(backend, gb.INT32, 5)
        gb.assign(w, 3)
        assert w.nvals == 5

    def test_assign_scalar_indices(self, backend):
        w = gb.Vector(backend, gb.INT32, 5)
        gb.assign(w, 3, indices=[0, 4])
        assert sorted(w.indices().tolist()) == [0, 4]

    def test_assign_vector_with_min_accum_duplicates(self, backend):
        # FastSV's hooking: duplicates combine with min.
        w = vec(backend, gb.INT64, 4, [(i, 10) for i in range(4)])
        src = vec(backend, gb.INT64, 3, [(0, 5), (1, 2), (2, 9)])
        gb.assign(w, src, indices=[1, 1, 3], accum=binary("min"))
        assert w.extract_element(1) == 2
        assert w.extract_element(3) == 9
        assert w.extract_element(0) == 10

    def test_extract_gather_with_duplicates(self, backend):
        u = vec(backend, gb.INT64, 4, [(i, i * 10) for i in range(4)])
        w = gb.Vector(backend, gb.INT64, 3)
        gb.extract(w, u, [2, 2, 0])
        assert [w.extract_element(i) for i in range(3)] == [20, 20, 0]

    def test_extract_skips_implicit(self, backend):
        u = vec(backend, gb.INT64, 4, [(1, 5)])
        w = gb.Vector(backend, gb.INT64, 2)
        gb.extract(w, u, [0, 1])
        assert w.nvals == 1

    def test_extract_all(self, backend):
        u = vec(backend, gb.INT64, 3, [(0, 1), (2, 3)])
        w = gb.Vector(backend, gb.INT64, 3)
        gb.extract(w, u, GrB_ALL)
        assert w.nvals == 2


class TestSelectReduce:
    def test_select_vector_value(self, backend):
        u = vec(backend, gb.INT64, 5, [(i, i) for i in range(5)])
        w = gb.Vector(backend, gb.INT64, 5)
        gb.select(w, "ge", u, 3)
        assert sorted(w.indices().tolist()) == [3, 4]

    def test_select_matrix_tril(self, backend):
        A = gb.Matrix.from_coo(backend, gb.INT64, 3, 3,
                               [0, 1, 2, 2], [1, 0, 2, 0], [1, 2, 3, 4])
        L = gb.Matrix(backend, gb.INT64, 3, 3)
        gb.select(L, "tril", A, -1)
        assert L.nvals == 2  # (1,0) and (2,0)

    def test_select_matrix_value(self, backend):
        A = gb.Matrix.from_coo(backend, gb.INT64, 3, 3,
                               [0, 1], [1, 2], [1, 5])
        C = gb.Matrix(backend, gb.INT64, 3, 3)
        gb.select(C, "ge", A, 5)
        assert C.nvals == 1

    def test_select_unknown_op(self, backend):
        u = vec(backend, gb.INT64, 3)
        with pytest.raises(InvalidValue):
            gb.select(gb.Vector(backend, gb.INT64, 3), "weird", u, 0)

    def test_reduce_vector(self, backend):
        u = vec(backend, gb.INT64, 5, [(0, 3), (4, 9)])
        assert gb.reduce_to_scalar(u, monoid("plus")) == 12
        assert gb.reduce_to_scalar(u, monoid("min")) == 3

    def test_reduce_matrix_to_vector_rows_and_cols(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 3, 3,
                               [0, 0, 2], [1, 2, 0], [1.0, 2.0, 5.0])
        w = gb.Vector(backend, gb.FP64, 3)
        gb.reduce_to_vector(w, A, monoid("plus"))
        assert w.extract_element(0) == 3.0
        assert w.nvals == 2
        gb.reduce_to_vector(w, A, monoid("plus"),
                            desc=Descriptor(transpose_a=True))
        assert w.extract_element(0) == 5.0  # column 0 sum


class TestMxm:
    def test_plus_times(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0, 1], [1, 0],
                               [2.0, 3.0])
        C = gb.Matrix(backend, gb.FP64, 2, 2)
        gb.mxm(C, A, A, PLUS_TIMES)
        assert C.extract_element(0, 0) == 6.0
        assert C.extract_element(1, 1) == 6.0

    def test_masked_dot_sandia_form(self, backend):
        # Triangle 0-1-2 as lower/upper triangular product.
        sym = gb.Matrix.from_coo(backend, gb.BOOL, 3, 3,
                                 [0, 1, 0, 2, 1, 2], [1, 0, 2, 0, 2, 1],
                                 np.ones(6, bool))
        L = gb.Matrix(backend, gb.BOOL, 3, 3)
        gb.select(L, "tril", sym, -1)
        U = gb.Matrix(backend, gb.BOOL, 3, 3)
        gb.select(U, "triu", sym, 1)
        C = gb.Matrix(backend, gb.INT64, 3, 3)
        gb.mxm(C, L, U, PLUS_PAIR, mask=L,
               desc=Descriptor(mask_structure=True, replace=True,
                               transpose_b=True), method="dot")
        from repro.graphblas.ops import monoid as mon
        total = gb.reduce_to_scalar(C, mon("plus"))
        assert total == 1

    def test_value_matrix_mask_rejected(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 2, 2, [0], [1], [1.0])
        with pytest.raises(InvalidValue):
            gb.mxm(gb.Matrix(backend, gb.FP64, 2, 2), A, A, PLUS_TIMES,
                   mask=A)

    def test_diag_fast_path_only_galoisblas(self, ss_backend, gb_backend):
        for bk in (ss_backend, gb_backend):
            D = gb.Matrix.from_coo(bk, gb.FP64, 3, 3, [0, 1, 2], [0, 1, 2],
                                   [2.0, 3.0, 4.0])
            B = gb.Matrix.from_coo(bk, gb.FP64, 3, 3, [0, 1], [1, 2],
                                   [1.0, 1.0])
            C = gb.Matrix(bk, gb.FP64, 3, 3)
            gb.mxm(C, D, B, PLUS_TIMES)
            assert C.extract_element(0, 1) == 2.0
            assert C.extract_element(1, 2) == 3.0
