"""Tests for the batched merge-join engine (``repro.sparse.join``).

Three layers:

* Property tests — :func:`repro.sparse.join.row_pair_join` against the
  per-pair reference :func:`repro.sparse.join.naive_row_pair_join` over
  randomized CSR shapes, dtypes, keep-masks, and both forced plans.  The
  engine's contract is *bit-identical* output in identical order, so
  every comparison below is exact (``array_equal``), never approximate.
* Regression tests — the hoisted value-cast fix (the seed
  ``spgemm_masked_dot`` re-materialized the full B value array once per
  row) and an AST lint pinning the per-row loops out of the rewired
  kernels.
* Equivalence of the loop-free call sites (``coo_group_reduce`` both
  plans, ``dedup_bounded`` both branches, ``join_sorted``).
"""

from __future__ import annotations

import ast
import pathlib

import numpy as np
import pytest

from repro.errors import DimensionMismatch, InvalidValue
from repro.sparse.csr import build_csr, expand_ranges
from repro.sparse.join import (
    CAST_COUNTS,
    dedup_bounded,
    join_sorted,
    masked_row_join,
    naive_row_pair_join,
    row_pair_join,
)
from repro.sparse.segreduce import coo_group_reduce
from repro.sparse.semiring_ops import BINARY_FNS, MONOID_FNS
from repro.sparse.spgemm import spgemm_masked_dot

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def random_csr(rng, nrows, ncols, density, valued=True, dtype=np.float64):
    nnz = int(density * nrows * ncols)
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    if valued:
        if np.dtype(dtype).kind == "f":
            values = rng.standard_normal(nnz).astype(dtype)
        else:
            values = rng.integers(1, 100, nnz).astype(dtype)
    else:
        values = None
    return build_csr(nrows, ncols, rows, cols, values)


def assert_results_equal(got, want):
    assert np.array_equal(got.hits, want.hits)
    assert np.array_equal(got.a_pos, want.a_pos)
    assert np.array_equal(got.b_pos, want.b_pos)
    assert np.array_equal(got.out_seg, want.out_seg)
    assert np.array_equal(got.cand, want.cand)
    assert got.work == want.work


class TestRowPairJoinProperties:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("plan", [None, "merge", "densify"])
    def test_matches_naive_reference(self, seed, plan):
        rng = np.random.default_rng(seed)
        nrows = int(rng.integers(1, 40))
        ncols = int(rng.integers(1, 40))
        A = random_csr(rng, nrows, ncols, float(rng.uniform(0, 0.4)))
        Bt = random_csr(rng, int(rng.integers(1, 40)), ncols,
                        float(rng.uniform(0, 0.4)))
        n_pairs = int(rng.integers(0, 60))
        a_rows = rng.integers(0, nrows, n_pairs)
        b_rows = rng.integers(0, Bt.nrows, n_pairs)
        got = row_pair_join(A, a_rows, Bt, b_rows, plan=plan)
        want = naive_row_pair_join(A, a_rows, Bt, b_rows)
        assert_results_equal(got, want)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_keep_masks(self, seed):
        rng = np.random.default_rng(100 + seed)
        A = random_csr(rng, 25, 30, 0.3)
        Bt = random_csr(rng, 20, 30, 0.3)
        n_pairs = 40
        a_rows = rng.integers(0, A.nrows, n_pairs)
        b_rows = rng.integers(0, Bt.nrows, n_pairs)
        a_keep = rng.random(A.nvals) < 0.7
        b_keep = rng.random(Bt.nvals) < 0.7
        got = row_pair_join(A, a_rows, Bt, b_rows,
                            a_keep=a_keep, b_keep=b_keep)
        want = naive_row_pair_join(A, a_rows, Bt, b_rows,
                                   a_keep=a_keep, b_keep=b_keep)
        assert_results_equal(got, want)

    def test_small_batches_match_single_batch(self):
        # Batch boundaries can never change results.
        rng = np.random.default_rng(7)
        A = random_csr(rng, 30, 30, 0.25)
        Bt = random_csr(rng, 30, 30, 0.25)
        a_rows = rng.integers(0, 30, 50)
        b_rows = rng.integers(0, 30, 50)
        big = row_pair_join(A, a_rows, Bt, b_rows, batch_flops=1 << 30)
        tiny = row_pair_join(A, a_rows, Bt, b_rows, batch_flops=1)
        assert_results_equal(tiny, big)

    @pytest.mark.parametrize("valued", [True, False])
    @pytest.mark.parametrize("dtype", [np.int64, np.float64])
    def test_value_dtypes_and_pattern(self, valued, dtype):
        rng = np.random.default_rng(11)
        A = random_csr(rng, 20, 25, 0.3, valued=valued, dtype=dtype)
        Bt = random_csr(rng, 20, 25, 0.3, valued=valued, dtype=dtype)
        a_rows = rng.integers(0, 20, 30)
        b_rows = rng.integers(0, 20, 30)
        got = row_pair_join(A, a_rows, Bt, b_rows)
        want = naive_row_pair_join(A, a_rows, Bt, b_rows)
        assert_results_equal(got, want)

    def test_empty_rows_charge_nothing(self):
        # A pair whose A row is empty is inactive: no candidates, no work,
        # exactly like the per-row loops' skip-empty short-circuit.
        A = build_csr(4, 5, np.array([1, 1]), np.array([0, 3]), None)
        Bt = build_csr(3, 5, np.array([0, 0, 2]), np.array([0, 3, 4]), None)
        a_rows = np.array([0, 1, 2, 3])
        b_rows = np.array([0, 0, 0, 2])
        res = row_pair_join(A, a_rows, Bt, b_rows)
        want = naive_row_pair_join(A, a_rows, Bt, b_rows)
        assert_results_equal(res, want)
        assert res.cand[0] == 0 and res.cand[2] == 0 and res.cand[3] == 0
        assert res.work == res.cand.sum()

    def test_no_pairs(self):
        rng = np.random.default_rng(0)
        A = random_csr(rng, 5, 5, 0.5)
        res = row_pair_join(A, np.empty(0, np.int64),
                            A, np.empty(0, np.int64))
        assert len(res.hits) == 0 and res.work == 0

    def test_output_order_is_pair_major(self):
        rng = np.random.default_rng(3)
        A = random_csr(rng, 15, 15, 0.4)
        a_rows = rng.integers(0, 15, 25)
        b_rows = rng.integers(0, 15, 25)
        res = row_pair_join(A, a_rows, A, b_rows)
        assert np.all(np.diff(res.out_seg) >= 0)
        # Within a pair, matches come in B-row (= column) order.
        for k in np.unique(res.out_seg):
            b_cols = A.indices[res.b_pos[res.out_seg == k]]
            assert np.all(np.diff(b_cols) > 0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        A = random_csr(rng, 4, 5, 0.5)
        B6 = random_csr(rng, 4, 6, 0.5)
        with pytest.raises(DimensionMismatch):
            row_pair_join(A, [0], B6, [0])
        with pytest.raises(DimensionMismatch):
            row_pair_join(A, [0, 1], A, [0])
        with pytest.raises(InvalidValue):
            row_pair_join(A, [0], A, [0], plan="quantum")
        with pytest.raises(DimensionMismatch):
            masked_row_join(A, A, B6)


class TestMaskedRowJoin:
    def test_tricount_shape(self):
        # A = Bt = mask = L: the triangle-counting instance.
        rng = np.random.default_rng(21)
        sym = random_csr(rng, 30, 30, 0.2, valued=False)
        L = sym.extract_tril(strict=True)
        res = masked_row_join(L, L, L)
        want = naive_row_pair_join(L, L.row_ids(),
                                   L, L.indices.astype(np.int64))
        assert_results_equal(res, want)


class TestJoinSorted:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_intersect1d(self, seed):
        rng = np.random.default_rng(seed)
        a = np.unique(rng.integers(0, 50, rng.integers(0, 30)))
        b = np.unique(rng.integers(0, 50, rng.integers(0, 30)))
        ia, ib = join_sorted(a, b)
        common = np.intersect1d(a, b)
        assert np.array_equal(a[ia], common)
        assert np.array_equal(b[ib], common)

    def test_empty(self):
        ia, ib = join_sorted(np.empty(0, np.int64), np.array([1, 2]))
        assert len(ia) == 0 and len(ib) == 0


class TestDedupBounded:
    @pytest.mark.parametrize("n,bound", [
        (0, 100), (5, 100), (10, 100),       # tiny: np.unique branch
        (5000, 100), (5000, 1 << 18),        # large: flag-array branch
    ])
    def test_matches_unique(self, n, bound):
        rng = np.random.default_rng(n + bound)
        ids = rng.integers(0, bound, n)
        got = dedup_bounded(ids, bound)
        want = np.unique(ids).astype(np.int64, copy=False)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    def test_flag_branch_is_exercised(self):
        # len > max(16, bound >> 7) must take the O(n) path; verify via
        # output identity at a size where both branches are plausible.
        ids = np.array([9, 3, 3, 7, 0, 9, 1, 4, 4, 4, 8, 2, 6, 5, 0, 1, 2],
                       dtype=np.int64)
        assert np.array_equal(dedup_bounded(ids, 10), np.unique(ids))


class TestCooGroupReduce:
    @pytest.mark.parametrize("seed", range(4))
    def test_both_plans_match_unique_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 2000))
        ncols = int(rng.integers(1, 50))
        rows = np.sort(rng.integers(0, 40, n)).astype(np.int64)
        cols = rng.integers(0, ncols, n).astype(np.int64)
        values = rng.standard_normal(n)
        r_rows, r_cols, vals = coo_group_reduce(rows, cols, values, ncols,
                                                "plus")
        keys = rows * ncols + cols
        uniq, inverse = np.unique(keys, return_inverse=True)
        ref = np.zeros(len(uniq))
        np.add.at(ref, inverse, values)
        assert np.array_equal(r_rows, uniq // ncols)
        assert np.array_equal(r_cols, uniq % ncols)
        assert np.array_equal(vals, ref) or np.allclose(vals, ref)

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        r, c, v = coo_group_reduce(empty, empty, np.empty(0), 4, "plus")
        assert len(r) == 0 and len(c) == 0 and len(v) == 0


class TestHoistedCastRegression:
    def test_masked_dot_casts_values_once_per_operand(self):
        # The seed bug: B's full value array was re-cast inside the
        # per-row loop — O(nrows * nnz).  The rewired kernel must cast
        # each operand's values at most once per call.
        rng = np.random.default_rng(5)
        A = random_csr(rng, 40, 40, 0.2, dtype=np.float32)
        L = A.extract_tril(strict=True)
        CAST_COUNTS["calls"] = 0
        spgemm_masked_dot(L, L, L, MONOID_FNS["plus"], BINARY_FNS["times"],
                          out_dtype=np.float64)
        assert CAST_COUNTS["calls"] <= 2

    def test_masked_dot_matches_dense_oracle(self):
        rng = np.random.default_rng(6)
        A = random_csr(rng, 25, 25, 0.3)
        L = A.extract_tril(strict=True)
        C, work = spgemm_masked_dot(A, A, L, MONOID_FNS["plus"],
                                    BINARY_FNS["times"])
        dense_a = np.zeros((A.nrows, A.ncols))
        dense_a[A.row_ids(), A.indices] = A.values
        dense = dense_a @ dense_a.T
        for i in range(L.nrows):
            for p in range(int(C.indptr[i]), int(C.indptr[i + 1])):
                j = int(C.indices[p])
                assert C.values[p] == pytest.approx(dense[i, j])


class TestNoPerRowLoops:
    """AST lint: the rewired kernels must stay loop-free."""

    def _functions(self, path):
        tree = ast.parse(path.read_text())
        return {node.name: node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef)}

    def test_tricount_has_no_for_loops(self):
        tree = ast.parse((SRC / "repro/sparse/tricount.py").read_text())
        loops = [n for n in ast.walk(tree) if isinstance(n, ast.For)]
        assert loops == [], "per-row loops crept back into tricount.py"

    def test_masked_dot_has_no_for_loops(self):
        fns = self._functions(SRC / "repro/sparse/spgemm.py")
        node = fns["spgemm_masked_dot"]
        loops = [n for n in ast.walk(node) if isinstance(n, ast.For)]
        assert loops == [], "per-row loop crept back into spgemm_masked_dot"


class TestExpandRanges:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_concatenated_aranges(self, seed):
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, 50, 20)
        stops = starts + rng.integers(0, 10, 20)
        got = expand_ranges(starts, stops)
        want = (np.concatenate([np.arange(s, e) for s, e in
                                zip(starts, stops)])
                if len(starts) else np.empty(0, np.int64))
        assert np.array_equal(got, want)
        assert got.dtype == np.int64

    def test_empty(self):
        out = expand_ranges(np.empty(0, np.int64), np.empty(0, np.int64))
        assert len(out) == 0 and out.dtype == np.int64
