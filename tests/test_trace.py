"""Time-breakdown analysis (repro.perf.trace)."""

import numpy as np
import pytest

from repro.core.systems import SystemInstance
from repro.graphs.datasets import get_dataset
from repro.perf.machine import Machine
from repro.perf.costmodel import Schedule
from repro.perf.memmodel import AccessStream, AccessPattern
from repro.perf.trace import explain


class TestExplain:
    def test_components_sum_to_total(self):
        m = Machine(time_scale=10.0)
        for _ in range(4):
            m.charge_loop(Schedule.STEAL, instructions=100000,
                          streams=[AccessStream(200 * 2**20, 5000,
                                                AccessPattern.RANDOM)],
                          n_items=1000, fixed_ns=5000.0)
        b = explain(m)
        parts = (b.compute_seconds + sum(b.memory_seconds.values())
                 + b.imbalance_seconds + b.fixed_seconds)
        assert parts == pytest.approx(b.total_seconds, rel=1e-6)
        assert b.total_seconds == pytest.approx(m.simulated_seconds(),
                                                rel=1e-6)

    def test_loop_counts(self):
        m = Machine()
        m.charge_loop(Schedule.STEAL, instructions=10)
        m.charge_loop(Schedule.SERIAL, instructions=10, barrier=False)
        b = explain(m)
        assert b.n_loops == 1 and b.n_serial_segments == 1

    def test_imbalance_captured(self):
        m = Machine()
        w = np.ones(100)
        w[0] = 10000.0
        m.charge_loop(Schedule.STEAL, instructions=10**6, weights=w,
                      n_items=100)
        b = explain(m)
        assert b.imbalance_seconds > 0

    def test_render_contains_bars(self):
        m = Machine()
        m.charge_loop(Schedule.STEAL, instructions=10**6)
        text = explain(m).render()
        assert "compute" in text and "fixed" in text and "%" in text

    def test_road_bfs_is_fixed_cost_dominated(self):
        """The diagnosis behind the road-network calibration: GB bfs time
        is dominated by per-call fixed costs, not work (§V-B bfs)."""
        inst = SystemInstance("GB", get_dataset("road-USA-W"))
        inst.run("bfs")
        b = explain(inst.machine)
        assert b.fixed_seconds > 0.5 * b.total_seconds

    def test_tc_is_memory_dominated(self):
        inst = SystemInstance("LS", get_dataset("rmat22"))
        inst.run("tc")
        b = explain(inst.machine)
        mem = sum(b.memory_seconds.values())
        assert mem > b.fixed_seconds
        assert mem > b.compute_seconds

    def test_thread_argument(self):
        m = Machine()
        m.charge_loop(Schedule.STEAL, instructions=10**6)
        assert explain(m, 1).total_seconds > explain(m, 56).total_seconds
