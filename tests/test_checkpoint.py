"""Checkpoint journal, atomic snapshots, and kill-and-resume recovery."""

import json
import os

import pytest

from repro import errors, faults
from repro.core import checkpoint, experiments
from repro.core.checkpoint import CellJournal
from repro.core.experiments import CellResult, run_cell

GRAPHS = ["road-USA-W", "rmat22"]
APPS = ["bfs"]
SYSTEMS = ("SS", "GB", "LS")


def run_grid():
    for app in APPS:
        for system in SYSTEMS:
            for graph in GRAPHS:
                run_cell(system, app, graph)


def fake_cell(system="SS", app="bfs", graph="rmat22", status="ok",
              seconds=1.25, **kwargs):
    return CellResult(system=system, app=app, graph=graph, status=status,
                      seconds=seconds if status == "ok" else None,
                      mrss_gb=1.0, counters={"instructions": 10.0},
                      answer=7, **kwargs)


class TestCellJournal:
    def test_append_load_roundtrip(self, tmp_path):
        journal = CellJournal(tmp_path / "j.jsonl")
        a = fake_cell(system="SS", thread_sweep={1: 2.0, 56: 0.5})
        b = fake_cell(system="GB", status="TO")
        journal.append(a)
        journal.append(b)
        loaded = journal.load()
        assert loaded[a.key] == a
        assert loaded[b.key] == b

    def test_last_record_per_key_wins(self, tmp_path):
        journal = CellJournal(tmp_path / "j.jsonl")
        journal.append(fake_cell(seconds=1.0))
        journal.append(fake_cell(seconds=2.0))
        (loaded,) = journal.load().values()
        assert loaded.seconds == 2.0

    def test_wall_seconds_not_persisted(self, tmp_path):
        journal = CellJournal(tmp_path / "j.jsonl")
        journal.append(fake_cell(wall_seconds=123.0))
        (loaded,) = journal.load().values()
        assert loaded.wall_seconds == 0.0

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        journal.append(fake_cell(system="SS"))
        journal.append(fake_cell(system="GB"))
        with open(path, "a") as f:
            f.write('{"schema": 1, "cell": {"system": "LS", "app"')
        assert len(journal.load()) == 2

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CellJournal(path)
        journal.append(fake_cell(system="SS"))
        with open(path, "a") as f:
            f.write("not json\n")
        journal.append(fake_cell(system="GB"))
        with pytest.raises(errors.InvalidValue, match="corrupt journal"):
            journal.load()

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"schema": 99, "cell": {}}) + "\n")
        with pytest.raises(errors.InvalidValue, match="schema 99"):
            CellJournal(path).load()

    def test_missing_file_loads_empty(self, tmp_path):
        assert CellJournal(tmp_path / "absent.jsonl").load() == {}

    def test_attach_fresh_discards_stale_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CellJournal(path).append(fake_cell())
        checkpoint.attach(path, fresh=True)
        try:
            assert not path.exists()
        finally:
            experiments.set_journal(None)


@pytest.mark.usefixtures("isolated_grid")
class TestSnapshotPersistence:
    def test_save_is_atomic_and_versioned(self, tmp_path):
        experiments.seed_results([fake_cell()])
        path = tmp_path / "cells.json"
        experiments.save_results(str(path))
        assert not (tmp_path / "cells.json.tmp").exists()
        payload = json.loads(path.read_text())
        assert payload["schema"] == experiments.SCHEMA_VERSION
        assert len(payload["cells"]) == 1
        assert "wall_seconds" not in payload["cells"][0]

    def test_save_order_is_run_order_independent(self, tmp_path):
        a, b = fake_cell(system="SS"), fake_cell(system="GB")
        experiments.seed_results([a, b])
        experiments.save_results(str(tmp_path / "ab.json"))
        experiments.clear_cache()
        experiments.seed_results([b, a])
        experiments.save_results(str(tmp_path / "ba.json"))
        assert (tmp_path / "ab.json").read_bytes() == \
            (tmp_path / "ba.json").read_bytes()

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text(json.dumps({"schema": 99, "cells": []}))
        with pytest.raises(errors.InvalidValue, match="schema 99"):
            experiments.load_results(str(path))
        path.write_text(json.dumps("nonsense"))
        with pytest.raises(errors.InvalidValue):
            experiments.load_results(str(path))

    def test_load_rejects_unknown_row_fields(self, tmp_path):
        row = experiments.cell_to_row(fake_cell())
        row["from_the_future"] = 1
        path = tmp_path / "cells.json"
        path.write_text(json.dumps(
            {"schema": experiments.SCHEMA_VERSION, "cells": [row]}))
        with pytest.raises(errors.InvalidValue, match="from_the_future"):
            experiments.load_results(str(path))

    def test_legacy_unversioned_list_still_loads(self, tmp_path):
        legacy = [dict(experiments.cell_to_row(fake_cell()),
                       wall_seconds=0.5)]
        path = tmp_path / "cells.json"
        path.write_text(json.dumps(legacy))
        assert experiments.load_results(str(path)) == 1
        (cell,) = experiments.all_results().values()
        assert cell.seconds == 1.25

    def test_shipped_snapshot_loads(self):
        shipped = os.path.join(os.path.dirname(__file__), os.pardir,
                               "benchmarks", "results", "cells.json")
        if not os.path.exists(shipped):
            pytest.skip("no shipped cells.json")
        assert experiments.load_results(shipped) > 100


@pytest.mark.usefixtures("isolated_grid")
class TestKillAndResume:
    def test_resume_reproduces_uninterrupted_run_byte_identically(
            self, tmp_path):
        # Uninterrupted reference run.
        run_grid()
        reference = tmp_path / "cells_ref.json"
        experiments.save_results(str(reference))

        # Calibrate a kill point: enough kernel trips to complete some
        # cells but not all (the simulation is deterministic, so this
        # count replays exactly).
        experiments.clear_cache()
        observer = faults.FaultPlan()
        with faults.injected(observer):
            run_grid()
        kill_at = int(observer.counts["kernel"] * 0.6)

        # Interrupted run: fatal fault (simulated kill) mid-grid.
        experiments.clear_cache()
        journal_path = tmp_path / "journal.jsonl"
        checkpoint.attach(journal_path, fresh=True)
        plan = faults.FaultPlan([faults.FaultSpec("kernel", "fatal",
                                                  nth=kill_at)])
        with pytest.raises(faults.FatalFault):
            with faults.injected(plan):
                run_grid()
        experiments.set_journal(None)
        completed = CellJournal(journal_path).load()
        assert 0 < len(completed) < len(GRAPHS) * len(APPS) * len(SYSTEMS)

        # Resumed run: journaled cells recalled, the rest recomputed.
        experiments.clear_cache()
        recovered = checkpoint.resume(journal_path)
        assert recovered == len(completed)
        run_grid()
        experiments.set_journal(None)
        resumed = tmp_path / "cells_resumed.json"
        experiments.save_results(str(resumed))

        assert resumed.read_bytes() == reference.read_bytes()

    def test_resumed_cells_are_recalled_not_rerun(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        marker = fake_cell(system="LS", app="bfs", graph="rmat22",
                           seconds=424242.0)
        CellJournal(journal_path).append(marker)
        assert checkpoint.resume(journal_path) == 1
        result = run_cell("LS", "bfs", "rmat22")
        assert result.seconds == 424242.0  # served from the journal

    def test_journal_records_fresh_cells_during_run(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        checkpoint.attach(journal_path, fresh=True)
        run_cell("LS", "bfs", "rmat22")
        experiments.set_journal(None)
        assert ("LS", "bfs", "rmat22") in CellJournal(journal_path).load()


@pytest.mark.usefixtures("isolated_grid")
class TestOrderedCommitterIdempotence:
    """The at-least-once queue drain must not double-commit a cell.

    A drain supervisor replays result blobs its killed predecessor
    committed to the queue but maybe not to the journal, so the committer
    sees duplicate offers, offers for skipped cells, and offers arriving
    out of order after a lease was requeued — none may append twice.
    """

    def _journal_apps(self, path):
        return [json.loads(line)["cell"]["app"]
                for line in path.read_text().splitlines()]

    def test_duplicate_offer_is_noop_and_byte_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        committer = checkpoint.OrderedCommitter(
            2, journal=CellJournal(path))
        first = fake_cell(app="bfs", seconds=1.0)
        committer.offer(0, first)
        before = path.read_bytes()
        committer.offer(0, fake_cell(app="bfs", seconds=99.0))
        committer.offer(0, first)
        assert path.read_bytes() == before
        assert committer.committed == 1
        # The memo kept the first commit, not the late duplicate.
        assert experiments.all_results()[first.key].seconds == 1.0

    def test_offer_after_skip_is_noop(self, tmp_path):
        path = tmp_path / "j.jsonl"
        committer = checkpoint.OrderedCommitter(
            2, journal=CellJournal(path))
        committer.skip(0)
        committer.skip(0)  # skip is idempotent too
        committer.offer(0, fake_cell(app="bfs"))
        committer.offer(1, fake_cell(app="cc"))
        assert committer.done and committer.committed == 1
        assert self._journal_apps(path) == ["cc"]

    def test_out_of_order_offers_after_requeue_commit_in_order(
            self, tmp_path):
        # A requeued cell's second attempt can land before an earlier
        # index commits — and a zombie first attempt can land after it.
        path = tmp_path / "j.jsonl"
        committer = checkpoint.OrderedCommitter(
            2, journal=CellJournal(path))
        committer.offer(1, fake_cell(app="cc", seconds=2.0))
        committer.offer(1, fake_cell(app="cc", seconds=77.0))  # zombie
        assert committer.committed == 0 and committer.pending() == 1
        committer.offer(0, fake_cell(app="bfs"))
        assert committer.done and committer.committed == 2
        assert self._journal_apps(path) == ["bfs", "cc"]
        key = ("SS", "cc", "rmat22")
        assert experiments.all_results()[key].seconds == 2.0

    def test_commit_after_supervisor_restart_does_not_duplicate(
            self, tmp_path):
        # First supervisor commits two cells, then dies.
        path = tmp_path / "j.jsonl"
        cells = [fake_cell(app=app) for app in ("bfs", "cc", "pr")]
        committer = checkpoint.OrderedCommitter(
            3, journal=CellJournal(path))
        committer.offer(0, cells[0])
        committer.offer(1, cells[1])

        # Restart: resume the journal, then settle already-known cells
        # the way QueueSupervisor._seed_mirror does — skip what the memo
        # holds, re-offer the rest — and finish the grid.
        experiments.clear_cache()
        assert checkpoint.resume(path) == 2
        memo = experiments.all_results()
        restarted = checkpoint.OrderedCommitter(
            3, journal=experiments.get_journal())
        for index, cell in enumerate(cells[:2]):
            if memo.get(cell.key) is not None:
                restarted.skip(index)
            else:
                restarted.offer(index, cell)
        restarted.offer(2, cells[2])
        experiments.set_journal(None)
        assert restarted.done
        assert self._journal_apps(path) == ["bfs", "cc", "pr"]


class TestAtomicWriteJson:
    def test_replaces_atomically(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text("old")
        checkpoint.atomic_write_json(path, {"v": 1})
        assert json.loads(path.read_text()) == {"v": 1}
        assert not (tmp_path / "data.json.tmp").exists()
