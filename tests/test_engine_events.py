"""Unit tests for the op-event protocol: OpEvent validation, the
ExecutionContext span attribution, and the lint-style guarantee that no
call site still uses the old stringly-typed charging helpers."""

import ast
import pathlib

import pytest

from repro.engine import ExecutionContext, OP_KINDS, OpEvent
from repro.errors import InvalidValue

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


class TestOpEventValidation:
    def test_known_kinds_construct(self):
        for kind in OP_KINDS:
            assert OpEvent(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidValue):
            OpEvent(kind="spmv")

    def test_negative_counts_rejected(self):
        for field in ("items", "flops", "bytes_materialized", "loops",
                      "round_id", "in_nvals", "out_nvals", "mask_bytes",
                      "bytes_not_materialized"):
            with pytest.raises(InvalidValue):
                OpEvent(kind="mxv", **{field: -1})

    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidValue):
            OpEvent(kind="mxv", mode="sideways")

    def test_bad_method_rejected(self):
        with pytest.raises(InvalidValue):
            OpEvent(kind="mxm", method="gustavson")

    def test_frozen(self):
        event = OpEvent(kind="mxv")
        with pytest.raises(AttributeError):
            event.items = 5

    def test_defaults(self):
        event = OpEvent(kind="do_all", label="demo")
        assert event.items == 0 and not event.barrier and event.mode == ""


class TestExecutionContext:
    def test_span_attributes_loops(self):
        ctx = ExecutionContext()
        ctx.open_span()
        ctx.on_loop(n_items=10, barrier=False, parallel=True)
        ctx.on_loop(n_items=10, barrier=True, parallel=True)
        recorded = ctx.close_span(OpEvent(kind="mxv", items=10))
        assert recorded.loops == 2
        assert recorded.barrier  # a barrier inside the span marks the event
        assert ctx.events == (recorded,)

    def test_serial_loops_not_counted(self):
        ctx = ExecutionContext()
        ctx.open_span()
        ctx.on_loop(n_items=1, barrier=False, parallel=False)
        recorded = ctx.close_span(OpEvent(kind="apply"))
        assert recorded.loops == 0

    def test_unattributed_parallel_loop_becomes_event(self):
        ctx = ExecutionContext()
        ctx.on_loop(n_items=7, barrier=True, parallel=True)
        (event,) = ctx.events
        assert event.kind == "loop" and event.items == 7 and event.loops == 1

    def test_nested_spans_attribute_innermost(self):
        ctx = ExecutionContext()
        ctx.open_span()
        ctx.on_loop(n_items=1, barrier=False, parallel=True)
        ctx.open_span()
        ctx.on_loop(n_items=2, barrier=False, parallel=True)
        inner = ctx.close_span(OpEvent(kind="apply"))
        outer = ctx.close_span(OpEvent(kind="mxv"))
        assert inner.loops == 1 and outer.loops == 1

    def test_round_events_tag_round_id(self):
        ctx = ExecutionContext()
        ctx.on_round(1)
        ctx.open_span()
        recorded = ctx.close_span(OpEvent(kind="mxv"))
        assert recorded.round_id == 1
        kinds = [e.kind for e in ctx.events]
        assert kinds == ["round", "mxv"]

    def test_reset_clears(self):
        ctx = ExecutionContext()
        ctx.on_round(3)
        ctx.reset()
        assert ctx.events == ()
        ctx.open_span()
        assert ctx.close_span(OpEvent(kind="mxv")).round_id == 0


class TestProtocolLint:
    """No call site may bypass the typed protocol.

    These walk the AST of every module under ``src/repro`` (docstrings that
    merely *mention* the retired helpers don't count) and fail with the
    offending ``file:line`` list if the old stringly-typed charging
    protocol creeps back in.
    """

    def _call_sites(self, predicate):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if predicate(node):
                    offenders.append(f"{path}:{node.lineno}")
        return offenders

    def test_no_stringly_charge_op_calls(self):
        def is_charge_op_call(node):
            if not isinstance(node, ast.Call):
                return False
            func = node.func
            name = getattr(func, "attr", getattr(func, "id", ""))
            return name == "charge_op"

        assert self._call_sites(is_charge_op_call) == []

    def test_no_loopcharge_usage(self):
        def mentions_loopcharge(node):
            return (isinstance(node, ast.Name) and node.id == "LoopCharge"
                    or isinstance(node, ast.Attribute)
                    and node.attr == "LoopCharge")

        assert self._call_sites(mentions_loopcharge) == []

    def test_no_raw_info_kwargs(self):
        def is_star_star_info(node):
            return (isinstance(node, ast.keyword) and node.arg is None
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "info")

        assert self._call_sites(is_star_star_info) == []
