"""Shard-parallel executor: fan-out mechanics, determinism, lock discipline.

The tentpole invariant under test: ``REPRO_KERNEL_THREADS`` changes
*wall-clock only*.  Every blocked kernel must return byte-identical
results at every thread count and shard geometry (the fixed-shard-order
merge of :mod:`repro.sparse.parallel`), whole traced cells must produce
identical answers, counters, and event streams on both API stacks, and
the plan cache must survive concurrent shard tasks without losing or
double-counting entries.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import Cancelled, InvalidValue
from repro.sparse import blocked, parallel, plancache
from repro.sparse.blocked import BlockedCSR
from repro.sparse.csr import build_csr
from repro.sparse.semiring_ops import BINARY_FNS, MONOID_FNS
from repro.sparse.spgemm import spgemm_masked_dot, spgemm_saxpy
from repro.sparse.spmv import spmv_pull, vxm_push

PLUS = MONOID_FNS["plus"]
TIMES = BINARY_FNS["times"]
PAIR = BINARY_FNS["pair"]

THREAD_MATRIX = (1, 2, 4)


def random_csr(n, m, density, seed, values=True):
    mat = sp.random(n, m, density=density, random_state=seed).tocsr()
    coo = mat.tocoo()
    data = coo.data if values else None
    return build_csr(n, m, coo.row, coo.col, data)


@pytest.fixture(autouse=True)
def _restore_thread_override():
    previous = parallel.set_kernel_threads(None)
    yield
    parallel.set_kernel_threads(previous)


class TestKnob:
    def test_default_is_sequential(self):
        assert parallel.kernel_threads_from_env({}) == 1

    def test_env_parse(self):
        assert parallel.kernel_threads_from_env(
            {"REPRO_KERNEL_THREADS": "4"}) == 4

    def test_env_rejects_garbage_and_zero(self):
        with pytest.raises(InvalidValue):
            parallel.kernel_threads_from_env({"REPRO_KERNEL_THREADS": "two"})
        with pytest.raises(InvalidValue):
            parallel.kernel_threads_from_env({"REPRO_KERNEL_THREADS": "0"})

    def test_runtime_override_wins_and_restores(self):
        previous = parallel.set_kernel_threads(3)
        try:
            assert parallel.kernel_threads() == 3
        finally:
            parallel.set_kernel_threads(previous)
        with pytest.raises(InvalidValue):
            parallel.set_kernel_threads(0)

    def test_effective_threads_never_exceeds_shards(self):
        assert parallel.effective_threads(1, threads=8) == 1
        assert parallel.effective_threads(16, threads=4) == 4
        assert parallel.effective_threads(3, threads=4) == 3


class TestMapShards:
    def test_results_come_back_in_item_order(self):
        import time

        def task(i):
            # Later items finish first: order must still be item order.
            time.sleep(0.002 * (8 - i))
            return i * i

        out = parallel.map_shards(task, range(8), threads=4)
        assert out == [i * i for i in range(8)]

    def test_single_thread_is_a_plain_loop(self):
        names = []

        def task(i):
            names.append(threading.current_thread().name)
            return i

        assert parallel.map_shards(task, range(3), threads=1) == [0, 1, 2]
        assert all("repro-kernel" not in name for name in names)

    def test_first_error_in_shard_order_wins(self):
        import time

        def task(i):
            if i == 1:
                time.sleep(0.01)
                raise ValueError("shard 1")
            if i == 3:
                raise KeyError("shard 3")
            return i

        # Shard 3 fails immediately, shard 1 later — the re-raised error
        # must still be shard 1's (first in shard order).
        with pytest.raises(ValueError, match="shard 1"):
            parallel.map_shards(task, range(4), threads=4)

    def test_fanout_record_is_cleared_on_take(self):
        parallel.record_fanout(8, 4)
        assert parallel.take_fanout() == (8, 4)
        assert parallel.take_fanout() is None
        parallel.record_fanout(2, 2)
        parallel.clear_fanout()
        assert parallel.fanout_fields() == {}
        parallel.record_fanout(8, 4)
        assert parallel.fanout_fields() == {"shards": 8, "threads": 4}


class TestKernelDeterminismMatrix:
    """threads x shard-geometry: every driver byte-identical to monolithic."""

    @pytest.fixture(scope="class")
    def operands(self):
        A = random_csr(300, 300, 0.05, seed=11)
        B = random_csr(300, 300, 0.04, seed=12)
        L = random_csr(300, 300, 0.06, seed=13, values=False)
        x = np.linspace(-1.0, 2.0, 300)
        frontier = np.unique(
            np.random.default_rng(5).integers(0, 300, size=40))
        f_vals = np.linspace(1.0, 3.0, len(frontier))
        return A, B, L, x, frontier, f_vals

    @pytest.mark.parametrize("threads", THREAD_MATRIX)
    @pytest.mark.parametrize("shard_rows", (32, 1024))
    def test_all_drivers_byte_identical(self, operands, threads,
                                        shard_rows):
        A, B, L, x, frontier, f_vals = operands
        A_blocked = BlockedCSR.from_csr(A, shard_rows=shard_rows)
        L_blocked = BlockedCSR.from_csr(L, shard_rows=shard_rows)

        y0, touched0, flops0 = spmv_pull(A, x, PLUS, TIMES)
        pi0, pv0, pf0 = vxm_push(A, frontier, f_vals, PLUS, TIMES)
        C0, cf0 = spgemm_saxpy(A, B, PLUS, TIMES)
        M0, mw0 = spgemm_masked_dot(L, L, L, PLUS, PAIR,
                                    out_dtype=np.int64)
        r0 = blocked.BlockedCSR.from_csr(A, shard_rows=A.nrows) \
            .reduce_rows("plus")

        previous = parallel.set_kernel_threads(threads)
        try:
            y, touched, flops = spmv_pull(A_blocked, x, PLUS, TIMES)
            assert np.array_equal(y, y0)
            assert np.array_equal(touched, touched0)
            assert flops == flops0

            pi, pv, pf = vxm_push(A_blocked, frontier, f_vals, PLUS, TIMES)
            assert np.array_equal(pi, pi0)
            assert np.array_equal(pv, pv0)
            assert pf == pf0

            C, cf = spgemm_saxpy(A_blocked, B, PLUS, TIMES)
            assert np.array_equal(C.indptr, C0.indptr)
            assert np.array_equal(C.indices, C0.indices)
            assert np.array_equal(C.values, C0.values)
            assert cf == cf0

            M, mw = spgemm_masked_dot(L_blocked, L, L, PLUS, PAIR,
                                      out_dtype=np.int64)
            assert np.array_equal(M.indptr, M0.indptr)
            assert np.array_equal(M.indices, M0.indices)
            assert np.array_equal(M.values, M0.values)
            assert mw == mw0

            r = A_blocked.reduce_rows("plus")
            assert np.array_equal(r, r0)
        finally:
            parallel.set_kernel_threads(previous)

    def test_fanout_recorded_for_emitters(self, operands):
        A = operands[0]
        x = operands[3]
        A_blocked = BlockedCSR.from_csr(A, shard_rows=32)
        previous = parallel.set_kernel_threads(4)
        try:
            parallel.clear_fanout()
            spmv_pull(A_blocked, x, PLUS, TIMES)
            assert parallel.take_fanout() == (A_blocked.nshards, 4)
        finally:
            parallel.set_kernel_threads(previous)
        # Monolithic kernels record nothing: event fields keep 0 defaults.
        parallel.clear_fanout()
        spmv_pull(A, x, PLUS, TIMES)
        assert parallel.take_fanout() is None


def _normalized_events(events):
    """Events with the wall-clock-only fan-out fields zeroed.

    ``shards``/``threads`` are observability (like ``seconds``): they may
    differ across thread counts, everything else must not.
    """
    import dataclasses

    return tuple(dataclasses.replace(e, shards=0, threads=0)
                 for e in events)


class TestTracedCellDeterminism:
    """Same cell at threads {1,2,4} x shard geometries, both stacks."""

    @pytest.mark.parametrize("system", ("GB", "LS"))
    def test_cell_invariant_across_threads_and_shards(self, system,
                                                      monkeypatch):
        from repro.engine.analysis import run_traced
        from repro.graphs import datasets

        baseline = None
        for shard_rows in (1024, None):  # None = whole-graph default
            if shard_rows is None:
                monkeypatch.delenv("REPRO_SHARD_ROWS", raising=False)
            else:
                monkeypatch.setenv("REPRO_SHARD_ROWS", str(shard_rows))
            datasets.clear_cache()
            for threads in THREAD_MATRIX:
                previous = parallel.set_kernel_threads(threads)
                try:
                    cell = run_traced(system, "pr", "road-USA-W")
                finally:
                    parallel.set_kernel_threads(previous)
                observed = (cell.answer, cell.summary, cell.counters,
                            _normalized_events(cell.events))
                if baseline is None:
                    baseline = observed
                else:
                    assert observed[0] == baseline[0], \
                        f"answer drifted at threads={threads}"
                    assert observed[1] == baseline[1], \
                        f"summary drifted at threads={threads}"
                    assert observed[2] == baseline[2], \
                        f"counters drifted at threads={threads}"
                    assert observed[3] == baseline[3], \
                        f"event stream drifted at threads={threads}"
        datasets.clear_cache()


class TestPlanCacheLockDiscipline:
    """Concurrent shard tasks must not race the shared plan cache."""

    def test_concurrent_puts_count_each_entry_once(self):
        host = random_csr(50, 50, 0.1, seed=3)
        plancache.reset_stats()
        n_threads, n_keys = 8, 25
        barrier = threading.Barrier(n_threads)

        def hammer(tid):
            barrier.wait()
            for i in range(n_keys):
                # Every thread races to create the same entries.
                plancache.cached(host, "lock_drill", (i,), lambda i=i: [i])
            return tid

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(hammer, range(n_threads)))

        stats = plancache.plan_cache_stats()["lock_drill"]
        # The race this guards: two threads both miss, both put, and the
        # entry count drifts from the true cache size.
        assert stats["entries"] == n_keys
        assert stats["hits"] + stats["misses"] == n_threads * n_keys
        assert len(host._plan_cache) == n_keys
        plancache.drop(host)
        assert plancache.plan_cache_stats()["lock_drill"]["entries"] == 0
        plancache.reset_stats()

    def test_shared_rhs_host_survives_parallel_spgemm(self):
        # The real workload shape: one B shared across shard tasks, its
        # cache dict created under contention.
        A = random_csr(400, 400, 0.03, seed=21)
        B = random_csr(400, 400, 0.03, seed=22)
        C0, f0 = spgemm_saxpy(A, B, PLUS, TIMES)
        A_blocked = BlockedCSR.from_csr(A, shard_rows=16)
        previous = parallel.set_kernel_threads(4)
        try:
            for _ in range(3):
                plancache.drop(B)
                C, f = spgemm_saxpy(A_blocked, B, PLUS, TIMES)
                assert np.array_equal(C.indices, C0.indices)
                assert np.array_equal(C.values, C0.values)
                assert f == f0
        finally:
            parallel.set_kernel_threads(previous)


class TestShardTaskCancellation:
    def test_tripped_token_cancels_between_shard_tasks(self):
        from repro.engine import cancel

        A = random_csr(200, 200, 0.05, seed=31)
        B = random_csr(200, 200, 0.05, seed=32)
        A_blocked = BlockedCSR.from_csr(A, shard_rows=20)
        token = cancel.CancelToken()
        calls = {"n": 0}

        def tripping_mult(a, b):
            # Trip mid-kernel, inside the first shard's multiply: the
            # *next shard task's* entry check must raise — no OpEvent
            # boundary is ever reached.
            calls["n"] += 1
            token.cancel("drill")
            return np.multiply(a, b)

        mult = BINARY_FNS["times"].__class__("times", tripping_mult)
        with cancel.scope(token):
            with pytest.raises(Cancelled):
                spgemm_saxpy(A_blocked, B, PLUS, mult)
        assert calls["n"] >= 1
