"""LAGraph algorithms validated against networkx / scipy oracles."""

import networkx as nx
import numpy as np
import pytest

import repro.graphblas as gb
from repro.lagraph import (
    bfs,
    delta_stepping,
    fastsv,
    ktruss,
    pagerank_gb,
    pagerank_gb_res,
    triangle_count,
)

from tests.conftest import (
    assert_partition_equal,
    nx_digraph,
    pattern_matrix,
    random_digraph,
    weighted_matrix,
)


@pytest.fixture(scope="module")
def oracle():
    csr, sym = random_digraph()
    G = nx_digraph(csr)
    return csr, sym, G, G.to_undirected()


class TestBfs:
    def test_levels_match_oracle(self, backend, oracle):
        csr, _, G, _ = oracle
        A = pattern_matrix(backend, csr)
        dist = bfs(backend, A, 0).dense_values()
        ref = nx.single_source_shortest_path_length(G, 0)
        for v in range(csr.nrows):
            expected = ref[v] + 1 if v in ref else 0
            assert dist[v] == expected

    def test_source_level_one(self, backend, oracle):
        csr = oracle[0]
        A = pattern_matrix(backend, csr)
        assert bfs(backend, A, 5).dense_values()[5] == 1

    def test_isolated_source(self, backend):
        from repro.sparse.csr import build_csr

        csr = build_csr(3, 3, [1], [2], None)
        A = pattern_matrix(backend, csr)
        dist = bfs(backend, A, 0).dense_values()
        assert dist[0] == 1 and dist[1] == 0 and dist[2] == 0

    def test_counts_rounds(self, backend, oracle):
        csr = oracle[0]
        A = pattern_matrix(backend, csr)
        bfs(backend, A, 0)
        assert backend.machine.counters.rounds > 1


class TestFastSV:
    def test_partition(self, backend, oracle):
        _, sym, _, Gu = oracle
        A = pattern_matrix(backend, sym, "Asym")
        labels = fastsv(backend, A).dense_values()
        assert_partition_equal(labels, nx.connected_components(Gu))

    def test_labels_are_component_minimum(self, backend, oracle):
        _, sym, _, Gu = oracle
        A = pattern_matrix(backend, sym, "Asym")
        labels = fastsv(backend, A).dense_values()
        for comp in nx.connected_components(Gu):
            assert labels[min(comp)] == min(comp)

    def test_edgeless_graph(self, backend):
        from repro.sparse.csr import build_csr

        csr = build_csr(5, 5, [], [], None)
        A = pattern_matrix(backend, csr)
        labels = fastsv(backend, A).dense_values()
        assert np.array_equal(labels, np.arange(5))


class TestTriangleCount:
    def test_matches_oracle(self, backend, oracle):
        _, sym, _, Gu = oracle
        A = pattern_matrix(backend, sym, "Asym")
        ref = sum(nx.triangles(Gu).values()) // 3
        assert triangle_count(backend, A, "gb") == ref

    def test_variants_agree(self, backend, oracle):
        _, sym, _, Gu = oracle
        ref = sum(nx.triangles(Gu).values()) // 3
        # gb-sort / gb-ll run on the degree-sorted graph: relabeling does
        # not change the count.
        total = np.diff(sym.indptr) + np.bincount(sym.indices,
                                                  minlength=sym.nrows)
        perm = np.argsort(total, kind="stable").astype(np.int64)
        sorted_csr = sym.permute(perm)
        for variant in ("gb-sort", "gb-ll"):
            A = pattern_matrix(backend, sorted_csr, "Asorted")
            assert triangle_count(backend, A, variant) == ref

    def test_unknown_variant(self, backend, oracle):
        A = pattern_matrix(backend, oracle[1], "Asym")
        with pytest.raises(ValueError):
            triangle_count(backend, A, "gb-quantum")

    def test_triangle_free(self, backend):
        from repro.sparse.csr import build_csr

        # A 4-cycle has no triangles.
        csr = build_csr(4, 4, [0, 1, 2, 3, 1, 2, 3, 0],
                        [1, 2, 3, 0, 0, 1, 2, 3], None)
        A = pattern_matrix(backend, csr)
        assert triangle_count(backend, A, "gb") == 0


class TestKtruss:
    def _oracle_truss(self, Gu, k):
        H = Gu.copy()
        changed = True
        while changed:
            changed = False
            for u, v in list(H.edges()):
                if len(set(H[u]) & set(H[v])) < k - 2:
                    H.remove_edge(u, v)
                    changed = True
        return H.number_of_edges()

    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_oracle(self, backend, oracle, k):
        _, sym, _, Gu = oracle
        A = pattern_matrix(backend, sym, "Asym")
        S, rounds = ktruss(backend, A, k)
        assert S.nvals == 2 * self._oracle_truss(Gu, k)
        assert rounds >= 1

    def test_k3_of_triangle(self, backend):
        from repro.sparse.csr import build_csr

        csr = build_csr(3, 3, [0, 1, 0, 2, 1, 2], [1, 0, 2, 0, 2, 1], None)
        A = pattern_matrix(backend, csr)
        S, _ = ktruss(backend, A, 3)
        assert S.nvals == 6


class TestPagerank:
    def test_variants_identical(self, backend, oracle):
        csr = oracle[0]
        A = pattern_matrix(backend, csr)
        p1 = pagerank_gb(backend, A, iters=10).dense_values()
        p2 = pagerank_gb_res(backend, A, iters=10).dense_values()
        assert np.allclose(p1, p2, rtol=1e-10)

    def test_matches_power_iteration_oracle(self, backend, oracle):
        csr = oracle[0]
        n = csr.nrows
        A = pattern_matrix(backend, csr)
        got = pagerank_gb(backend, A, iters=10).dense_values()
        # Reference: pr = base + sum of 10 pushed residual waves.
        alpha, base = 0.85, 0.15 / n
        deg = np.maximum(np.diff(csr.indptr), 1)
        rows = np.repeat(np.arange(n), np.diff(csr.indptr))
        y = np.full(n, base)
        pr = np.full(n, base)
        for _ in range(10):
            contrib = alpha * y / deg
            y = np.zeros(n)
            np.add.at(y, csr.indices, contrib[rows])
            pr += y
        assert np.allclose(got, pr, rtol=1e-9)

    def test_more_iters_changes_result(self, backend, oracle):
        A = pattern_matrix(backend, oracle[0])
        p5 = pagerank_gb_res(backend, A, iters=5).dense_values()
        p10 = pagerank_gb_res(backend, A, iters=10).dense_values()
        assert not np.allclose(p5, p10)


class TestDeltaStepping:
    def test_matches_dijkstra(self, backend, oracle):
        csr, _, G, _ = oracle
        Aw = weighted_matrix(backend, csr)
        dist = delta_stepping(backend, Aw, 0, delta=64).dense_values()
        ref = nx.single_source_dijkstra_path_length(G, 0)
        inf = np.iinfo(np.int64).max
        for v in range(csr.nrows):
            assert dist[v] == ref.get(v, inf)

    @pytest.mark.parametrize("delta", [1, 16, 1 << 13])
    def test_delta_invariance(self, backend, oracle, delta):
        csr = oracle[0]
        Aw = weighted_matrix(backend, csr)
        base = delta_stepping(backend, Aw, 3, delta=64).dense_values()
        got = delta_stepping(backend, Aw, 3, delta=delta).dense_values()
        assert np.array_equal(base, got)

    def test_int32_distance_type(self, backend, oracle):
        csr = oracle[0]
        Aw = weighted_matrix(backend, csr)
        d32 = delta_stepping(backend, Aw, 0, delta=64,
                             dist_type=gb.INT32).dense_values()
        d64 = delta_stepping(backend, Aw, 0, delta=64).dense_values()
        reached = d64 < np.iinfo(np.int64).max
        assert np.array_equal(d32[reached].astype(np.int64), d64[reached])
