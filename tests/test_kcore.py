"""k-core decomposition (extension problem) on both stacks."""

import networkx as nx
import numpy as np
import pytest

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.lagraph import k_core as la_kcore
from repro.lonestar import k_core as ls_kcore
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

from tests.conftest import pattern_matrix, random_digraph


@pytest.fixture(scope="module")
def oracle():
    _, sym = random_digraph(n=150, m=1200, seed=13)
    G = nx.Graph()
    G.add_nodes_from(range(sym.nrows))
    rows = np.repeat(np.arange(sym.nrows), np.diff(sym.indptr))
    G.add_edges_from(zip(rows.tolist(), sym.indices.tolist()))
    return sym, G


def fresh(sym):
    return Graph(GaloisRuntime(Machine()), sym)


class TestLonestarKCore:
    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_matches_networkx(self, oracle, k):
        sym, G = oracle
        member, waves = ls_kcore(fresh(sym), k)
        assert set(np.flatnonzero(member).tolist()) == \
            set(nx.k_core(G, k).nodes())

    def test_core_degree_invariant(self, oracle):
        sym, _ = oracle
        member, _ = ls_kcore(fresh(sym), 4)
        rows = np.repeat(np.arange(sym.nrows), np.diff(sym.indptr))
        live_deg = np.zeros(sym.nrows, dtype=np.int64)
        inside = member[rows] & member[sym.indices]
        np.add.at(live_deg, rows[inside], 1)
        assert np.all(live_deg[member] >= 4)

    def test_k_too_large_empties_graph(self, oracle):
        sym, _ = oracle
        member, _ = ls_kcore(fresh(sym), 10**6)
        assert not member.any()

    def test_barrier_free_waves(self, oracle):
        sym, _ = oracle
        g = fresh(sym)
        ls_kcore(g, 4)
        barriers = [r for r in g.runtime.machine.loop_records if r.barrier]
        assert len(barriers) <= 1  # only the degree-array first touch


class TestLAGraphKCore:
    @pytest.mark.parametrize("k", [2, 4])
    def test_matches_networkx(self, backend, oracle, k):
        sym, G = oracle
        A = pattern_matrix(backend, sym, "Asym")
        member, rounds = la_kcore(backend, A, k)
        assert set(np.flatnonzero(member).tolist()) == \
            set(nx.k_core(G, k).nodes())
        assert rounds >= 1

    def test_stacks_agree(self, backend, oracle):
        sym, _ = oracle
        A = pattern_matrix(backend, sym, "Asym")
        member_m, _ = la_kcore(backend, A, 5)
        member_g, _ = ls_kcore(fresh(sym), 5)
        assert np.array_equal(member_m, member_g)

    def test_bulk_peeling_costs_more(self, gb_backend, oracle):
        """The re-materialized submatrix per round (limitation #2) makes
        the matrix API's peeling slower than the decremental worklist."""
        sym, _ = oracle
        A = pattern_matrix(gb_backend, sym, "Asym")
        gb_backend.machine.reset_measurement()
        la_kcore(gb_backend, A, 4)
        t_matrix = gb_backend.machine.simulated_seconds()

        g = fresh(sym)
        g.runtime.machine.reset_measurement()
        ls_kcore(g, 4)
        t_graph = g.runtime.machine.simulated_seconds()
        assert t_graph < t_matrix
