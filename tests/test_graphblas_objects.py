"""Unit tests for GraphBLAS types, operators, Vector and Matrix objects."""

import numpy as np
import pytest

import repro.graphblas as gb
from repro.errors import (
    DimensionMismatch,
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
)
from repro.graphblas.types import type_of
from repro.graphblas.ops import binary, monoid, semiring, unary


class TestTypes:
    def test_lookup_by_name(self):
        assert type_of("int32") is gb.INT32
        assert type_of("GrB_FP64") is gb.FP64

    def test_lookup_by_dtype(self):
        assert type_of(np.dtype(np.bool_)) is gb.BOOL

    def test_lookup_passthrough(self):
        assert type_of(gb.INT64) is gb.INT64

    def test_unknown(self):
        with pytest.raises(InvalidValue):
            type_of("int7")

    def test_max_value(self):
        assert gb.INT32.max_value() == np.iinfo(np.int32).max
        assert gb.FP64.max_value() == np.inf
        assert gb.BOOL.max_value() is True

    def test_itemsize(self):
        assert gb.INT64.itemsize == 8


class TestOperators:
    def test_semiring_parsing(self):
        s = semiring("min_plus")
        assert s.add.name == "min" and s.mult.name == "plus"

    def test_semiring_with_underscore_mult(self):
        # 'first'/'second'/'pair' parse as the mult part.
        assert semiring("plus_pair").mult.name == "pair"

    def test_semiring_bad_name(self):
        with pytest.raises(InvalidValue):
            semiring("minplus")

    def test_bind_first_second(self):
        op = binary("minus")
        assert op.bind_first(10).apply(np.array([3]))[0] == 7
        assert op.bind_second(10).apply(np.array([3]))[0] == -7

    def test_unary_ops(self):
        assert unary("lnot").apply(np.array([True]))[0] == False  # noqa: E712
        assert unary("ainv").apply(np.array([2]))[0] == -2
        with pytest.raises(InvalidValue):
            unary("square")

    def test_monoid_as_binary(self):
        assert monoid("min").as_binary().apply(3, 5) == 3


class TestVector:
    def test_set_extract_remove(self, backend):
        v = gb.Vector(backend, gb.INT32, 10)
        v.set_element(3, 7)
        assert v.extract_element(3) == 7
        assert v.nvals == 1
        v.remove_element(3)
        with pytest.raises(NoValue):
            v.extract_element(3)

    def test_index_bounds(self, backend):
        v = gb.Vector(backend, gb.INT32, 5)
        with pytest.raises(IndexOutOfBounds):
            v.set_element(5, 1)
        with pytest.raises(IndexOutOfBounds):
            v.extract_element(-1)

    def test_build_and_pairs(self, backend):
        v = gb.Vector(backend, gb.FP64, 6)
        v.build([4, 1], [9.0, 3.0])
        idx, vals = v.to_pairs()
        assert np.array_equal(idx, [1, 4])
        assert np.array_equal(vals, [3.0, 9.0])

    def test_build_scalar_expansion(self, backend):
        v = gb.Vector(backend, gb.INT64, 4)
        v.build([0, 2], 5)
        assert v.extract_element(2) == 5

    def test_build_bad_index(self, backend):
        v = gb.Vector(backend, gb.INT32, 4)
        with pytest.raises(IndexOutOfBounds):
            v.build([4], [1])

    def test_build_length_mismatch(self, backend):
        v = gb.Vector(backend, gb.INT32, 4)
        with pytest.raises(DimensionMismatch):
            v.build([0, 1], [1.0])

    def test_dup_independent(self, backend):
        v = gb.Vector(backend, gb.INT32, 4)
        v.set_element(0, 1)
        w = v.dup()
        w.set_element(0, 2)
        assert v.extract_element(0) == 1

    def test_clear(self, backend):
        v = gb.Vector(backend, gb.INT32, 4)
        v.set_element(1, 5)
        v.clear()
        assert v.nvals == 0

    def test_dense_values_fill(self, backend):
        v = gb.Vector(backend, gb.INT32, 3)
        v.set_element(1, 7)
        assert np.array_equal(v.dense_values(fill=-1), [-1, 7, -1])

    def test_rep_footprints_differ(self, ss_backend, gb_backend):
        # SuiteSparse stores sparse pairs; GaloisBLAS's dense array costs
        # size x itemsize regardless of fill (§III-B).
        vs = gb.Vector(ss_backend, gb.INT64, 1000)
        vg = gb.Vector(gb_backend, gb.INT64, 1000)
        vs.set_element(0, 1)
        vg.set_element(0, 1)
        assert vs.nbytes_modeled() < vg.nbytes_modeled()


class TestMatrix:
    def test_from_coo(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [0, 1], [1, 2],
                               [1.5, 2.5])
        assert A.nvals == 2
        assert A.extract_element(0, 1) == 1.5

    def test_extract_absent(self, backend):
        A = gb.Matrix(backend, gb.BOOL, 3, 3)
        with pytest.raises(NoValue):
            A.extract_element(0, 0)

    def test_transposed_cached_once(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [0], [2], [1.0])
        t1 = A.transposed_csr()
        t2 = A.transposed_csr()
        assert t1 is t2
        assert t1.get(2, 0) == 1.0

    def test_replace_csr_shape_checked(self, backend):
        from repro.sparse.csr import CSRMatrix

        A = gb.Matrix(backend, gb.BOOL, 3, 3)
        bad = CSRMatrix(2, 2, np.zeros(3, dtype=np.int64),
                        np.empty(0, dtype=np.int32))
        with pytest.raises(DimensionMismatch):
            A.replace_csr(bad)

    def test_replace_invalidates_transpose(self, backend):
        A = gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [0], [2], [1.0])
        A.transposed_csr()
        A.replace_csr(gb.Matrix.from_coo(backend, gb.FP64, 3, 3, [1], [0],
                                         [5.0]).csr)
        assert A.transposed_csr().get(0, 1) == 5.0

    def test_dup(self, backend):
        A = gb.Matrix.from_coo(backend, gb.BOOL, 2, 2, [0], [1],
                               [True])
        B = A.dup()
        assert B.nvals == A.nvals and B.csr is not A.csr

    def test_allocation_tracked(self, backend):
        before = backend.machine.allocator.live_bytes
        A = gb.Matrix.from_coo(backend, gb.FP64, 100, 100,
                               np.arange(100), np.arange(100),
                               np.ones(100))
        assert backend.machine.allocator.live_bytes > before
        A.free()
        assert backend.machine.allocator.live_bytes <= before + 64
