"""Generators, datasets and graph properties."""

import numpy as np
import pytest

from repro.errors import InvalidValue
from repro.graphs import generators as gen
from repro.graphs.datasets import DATASETS, get_dataset
from repro.graphs.properties import bfs_levels, compute_properties, pseudo_diameter
from repro.graphs.transform import (
    heavy_tailed_weights,
    random_weights,
    symmetrize,
)
from repro.sparse.csr import build_csr


class TestRmat:
    def test_size_and_range(self):
        n, src, dst = gen.rmat(scale=8, edge_factor=8, seed=1)
        assert n == 256
        assert src.max() < n and dst.max() < n
        assert np.all(src != dst)

    def test_deterministic(self):
        a = gen.rmat(scale=7, seed=5)
        b = gen.rmat(scale=7, seed=5)
        assert np.array_equal(a[1], b[1]) and np.array_equal(a[2], b[2])

    def test_power_law_skew(self):
        n, src, dst = gen.rmat(scale=10, edge_factor=16, seed=2)
        deg = np.bincount(src, minlength=n)
        assert deg.max() > 10 * deg.mean()

    def test_bad_probabilities(self):
        with pytest.raises(InvalidValue):
            gen.rmat(scale=5, a=0.5, b=0.3, c=0.3)


class TestRoadLattice:
    def test_high_diameter(self):
        n, src, dst = gen.road_lattice(length=200, width=2, seed=1)
        csr = build_csr(n, n, src, dst, None)
        assert pseudo_diameter(csr) > 150

    def test_bounded_degree(self):
        n, src, dst = gen.road_lattice(length=100, width=4, seed=2)
        deg = np.bincount(src, minlength=n)
        assert deg.max() <= 8

    def test_spine_connected(self):
        # The spine guarantee: vertex 0 reaches the far end.
        n, src, dst = gen.road_lattice(length=150, width=3, seed=3,
                                       drop_prob=0.3)
        csr = build_csr(n, n, src, dst, None)
        levels = bfs_levels(csr, 0)
        far_end = (150 - 1) * 3  # ids[-1, 0]
        assert levels[far_end] >= 0


class TestWebCrawl:
    def test_triangle_rich(self):
        n, src, dst = gen.web_crawl(n=400, out_degree=12, seed=4)
        csr = build_csr(n, n, src, dst, None)
        sym, _ = symmetrize(csr)
        from repro.sparse.tricount import count_triangles_lower

        ntri, _, _ = count_triangles_lower(sym.extract_tril(strict=True))
        assert ntri > sym.nvals / 2  # clustering well above random

    def test_ids_shuffled(self):
        # Degree must not correlate with vertex id after relabeling.
        n, src, dst = gen.web_crawl(n=500, out_degree=10, seed=5)
        deg = np.bincount(np.concatenate([src, dst]), minlength=n)
        top = np.argsort(deg)[-10:]
        assert top.max() > n // 4  # hubs are not all packed at low ids


class TestChungLu:
    def test_in_degree_skew(self):
        n, src, dst = gen.chung_lu(n=2000, avg_degree=20, in_skew=1.4,
                                   seed=6)
        din = np.bincount(dst, minlength=n)
        dout = np.bincount(src, minlength=n)
        assert din.max() > dout.max()

    def test_no_self_loops(self):
        _, src, dst = gen.chung_lu(n=300, avg_degree=10, seed=7)
        assert np.all(src != dst)


class TestProtein:
    def test_multiple_components(self):
        n, src, dst = gen.protein_similarity(n=800, avg_degree=40,
                                             n_components=6, seed=8)
        csr = build_csr(n, n, src, dst, None)
        sym, _ = symmetrize(csr)
        levels = bfs_levels(sym, 0)
        assert (levels < 0).any()  # some vertices unreachable

    def test_symmetric_arcs(self):
        n, src, dst = gen.protein_similarity(n=400, avg_degree=30, seed=9)
        csr = build_csr(n, n, src, dst, None)
        t = csr.transpose()
        assert (csr.to_scipy() != t.to_scipy()).nnz == 0


class TestWeights:
    def test_random_weight_range(self):
        w = random_weights(1000, seed=1)
        assert w.min() >= 1 and w.max() <= 255

    def test_heavy_weights_overflow_32bit(self):
        # A two-hop path already exceeds int32: eukarya's 64-bit switch.
        w = heavy_tailed_weights(1000, seed=2)
        assert int(w.max()) + int(w.max()) > np.iinfo(np.int32).max

    def test_heavy_weights_exceed_delta(self):
        w = heavy_tailed_weights(100, seed=3)
        assert w.min() >= 1 << 20


class TestDatasets:
    def test_registry_has_nine(self):
        assert len(DATASETS) == 9

    def test_unknown_name(self):
        with pytest.raises(InvalidValue):
            get_dataset("orkut")

    def test_build_cached(self):
        ds = get_dataset("road-USA-W")
        a, _ = ds.build()
        b, _ = ds.build()
        assert a is b

    def test_scale_positive(self):
        ds = get_dataset("road-USA-W")
        assert ds.scale > 100

    def test_source_policy(self):
        assert get_dataset("road-USA").source_vertex() == 0
        ds = get_dataset("rmat22")
        csr, _ = ds.build()
        src = ds.source_vertex()
        assert np.diff(csr.indptr)[src] == np.diff(csr.indptr).max()

    def test_eukarya_defaults(self):
        ds = get_dataset("eukarya")
        assert ds.sssp_delta == 1 << 20
        assert ds.dist_64bit

    def test_road_ktruss_k(self):
        assert get_dataset("road-USA").ktruss_k == 4
        assert get_dataset("twitter40").ktruss_k == 7

    def test_symmetric_view_is_symmetric(self):
        sym, _ = get_dataset("rmat22").build_symmetric()
        t = sym.transpose()
        assert np.array_equal(t.indptr, sym.indptr)
        assert np.array_equal(t.indices, sym.indices)

    def test_friendster_already_undirected(self):
        csr, _ = get_dataset("friendster").build()
        t = csr.transpose()
        assert np.array_equal(t.indices, csr.indices)


class TestProperties:
    def test_bfs_levels_chain(self):
        csr = build_csr(4, 4, [0, 1, 2], [1, 2, 3], None)
        levels = bfs_levels(csr, 0)
        assert np.array_equal(levels, [0, 1, 2, 3])

    def test_bfs_unreachable(self):
        csr = build_csr(3, 3, [0], [1], None)
        assert bfs_levels(csr, 0)[2] == -1

    def test_pseudo_diameter_path(self):
        n = 50
        fw = np.arange(n - 1)
        csr = build_csr(n, n, np.concatenate([fw, fw + 1]),
                        np.concatenate([fw + 1, fw]), None)
        assert pseudo_diameter(csr) == n - 1

    def test_compute_properties_fields(self):
        ds = get_dataset("road-USA-W")
        csr, w = ds.build()
        p = compute_properties("road-USA-W", csr, w, ds.scale)
        assert p.nnodes == csr.nrows
        assert p.nedges == csr.nvals
        assert p.csr_bytes > csr.nbytes  # includes the weights
        assert p.paper_scale_csr_gb > 0


class TestSymmetrize:
    def test_pattern_union(self):
        csr = build_csr(3, 3, [0, 1], [1, 2], None)
        sym, w = symmetrize(csr)
        assert sym.nvals == 4 and w is None

    def test_weights_min_combined(self):
        csr = build_csr(2, 2, [0, 1], [1, 0],
                        np.array([5, 3], dtype=np.int64))
        sym, w = symmetrize(csr, csr.values)
        assert sym.get(0, 1) == 3 and sym.get(1, 0) == 3
