"""Published-numbers data (core.paper) and the EXPERIMENTS generator."""

import numpy as np
import pytest

from repro.core import paper, report
from repro.core.systems import SYSTEMS


class TestPaperData:
    def test_full_grid_transcribed(self):
        # 6 apps x 3 systems rows, 9 graph columns each.
        assert len(paper.PAPER_TABLE2) == 18
        for row in paper.PAPER_TABLE2.values():
            assert len(row) == 9

    def test_every_cell_numeric_or_annotation(self):
        for row in paper.PAPER_TABLE2.values():
            for cell in row:
                assert isinstance(cell, (int, float)) or cell in (
                    "TO", "OOM", "C")

    def test_paper_cell_lookup(self):
        assert paper.paper_cell("bfs", "LS", "road-USA") == 1.20
        assert paper.paper_cell("tc", "SS", "uk07") == "OOM"
        assert paper.paper_cell("cc", "SS", "eukarya") == "C"
        assert paper.paper_cell("bfs", "LS", "orkut") is None

    def test_paper_ratio(self):
        r = paper.paper_ratio("sssp", "road-USA", "GB", "LS")
        assert r == pytest.approx(40.54 / 0.34)
        assert paper.paper_ratio("tc", "uk07", "SS", "LS") is None  # OOM

    def test_headline_sssp_claim_consistent_with_table(self):
        # The ">100x" claim is Table II's road-USA GB/LS ratio.
        assert paper.paper_ratio("sssp", "road-USA", "GB", "LS") > 100

    def test_failures_count(self):
        failures = sum(1 for row in paper.PAPER_TABLE2.values()
                       for cell in row if isinstance(cell, str))
        assert failures == 13  # 11 TO/OOM + 2 C

    def test_table1_has_nine_graphs(self):
        assert set(paper.PAPER_TABLE1) == set(paper.GRAPHS)


class TestReportGeneration:
    GRAPHS = ("road-USA-W",)
    APPS = ("bfs", "cc")

    def test_table2_comparison_renders(self):
        md = report.table2_comparison_md(self.APPS, self.GRAPHS)
        assert md.count("|") > 10
        assert "road-USA-W" in md
        assert "/" in md  # measured / published pairs

    def test_collect_ratios_positive(self):
        ratios = report.collect_ratios(self.APPS, self.GRAPHS)
        assert all(r > 0 for r in ratios["SS/LS"])
        assert all(r > 0 for r in ratios["GB/LS"])

    def test_headline_md_structure(self):
        md = report.headline_md(self.APPS, self.GRAPHS)
        assert "| claim | paper | measured | holds |" in md
        assert "Lonestar" in md

    def test_failure_annotation_md(self):
        # On this subset no cells fail in the paper -> header only.
        md = report.failure_annotation_md(self.APPS, self.GRAPHS)
        assert md.startswith("| app | graph | system |")
