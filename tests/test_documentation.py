"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def all_modules():
    names = []
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", all_modules())
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", all_modules())
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (
                        meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, \
        f"{module_name}: undocumented public items: {undocumented}"


def test_docs_exist():
    root = SRC.parent.parent
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                "docs/MODEL.md"):
        path = root / doc
        assert path.exists() and path.stat().st_size > 500, doc
