"""Lint-style guards for the TimeoutError-shadows-a-builtin hazard.

``repro.errors.TimeoutError`` intentionally mirrors the paper's "TO"
vocabulary, but it shares a name with the Python builtin.  A module that
does ``except TimeoutError`` without importing the repro class catches the
*builtin* (missing every simulated timeout); one that imports it unqualified
shadows the builtin (catching simulated timeouts where OS timeouts were
meant).  These tests pin the convention: the class is only ever referenced
qualified, as ``errors.TimeoutError`` (or the unambiguous alias
``errors.SimulatedTimeoutError``).
"""

import builtins
import pathlib
import re

from repro import errors

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: `from repro.errors import ..., TimeoutError, ...` — the shadowing import.
UNQUALIFIED_IMPORT = re.compile(
    r"from\s+repro\.errors\s+import\s+(?:\([^)]*\)|[^\n]*)", re.MULTILINE)

#: `TimeoutError` not preceded by a dot (i.e. not errors.TimeoutError).
BARE_NAME = re.compile(r"(?<![.\w])TimeoutError\b")


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


class TestTimeoutErrorHygiene:
    def test_class_identity(self):
        assert errors.TimeoutError is not builtins.TimeoutError
        assert issubclass(errors.TimeoutError, errors.ReproError)
        assert not issubclass(errors.TimeoutError, builtins.TimeoutError)
        assert errors.SimulatedTimeoutError is errors.TimeoutError

    def test_no_unqualified_import_of_repro_timeout_error(self):
        offenders = []
        for path in _source_files():
            if path == SRC / "errors.py":
                continue
            for match in UNQUALIFIED_IMPORT.finditer(path.read_text()):
                if BARE_NAME.search(match.group(0)):
                    offenders.append(str(path))
        assert not offenders, (
            "import repro.errors qualified (from repro import errors), "
            f"never TimeoutError by name: {offenders}")

    def test_no_bare_except_or_raise_timeout_error(self):
        offenders = []
        for path in _source_files():
            if path == SRC / "errors.py":
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("#")[0]
                if not ("except" in stripped or "raise" in stripped):
                    continue
                if BARE_NAME.search(stripped):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, (
            "always raise/catch the simulated timeout as "
            f"errors.TimeoutError: {offenders}")

    def test_wallclock_is_distinct_from_simulated_timeout(self):
        assert issubclass(errors.WallClockExceeded, errors.ReproError)
        assert not issubclass(errors.WallClockExceeded, errors.TimeoutError)
