"""Backend-specific behaviour: the §III differences between SS and GB."""

import numpy as np
import pytest

import repro.graphblas as gb
from repro.galoisblas import GaloisBLASBackend
from repro.graphblas.ops import LOR_LAND, PLUS_TIMES, binary, monoid
from repro.graphblas.vector import (
    REP_DENSE_ARRAY,
    REP_ORDERED_MAP,
    REP_SS_SPARSE,
    REP_UNORDERED_LIST,
)
from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.suitesparse import SuiteSparseBackend

from tests.conftest import pattern_matrix, random_digraph


@pytest.fixture
def csr():
    return random_digraph(n=120, m=900)[0]


class TestRuntimeFlavors:
    def test_schedules(self):
        ss = SuiteSparseBackend(Machine())
        gbb = GaloisBLASBackend(Machine())
        assert ss.runtime.default_schedule is Schedule.STATIC
        assert gbb.runtime.default_schedule is Schedule.STEAL
        assert ss._spmv_schedule("pull") is Schedule.DYNAMIC
        assert ss._mxm_schedule() is Schedule.DYNAMIC
        assert gbb._mxm_schedule() is None

    def test_huge_pages(self):
        assert not SuiteSparseBackend(Machine()).runtime.huge_pages
        assert GaloisBLASBackend(Machine()).runtime.huge_pages

    def test_call_overhead_relation(self):
        # Per-GrB-call fixed costs are within the same order; both stacks
        # are call-overhead-bound on round-dominated inputs (§V-B bfs).
        assert SuiteSparseBackend.call_overhead_ns > 0
        assert GaloisBLASBackend.call_overhead_ns > 0


class TestVectorRepresentations:
    def test_defaults(self):
        ss = SuiteSparseBackend(Machine())
        gbb = GaloisBLASBackend(Machine())
        assert gb.Vector(ss, gb.BOOL, 8).rep == REP_SS_SPARSE
        assert gb.Vector(gbb, gb.BOOL, 8).rep == REP_DENSE_ARRAY

    def test_pick_rep(self):
        gbb = GaloisBLASBackend(Machine())
        assert gbb.pick_rep(1000, 900) == REP_DENSE_ARRAY
        assert gbb.pick_rep(1000, 10, ordered=True) == REP_ORDERED_MAP
        assert gbb.pick_rep(1000, 10) == REP_UNORDERED_LIST

    def test_rep_lookup_cost(self):
        gbb = GaloisBLASBackend(Machine())
        dense = gb.Vector(gbb, gb.INT64, 100, rep=REP_DENSE_ARRAY)
        omap = gb.Vector(gbb, gb.INT64, 100, rep=REP_ORDERED_MAP)
        assert gbb._rep_lookup_instr(dense) == 0.0
        assert gbb._rep_lookup_instr(omap) > 0.0


class TestMaterializationModel:
    def test_ss_materializes_per_op(self, csr):
        """SuiteSparse allocates a fresh output per call; GaloisBLAS's
        dense arrays mutate in place (paper limitation #2)."""
        machines = {}
        for name, cls in (("ss", SuiteSparseBackend),
                          ("gb", GaloisBLASBackend)):
            backend = cls(Machine())
            v = gb.Vector(backend, gb.INT64, csr.nrows)
            start = backend.machine.allocator.total_allocations
            for _ in range(5):
                gb.assign(v, 1)
            machines[name] = (backend.machine.allocator.total_allocations
                              - start)
        assert machines["ss"] > machines["gb"]

    def test_ss_slower_per_vector_op(self, csr):
        times = {}
        for name, cls in (("ss", SuiteSparseBackend),
                          ("gb", GaloisBLASBackend)):
            backend = cls(Machine())
            v = gb.Vector(backend, gb.INT64, csr.nrows)
            backend.machine.reset_measurement()
            for _ in range(10):
                gb.assign(v, 1)
            times[name] = backend.machine.simulated_seconds()
        assert times["ss"] > times["gb"]

    def test_ss_mxm_inspector_allocations(self, csr):
        ss = SuiteSparseBackend(Machine())
        A = pattern_matrix(ss, csr)
        C = gb.Matrix(ss, gb.FP64, csr.nrows, csr.ncols)
        before = ss.machine.allocator.total_allocations
        gb.mxm(C, A, A, PLUS_TIMES)
        # inspector + workspace + output recharge (+ transposes if any).
        assert ss.machine.allocator.total_allocations - before >= 3
        # Temporaries were released.
        assert ss.machine.allocator.live_bytes < ss.machine.allocator.peak_bytes


class TestChargingEquivalence:
    def test_same_results_different_costs(self, csr):
        """The backends must agree numerically and differ only in cost."""
        from repro.lagraph import bfs

        outputs, times = [], []
        for cls in (SuiteSparseBackend, GaloisBLASBackend):
            backend = cls(Machine())
            A = pattern_matrix(backend, csr)
            backend.machine.reset_measurement()
            outputs.append(bfs(backend, A, 0).dense_values())
            times.append(backend.machine.simulated_seconds())
        assert np.array_equal(outputs[0], outputs[1])
        assert times[0] != times[1]

    def test_diag_opt_cuts_mxm_work(self):
        """GaloisBLAS's diagonal fast path does |B| work, not SpGEMM work."""
        results = {}
        for cls in (SuiteSparseBackend, GaloisBLASBackend):
            backend = cls(Machine())
            n = 200
            D = gb.Matrix.from_coo(backend, gb.FP64, n, n,
                                   np.arange(n), np.arange(n),
                                   np.ones(n))
            rng = np.random.default_rng(1)
            B = gb.Matrix.from_coo(backend, gb.FP64, n, n,
                                   rng.integers(0, n, 2000),
                                   rng.integers(0, n, 2000),
                                   np.ones(2000), dedup="last")
            C = gb.Matrix(backend, gb.FP64, n, n)
            backend.machine.reset_measurement()
            gb.mxm(C, D, B, PLUS_TIMES)
            results[cls.__name__] = backend.machine.counters.instructions
        assert (results["GaloisBLASBackend"]
                < results["SuiteSparseBackend"] / 2)

    def test_mask_bytes_charged_in_push(self, csr):
        """Masked push mxv pays per-candidate mask reads (Table IV)."""
        backend = GaloisBLASBackend(Machine())
        A = pattern_matrix(backend, csr)
        frontier = gb.Vector(backend, gb.BOOL, csr.nrows)
        frontier.set_element(0, True)
        dist = gb.Vector(backend, gb.INT32, csr.nrows)
        gb.assign(dist, 0)
        backend.machine.reset_measurement()
        gb.vxm(frontier, frontier, A, LOR_LAND, mask=dist,
               desc=gb.Descriptor(mask_comp=True, replace=True))
        masked_mem = backend.machine.counters.memory_accesses()

        backend2 = GaloisBLASBackend(Machine())
        A2 = pattern_matrix(backend2, csr)
        f2 = gb.Vector(backend2, gb.BOOL, csr.nrows)
        f2.set_element(0, True)
        backend2.machine.reset_measurement()
        gb.vxm(f2, f2, A2, LOR_LAND)
        unmasked_mem = backend2.machine.counters.memory_accesses()
        assert masked_mem > unmasked_mem
