"""Round-trip tests for the graph interchange formats."""

import numpy as np
import pytest

from repro.errors import InvalidValue
from repro.graphs.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.sparse.csr import build_csr


@pytest.fixture
def weighted():
    return build_csr(5, 5, [0, 1, 4, 2], [1, 2, 0, 2],
                     np.array([7, 3, 9, 1], dtype=np.int64))


@pytest.fixture
def pattern():
    return build_csr(4, 4, [0, 3], [2, 1], None)


class TestEdgeList:
    def test_weighted_roundtrip(self, tmp_path, weighted):
        path = str(tmp_path / "g.wel")
        write_edge_list(path, weighted, weighted.values)
        csr, w = read_edge_list(path)
        assert (csr.to_scipy() != weighted.to_scipy()).nnz == 0

    def test_pattern_roundtrip(self, tmp_path, pattern):
        path = str(tmp_path / "g.el")
        write_edge_list(path, pattern)
        csr, w = read_edge_list(path)
        assert w is None
        assert csr.nvals == pattern.nvals

    def test_explicit_nnodes(self, tmp_path, pattern):
        path = str(tmp_path / "g.el")
        write_edge_list(path, pattern)
        csr, _ = read_edge_list(path, nnodes=10)
        assert csr.nrows == 10

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# header\n0 1\n\n1 2\n")
        csr, _ = read_edge_list(str(path))
        assert csr.nvals == 2

    def test_mixed_weighting_rejected(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n1 2 5\n")
        with pytest.raises(InvalidValue):
            read_edge_list(str(path))

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1 2 3\n")
        with pytest.raises(InvalidValue):
            read_edge_list(str(path))

    def test_weights_length_checked(self, tmp_path, weighted):
        with pytest.raises(InvalidValue):
            write_edge_list(str(tmp_path / "g.wel"), weighted,
                            np.array([1]))


class TestMatrixMarket:
    def test_integer_roundtrip(self, tmp_path, weighted):
        path = str(tmp_path / "g.mtx")
        write_matrix_market(path, weighted, comment="test graph")
        csr, w = read_matrix_market(path)
        assert (csr.to_scipy() != weighted.to_scipy()).nnz == 0
        assert w.dtype == np.int64

    def test_pattern_roundtrip(self, tmp_path, pattern):
        path = str(tmp_path / "g.mtx")
        write_matrix_market(path, pattern)
        csr, w = read_matrix_market(path)
        assert w is None and csr.nvals == pattern.nvals

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                        "3 3 2\n2 1\n3 2\n")
        csr, _ = read_matrix_market(str(path))
        assert csr.nvals == 4
        assert csr.get(0, 1) is True and csr.get(1, 0) is True

    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%NotMatrixMarket\n1 1 0\n")
        with pytest.raises(InvalidValue):
            read_matrix_market(str(path))

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n"
                        "1 1 0\n")
        with pytest.raises(InvalidValue):
            read_matrix_market(str(path))

    def test_real_field(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n1 2 3.5\n")
        csr, w = read_matrix_market(str(path))
        assert w[0] == 3.5

    def test_usable_as_dataset(self, tmp_path, weighted):
        # A file-loaded graph drives the full stack.
        from repro.galois.graph import Graph
        from repro.lonestar import bfs
        from repro.perf.machine import Machine
        from repro.runtime.galois_rt import GaloisRuntime

        path = str(tmp_path / "g.mtx")
        write_matrix_market(path, weighted)
        csr, w = read_matrix_market(path)
        dist = bfs(Graph(GaloisRuntime(Machine()), csr), 0)
        assert dist[0] == 1
