"""Unit tests for counters and the analytic cache model."""

import numpy as np
import pytest

from repro.errors import InvalidValue
from repro.perf.counters import PerfCounters
from repro.perf.memmodel import (
    AccessPattern,
    AccessStream,
    CacheHierarchy,
    LINE_BYTES,
    XEON_GOLD_5120,
)


class TestCounters:
    def test_add_level_hits(self):
        c = PerfCounters()
        c.add_level_hits({"l1": 10, "dram": 3})
        assert c.l1 == 10 and c.dram == 3
        assert c.dram_bytes == 3 * 64
        assert c.memory_accesses() == 13

    def test_snapshot_diff(self):
        c = PerfCounters(instructions=100, l1=5)
        snap = c.snapshot()
        c.instructions += 50
        d = c.diff(snap)
        assert d.instructions == 50 and d.l1 == 0

    def test_merge(self):
        a = PerfCounters(instructions=1, dram=2)
        b = PerfCounters(instructions=10, dram=20)
        a.merge(b)
        assert a.instructions == 11 and a.dram == 22

    def test_reset(self):
        c = PerfCounters(instructions=5)
        c.reset()
        assert c.instructions == 0

    def test_ratio_to(self):
        a = PerfCounters(instructions=20, l1=10)
        b = PerfCounters(instructions=10, l1=10)
        r = a.ratio_to(b)
        assert r["instructions"] == 2.0
        assert r["l1"] == 1.0

    def test_ratio_zero_denominator(self):
        a = PerfCounters(dram=5)
        b = PerfCounters()
        r = a.ratio_to(b)
        assert r["dram"] == float("inf")
        assert r["l2"] == 1.0  # both zero reads as parity

    def test_as_dict(self):
        d = PerfCounters(l1=1, l2=2).as_dict()
        assert d["memory_accesses"] == 3


class TestAccessStream:
    def test_negative_sizes_rejected(self):
        with pytest.raises(InvalidValue):
            AccessStream(-1, 10)
        with pytest.raises(InvalidValue):
            AccessStream(10, -1)
        with pytest.raises(InvalidValue):
            AccessStream(10, 10, elem_bytes=0)


class TestCacheHierarchy:
    def test_residency_thresholds(self):
        h = CacheHierarchy()
        assert h.residency(16 * 1024) == "l1"
        assert h.residency(512 * 1024) == "l2"
        assert h.residency(10 * 2**20) == "l3"
        assert h.residency(100 * 2**20) == "dram"

    def test_byte_scale_promotes_to_dram(self):
        # A 20 KB array at 1000x scale is a 20 MB array: L3-resident becomes
        # the decision basis, not the scaled-down size.
        h = CacheHierarchy(byte_scale=1000.0)
        assert h.residency(20 * 1024) == "dram"
        h1 = CacheHierarchy(byte_scale=1.0)
        assert h1.residency(20 * 1024) == "l1"

    def test_set_byte_scale_validates(self):
        h = CacheHierarchy()
        with pytest.raises(InvalidValue):
            h.set_byte_scale(0)

    def test_sequential_one_miss_per_line(self):
        h = CacheHierarchy()
        n = 1024
        stream = AccessStream(4 * 2**20, n, AccessPattern.SEQUENTIAL,
                              elem_bytes=4)
        hits = h.classify(stream)
        per_line = LINE_BYTES // 4
        assert hits["l3"] == n // per_line
        assert hits["l1"] == n - n // per_line
        assert sum(hits.values()) == n

    def test_random_all_at_residency(self):
        h = CacheHierarchy()
        stream = AccessStream(200 * 2**20, 100, AccessPattern.RANDOM)
        assert h.classify(stream) == {"dram": 100}

    def test_strided_splits_half(self):
        h = CacheHierarchy()
        stream = AccessStream(200 * 2**20, 100, AccessPattern.STRIDED)
        hits = h.classify(stream)
        assert hits["dram"] == 50 and hits["l1"] == 50

    def test_l1_resident_all_l1(self):
        h = CacheHierarchy()
        stream = AccessStream(1024, 50, AccessPattern.RANDOM)
        assert h.classify(stream) == {"l1": 50}

    def test_zero_accesses(self):
        h = CacheHierarchy()
        assert h.classify(AccessStream(100, 0)) == {}

    def test_time_ns_uses_latencies(self):
        h = CacheHierarchy()
        t = h.time_ns({"l1": 10, "dram": 1})
        lat = XEON_GOLD_5120.latency_ns
        assert t == pytest.approx(10 * lat[0] + lat[3])
