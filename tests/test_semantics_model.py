"""GraphBLAS semantics vs a brute-force dict-based reference model.

The reference implements the GraphBLAS execution semantics (compute T,
apply accumulator, write through the mask with optional REPLACE) in the
most literal way possible over {index: value} dicts; hypothesis drives
random operations, masks, descriptors and accumulators against it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.graphblas as gb
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.ops import binary, monoid, semiring
from repro.perf.machine import Machine
from repro.suitesparse import SuiteSparseBackend

N = 8

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

sparse_vec = st.dictionaries(st.integers(0, N - 1),
                             st.integers(-4, 4), max_size=N)
matrix_entries = st.dictionaries(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
    st.integers(1, 5), max_size=20)
desc_flags = st.tuples(st.booleans(), st.booleans(), st.booleans())


def make_vector(backend, entries, gtype=gb.INT64):
    v = gb.Vector(backend, gtype, N)
    for i, val in entries.items():
        v.set_element(i, val)
    return v


def make_matrix(backend, entries):
    rows = [r for r, _ in entries]
    cols = [c for _, c in entries]
    vals = [entries[k] for k in entries]
    return gb.Matrix.from_coo(backend, gb.INT64, N, N, rows, cols, vals,
                              label="A")


# ----------------------------------------------------------------------
# Reference model
# ----------------------------------------------------------------------

def ref_mask_allowed(mask, comp, structural):
    allowed = set()
    for i in range(N):
        present = i in mask
        truthy = present and (structural or mask[i] != 0)
        if truthy != comp:
            allowed.add(i)
    return allowed


def ref_write_back(c, t, mask, accum, comp, structural, replace):
    allowed = (set(range(N)) if mask is None and not comp
               else ref_mask_allowed(mask or {}, comp, structural))
    z = dict(c)
    for i, tv in t.items():
        z[i] = accum(c[i], tv) if (accum and i in c) else tv
    out = {}
    for i in range(N):
        if i in allowed:
            if i in z:
                out[i] = z[i]
        elif not replace and i in c:
            out[i] = c[i]
    return out


def ref_vxm(x, entries, add, mult):
    out = {}
    for (r, c), a in entries.items():
        if r in x:
            term = mult(x[r], a)
            out[c] = add(out[c], term) if c in out else term
    return out


def as_dict(v):
    idx, vals = v.to_pairs()
    return {int(i): int(val) for i, val in zip(idx, vals)}


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

class TestVxmAgainstModel:
    @SETTINGS
    @given(sparse_vec, matrix_entries,
           st.sampled_from(["plus_times", "min_plus", "plus_first"]))
    def test_unmasked(self, x, entries, ring_name):
        backend = SuiteSparseBackend(Machine())
        ring = semiring(ring_name)
        u = make_vector(backend, x)
        A = make_matrix(backend, entries)
        w = gb.Vector(backend, gb.INT64, N)
        gb.vxm(w, u, A, ring)

        py_add = {"plus": lambda a, b: a + b, "min": min}[ring.add.name]
        py_mult = {"times": lambda a, b: a * b,
                   "plus": lambda a, b: a + b,
                   "first": lambda a, b: a}[ring.mult.name]
        expect = ref_vxm(x, entries, py_add, py_mult)
        assert as_dict(w) == expect


class TestAssignAgainstModel:
    @SETTINGS
    @given(sparse_vec, sparse_vec, desc_flags, st.booleans(),
           st.integers(-3, 3))
    def test_masked_scalar_assign(self, c0, mask, flags, use_accum, value):
        comp, structural, replace = flags
        backend = SuiteSparseBackend(Machine())
        w = make_vector(backend, c0)
        m = make_vector(backend, mask)
        accum_op = binary("plus") if use_accum else None
        gb.assign(w, value, mask=m,
                  accum=accum_op,
                  desc=Descriptor(mask_comp=comp, mask_structure=structural,
                                  replace=replace))
        t = {i: value for i in range(N)}
        expect = ref_write_back(
            c0, t, mask, (lambda a, b: a + b) if use_accum else None,
            comp, structural, replace)
        assert as_dict(w) == expect


class TestEWiseAgainstModel:
    @SETTINGS
    @given(sparse_vec, sparse_vec,
           st.sampled_from(["plus", "min", "max"]))
    def test_add_union(self, a, b, kind):
        backend = SuiteSparseBackend(Machine())
        u = make_vector(backend, a)
        v = make_vector(backend, b)
        w = gb.Vector(backend, gb.INT64, N)
        gb.eWiseAdd(w, u, v, monoid(kind))
        combine = {"plus": lambda x, y: x + y, "min": min,
                   "max": max}[kind]
        expect = {}
        for i in set(a) | set(b):
            if i in a and i in b:
                expect[i] = combine(a[i], b[i])
            else:
                expect[i] = a.get(i, b.get(i))
        assert as_dict(w) == expect

    @SETTINGS
    @given(sparse_vec, sparse_vec)
    def test_mult_intersection(self, a, b):
        backend = SuiteSparseBackend(Machine())
        u = make_vector(backend, a)
        v = make_vector(backend, b)
        w = gb.Vector(backend, gb.INT64, N)
        gb.eWiseMult(w, u, v, binary("times"))
        expect = {i: a[i] * b[i] for i in set(a) & set(b)}
        assert as_dict(w) == expect


class TestExtractAgainstModel:
    @SETTINGS
    @given(sparse_vec, st.lists(st.integers(0, N - 1), min_size=1,
                                max_size=N))
    def test_gather(self, src, indices):
        backend = SuiteSparseBackend(Machine())
        u = make_vector(backend, src)
        w = gb.Vector(backend, gb.INT64, len(indices))
        gb.extract(w, u, indices)
        idx, vals = w.to_pairs()
        got = {int(i): int(v) for i, v in zip(idx, vals)}
        expect = {k: src[j] for k, j in enumerate(indices) if j in src}
        assert got == expect
