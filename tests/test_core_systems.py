"""Systems, experiment cells, and failure modeling.

These run real (small) dataset cells, so they double as integration tests
of the full stack: dataset -> system instance -> algorithm -> machine.
"""

import numpy as np
import pytest

from repro.core.experiments import (
    OK,
    OOM,
    TIMEOUT,
    CellResult,
    clear_cache,
    load_results,
    run_cell,
    save_results,
)
from repro.core.systems import SYSTEMS, SystemInstance, make_system
from repro.errors import InvalidValue
from repro.graphs.datasets import get_dataset

SMALL = "road-USA-W"


class TestSystemFactory:
    def test_known_codes(self):
        for code in SYSTEMS:
            assert make_system(code).code == code

    def test_unknown_code(self):
        with pytest.raises(InvalidValue):
            make_system("GPU")

    def test_instance_wiring(self):
        ds = get_dataset(SMALL)
        ss = SystemInstance("SS", ds)
        assert ss.backend.name == "suitesparse"
        assert ss.runtime.name == "openmp"
        gbi = SystemInstance("GB", ds)
        assert gbi.backend.name == "galoisblas"
        assert gbi.runtime.huge_pages
        ls = SystemInstance("LS", ds)
        assert ls.backend is None
        assert ls.runtime.name == "galois"

    def test_allocator_flavors(self):
        ds = get_dataset(SMALL)
        ss = SystemInstance("SS", ds)
        gbi = SystemInstance("GB", ds)
        assert ss.machine.allocator.slack_factor > 1.0
        assert gbi.machine.allocator.prealloc_bytes > 0
        assert ss.machine.allocator.prealloc_bytes == 0

    def test_byte_and_time_scale_from_dataset(self):
        ds = get_dataset(SMALL)
        inst = SystemInstance("LS", ds)
        assert inst.machine.hierarchy.byte_scale == pytest.approx(ds.scale)
        assert inst.machine.time_scale == pytest.approx(ds.scale)

    def test_unknown_app(self):
        inst = SystemInstance("LS", get_dataset(SMALL))
        with pytest.raises(InvalidValue):
            inst.run("apsp")


class TestRunCell:
    def test_cell_result_fields(self):
        r = run_cell("LS", "bfs", SMALL)
        assert r.status == OK
        assert r.seconds > 0
        assert r.mrss_gb > 0
        assert r.counters["instructions"] > 0
        assert r.display() == f"{r.seconds:.2f}"

    def test_memoized(self):
        a = run_cell("LS", "bfs", SMALL)
        b = run_cell("LS", "bfs", SMALL)
        assert a is b

    def test_thread_sweep(self):
        clear_cache()
        r = run_cell("LS", "bfs", SMALL, sweep_threads=True)
        assert set(r.thread_sweep) == {1, 2, 4, 8, 16, 32, 56}
        assert r.thread_sweep[1] >= r.thread_sweep[56]

    def test_timeout_status(self):
        clear_cache()
        r = run_cell("GB", "sssp", SMALL, timeout=0.001, use_cache=False)
        assert r.status == TIMEOUT
        assert r.seconds is None
        assert r.display() == "TO"

    def test_save_load_roundtrip(self, tmp_path):
        clear_cache()
        run_cell("LS", "bfs", SMALL)
        path = str(tmp_path / "cells.json")
        save_results(path)
        clear_cache()
        assert load_results(path) >= 1
        r = run_cell("LS", "bfs", SMALL)
        assert r.status == OK

    def test_load_missing_file(self, tmp_path):
        assert load_results(str(tmp_path / "nope.json")) == 0


class TestCrossSystemAnswers:
    """The three stacks must compute identical answers (paper's premise)."""

    @pytest.mark.parametrize("app", ["bfs", "cc", "pr", "sssp", "tc",
                                     "ktruss"])
    def test_answers_agree(self, app):
        results = [run_cell(s, app, SMALL) for s in SYSTEMS]
        assert all(r.status == OK for r in results)
        answers = {r.answer for r in results}
        assert len(answers) == 1, f"{app}: {[(r.system, r.answer) for r in results]}"

    def test_rmat22_answers_agree_bfs_cc_tc(self):
        for app in ("bfs", "cc", "tc"):
            answers = {run_cell(s, app, "rmat22").answer for s in SYSTEMS}
            assert len(answers) == 1


class TestPerformanceShape:
    """The paper's headline orderings on representative cells."""

    def test_lonestar_fastest_sssp_on_road(self):
        times = {s: run_cell(s, "sssp", SMALL).seconds for s in SYSTEMS}
        assert times["LS"] < times["GB"] <= times["SS"] * 1.5
        # Asynchrony: >10x on the high-diameter road network (paper >100x).
        assert times["GB"] / times["LS"] > 10

    def test_lonestar_fastest_bfs_on_road(self):
        times = {s: run_cell(s, "bfs", SMALL).seconds for s in SYSTEMS}
        assert times["LS"] < times["GB"]
        assert times["LS"] < times["SS"]

    def test_afforest_beats_matrix_cc(self):
        times = {s: run_cell(s, "cc", SMALL).seconds for s in SYSTEMS}
        assert times["LS"] * 1.5 < min(times["SS"], times["GB"])

    def test_gb_mostly_beats_ss(self):
        wins = 0
        for app in ("bfs", "cc", "pr", "sssp"):
            ss = run_cell("SS", app, SMALL).seconds
            gbt = run_cell("GB", app, SMALL).seconds
            wins += gbt <= ss
        assert wins >= 3

    def test_counters_gb_heavier_than_ls(self):
        gb_c = run_cell("GB", "bfs", SMALL).counters
        ls_c = run_cell("LS", "bfs", SMALL).counters
        assert gb_c["instructions"] > ls_c["instructions"]
        assert gb_c["loops"] > ls_c["loops"]

    def test_mrss_prealloc_dominates_small_graph(self):
        # Table III: GB/LS MRSS above SS's on small graphs.
        ss = run_cell("SS", "bfs", SMALL).mrss_gb
        gbm = run_cell("GB", "bfs", SMALL).mrss_gb
        ls = run_cell("LS", "bfs", SMALL).mrss_gb
        assert gbm > ss and ls > ss
