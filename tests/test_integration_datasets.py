"""Wider cross-system integration: more datasets, all applications.

The core suite covers road-USA-W and rmat22; these runs extend the
cross-stack answer check to a web crawl and the protein graph — the two
structurally hardest twins (clustering and weight pathology).
"""

import pytest

from repro.core.experiments import OK, run_cell
from repro.core.systems import SYSTEMS


@pytest.mark.parametrize("app", ["bfs", "cc", "pr", "sssp", "tc"])
def test_indochina_answers_agree(app):
    results = [run_cell(s, app, "indochina04") for s in SYSTEMS]
    assert all(r.status == OK for r in results)
    assert len({r.answer for r in results}) == 1


@pytest.mark.parametrize("app", ["bfs", "cc", "sssp", "tc", "ktruss"])
def test_eukarya_answers_agree(app):
    results = [run_cell(s, app, "eukarya") for s in SYSTEMS]
    assert all(r.status == OK for r in results)
    assert len({r.answer for r in results}) == 1


def test_eukarya_sssp_asynchrony_gap():
    """The wide-range-weights pathology: bulk-sync pays per bucket."""
    gb_cell = run_cell("GB", "sssp", "eukarya")
    ls_cell = run_cell("LS", "sssp", "eukarya")
    assert gb_cell.seconds / ls_cell.seconds > 5


def test_indochina_tc_materialization_gap():
    """Web-crawl clustering: tc's intermediate matrices cost the matrix
    API a multiple of the fused scalar count."""
    gb_cell = run_cell("GB", "tc", "indochina04")
    ls_cell = run_cell("LS", "tc", "indochina04")
    assert gb_cell.seconds / ls_cell.seconds > 2


def test_paper_row_order_preserved_bfs():
    """LS's bfs win must hold on every dataset class, as in Table II."""
    for graph in ("indochina04", "eukarya"):
        cells = {s: run_cell(s, "bfs", graph) for s in SYSTEMS}
        assert cells["LS"].seconds == min(c.seconds for c in cells.values())
