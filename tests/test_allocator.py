"""Unit tests for the tracking allocator (MRSS / OOM modeling)."""

import pytest

from repro.errors import InvalidValue, OutOfMemoryError
from repro.perf.allocator import TrackingAllocator


class TestBasics:
    def test_live_and_peak(self):
        a = TrackingAllocator()
        h1 = a.allocate(100, "x")
        h2 = a.allocate(200, "y")
        assert a.live_bytes == 300
        a.free(h1)
        assert a.live_bytes == 200
        assert a.mrss_bytes() == 300

    def test_free_idempotent(self):
        a = TrackingAllocator()
        h = a.allocate(50)
        a.free(h)
        a.free(h)
        assert a.live_bytes == 0

    def test_negative_alloc(self):
        with pytest.raises(InvalidValue):
            TrackingAllocator().allocate(-1)

    def test_stats(self):
        a = TrackingAllocator()
        a.allocate(10)
        a.allocate(20)
        assert a.total_allocations == 2
        assert a.total_allocated_bytes == 30


class TestSlack:
    def test_slack_inflates_charges(self):
        a = TrackingAllocator(slack_factor=1.5)
        a.allocate(100)
        assert a.live_bytes == 150

    def test_slack_below_one_rejected(self):
        with pytest.raises(InvalidValue):
            TrackingAllocator(slack_factor=0.9)


class TestPrealloc:
    def test_prealloc_floor(self):
        # Galois's preallocated pages dominate small-graph MRSS (§V-A3).
        a = TrackingAllocator(prealloc_bytes=1000)
        a.allocate(100)
        assert a.resident_bytes() == 1000
        assert a.mrss_bytes() == 1000

    def test_growth_past_prealloc(self):
        a = TrackingAllocator(prealloc_bytes=1000)
        a.allocate(5000)
        assert a.resident_bytes() == 5000


class TestOOM:
    def test_oom_raises_and_rolls_back(self):
        a = TrackingAllocator(capacity_bytes=1000)
        a.allocate(800)
        with pytest.raises(OutOfMemoryError):
            a.allocate(300)
        assert a.live_bytes == 800  # failed allocation not charged

    def test_oom_message_has_label(self):
        a = TrackingAllocator(capacity_bytes=10)
        with pytest.raises(OutOfMemoryError, match="big-matrix"):
            a.allocate(100, "big-matrix")

    def test_reset_peak(self):
        a = TrackingAllocator()
        h = a.allocate(100)
        a.free(h)
        a.reset_peak()
        assert a.mrss_bytes() == 0
