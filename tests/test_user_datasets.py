"""User-supplied datasets registered from graph files."""

import numpy as np
import pytest

from repro.core.experiments import run_cell
from repro.errors import InvalidValue
from repro.graphs.datasets import (
    get_dataset,
    register_file_dataset,
    unregister_dataset,
)
from repro.graphs.io import write_edge_list, write_matrix_market
from repro.sparse.csr import build_csr


@pytest.fixture
def graph_file(tmp_path):
    rng = np.random.default_rng(4)
    n, m = 200, 1200
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    csr = build_csr(n, n, src[keep], dst[keep], None, dedup="last")
    path = str(tmp_path / "user.el")
    write_edge_list(path, csr)
    yield path, csr
    unregister_dataset("user-graph")


class TestRegisterFileDataset:
    def test_register_and_build(self, graph_file):
        path, csr = graph_file
        ds = register_file_dataset("user-graph", path)
        built, weights = ds.build()
        assert built.nvals == csr.nvals
        assert weights is not None  # random weights attached
        assert ds.scale == pytest.approx(1.0)

    def test_runs_through_the_harness(self, graph_file):
        path, _ = graph_file
        register_file_dataset("user-graph", path)
        answers = {s: run_cell(s, "bfs", "user-graph", use_cache=False).answer
                   for s in ("SS", "GB", "LS")}
        assert len(set(answers.values())) == 1

    def test_paper_e_sets_scale(self, graph_file):
        path, csr = graph_file
        ds = register_file_dataset("user-graph", path,
                                   paper_e=1000 * csr.nvals)
        assert ds.scale == pytest.approx(1000.0)

    def test_mtx_input(self, tmp_path, graph_file):
        _, csr = graph_file
        path = str(tmp_path / "user.mtx")
        write_matrix_market(path, csr)
        ds = register_file_dataset("user-mtx", path)
        try:
            built, _ = ds.build()
            assert built.nvals == csr.nvals
        finally:
            unregister_dataset("user-mtx")

    def test_builtin_protected(self):
        with pytest.raises(InvalidValue):
            unregister_dataset("rmat22")

    def test_lookup_after_register(self, graph_file):
        path, _ = graph_file
        register_file_dataset("user-graph", path)
        assert get_dataset("user-graph").kind == "user graph"
