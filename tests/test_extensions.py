"""Extension features: direction-optimizing bfs, Dijkstra, fused backend."""

import networkx as nx
import numpy as np
import pytest

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.galoisblas.fused import FUSABLE, FusedGaloisBLASBackend
from repro.lagraph import bfs as lagraph_bfs
from repro.lagraph import fastsv
from repro.lonestar import bfs, bfs_direction_optimizing, delta_stepping, dijkstra
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

from tests.conftest import nx_digraph, pattern_matrix, random_digraph


@pytest.fixture(scope="module")
def oracle():
    csr, sym = random_digraph(n=200, m=2500)
    return csr, sym


def fresh_graph(csr, weights=None):
    return Graph(GaloisRuntime(Machine()), csr, weights)


class TestDirectionOptimizingBfs:
    def test_matches_baseline(self, oracle):
        csr = oracle[0]
        for source in (0, 7, 123):
            a = bfs(fresh_graph(csr), source)
            b = bfs_direction_optimizing(fresh_graph(csr), source)
            assert np.array_equal(a, b)

    def test_pull_rounds_engage_on_dense_frontier(self, oracle):
        # On a dense random digraph the middle round flips to pull and
        # scans fewer edges than full push would.
        csr = oracle[0]
        g = fresh_graph(csr)
        bfs_direction_optimizing(g, 0)
        g2 = fresh_graph(csr)
        bfs(g2, 0)
        do_items = g.runtime.machine.counters.work_items
        assert do_items != g2.runtime.machine.counters.work_items

    def test_isolated_source(self):
        from repro.sparse.csr import build_csr

        csr = build_csr(4, 4, [1, 2], [2, 3], None)
        d = bfs_direction_optimizing(fresh_graph(csr), 0)
        assert d[0] == 1 and d[1] == 0


class TestDijkstra:
    def test_matches_delta_stepping(self, oracle):
        csr = oracle[0]
        a = dijkstra(fresh_graph(csr, csr.values), 0)
        b = delta_stepping(fresh_graph(csr, csr.values), 0, delta=32)
        assert np.array_equal(a, b)

    def test_matches_networkx(self, oracle):
        csr = oracle[0]
        d = dijkstra(fresh_graph(csr, csr.values), 5)
        ref = nx.single_source_dijkstra_path_length(nx_digraph(csr), 5)
        inf = np.iinfo(np.int64).max
        assert all(d[v] == ref.get(v, inf) for v in range(csr.nrows))

    def test_requires_weights(self, oracle):
        with pytest.raises(ValueError):
            dijkstra(fresh_graph(oracle[0]), 0)

    def test_charged_serially_without_barriers(self, oracle):
        csr = oracle[0]
        g = fresh_graph(csr, csr.values)
        dijkstra(g, 0)
        # Only the distance-array initialization is a barrier loop; the
        # priority-queue processing is one barrier-free worklist charge.
        barriers = [r for r in g.runtime.machine.loop_records if r.barrier]
        assert len(barriers) <= 1


class TestFusedBackend:
    def test_results_identical(self, oracle):
        csr = oracle[0]
        out = []
        for cls in (GaloisBLASBackend, FusedGaloisBLASBackend):
            backend = cls(Machine())
            A = pattern_matrix(backend, csr)
            out.append(lagraph_bfs(backend, A, 0).dense_values())
        assert np.array_equal(out[0], out[1])

    def test_fusion_reduces_time_and_loops(self, oracle):
        csr = oracle[0]
        machines = {}
        for name, cls in (("plain", GaloisBLASBackend),
                          ("fused", FusedGaloisBLASBackend)):
            backend = cls(Machine())
            A = pattern_matrix(backend, csr)
            backend.machine.reset_measurement()
            lagraph_bfs(backend, A, 0)
            machines[name] = backend
        assert (machines["fused"].machine.simulated_seconds()
                < machines["plain"].machine.simulated_seconds())
        assert machines["fused"].fused_calls > 0

    def test_fastsv_on_fused_backend(self, oracle):
        sym = oracle[1]
        backend = FusedGaloisBLASBackend(Machine())
        A = pattern_matrix(backend, sym, "Asym")
        labels = fastsv(backend, A).dense_values()
        plain = GaloisBLASBackend(Machine())
        ref = fastsv(plain, pattern_matrix(plain, sym, "Asym")).dense_values()
        assert np.array_equal(labels, ref)

    def test_mxm_breaks_chain(self):
        backend = FusedGaloisBLASBackend(Machine())
        assert "mxm" not in FUSABLE
        v = gb.Vector(backend, gb.INT64, 8)
        gb.assign(v, 1)
        gb.assign(v, 2)  # fused with the previous assign
        assert backend.fused_calls == 1
        A = gb.Matrix.from_coo(backend, gb.FP64, 8, 8, [0], [1], [1.0])
        C = gb.Matrix(backend, gb.FP64, 8, 8)
        from repro.graphblas.ops import PLUS_TIMES

        gb.mxm(C, A, A, PLUS_TIMES)
        gb.assign(v, 3)  # chain broken by mxm: not fused
        assert backend.fused_calls == 1
