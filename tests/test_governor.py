"""End-to-end resource governance: deadlines, memory budgets, shedding,
and graceful drain.

The fast half exercises the policy pieces in isolation — the cooperative
:class:`~repro.engine.cancel.CancelToken`, the acting fault kinds
(``memhog``/``slow``), the governor's pure admission arithmetic, the
queue's deadline column under a fake clock, the supervisor's pre-dispatch
cancellation and memory-deferral paths (no workers spawned), the API's
503 + Retry-After shedding, and ``repro-serve status --json``.

The slow half spawns real workers for the acceptance drills: a
tight-deadline job must end ``CANCELLED`` with a partial trace, a
``memhog``-faulted cell must end ``OOM`` after exactly one sharded retry,
and ``kill -TERM`` mid-drain must exit 0 with nothing leased and the
finished grid byte-identical to a sequential clean run with the governor
enabled.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import errors, faults
from repro.faults import plan
from repro.core import experiments
from repro.engine import cancel
from repro.engine.registry import system_codes
from repro.service import governor
from repro.service.api import make_server
from repro.service.breaker import BreakerBoard
from repro.service.config import QueueConfig, ServiceConfig
from repro.service.queue import DEAD, DONE, QUEUED, JobQueue
from repro.service.queue_supervisor import (MAX_MEM_DEFERRALS,
                                            QueueSupervisor)
from repro.service.serve import main as serve_main

GRAPH = "road-USA-W"

FAST = ServiceConfig(heartbeat_interval=0.05, heartbeat_timeout=10.0,
                     cell_deadline=8.0, cancel_grace=5.0)


class FakeClock:
    """A settable queue clock (wall time must be injectable, never read)."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def snapshot_bytes() -> str:
    rows = [experiments.cell_to_row(v)
            for v in experiments.all_results().values()]
    rows.sort(key=lambda r: (r["system"], r["app"], r["graph"]))
    return json.dumps(rows, sort_keys=True, indent=1,
                      default=experiments._jsonify)


# ----------------------------------------------------------------------
# Cooperative cancellation primitive
# ----------------------------------------------------------------------
class TestCancelToken:
    def test_check_is_noop_without_token(self):
        cancel.clear()
        cancel.check()  # must not raise

    def test_manual_cancel_trips_check(self):
        token = cancel.CancelToken()
        with cancel.scope(token):
            cancel.check()
            token.cancel("drain")
            with pytest.raises(errors.Cancelled) as exc:
                cancel.check()
            assert exc.value.reason == "drain"
        cancel.check()  # scope restored

    def test_first_reason_wins(self):
        token = cancel.CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.tripped() == "first"

    def test_deadline_trips_with_fake_clock(self):
        clock = FakeClock(now=50.0)
        token = cancel.CancelToken(deadline=51.0, clock=clock)
        assert token.tripped() is None
        clock.advance(2.0)
        assert token.tripped() == "deadline"
        clock.advance(-2.0)  # a tripped token stays tripped
        assert token.tripped() == "deadline"

    def test_scope_restores_previous_token(self):
        outer = cancel.CancelToken()
        with cancel.scope(outer):
            inner = cancel.CancelToken()
            with cancel.scope(inner):
                assert cancel.active_token() is inner
            assert cancel.active_token() is outer
        assert cancel.active_token() is None

    @pytest.mark.slow
    def test_expired_token_cancels_cell_with_partial_trace(
            self, isolated_grid):
        clock = FakeClock(now=10.0)
        token = cancel.CancelToken(deadline=5.0, clock=clock)
        with cancel.scope(token):
            result = experiments.run_cell("GB", "pr", GRAPH,
                                          use_cache=False)
        assert result.status == experiments.CANCELLED
        assert result.seconds is None
        assert result.error["type"] == "Cancelled"
        assert "deadline" in result.error["message"]


# ----------------------------------------------------------------------
# Acting fault kinds (memhog / slow)
# ----------------------------------------------------------------------
class TestActingFaults:
    def test_parse_memhog_and_slow_specs(self):
        spec = plan.parse_spec("kernel:memhog:mb=64:times=2")
        assert spec.kind == "memhog" and spec.mb == 64 and spec.times == 2
        spec = plan.parse_spec("kernel:slow:ms=250")
        assert spec.kind == "slow" and spec.ms == 250

    def test_acting_kinds_cannot_be_transient(self):
        with pytest.raises(errors.InvalidValue):
            plan.parse_spec("kernel:memhog:transient")

    def test_memhog_pins_ballast(self):
        plan = faults.plan_from_env(
            {"REPRO_FAULTS": "kernel:memhog:mb=1:times=2"})
        plan.trip("kernel")
        plan.trip("kernel")
        plan.trip("kernel")  # past times=2: no further ballast
        assert len(plan.ballast) == 2
        assert all(block.nbytes == 1 << 20 for block in plan.ballast)
        assert [f[2] for f in plan.fired] == ["memhog", "memhog"]

    def test_slow_sleeps_without_raising(self):
        plan = faults.plan_from_env(
            {"REPRO_FAULTS": "kernel:slow:ms=30:times=1"})
        start = time.monotonic()
        plan.trip("kernel")
        assert time.monotonic() - start >= 0.025
        assert plan.fired[0][2] == "slow"


# ----------------------------------------------------------------------
# Governor policy arithmetic (pure functions)
# ----------------------------------------------------------------------
class TestGovernorPolicy:
    MANIFEST = {"nrows": 1000, "nnz": 10_000, "shard_rows": 250,
                "shards": [{"nnz": 3000}, {"nnz": 4000}, {"nnz": 3000}]}

    def test_estimate_footprint(self):
        total, shard = governor.estimate_footprint(self.MANIFEST)
        assert total == 10_000 * 16 + 1000 * 8
        assert shard == 4000 * 16 + 1000 * 8

    def test_fit_verdicts(self):
        total, shard = governor.estimate_footprint(self.MANIFEST)
        assert governor.fit_verdict(self.MANIFEST, total + 1) == "fits"
        assert governor.fit_verdict(self.MANIFEST, shard + 1) == "sharded"
        assert governor.fit_verdict(self.MANIFEST, shard - 1) == "no"
        assert governor.fit_verdict(self.MANIFEST, 0) == "fits"  # off
        assert governor.fit_verdict(None, 1 << 30) == "fits"

    def test_headroom_charges_against_budget(self):
        total, _ = governor.estimate_footprint(self.MANIFEST)
        assert governor.fit_verdict(self.MANIFEST, total + 1,
                                    headroom=2) != "fits"

    def test_shed_decision_depth_and_latency(self):
        counts = {"queued": 3, "leased": 1}
        shed = governor.shed_decision(counts, 0.0, 4, 0.0)
        assert shed["reason"] == "queue depth" and shed["depth"] == 4
        assert 1 <= shed["retry_after"] <= 60
        shed = governor.shed_decision(counts, 12.0, 0, 5.0)
        assert shed["reason"] == "lease latency"
        assert governor.shed_decision(counts, 12.0, 0, 0.0) is None
        assert governor.shed_decision({"queued": 0}, 0.0, 4, 5.0) is None

    def test_retry_after_is_bounded(self):
        shed = governor.shed_decision({"queued": 10_000}, 0.0, 1, 0.0)
        assert shed["retry_after"] == 60

    def test_looks_like_oom_forensics(self):
        budget = 100
        assert governor.looks_like_oom([10, 50, 90], budget)
        assert governor.looks_like_oom([85], budget)  # single high sample
        assert not governor.looks_like_oom([90, 85, 10], budget)  # falling
        assert not governor.looks_like_oom([10, 20, 30], budget)  # low
        assert not governor.looks_like_oom([], budget)
        assert not governor.looks_like_oom([0, 0], budget)  # no samples
        assert not governor.looks_like_oom([90, 95], 0)  # governor off

    def test_read_rss_bytes_self(self):
        assert governor.read_rss_bytes() > 0


# ----------------------------------------------------------------------
# Cores budgeting: workers x kernel threads <= REPRO_CORES_BUDGET
# ----------------------------------------------------------------------
class TestCoresBudget:
    def test_split_cores_passthrough_without_budget(self):
        assert governor.split_cores(8, 4, 0) == (8, 4)
        assert governor.split_cores(8, 4, -1) == (8, 4)

    def test_split_cores_kernel_threads_win_the_tie(self):
        # Budget 8, request 4x4: threads keep their width, workers yield.
        assert governor.split_cores(4, 4, 8) == (2, 4)
        assert governor.split_cores(8, 2, 8) == (4, 2)
        # Threads alone exceed the budget: clamp them, one worker.
        assert governor.split_cores(4, 16, 8) == (1, 8)
        assert governor.split_cores(1, 1, 1) == (1, 1)

    def test_split_cores_never_oversubscribes(self):
        # The acceptance invariant: under any budget > 0 the product of
        # the two parallelism levels never exceeds it, and neither level
        # collapses below 1 or above its request.
        for workers in (1, 2, 3, 8):
            for threads in (1, 2, 5, 16):
                for budget in (1, 2, 4, 7, 12):
                    w, t = governor.split_cores(workers, threads, budget)
                    assert w * t <= budget, (workers, threads, budget)
                    assert 1 <= w <= workers
                    assert 1 <= t <= max(threads, budget)

    def test_worker_pool_clamps_and_records_split(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        config = ServiceConfig(cores_budget=4, kernel_threads=2)
        supervisor = QueueSupervisor(queue, workers=8, config=config,
                                     owner="cores")
        assert (supervisor.pool_size, supervisor.kernel_threads) == (2, 2)
        assert supervisor.pool_size * supervisor.kernel_threads <= 4
        assert supervisor.cores_split == {
            "budget": 4, "requested_workers": 8,
            "workers": 2, "kernel_threads": 2}
        queue.close()

    def test_worker_pool_without_budget_keeps_request(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        supervisor = QueueSupervisor(queue, workers=3, config=FAST,
                                     owner="cores")
        assert (supervisor.pool_size, supervisor.kernel_threads) == (3, 1)
        queue.close()

    def test_config_reads_both_knobs(self):
        config = ServiceConfig.from_env({"REPRO_CORES_BUDGET": "8",
                                         "REPRO_KERNEL_THREADS": "4"})
        assert config.cores_budget == 8
        assert config.kernel_threads == 4
        with pytest.raises(errors.InvalidValue):
            ServiceConfig.from_env({"REPRO_CORES_BUDGET": "-1"})
        with pytest.raises(errors.InvalidValue):
            ServiceConfig.from_env({"REPRO_KERNEL_THREADS": "0"})

    def test_task_scope_sets_and_restores_kernel_threads_env(
            self, monkeypatch):
        from repro.service.worker import _task_scope

        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        with _task_scope({"kernel_threads": 4}):
            assert os.environ["REPRO_KERNEL_THREADS"] == "4"
        assert "REPRO_KERNEL_THREADS" not in os.environ

    def test_publish_status_exposes_cores_split(self, tmp_path, capsys):
        q = tmp_path / "q.db"
        queue = JobQueue(q, QueueConfig())
        config = ServiceConfig(cores_budget=4, kernel_threads=2)
        supervisor = QueueSupervisor(queue, workers=8, config=config,
                                     owner="cores")
        supervisor._publish_status()
        queue.close()
        assert serve_main(["status", "--queue", str(q), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["cores"] == {
            "budget": 4, "requested_workers": 8,
            "workers": 2, "kernel_threads": 2}


# ----------------------------------------------------------------------
# Deadline trips mid-kernel (between shard tasks / flop batches)
# ----------------------------------------------------------------------
class TestMidKernelDeadline:
    """A tripped deadline must stop a long SpGEMM *inside* the kernel —
    between shard tasks or flop batches — not wait for the next OpEvent
    boundary that a multi-second kernel may never reach in time."""

    def _operands(self, shard_rows=16):
        import scipy.sparse as sp
        from repro.sparse.blocked import BlockedCSR
        from repro.sparse.csr import build_csr

        def rand(seed):
            coo = sp.random(160, 160, density=0.05,
                            random_state=seed).tocoo()
            return build_csr(160, 160, coo.row, coo.col, coo.data)

        A, B = rand(41), rand(42)
        return A, BlockedCSR.from_csr(A, shard_rows=shard_rows), B

    def _clock_burning_mult(self, clock):
        import numpy as np
        from repro.sparse.semiring_ops import BINARY_FNS

        def slow_mult(a, b):
            # Each multiply burns fake seconds; the deadline trips inside
            # the first shard/batch and the *next* entry check raises.
            clock.advance(10.0)
            return np.multiply(a, b)

        return BINARY_FNS["times"].__class__("times", slow_mult)

    def test_deadline_cancels_between_shard_tasks(self):
        from repro.sparse.semiring_ops import MONOID_FNS
        from repro.sparse.spgemm import spgemm_saxpy

        _, A_blocked, B = self._operands()
        clock = FakeClock(now=100.0)
        token = cancel.CancelToken(deadline=101.0, clock=clock)
        mult = self._clock_burning_mult(clock)
        with cancel.scope(token):
            with pytest.raises(errors.Cancelled):
                spgemm_saxpy(A_blocked, B, MONOID_FNS["plus"], mult)

    def test_deadline_cancels_between_flop_batches_monolithic(self):
        from repro.sparse.semiring_ops import MONOID_FNS
        from repro.sparse.spgemm import spgemm_saxpy

        A, _, B = self._operands()
        clock = FakeClock(now=100.0)
        token = cancel.CancelToken(deadline=101.0, clock=clock)
        mult = self._clock_burning_mult(clock)
        with cancel.scope(token):
            with pytest.raises(errors.Cancelled):
                # A tiny flop budget forces many batches, so the per-batch
                # check fires long before the kernel would finish.
                spgemm_saxpy(A, B, MONOID_FNS["plus"], mult,
                             batch_flops=64)


# ----------------------------------------------------------------------
# Queue deadline column (fake clock, no workers)
# ----------------------------------------------------------------------
class TestQueueDeadline:
    def test_submit_persists_absolute_deadline(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db", QueueConfig(), clock=clock)
        job = queue.submit("GB", "bfs", GRAPH, deadline_ms=2500)
        assert job.deadline == 1002.5
        assert queue.get(job.id).deadline == 1002.5
        detail = queue.events(job.id)[0]["detail"]
        assert detail["deadline_ms"] == 2500
        assert queue.submit("SS", "bfs", GRAPH).deadline is None
        queue.close()

    def test_default_deadline_comes_from_config(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db",
                         QueueConfig(job_deadline_ms=4000.0), clock=clock)
        assert queue.submit("GB", "bfs", GRAPH).deadline == 1004.0
        queue.close()

    def test_bad_deadline_rejected(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        for bad in (-1, 0, "soon"):
            with pytest.raises(errors.InvalidValue):
                queue.submit("GB", "bfs", GRAPH, deadline_ms=bad)
        queue.close()

    def test_oldest_ready_wait_tracks_fake_clock(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db", QueueConfig(), clock=clock)
        assert queue.oldest_ready_wait() == 0.0
        queue.submit("GB", "bfs", GRAPH)
        clock.advance(7.5)
        assert queue.oldest_ready_wait() == 7.5
        queue.close()

    def test_meta_roundtrip_and_reserved_key(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        assert queue.get_meta("workers", default=[]) == []
        queue.set_meta("workers", [{"worker_id": 0, "rss": 123}])
        queue.set_meta("workers", [{"worker_id": 0, "rss": 456}])
        assert queue.get_meta("workers")[0]["rss"] == 456
        with pytest.raises(errors.InvalidValue):
            queue.set_meta("schema", 99)
        queue.close()


# ----------------------------------------------------------------------
# Supervisor admission paths (no workers spawned)
# ----------------------------------------------------------------------
class TestGovernorAdmission:
    def _supervisor(self, queue, config=FAST):
        supervisor = QueueSupervisor(queue, workers=1, config=config,
                                     owner="test")
        supervisor._breakers = BreakerBoard(system_codes(), 5, 8)
        return supervisor

    def test_expired_job_cancelled_before_dispatch(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db", QueueConfig(), clock=clock)
        job = queue.submit("GB", "bfs", GRAPH, deadline_ms=100)
        clock.advance(1.0)  # budget burned while queued
        supervisor = self._supervisor(queue)
        assert supervisor._next_assignment(0) is None
        assert supervisor.stats["cancelled"] == 1
        done = queue.get(job.id)
        assert done.state == DONE
        assert done.result["status"] == experiments.CANCELLED
        assert done.result["error"]["type"] == "Cancelled"
        queue.close()

    def test_payload_carries_remaining_budget(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db", QueueConfig(), clock=clock)
        queue.submit("GB", "bfs", GRAPH, deadline_ms=60_000)
        clock.advance(10.0)
        supervisor = self._supervisor(queue)
        payload = supervisor._next_assignment(0)
        # 50 s of budget remain but the static cell deadline (8 s) caps.
        assert payload["deadline_seconds"] == FAST.cell_deadline
        queue.close()

    def test_per_job_faults_travel_in_payload(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        queue.submit("GB", "bfs", GRAPH,
                     params={"faults": "kernel:slow:ms=10"})
        payload = self._supervisor(queue)._next_assignment(0)
        assert payload["faults"] == "kernel:slow:ms=10"
        queue.close()

    def test_over_budget_job_dispatched_sharded_up_front(self, tmp_path):
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        queue.submit("GB", "pr", GRAPH)
        config = ServiceConfig(heartbeat_interval=0.05,
                               heartbeat_timeout=10.0, cell_deadline=8.0,
                               mem_budget_mb=1.0)
        supervisor = self._supervisor(queue, config=config)
        # Monolithic estimate over the 1 MB budget; shards fit.
        supervisor._manifests[GRAPH] = {
            "nrows": 1000, "nnz": 100_000, "shard_rows": 125,
            "shards": [{"nnz": 12_500}] * 8}
        payload = supervisor._next_assignment(0)
        assert payload["shard_rows"] == 125
        queue.close()

    def test_unfittable_job_defers_then_dead_letters(self, tmp_path):
        clock = FakeClock(now=1000.0)
        queue = JobQueue(tmp_path / "q.db",
                         QueueConfig(defer_seconds=5.0), clock=clock)
        job = queue.submit("GB", "pr", GRAPH, max_attempts=1)
        config = ServiceConfig(heartbeat_interval=0.05,
                               heartbeat_timeout=10.0, cell_deadline=8.0,
                               mem_budget_mb=1.0)
        supervisor = self._supervisor(queue, config=config)
        supervisor._manifests[GRAPH] = {
            "nrows": 10_000_000, "nnz": 100_000_000, "shard_rows": 8192,
            "shards": [{"nnz": 50_000_000}] * 2}  # no shard fits either
        for round_no in range(MAX_MEM_DEFERRALS):
            assert supervisor._next_assignment(0) is None
            assert queue.get(job.id).state == QUEUED
            clock.advance(1000.0)  # past any backoff window
        assert supervisor.stats["mem_deferred"] == MAX_MEM_DEFERRALS
        assert supervisor._next_assignment(0) is None
        dead = queue.get(job.id)
        assert dead.state == DEAD
        assert "memory budget" in dead.note
        assert supervisor.stats["dead"] == 1
        queue.close()


# ----------------------------------------------------------------------
# API load shedding (stdlib server, no workers)
# ----------------------------------------------------------------------
def _request(base, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


@pytest.fixture
def shedding_api(tmp_path):
    """A live API whose queue sheds past a depth of 2."""
    server = make_server(tmp_path / "q.db",
                         config=QueueConfig(high_water=2))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


class TestAPIShedding:
    def test_503_with_retry_after_past_high_water(self, shedding_api):
        submit = {"system": "GB", "app": "bfs", "graph": GRAPH}
        for app in ("bfs", "cc"):
            status, _, _ = _request(shedding_api, "/jobs",
                                    dict(submit, app=app))
            assert status == 201
        status, body, headers = _request(shedding_api, "/jobs",
                                         dict(submit, app="pr"))
        assert status == 503
        assert body["shed"]["reason"] == "queue depth"
        assert int(headers["Retry-After"]) >= 1

    def test_idempotent_resubmit_bypasses_shedding(self, shedding_api):
        submit = {"system": "GB", "app": "bfs", "graph": GRAPH,
                  "idem_key": "k1"}
        assert _request(shedding_api, "/jobs", submit)[0] == 201
        status, _, _ = _request(shedding_api, "/jobs", {
            "system": "GB", "app": "cc", "graph": GRAPH})
        assert status == 201  # now at the watermark
        status, deduped, _ = _request(shedding_api, "/jobs", submit)
        assert status == 200 and deduped["id"] == 1

    def test_health_reports_shed_state(self, shedding_api):
        status, body, _ = _request(shedding_api, "/health")
        assert status == 200 and body["shedding"] is None
        for app in ("bfs", "cc"):
            _request(shedding_api, "/jobs",
                     {"system": "GB", "app": app, "graph": GRAPH})
        status, body, _ = _request(shedding_api, "/health")
        assert body["shedding"]["reason"] == "queue depth"

    def test_submit_accepts_deadline_ms(self, shedding_api):
        status, job, _ = _request(shedding_api, "/jobs", {
            "system": "GB", "app": "bfs", "graph": GRAPH,
            "deadline_ms": 1500})
        assert status == 201 and job["deadline"] is not None
        status, body, _ = _request(shedding_api, "/jobs", {
            "system": "GB", "app": "cc", "graph": GRAPH,
            "deadline_ms": -5})
        assert status == 400 and "deadline_ms" in body["error"]


# ----------------------------------------------------------------------
# CLI surface (no workers)
# ----------------------------------------------------------------------
class TestGovernorCLI:
    def test_submit_deadline_and_fault_flags(self, tmp_path, capsys):
        q = str(tmp_path / "q.db")
        assert serve_main(["submit", "--queue", q, "GB", "pr", GRAPH,
                           "--deadline-ms", "2000",
                           "--fault", "kernel:slow:ms=10"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["deadline"] is not None
        assert job["params"]["faults"] == "kernel:slow:ms=10"

    def test_status_json_includes_governor_snapshot(self, tmp_path,
                                                    capsys):
        q = str(tmp_path / "q.db")
        serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH])
        capsys.readouterr()
        assert serve_main(["status", "--queue", q, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"]["queued"] == 1
        assert status["tenants"]["default"]["queued"] == 1
        # Nobody has drained yet: the published snapshot is empty but
        # present, so dashboards need no schema special-casing.
        assert status["workers"] == [] and status["breakers"] == {}
        assert status["cores"] == {}
        assert status["dead"] == []


# ----------------------------------------------------------------------
# The wall-clock audit: queue logic must use the injectable clock
# ----------------------------------------------------------------------
class TestClockDiscipline:
    def test_no_wall_clock_calls_in_service_layer(self):
        service = pathlib.Path(__file__).resolve().parent.parent \
            / "src" / "repro" / "service"
        offenders = []
        for path in sorted(service.glob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(),
                                          start=1):
                if re.search(r"\btime\.time\(\)", line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        # ``clock=time.time`` default *references* are fine (injectable);
        # direct calls would desynchronize replayed/fake-clock runs.
        assert offenders == [], "\n".join(offenders)


# ----------------------------------------------------------------------
# Real workers: the acceptance drills
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDeadlineDrill:
    def test_tight_deadline_job_ends_cancelled_with_partial_trace(
            self, tmp_path, isolated_grid):
        queue = JobQueue(tmp_path / "q.db",
                         QueueConfig(lease_seconds=30.0))
        job = queue.submit("GB", "pr", GRAPH, deadline_ms=500,
                           params={"faults": "kernel:slow:ms=200:times=0"})
        supervisor = QueueSupervisor(queue, workers=1, config=FAST,
                                     owner="drill")
        counts = supervisor.drain()
        assert counts["done"] == 1 and counts["dead"] == 0
        done = queue.get(job.id)
        assert done.state == DONE
        assert done.result["status"] == experiments.CANCELLED
        assert done.result["error"]["type"] == "Cancelled"
        # Partial trace: the cell ran some OpEvent rounds before yielding.
        assert done.result["counters"].get("loops", 0) > 0
        assert done.result["seconds"] is None
        queue.close()


@pytest.mark.slow
class TestOOMDrill:
    def test_memhog_job_ends_oom_after_one_sharded_retry(
            self, tmp_path, isolated_grid):
        queue = JobQueue(tmp_path / "q.db",
                         QueueConfig(lease_seconds=30.0))
        job = queue.submit("GB", "pr", GRAPH,
                           params={"faults": "kernel:memhog:mb=192:times=0"})
        config = ServiceConfig(heartbeat_interval=0.05,
                               heartbeat_timeout=10.0, cell_deadline=30.0,
                               cancel_grace=5.0, mem_budget_mb=128.0)
        supervisor = QueueSupervisor(queue, workers=1, config=config,
                                     owner="drill")
        counts = supervisor.drain()
        assert counts["done"] == 1 and counts["dead"] == 0
        assert supervisor.stats["oom_retried"] == 1
        assert supervisor.stats["oom_quarantined"] == 1
        done = queue.get(job.id)
        assert done.state == DONE and done.attempts == 2
        assert done.result["status"] == experiments.OOM
        assert done.result["error"]["type"] == "WorkerOOM"
        assert "sharded retry" in done.result["error"]["message"]
        queue.close()


#: Stand-alone ``repro-serve drain`` driver: a real file with a __main__
#: guard (spawned workers re-import their __main__), running the actual
#: CLI so the SIGTERM handler under test is the one users get.
DRAIN_CHILD = """\
import sys

from repro.service.serve import main

if __name__ == "__main__":
    sys.exit(main(["drain", "--queue", sys.argv[1], "--workers", "1"]))
"""


@pytest.mark.slow
class TestSigtermDrainDrill:
    def test_sigterm_drains_gracefully_and_rerun_is_byte_identical(
            self, tmp_path, isolated_grid):
        """The graceful-drain acceptance drill.

        ``kill -TERM`` a draining supervisor while a cell is in flight:
        the process must let the cell land, fail nothing, exit 0, and
        leave no leased jobs behind.  A follow-up drain (governor knobs
        enabled) finishes the grid byte-identical to a sequential run.
        """
        cells = [("GB", "pr"), ("SS", "bfs"), ("GB", "bfs"), ("LS", "bfs")]
        for system, app in cells:
            experiments.run_cell(system, app, GRAPH)
        baseline = snapshot_bytes()
        experiments.clear_cache()

        path = tmp_path / "q.db"
        queue = JobQueue(path, QueueConfig(lease_seconds=30.0))
        job_ids = []
        for priority, (system, app) in enumerate(reversed(cells)):
            params = {}
            if (system, app) == ("GB", "pr"):
                # The in-flight cell at SIGTERM time: slow enough to
                # still be running, guaranteed to finish afterwards.
                params["faults"] = "kernel:slow:ms=150:times=0"
            job_ids.append(queue.submit(
                system, app, GRAPH, priority=priority, params=params,
                deadline_ms=600_000).id)
        job_ids.reverse()  # committer order == cells order

        script = tmp_path / "drain_child.py"
        script.write_text(DRAIN_CHILD)
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["REPRO_SERVICE_HEARTBEAT"] = "0.05"
        child = subprocess.Popen(
            [sys.executable, str(script), str(path)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if queue.counts()["leased"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("child never leased a job")
        except BaseException:
            child.kill()
            child.wait()
            raise
        child.send_signal(signal.SIGTERM)
        rc = child.wait(timeout=120)
        assert rc == 0  # graceful drain is not an error

        counts = queue.counts()
        assert counts["leased"] == 0  # nothing abandoned mid-lease
        assert counts["dead"] == 0 and counts["err"] == 0
        assert counts["done"] >= 1  # the in-flight cell landed
        assert counts["done"] + counts["queued"] == len(job_ids)

        # Finish the drain with the governor fully enabled: generous
        # budgets must not perturb a healthy run's bytes.
        config = ServiceConfig(heartbeat_interval=0.05,
                               heartbeat_timeout=10.0, cell_deadline=30.0,
                               cancel_grace=5.0, mem_budget_mb=8192.0)
        supervisor = QueueSupervisor(
            JobQueue(path, QueueConfig(lease_seconds=30.0)), workers=1,
            config=config, mirror_jobs=job_ids, owner="finisher")
        counts = supervisor.drain()
        assert counts["done"] == len(job_ids)
        assert counts["dead"] == 0 and counts["leased"] == 0
        for job_id in job_ids:
            job = queue.get(job_id)
            assert job.state == DONE
            kinds = [e["kind"] for e in queue.events(job_id)]
            assert kinds.count("done") == 1  # exactly-once commit
        assert snapshot_bytes() == baseline
        queue.close()
