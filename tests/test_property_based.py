"""Property-based tests (hypothesis) on kernels, semantics and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.graphblas as gb
from repro.graphblas.ops import binary, monoid, semiring
from repro.perf.costmodel import LoopCost, Schedule, static_block_imbalance
from repro.perf.machine import Machine
from repro.perf.memmodel import AccessPattern, AccessStream, CacheHierarchy
from repro.sparse.csr import build_csr
from repro.sparse.semiring_ops import MONOID_FNS, SegmentReducer
from repro.suitesparse import SuiteSparseBackend

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def coo_graph(draw, max_n=24, max_m=80):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    vals = draw(st.lists(st.integers(1, 50), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), \
        np.array(vals, dtype=np.int64)


class TestMonoidLaws:
    @SETTINGS
    @given(st.sampled_from(["plus", "min", "max", "times"]),
           st.lists(st.integers(-50, 50), min_size=0, max_size=20))
    def test_reduce_is_order_independent(self, kind, values):
        mon = MONOID_FNS[kind]
        a = np.array(values, dtype=np.int64)
        forward = mon.reduce_all(a, np.int64)
        backward = mon.reduce_all(a[::-1].copy(), np.int64)
        assert forward == backward

    @SETTINGS
    @given(st.sampled_from(["plus", "min", "max", "lor", "land"]),
           st.lists(st.integers(0, 5), min_size=1, max_size=10))
    def test_identity_neutral(self, kind, values):
        mon = MONOID_FNS[kind]
        if kind in ("lor", "land"):
            # Logical monoids operate on {0, 1}.
            values = [v % 2 for v in values]
        a = np.array(values, dtype=np.int64)
        ident = mon.identity(np.int64)
        combined = mon.combine(a, np.full_like(a, ident))
        assert np.array_equal(np.asarray(combined, dtype=np.int64), a)

    @SETTINGS
    @given(st.sampled_from(["plus", "min", "max"]),
           st.lists(st.tuples(st.integers(0, 4), st.integers(-9, 9)),
                    min_size=0, max_size=30))
    def test_segment_reduce_matches_python(self, kind, pairs):
        mon = MONOID_FNS[kind]
        segs = np.array([p[0] for p in pairs], dtype=np.int64)
        vals = np.array([p[1] for p in pairs], dtype=np.int64)
        out = SegmentReducer(mon).reduce(vals, segs, 5, dtype=np.int64)
        for s in range(5):
            chunk = vals[segs == s]
            expected = mon.reduce_all(chunk, np.int64)
            assert out[s] == expected


class TestCsrProperties:
    @SETTINGS
    @given(coo_graph())
    def test_build_roundtrip_scipy(self, g):
        n, src, dst, vals = g
        csr = build_csr(n, n, src, dst, vals, dedup="min")
        import scipy.sparse as sp

        ref = sp.coo_matrix((vals, (src, dst)), shape=(n, n)).tocsr()
        # scipy sums duplicates; compare patterns and per-pattern min.
        assert csr.nvals == len(set(zip(src.tolist(), dst.tolist())))
        for i, j in set(zip(src.tolist(), dst.tolist())):
            dup_vals = vals[(src == i) & (dst == j)]
            assert csr.get(int(i), int(j)) == dup_vals.min()

    @SETTINGS
    @given(coo_graph())
    def test_transpose_involution(self, g):
        n, src, dst, vals = g
        csr = build_csr(n, n, src, dst, vals, dedup="min")
        tt = csr.transpose().transpose()
        assert np.array_equal(tt.indptr, csr.indptr)
        assert np.array_equal(tt.indices, csr.indices)

    @SETTINGS
    @given(coo_graph())
    def test_tril_triu_disjoint_cover(self, g):
        n, src, dst, vals = g
        csr = build_csr(n, n, src, dst, None, dedup="last")
        low = csr.extract_tril(strict=True).nvals
        up = csr.extract_triu(strict=True).nvals
        diag = csr.extract_tril(strict=False).nvals - low
        assert low + up + diag == csr.nvals

    @SETTINGS
    @given(coo_graph())
    def test_symmetrize_is_symmetric_and_superset(self, g):
        from repro.graphs.transform import symmetrize

        n, src, dst, vals = g
        csr = build_csr(n, n, src, dst, vals, dedup="min")
        sym, w = symmetrize(csr, csr.values)
        t = sym.transpose()
        assert np.array_equal(t.indices, sym.indices)
        assert sym.nvals >= csr.nvals


class TestSpgemmProperties:
    @SETTINGS
    @given(coo_graph(max_n=14, max_m=40))
    def test_saxpy_matches_scipy(self, g):
        from repro.sparse.semiring_ops import BINARY_FNS
        from repro.sparse.spgemm import spgemm_saxpy

        n, src, dst, vals = g
        csr = build_csr(n, n, src, dst, vals.astype(np.float64),
                        dedup="last")
        C, _ = spgemm_saxpy(csr, csr, MONOID_FNS["plus"],
                            BINARY_FNS["times"])
        ref = csr.to_scipy() @ csr.to_scipy()
        assert np.allclose(C.to_scipy().toarray(), ref.toarray())


class TestGraphBLASSemantics:
    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(-5, 5)),
                    max_size=10),
           st.lists(st.integers(0, 9), max_size=10),
           st.booleans(), st.booleans())
    def test_assign_mask_replace_semantics(self, w_pairs, mask_idx,
                                           comp, replace):
        backend = SuiteSparseBackend(Machine())
        w = gb.Vector(backend, gb.INT64, 10)
        for i, v in w_pairs:
            w.set_element(i, v)
        mask = gb.Vector(backend, gb.BOOL, 10)
        for i in mask_idx:
            mask.set_element(i, True)
        before_present = w.present_mask()
        before_vals = w.dense_values()
        desc = gb.Descriptor(mask_comp=comp, replace=replace,
                             mask_structure=True)
        gb.assign(w, 77, mask=mask, desc=desc)
        allowed = mask.present_mask()
        if comp:
            allowed = ~allowed
        for i in range(10):
            if allowed[i]:
                assert w._present[i] and w._values[i] == 77
            elif replace:
                assert not w._present[i]
            else:
                assert w._present[i] == before_present[i]
                if before_present[i]:
                    assert w._values[i] == before_vals[i]

    @SETTINGS
    @given(coo_graph(max_n=16, max_m=50))
    def test_bfs_level_invariant(self, g):
        # Adjacent vertices' levels differ by at most 1 (when both reached).
        from repro.lonestar import bfs
        from repro.galois.graph import Graph
        from repro.runtime.galois_rt import GaloisRuntime

        n, src, dst, _ = g
        keep = src != dst
        csr = build_csr(n, n, src[keep], dst[keep], None, dedup="last")
        dist = bfs(Graph(GaloisRuntime(Machine()), csr), 0)
        rows = np.repeat(np.arange(n), np.diff(csr.indptr))
        for u, v in zip(rows, csr.indices):
            if dist[u] > 0:
                assert dist[v] > 0 and dist[v] <= dist[u] + 1

    @SETTINGS
    @given(coo_graph(max_n=16, max_m=50))
    def test_sssp_triangle_inequality(self, g):
        from repro.lonestar import delta_stepping
        from repro.galois.graph import Graph
        from repro.runtime.galois_rt import GaloisRuntime

        n, src, dst, vals = g
        keep = src != dst
        csr = build_csr(n, n, src[keep], dst[keep],
                        vals[keep], dedup="min")
        graph = Graph(GaloisRuntime(Machine()), csr, csr.values)
        dist = delta_stepping(graph, 0, delta=16)
        inf = np.iinfo(np.int64).max
        rows = np.repeat(np.arange(n), np.diff(csr.indptr))
        for u, v, w in zip(rows, csr.indices, csr.value_array()):
            if dist[u] < inf:
                assert dist[v] <= dist[u] + w

    @SETTINGS
    @given(coo_graph(max_n=14, max_m=40), st.integers(3, 5))
    def test_ktruss_support_invariant(self, g, k):
        from repro.lonestar import ktruss
        from repro.galois.graph import Graph
        from repro.graphs.transform import symmetrize
        from repro.runtime.galois_rt import GaloisRuntime
        from repro.sparse.tricount import edge_supports

        n, src, dst, _ = g
        keep = src != dst
        csr = build_csr(n, n, src[keep], dst[keep], None, dedup="last")
        sym, _ = symmetrize(csr)
        graph = Graph(GaloisRuntime(Machine()), sym)
        alive, _ = ktruss(graph, k)
        sup, _, _ = edge_supports(sym, alive)
        assert np.all(sup[alive] >= k - 2)


class TestCostModelProperties:
    @SETTINGS
    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=200))
    def test_static_imbalance_at_least_one(self, weights):
        imb = static_block_imbalance(np.array(weights))
        assert all(v >= 0.999 for v in imb.values())

    @SETTINGS
    @given(st.integers(0, 10**6), st.integers(0, 10**5),
           st.sampled_from([1, 2, 8, 56]))
    def test_loop_time_nonnegative_and_monotone_in_work(self, instr, dram, p):
        from repro.perf.costmodel import CostModel

        m = CostModel(CacheHierarchy())
        small = LoopCost(Schedule.STEAL, instructions=instr,
                         hits={"dram": dram})
        big = LoopCost(Schedule.STEAL, instructions=instr * 2,
                       hits={"dram": dram * 2})
        assert m.work_time_ns(small, p) >= 0
        assert m.work_time_ns(big, p) >= m.work_time_ns(small, p)

    @SETTINGS
    @given(st.integers(1, 10**7), st.sampled_from(
        [AccessPattern.SEQUENTIAL, AccessPattern.RANDOM,
         AccessPattern.STRIDED]),
           st.integers(1, 10**5))
    def test_classification_conserves_accesses(self, array_bytes, pattern,
                                               n_accesses):
        h = CacheHierarchy()
        hits = h.classify(AccessStream(array_bytes, n_accesses, pattern))
        assert sum(hits.values()) == n_accesses
