"""Shared fixtures: seeded small graphs, machines, backends, oracles."""

import numpy as np
import pytest

from repro import faults as _faults
from repro.core import experiments as _experiments

from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.graphs.transform import symmetrize
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.runtime.openmp import OpenMPRuntime
from repro.sparse.csr import build_csr
from repro.suitesparse import SuiteSparseBackend

import repro.graphblas as gb


def random_digraph(n=150, m=600, seed=3, weight_high=50):
    """A seeded random weighted digraph as (csr, sym_csr)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    w = rng.integers(1, weight_high, int(keep.sum())).astype(np.int64)
    csr = build_csr(n, n, src[keep], dst[keep], w, dedup="min")
    sym, _ = symmetrize(csr, csr.values)
    return csr, sym


@pytest.fixture
def isolated_grid():
    """An empty experiment memo, no journal, no faults — restored on exit.

    Fault/checkpoint tests produce deliberately broken cells; this keeps
    them out of the session-wide memo other tests share.
    """
    saved = _experiments.all_results()
    saved_journal = _experiments.get_journal()
    _experiments.clear_cache()
    _experiments.set_journal(None)
    try:
        yield
    finally:
        _faults.clear()
        _experiments.set_journal(saved_journal)
        _experiments.clear_cache()
        _experiments.seed_results(saved.values())


@pytest.fixture
def digraph():
    return random_digraph()[0]


@pytest.fixture
def sym_graph():
    return random_digraph()[1]


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture(params=["SS", "GB"])
def backend(request):
    m = Machine()
    if request.param == "SS":
        return SuiteSparseBackend(m)
    return GaloisBLASBackend(m)


@pytest.fixture
def ss_backend():
    return SuiteSparseBackend(Machine())


@pytest.fixture
def gb_backend():
    return GaloisBLASBackend(Machine())


@pytest.fixture
def galois_runtime():
    return GaloisRuntime(Machine())


@pytest.fixture
def openmp_runtime():
    return OpenMPRuntime(Machine())


def make_graph(csr, weights=None, runtime=None):
    return Graph(runtime or GaloisRuntime(Machine()), csr, weights)


def pattern_matrix(backend, csr, label="A"):
    """Boolean pattern Matrix from a CSR (drops values)."""
    from repro.sparse.csr import CSRMatrix

    pattern = CSRMatrix(csr.nrows, csr.ncols, csr.indptr, csr.indices, None)
    return gb.Matrix.from_csr(backend, gb.BOOL, pattern, label=label)


def weighted_matrix(backend, csr, label="Aw"):
    return gb.Matrix.from_csr(backend, gb.INT64, csr, label=label)


def nx_digraph(csr):
    """networkx oracle view of a weighted CSR digraph."""
    import networkx as nx

    G = nx.DiGraph()
    G.add_nodes_from(range(csr.nrows))
    rows = np.repeat(np.arange(csr.nrows), np.diff(csr.indptr))
    vals = csr.value_array()
    for r, c, w in zip(rows, csr.indices, vals):
        G.add_edge(int(r), int(c), weight=float(w))
    return G


def assert_partition_equal(labels, components):
    """Labels agree with an oracle's component partition."""
    labels = np.asarray(labels)
    components = list(components)
    for comp in components:
        assert len({labels[v] for v in comp}) == 1, "component split"
    reps = {labels[next(iter(c))] for c in components}
    assert len(reps) == len(components), "components merged"
