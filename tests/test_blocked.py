"""Blocked CSR: shard geometry, kernel equivalence, mmap immutability.

The contract under test is the one DESIGN.md §2e states: sharding changes
*where the bytes live*, never *what the kernels compute* — every blocked
kernel must be byte-identical to its monolithic twin at any shard
geometry, and no kernel may ever write into a shard's (possibly
mmap-backed, read-only) arrays.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InvalidValue
from repro.sparse.blocked import (
    DEFAULT_SHARD_ROWS,
    BlockedCSR,
    CSRShard,
    row_slice,
    shard_bounds,
    shard_rows_from_env,
)
from repro.sparse.csr import CSRMatrix, build_csr
from repro.sparse.semiring_ops import BINARY_FNS, MONOID_FNS
from repro.sparse.spgemm import spgemm_masked_dot, spgemm_saxpy
from repro.sparse.spmv import spmv_pull, vxm_push

PLUS = MONOID_FNS["plus"]
MIN = MONOID_FNS["min"]
TIMES = BINARY_FNS["times"]

SHARD_SIZES = (1, 7, 64, 1000)


def random_csr(n, m, density, seed, values=True):
    mat = sp.random(n, m, density=density, random_state=seed).tocsr()
    coo = mat.tocoo()
    data = coo.data if values else None
    return build_csr(n, m, coo.row, coo.col, data)


class TestGeometry:
    def test_shard_bounds_cover_rows_exactly(self):
        assert shard_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert shard_bounds(8, 4) == [(0, 4), (4, 8)]
        assert shard_bounds(3, 100) == [(0, 3)]

    def test_empty_matrix_still_has_one_shard(self):
        assert shard_bounds(0, 4) == [(0, 0)]
        B = BlockedCSR.from_csr(build_csr(0, 0, [], [], None))
        assert B.nshards == 1 and B.nvals == 0

    def test_shard_rows_from_env(self):
        assert shard_rows_from_env({}) == DEFAULT_SHARD_ROWS
        assert shard_rows_from_env({"REPRO_SHARD_ROWS": "128"}) == 128
        with pytest.raises(InvalidValue):
            shard_rows_from_env({"REPRO_SHARD_ROWS": "zero"})
        with pytest.raises(InvalidValue):
            shard_rows_from_env({"REPRO_SHARD_ROWS": "0"})

    def test_row_slice_is_zero_copy_with_local_indptr(self):
        A = random_csr(50, 30, 0.2, 1)
        local = row_slice(A, 10, 20)
        assert local.nrows == 10 and local.ncols == 30
        assert local.indptr[0] == 0
        assert local.nvals == A.indptr[20] - A.indptr[10]
        # indices/values are views into the parent arrays, not copies.
        assert local.indices.base is not None
        assert np.shares_memory(local.indices, A.indices)
        assert np.shares_memory(local.values, A.values)

    def test_from_csr_metadata(self):
        A = random_csr(100, 40, 0.15, 2)
        B = BlockedCSR.from_csr(A, shard_rows=32)
        assert B.nshards == 4
        assert B.nvals == A.nvals
        assert sum(s.nnz for s in B.shards) == A.nvals
        degrees = np.diff(A.indptr)
        for shard in B.shards:
            d = degrees[shard.row_start:shard.row_stop]
            assert shard.degree_min == int(d.min())
            assert shard.degree_max == int(d.max())
        assert np.array_equal(B.row_degrees(), degrees)

    def test_each_shard_carries_its_own_plan_cache(self):
        A = random_csr(60, 60, 0.1, 3)
        B = BlockedCSR.from_csr(A, shard_rows=20)
        B.reduce_rows(PLUS)  # populates each shard's plan cache
        caches = [s.csr._plan_cache for s in B.shards]
        if any(c is not None for c in caches):  # REPRO_PLAN_CACHE on
            assert all(c is not None for c in caches)
            assert len({id(c) for c in caches}) == B.nshards
        assert A._plan_cache is None  # the parent matrix stays untouched


class TestLazyShards:
    def test_loader_called_once_then_cached(self):
        calls = []
        local = random_csr(10, 10, 0.3, 4)

        def loader():
            calls.append(1)
            return local

        shard = CSRShard(0, 10, loader=loader, nnz=local.nvals,
                         degree_min=0, degree_max=10)
        assert not shard.loaded
        assert shard.csr is local and shard.csr is local
        assert len(calls) == 1
        shard.release()
        assert not shard.loaded
        assert shard.csr is local and len(calls) == 2

    def test_metadata_available_without_loading(self):
        shard = CSRShard(0, 10, loader=lambda: 1 / 0, nnz=7,
                         degree_min=0, degree_max=3)
        assert shard.nnz == 7 and shard.nrows == 10
        assert not shard.loaded


class TestKernelEquivalence:
    """Blocked kernels must be byte-identical at every shard geometry."""

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_spmv_pull(self, shard_rows):
        A = random_csr(200, 200, 0.05, 5)
        x = np.random.default_rng(6).random(200)
        y0, t0, f0 = spmv_pull(A, x, PLUS, TIMES)
        y1, t1, f1 = spmv_pull(BlockedCSR.from_csr(A, shard_rows), x,
                               PLUS, TIMES)
        assert y0.tobytes() == y1.tobytes()
        assert np.array_equal(t0, t1)
        assert f0 == f1

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_spmv_pull_min_plus(self, shard_rows):
        A = random_csr(150, 150, 0.08, 7)
        x = np.arange(150, dtype=np.float64)
        y0, _, _ = spmv_pull(A, x, MIN, BINARY_FNS["plus"])
        y1, _, _ = spmv_pull(BlockedCSR.from_csr(A, shard_rows), x,
                             MIN, BINARY_FNS["plus"])
        assert y0.tobytes() == y1.tobytes()

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_vxm_push(self, shard_rows):
        A = random_csr(180, 180, 0.06, 8)
        x_idx = np.array([0, 3, 50, 99, 140, 179], dtype=np.int64)
        x_val = np.random.default_rng(9).random(len(x_idx))
        i0, v0, f0 = vxm_push(A, x_idx, x_val, PLUS, TIMES)
        i1, v1, f1 = vxm_push(BlockedCSR.from_csr(A, shard_rows), x_idx,
                              x_val, PLUS, TIMES)
        assert np.array_equal(i0, i1)
        assert v0.tobytes() == v1.tobytes()
        assert f0 == f1

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_vxm_push_empty_frontier(self, shard_rows):
        A = BlockedCSR.from_csr(random_csr(40, 40, 0.1, 10), shard_rows)
        i, v, f = vxm_push(A, np.array([], dtype=np.int64),
                           np.array([]), PLUS, TIMES)
        assert len(i) == 0 and len(v) == 0 and f == 0

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_spgemm_saxpy(self, shard_rows):
        A = random_csr(120, 90, 0.08, 11)
        B = random_csr(90, 70, 0.08, 12)
        C0, f0 = spgemm_saxpy(A, B, PLUS, TIMES)
        C1, f1 = spgemm_saxpy(BlockedCSR.from_csr(A, shard_rows), B,
                              PLUS, TIMES)
        assert C0.indptr.tobytes() == C1.indptr.tobytes()
        assert C0.indices.tobytes() == C1.indices.tobytes()
        assert C0.values.tobytes() == C1.values.tobytes()
        assert f0 == f1

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_spgemm_masked_dot(self, shard_rows):
        # Triangle-counting form: C<L> = L @ L' with an unweighted L.
        A = random_csr(100, 100, 0.1, 13, values=False)
        tri = sp.tril(sp.csr_matrix(
            (np.ones(A.nvals), A.indices, A.indptr), (100, 100)),
            k=-1).tocsr()
        coo = tri.tocoo()
        L = build_csr(100, 100, coo.row, coo.col, None)
        C0, w0 = spgemm_masked_dot(L, L, L, PLUS, BINARY_FNS["pair"])
        C1, w1 = spgemm_masked_dot(BlockedCSR.from_csr(L, shard_rows), L,
                                   L, PLUS, BINARY_FNS["pair"])
        assert C0.indptr.tobytes() == C1.indptr.tobytes()
        assert C0.indices.tobytes() == C1.indices.tobytes()
        assert C0.values.tobytes() == C1.values.tobytes()
        assert w0 == w1

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_to_csr_roundtrip(self, shard_rows):
        A = random_csr(130, 75, 0.1, 14)
        M = BlockedCSR.from_csr(A, shard_rows).to_csr()
        assert M.indptr.tobytes() == A.indptr.tobytes()
        assert M.indices.tobytes() == A.indices.tobytes()
        assert M.values.tobytes() == A.values.tobytes()

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_reduce_rows(self, shard_rows):
        from repro.sparse.segreduce import segment_reduce

        A = random_csr(90, 90, 0.12, 15)
        B = BlockedCSR.from_csr(A, shard_rows)
        expect = segment_reduce(A.values, None, A.nrows, PLUS,
                                dtype=np.float64, row_splits=A.indptr)
        got = B.reduce_rows(PLUS)
        assert got.tobytes() == expect.tobytes()


class TestReadOnlyDiscipline:
    """Kernels must never write into shard backing arrays.

    Artifact-store shards are mmap'd read-only; a kernel that mutates its
    input in place would fault in production.  Pinning the arrays
    read-only here makes any such write a loud ValueError.
    """

    @staticmethod
    def _frozen_blocked(n=150, density=0.07, seed=16, shard_rows=48,
                        values=True):
        A = random_csr(n, n, density, seed, values=values)
        B = BlockedCSR.from_csr(A, shard_rows)
        for shard in B.shards:
            shard.csr.indptr.setflags(write=False)
            shard.csr.indices.setflags(write=False)
            if shard.csr.values is not None:
                shard.csr.values.setflags(write=False)
        return A, B

    def test_kernels_leave_frozen_shards_untouched(self):
        A, B = self._frozen_blocked()
        x = np.random.default_rng(17).random(A.nrows)
        spmv_pull(B, x, PLUS, TIMES)
        vxm_push(B, np.array([2, 30, 77], dtype=np.int64),
                 np.array([1.0, 2.0, 3.0]), PLUS, TIMES)
        spgemm_saxpy(B, A, PLUS, TIMES)
        B.row_degrees()
        B.reduce_rows(PLUS)
        before = [s.csr.indices.tobytes() for s in B.shards]
        B.to_csr()
        assert [s.csr.indices.tobytes() for s in B.shards] == before

    def test_masked_dot_on_frozen_pattern(self):
        A, B = self._frozen_blocked(values=False)
        spgemm_masked_dot(B, A, A, PLUS, BINARY_FNS["pair"])

    def test_single_shard_to_csr_is_the_shard_itself(self):
        A, B = self._frozen_blocked(shard_rows=10**6)
        assert B.nshards == 1
        M = B.to_csr()
        # Zero-copy: an mmap-backed single-shard graph stays read-only.
        assert np.shares_memory(M.indices, B.shards[0].csr.indices)
        assert not M.indices.flags.writeable
