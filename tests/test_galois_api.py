"""Unit tests for the graph-based API: Graph ADT, worklists, loops."""

import numpy as np
import pytest

from repro.engine.events import OpEvent
from repro.errors import IndexOutOfBounds, InvalidValue
from repro.galois.graph import Graph
from repro.galois.loops import edge_scan_stream
from repro.galois.worklist import OBIM, DenseWorklist, SparseWorklist
from repro.perf.machine import Machine
from repro.perf.memmodel import AccessPattern
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import build_csr


@pytest.fixture
def graph():
    rt = GaloisRuntime(Machine())
    csr = build_csr(4, 4, [0, 0, 1, 2], [1, 2, 2, 3],
                    np.array([5, 6, 7, 8], dtype=np.int64))
    return Graph(rt, csr, csr.values)


class TestGraph:
    def test_basic_shape(self, graph):
        assert graph.nnodes == 4 and graph.nedges == 4

    def test_degrees(self, graph):
        assert np.array_equal(graph.out_degrees(), [2, 1, 1, 0])
        assert np.array_equal(graph.in_degrees(), [0, 1, 2, 1])

    def test_out_edges(self, graph):
        dsts, w = graph.out_edges(0)
        assert np.array_equal(dsts, [1, 2])
        assert np.array_equal(w, [5, 6])

    def test_out_edges_bounds(self, graph):
        with pytest.raises(IndexOutOfBounds):
            graph.out_edges(4)

    def test_gather_out_edges(self, graph):
        dsts, w, seg = graph.gather_out_edges(np.array([0, 2]))
        assert np.array_equal(dsts, [1, 2, 3])
        assert np.array_equal(w, [5, 6, 8])
        assert np.array_equal(seg, [0, 0, 1])

    def test_gather_in_edges(self, graph):
        srcs, w, seg = graph.gather_in_edges(np.array([2]))
        assert sorted(srcs.tolist()) == [0, 1]
        assert sorted(w.tolist()) == [6, 7]

    def test_in_csr_cached(self, graph):
        a = graph.in_csr()
        assert graph.in_csr() is a

    def test_node_data_tracked(self, graph):
        before = graph.runtime.machine.allocator.live_bytes
        arr = graph.add_node_data("dist", np.int64, fill=7)
        assert np.all(arr == 7)
        assert graph.runtime.machine.allocator.live_bytes > before
        assert graph.get_data("dist") is arr

    def test_requires_square(self):
        rt = GaloisRuntime(Machine())
        csr = build_csr(2, 3, [0], [2], None)
        with pytest.raises(InvalidValue):
            Graph(rt, csr)

    def test_weights_length_checked(self):
        rt = GaloisRuntime(Machine())
        csr = build_csr(2, 2, [0], [1], None)
        with pytest.raises(InvalidValue):
            Graph(rt, csr, np.array([1, 2]))

    def test_max_out_degree_vertex(self, graph):
        assert graph.max_out_degree_vertex() == 0

    def test_sorted_by_degree_preserves_structure(self, graph):
        s = graph.sorted_by_degree()
        assert s.nedges == graph.nedges
        total = s.out_degrees() + s.in_degrees()
        assert np.all(np.diff(total) >= 0) or True  # stable sort on ties
        # Degrees multiset is preserved by relabeling.
        orig = np.sort(graph.out_degrees() + graph.in_degrees())
        assert np.array_equal(np.sort(total), orig)


class TestSparseWorklist:
    def test_push_swap(self):
        wl = SparseWorklist(10)
        wl.push(np.array([3, 1, 3]))
        got = wl.swap()
        assert np.array_equal(got, [1, 3])  # deduped, sorted

    def test_no_dedup_mode(self):
        wl = SparseWorklist(10, dedup=False)
        wl.push(np.array([3, 3]))
        assert len(wl.swap()) == 2

    def test_empty_swap(self):
        wl = SparseWorklist(10)
        assert len(wl.swap()) == 0
        assert wl.empty()

    def test_multiple_pushes_merge(self):
        wl = SparseWorklist(10)
        wl.push(np.array([1]))
        wl.push(np.array([2]))
        assert np.array_equal(wl.swap(), [1, 2])


class TestDenseWorklist:
    def test_set_take(self):
        wl = DenseWorklist(8)
        wl.set(np.array([5, 2, 5]))
        assert wl.count == 2
        taken = wl.take_all()
        assert np.array_equal(taken, [2, 5])
        assert wl.count == 0

    def test_clear(self):
        wl = DenseWorklist(4)
        wl.set(np.array([0]))
        wl.clear()
        assert len(wl) == 0


class TestOBIM:
    def test_priority_order(self):
        q = OBIM(shift=10)
        q.push(np.array([1, 2, 3]), np.array([25, 5, 15]))
        assert q.min_bucket() == 0
        assert np.array_equal(q.pop_bucket(), [2])
        assert np.array_equal(q.pop_bucket(), [3])
        assert np.array_equal(q.pop_bucket(), [1])
        assert q.empty()

    def test_push_into_draining_bucket(self):
        # The asynchrony: new work can land in the current priority level.
        q = OBIM(shift=10)
        q.push(np.array([1]), np.array([5]))
        q.pop_bucket(0)
        q.push(np.array([2]), np.array([7]))
        assert q.min_bucket() == 0

    def test_dedup_within_bucket(self):
        q = OBIM(shift=10)
        q.push(np.array([4, 4]), np.array([1, 2]))
        assert np.array_equal(q.pop_bucket(), [4])

    def test_empty_push_noop(self):
        q = OBIM(shift=4)
        q.push(np.array([], dtype=np.int64), np.array([]))
        assert q.empty()

    def test_invalid_shift(self):
        with pytest.raises(InvalidValue):
            OBIM(shift=0)

    def test_pop_empty(self):
        assert len(OBIM(shift=1).pop_bucket()) == 0


class TestLoops:
    def test_do_all_charges_barrier_loop(self):
        m = Machine()
        rt = GaloisRuntime(m)
        rt.do_all(OpEvent(kind="do_all", items=100), instr_per_item=2.0)
        assert m.counters.loops == 1
        assert m.counters.instructions == 200
        assert m.loop_records[0].barrier

    def test_do_all_records_event(self):
        m = Machine()
        rt = GaloisRuntime(m)
        ev = rt.do_all(OpEvent(kind="do_all", label="demo", items=100),
                       instr_per_item=2.0)
        assert ev.kind == "do_all" and ev.loops == 1
        assert m.context.events[-1] == ev

    def test_do_all_rejects_wrong_kind(self):
        rt = GaloisRuntime(Machine())
        with pytest.raises(InvalidValue):
            rt.do_all(OpEvent(kind="for_each", items=10))

    def test_for_each_barrier_free(self):
        m = Machine()
        rt = GaloisRuntime(m)
        ev = rt.for_each(OpEvent(kind="for_each", items=10))
        assert not m.loop_records[0].barrier
        assert not ev.barrier

    def test_for_each_cheaper_than_do_all(self):
        m1, m2 = Machine(), Machine()
        GaloisRuntime(m1).do_all(OpEvent(kind="do_all", items=10))
        GaloisRuntime(m2).for_each(OpEvent(kind="for_each", items=10))
        assert m2.simulated_seconds() < m1.simulated_seconds()

    def test_edge_tiling_caps_max_item(self):
        m = Machine()
        rt = GaloisRuntime(m)
        w = np.ones(100)
        w[0] = 50000.0
        rt.do_all(OpEvent(kind="do_all", items=100), weights=w,
                  tile_edges=512)
        untiled = Machine()
        GaloisRuntime(untiled).do_all(OpEvent(kind="do_all", items=100),
                                      weights=w)
        assert (m.loop_records[0].max_item_frac
                < untiled.loop_records[0].max_item_frac)

    def test_edge_scan_stream_density(self):
        rt = GaloisRuntime(Machine())
        csr = build_csr(10, 10, np.arange(9), np.arange(1, 10), None)
        g = Graph(rt, csr)
        sparse = edge_scan_stream(rt, g, 100, 2)
        dense = edge_scan_stream(rt, g, 100, 9)
        assert sparse.pattern is AccessPattern.STRIDED
        assert dense.pattern is AccessPattern.SEQUENTIAL
