"""The graph artifact store: publish/load identity, corruption, CLI.

The load-bearing guarantees:

* **byte identity** — a dataset resolved through the store (any shard
  geometry) is indistinguishable from a fresh in-memory generation, down
  to modeled cell rows;
* **build-once, load-many** — a warm store satisfies every later build
  with zero generator runs, through read-only mmap;
* **corruption is survivable** — a truncated or bit-flipped artifact is
  discarded and rebuilt (datasets) or reported (``repro-graphs verify``),
  never crashed on or silently trusted.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.core import experiments
from repro.core.experiments import OK
from repro.graphs import artifacts, datasets
from repro.graphs.artifacts import (
    ArtifactCorrupt,
    ArtifactMiss,
    ArtifactStore,
)
from repro.graphs.cli import main as graphs_cli
from repro.sparse.csr import build_csr

GRAPH = "road-USA-W"


def small_csr(seed=0, n=300, m=9):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, n * m)
    dst = rng.integers(0, n, n * m)
    return build_csr(n, n, src, dst, None, dedup="last")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", shard_rows=128)


@pytest.fixture
def env_store(tmp_path, monkeypatch):
    """A store wired into the environment, dataset cache isolated."""
    root = tmp_path / "store"
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(root))
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.delenv("REPRO_SHARD_ROWS", raising=False)
    datasets.clear_cache()
    yield root
    datasets.clear_cache()


class TestStoreRoundtrip:
    def test_publish_load_byte_identical(self, store):
        csr = small_csr(1)
        weights = np.random.default_rng(2).integers(1, 255, csr.nvals)
        store.publish("toy", "dir", csr, weights=weights, spec="s1")
        B, w = store.load("toy", "dir", spec="s1")
        M = B.to_csr()
        assert M.indptr.tobytes() == csr.indptr.tobytes()
        assert M.indices.tobytes() == csr.indices.tobytes()
        assert w.tobytes() == weights.tobytes()
        assert B.nshards == (csr.nrows + 127) // 128

    def test_loaded_arrays_are_read_only_mmap(self, store):
        store.publish("toy", "dir", small_csr(3), spec="s1")
        B, _ = store.load("toy", "dir", spec="s1")
        for shard in B.shards:
            assert not shard.csr.indices.flags.writeable
            with pytest.raises(ValueError):
                shard.csr.indices[0] = 99

    def test_spec_mismatch_is_a_miss_not_a_wrong_answer(self, store):
        store.publish("toy", "dir", small_csr(4), spec="seed=7")
        with pytest.raises(ArtifactMiss):
            store.load("toy", "dir", spec="seed=8")

    def test_missing_artifact_is_a_miss(self, store):
        with pytest.raises(ArtifactMiss):
            store.load("absent", "dir")

    def test_lost_publish_race_returns_winner(self, store):
        csr = small_csr(5)
        first = store.publish("toy", "dir", csr, spec="s")
        races = artifacts.STATS["lost_races"]
        second = store.publish("toy", "dir", csr, spec="s")
        assert first == second
        assert artifacts.STATS["lost_races"] == races + 1
        # The loser's temp dir was cleaned up.
        assert not list(store.root.glob(".tmp-*"))

    def test_geometries_coexist(self, tmp_path):
        csr = small_csr(6)
        a = ArtifactStore(tmp_path, shard_rows=64)
        b = ArtifactStore(tmp_path, shard_rows=1024)
        a.publish("toy", "dir", csr, spec="s")
        b.publish("toy", "dir", csr, spec="s")
        Ba, _ = a.load("toy", "dir", spec="s")
        Bb, _ = b.load("toy", "dir", spec="s")
        assert Ba.nshards > Bb.nshards
        assert Ba.to_csr().indices.tobytes() == \
            Bb.to_csr().indices.tobytes()


class TestCorruption:
    def test_truncated_shard_is_corrupt_at_load(self, store):
        store.publish("toy", "dir", small_csr(7), spec="s")
        victim = next(store.path("toy", "dir").glob("*.indices.npy"))
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactCorrupt):
            store.load("toy", "dir", spec="s")

    def test_bit_flip_passes_load_but_fails_verify(self, store):
        # Payload pages are deliberately not hashed at load (that would
        # fault every page and defeat mmap); verify() streams SHA-256.
        store.publish("toy", "dir", small_csr(8), spec="s")
        victim = next(store.path("toy", "dir").glob("*.indices.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0x01
        victim.write_bytes(bytes(raw))
        problems = store.verify("toy")
        assert problems and "checksum mismatch" in problems[0]

    def test_dataset_rebuilds_after_corruption(self, env_store):
        ds = datasets.get_dataset(GRAPH)
        csr0, w0 = ds.build()
        # Snapshot before corrupting: truncating a file out from under a
        # live mapping makes the *old* arrays SIGBUS on access.
        indices0, w0_bytes = csr0.indices.tobytes(), w0.tobytes()
        del csr0, w0
        datasets.clear_cache()
        victim = next(pathlib.Path(env_store, GRAPH).glob(
            "dir-*/shard-0000.indices.npy"))
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        rebuilds = artifacts.STATS["rebuilds"]
        csr1, w1 = ds.build()  # must not raise
        assert artifacts.STATS["rebuilds"] == rebuilds + 1
        assert csr1.indices.tobytes() == indices0
        assert w1.tobytes() == w0_bytes


class TestDatasetResolution:
    def test_warm_build_does_zero_generation(self, env_store):
        ds = datasets.get_dataset(GRAPH)
        ds.build()
        ds.build_symmetric()
        datasets.clear_cache()
        before = datasets.generation_count()
        csr, w = ds.build()
        sym, sw = ds.build_symmetric()
        assert datasets.generation_count() == before
        assert not csr.indices.flags.writeable  # mmap'd, not rebuilt
        assert sw is sym.values  # symmetrize's alias is preserved

    def test_store_on_off_and_sharded_are_byte_identical(
            self, env_store, monkeypatch):
        ds = datasets.get_dataset(GRAPH)

        def snapshot():
            datasets.clear_cache()
            csr, w = ds.build()
            sym, sw = ds.build_symmetric()
            datasets.clear_cache()
            return (csr.indptr.tobytes(), csr.indices.tobytes(),
                    w.tobytes(), sym.indptr.tobytes(),
                    sym.indices.tobytes(), sw.tobytes())

        with_store = snapshot()
        monkeypatch.setenv("REPRO_SHARD_ROWS", "1024")  # multi-shard
        sharded = snapshot()
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        without = snapshot()
        assert with_store == without == sharded

    def test_disabled_store_never_touches_disk(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "s"))
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert not artifacts.enabled()
        assert artifacts.store_from_env() is None
        datasets.clear_cache()
        datasets.get_dataset(GRAPH).build()
        datasets.clear_cache()
        assert not (tmp_path / "s").exists()

    def test_file_datasets_bypass_the_store(self, env_store, tmp_path):
        path = tmp_path / "toy.el"
        path.write_text("0 1\n1 2\n2 0\n")
        ds = datasets.register_file_dataset("toyfile-art", str(path))
        try:
            ds.build()
            assert not pathlib.Path(env_store, "toyfile-art").exists()
        finally:
            datasets.unregister_dataset("toyfile-art")

    def test_build_blocked_reuses_store_shards(self, env_store,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_ROWS", "1024")
        ds = datasets.get_dataset(GRAPH)
        B = ds.build_blocked()
        assert B.nshards > 1
        assert not B.shards[0].csr.indices.flags.writeable

    def test_modeled_cell_is_identical_with_store(self, env_store,
                                                  isolated_grid,
                                                  monkeypatch):
        def row(**env):
            for key, value in env.items():
                monkeypatch.setenv(key, value)
            datasets.clear_cache()
            experiments.clear_cache()
            result = experiments.run_cell("GB", "bfs", GRAPH,
                                          use_cache=False)
            assert result.status == OK
            return json.dumps(experiments.cell_to_row(result),
                              sort_keys=True,
                              default=experiments._jsonify)

        warm = row()                      # cold: generate + publish
        hot = row()                       # warm: pure mmap
        off = row(REPRO_ARTIFACTS="0")    # store disabled
        assert warm == hot == off


class TestGc:
    def test_gc_sweeps_debris_and_unknown_names(self, store):
        store.publish("toy", "dir", small_csr(9), spec="s")
        (store.root / ".tmp-dead").mkdir()
        (store.root / "stale-graph" / "dir-r128").mkdir(parents=True)
        removed = store.gc(known_names=["toy"])
        assert any(".tmp-dead" in p for p in removed)
        assert any("stale-graph" in p for p in removed)
        assert store.has("toy", "dir")

    def test_gc_dry_run_removes_nothing(self, store):
        store.publish("toy", "dir", small_csr(10), spec="s")
        (store.root / ".tmp-dead").mkdir()
        removed = store.gc(known_names=[], dry_run=True)
        assert removed
        assert (store.root / ".tmp-dead").exists()
        assert store.has("toy", "dir")


class TestCli:
    @pytest.fixture(autouse=True)
    def _guard_env(self, monkeypatch):
        # The CLI writes its flags into os.environ (so the dataset
        # machinery sees one store); monkeypatch restores the originals.
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        monkeypatch.delenv("REPRO_SHARD_ROWS", raising=False)
        datasets.clear_cache()
        yield
        datasets.clear_cache()

    def test_build_list_verify_gc_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "cli-store")
        assert graphs_cli(["--root", root, "build", GRAPH]) == 0
        assert "built" in capsys.readouterr().out
        assert graphs_cli(["--root", root, "build", GRAPH]) == 0
        assert "up-to-date" in capsys.readouterr().out
        assert graphs_cli(["--root", root, "list"]) == 0
        out = capsys.readouterr().out
        assert f"{GRAPH}/dir" in out and f"{GRAPH}/sym" in out
        assert graphs_cli(["--root", root, "verify"]) == 0
        assert "all checksums match" in capsys.readouterr().out
        assert graphs_cli(["--root", root, "gc"]) == 0

    def test_verify_flags_corruption_with_rc_1(self, tmp_path, capsys):
        root = tmp_path / "cli-store"
        assert graphs_cli(["--root", str(root), "build", GRAPH]) == 0
        victim = next(root.glob(f"{GRAPH}/dir-*/shard-0000.indices.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0x01
        victim.write_bytes(bytes(raw))
        capsys.readouterr()
        assert graphs_cli(["--root", str(root), "verify", GRAPH]) == 1
        assert "checksum mismatch" in capsys.readouterr().err

    def test_no_store_configured_is_usage_error(self, monkeypatch,
                                                capsys):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert graphs_cli(["list"]) == 2
        assert "no store configured" in capsys.readouterr().err

    def test_build_nothing_is_usage_error(self, tmp_path, capsys):
        assert graphs_cli(["--root", str(tmp_path), "build"]) == 2
        capsys.readouterr()

    def test_shard_rows_flag_controls_geometry(self, tmp_path, capsys):
        root = str(tmp_path / "cli-store")
        assert graphs_cli(["--root", root, "--shard-rows", "1024",
                           "build", GRAPH]) == 0
        capsys.readouterr()
        assert (pathlib.Path(root) / GRAPH / "dir-r1024").is_dir()


@pytest.mark.slow
class TestPrewarmThroughStore:
    """Real spawn-context workers sharing one published store."""

    def test_second_run_prewarms_with_zero_generation(
            self, tmp_path, isolated_grid, monkeypatch):
        from repro.service import ServiceConfig, Supervisor, grid_tasks

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        datasets.clear_cache()
        config = ServiceConfig(heartbeat_interval=0.05,
                               heartbeat_timeout=10.0, cell_deadline=8.0)

        first = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                           config=config)
        results = first.run()
        assert all(r.status == OK for r in results.values())
        assert first.stats["prewarmed"] >= 1
        # The cold run generates at least once (the publisher).
        assert first.stats["prewarm_generated"] >= 1

        experiments.clear_cache()
        second = Supervisor(grid_tasks([GRAPH], ["bfs"]), workers=2,
                            config=config)
        results = second.run()
        assert all(r.status == OK for r in results.values())
        assert second.stats["prewarmed"] >= 1
        # Build-once, load-many: every warm worker mmaps the published
        # artifact; none regenerates.
        assert second.stats["prewarm_generated"] == 0
        assert "prewarm_generated" not in second.describe()
        datasets.clear_cache()
