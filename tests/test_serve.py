"""The queue front-end (``repro-serve`` + HTTP API) and the restart drills.

The fast half drives the CLI and the stdlib HTTP server against a queue
nobody drains (submission, dedup, admission, visibility of dead/deferred
jobs, the events cursor).  The slow half spawns real workers: a drain
round-trip, a poison job dead-lettering, and the acceptance drill —
SIGKILL the drain supervisor mid-run, restart against the same queue
database, and require every job to reach a terminal state exactly once
with the experiment snapshot byte-identical to a sequential clean run.
"""

import json
import os
import pathlib
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import experiments
from repro.engine.registry import compatible_fallbacks, system_codes
from repro.service.api import make_server
from repro.service.breaker import BreakerBoard
from repro.service.config import QueueConfig, ServiceConfig
from repro.service.queue import DEAD, DONE, QUEUED, JobQueue
from repro.service.queue_supervisor import QueueSupervisor
from repro.service.serve import main as serve_main

GRAPH = "road-USA-W"

FAST = ServiceConfig(heartbeat_interval=0.05, heartbeat_timeout=10.0,
                     cell_deadline=8.0)


def snapshot_bytes() -> str:
    """The memo serialized the way ``save_results`` writes cells.json."""
    rows = [experiments.cell_to_row(v)
            for v in experiments.all_results().values()]
    rows.sort(key=lambda r: (r["system"], r["app"], r["graph"]))
    return json.dumps(rows, sort_keys=True, indent=1,
                      default=experiments._jsonify)


def ok_row(system="GB", app="bfs", graph=GRAPH):
    return {"system": system, "app": app, "graph": graph, "status": "ok",
            "seconds": 1.5, "mrss_gb": 0.25, "counters": {},
            "answer": None, "thread_sweep": {}, "attempts": 1}


# ----------------------------------------------------------------------
# CLI (no workers spawned)
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_submit_prints_job_and_dedups(self, tmp_path, capsys):
        q = str(tmp_path / "q.db")
        assert serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH,
                           "--tenant", "alice", "--idem-key", "k1"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["state"] == "queued" and job["tenant"] == "alice"
        assert serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH,
                           "--idem-key", "k1"]) == 0
        assert json.loads(capsys.readouterr().out)["id"] == job["id"]

    def test_submit_rejects_bad_payload_with_suggestion(self, tmp_path,
                                                        capsys):
        rc = serve_main(["submit", "--queue", str(tmp_path / "q.db"),
                         "GB", "bsf", GRAPH])
        assert rc == 2
        assert "bfs" in capsys.readouterr().err  # did-you-mean

    def test_status_counts_and_tenants(self, tmp_path, capsys):
        q = str(tmp_path / "q.db")
        serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH])
        capsys.readouterr()
        assert serve_main(["status", "--queue", q]) == 0
        out = capsys.readouterr().out
        assert "queued=1" in out and "tenant default" in out
        assert "dead letters:" not in out  # nothing dead yet

    def test_result_exit_codes(self, tmp_path, capsys):
        q = str(tmp_path / "q.db")
        serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH])
        capsys.readouterr()
        assert serve_main(["result", "--queue", q, "99"]) == 2
        assert serve_main(["result", "--queue", q, "1"]) == 1  # not run yet
        assert "state=queued" in capsys.readouterr().err

    def test_unknown_knob_fails_every_subcommand(self, tmp_path, capsys,
                                                 monkeypatch):
        q = str(tmp_path / "q.db")
        monkeypatch.setenv("REPRO_CELL_RETIRES", "1")
        assert serve_main(["status", "--queue", q]) == 2
        assert "REPRO_CELL_RETRIES" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_ALLOW_UNKNOWN_KNOBS", "1")
        assert serve_main(["status", "--queue", q]) == 0

    def test_drain_wants_positive_workers(self, tmp_path, capsys):
        rc = serve_main(["drain", "--queue", str(tmp_path / "q.db"),
                         "--workers", "0"])
        assert rc == 2

    def test_admission_denied_exit_code(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_TENANT_MAX_ACTIVE", "1")
        q = str(tmp_path / "q.db")
        assert serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH]) == 0
        assert serve_main(["submit", "--queue", q, "SS", "bfs", GRAPH]) == 3
        assert "admission denied" in capsys.readouterr().err


# ----------------------------------------------------------------------
# HTTP API (stdlib server on port 0, no workers)
# ----------------------------------------------------------------------
def _request(base, path, payload=None):
    """(status, body) for a GET, or a POST when ``payload`` is given."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def api(tmp_path):
    """A live API server over an empty queue; yields its base URL."""
    server = make_server(tmp_path / "q.db",
                         config=QueueConfig(tenant_max_active=2))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


class TestHTTPAPI:
    def test_health_and_systems(self, api):
        status, body = _request(api, "/health")
        assert status == 200 and body["ok"] and body["counts"]["queued"] == 0
        status, body = _request(api, "/systems")
        codes = {s["code"] for s in body["systems"]}
        assert status == 200 and set(system_codes()) <= codes
        assert all("fallbacks" in s for s in body["systems"])

    def test_submit_created_then_dedup(self, api):
        payload = {"system": "GB", "app": "bfs", "graph": GRAPH,
                   "idem_key": "cell-1"}
        status, created = _request(api, "/jobs", payload)
        assert status == 201 and created["state"] == "queued"
        status, deduped = _request(api, "/jobs", payload)
        assert status == 200 and deduped["id"] == created["id"]

    def test_submit_error_mapping(self, api):
        status, body = _request(api, "/jobs", {"system": "GB"})
        assert status == 400 and "missing required" in body["error"]
        status, body = _request(api, "/jobs", {"system": "GBX",
                                               "app": "bfs",
                                               "graph": GRAPH})
        assert status == 400 and "GB" in body["error"]  # did-you-mean

    def test_admission_cap_maps_to_429(self, api):
        for system in ("GB", "SS"):
            status, _ = _request(api, "/jobs", {
                "system": system, "app": "bfs", "graph": GRAPH,
                "tenant": "alice"})
            assert status == 201
        status, body = _request(api, "/jobs", {
            "system": "LS", "app": "bfs", "graph": GRAPH,
            "tenant": "alice"})
        assert status == 429 and "alice" in body["error"]

    def test_job_views_and_404s(self, api):
        _request(api, "/jobs", {"system": "GB", "app": "bfs",
                                "graph": GRAPH})
        status, job = _request(api, "/jobs/1")
        assert status == 200 and job["has_result"] is False
        assert _request(api, "/jobs/999")[0] == 404
        assert _request(api, "/jobs/not-a-number")[0] == 404
        assert _request(api, "/nope")[0] == 404
        status, body = _request(api, "/jobs/1/result")
        assert status == 409 and body["state"] == "queued"

    def test_events_cursor(self, api):
        _request(api, "/jobs", {"system": "GB", "app": "bfs",
                                "graph": GRAPH})
        status, body = _request(api, "/jobs/1/events")
        assert status == 200
        assert [e["kind"] for e in body["events"]] == ["submitted"]
        cursor = body["next_since"]
        status, body = _request(api, f"/jobs/1/events?since={cursor}")
        assert status == 200 and body["events"] == []
        assert body["next_since"] == cursor


# ----------------------------------------------------------------------
# Breaker admission over the queue (supervisor internals, no workers)
# ----------------------------------------------------------------------
class TestQueueAdmission:
    def _supervisor(self, queue, forced_open):
        supervisor = QueueSupervisor(queue, workers=1, config=FAST,
                                     owner="test")
        supervisor._breakers = BreakerBoard(system_codes(), 5, 8,
                                            forced_open=forced_open)
        return supervisor

    def test_open_breaker_with_no_fallback_defers(self, tmp_path, capsys):
        path = tmp_path / "q.db"
        queue = JobQueue(path, QueueConfig(defer_seconds=30.0))
        job = queue.submit("GB", "bfs", GRAPH)
        supervisor = self._supervisor(queue, forced_open=system_codes())
        assert supervisor._next_assignment(0) is None
        assert supervisor.stats["deferred"] == 1
        deferred = queue.get(job.id)
        assert deferred.state == QUEUED and deferred.attempts == 0
        assert "circuit breaker open for GB" in deferred.note
        assert queue.counts()["deferred"] == 1
        assert [e["kind"] for e in queue.events(job.id)] \
            == ["submitted", "deferred"]
        # ... and the deferral is visible in `repro-serve status`.
        assert serve_main(["status", "--queue", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deferred (backoff/breaker window):" in out
        assert "circuit breaker open for GB" in out
        queue.close()

    def test_open_breaker_reroutes_and_rekeys_degraded(self, tmp_path):
        fallback = compatible_fallbacks("GB")[0]
        queue = JobQueue(tmp_path / "q.db", QueueConfig())
        job = queue.submit("GB", "bfs", GRAPH)
        supervisor = self._supervisor(queue, forced_open=("GB",))
        payload = supervisor._next_assignment(0)
        assert payload["id"] == job.id and payload["system"] == fallback
        assert supervisor.stats["rerouted"] == 1
        supervisor._task_done(job.id, ok_row(system=fallback))
        done = queue.get(job.id)
        assert done.state == DONE
        # The result stays keyed as the tenant asked, flagged degraded.
        assert done.result["system"] == "GB"
        assert done.result["degraded"]["via"] == fallback
        kinds = [e["kind"] for e in queue.events(job.id)]
        assert kinds == ["submitted", "leased", "rerouted", "done"]
        queue.close()


# ----------------------------------------------------------------------
# Real workers: drain round-trip, dead letters, kill-and-restart
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDrainCLI:
    def test_submit_drain_result_roundtrip(self, tmp_path, capsys,
                                           monkeypatch, isolated_grid):
        monkeypatch.setenv("REPRO_SERVICE_HEARTBEAT", "0.05")
        q = str(tmp_path / "q.db")
        assert serve_main(["submit", "--queue", q, "GB", "bfs", GRAPH]) == 0
        job = json.loads(capsys.readouterr().out)
        assert serve_main(["drain", "--queue", q, "--workers", "1"]) == 0
        counts = json.loads(capsys.readouterr().out.strip())
        assert counts["done"] == 1 and counts["dead"] == 0
        assert serve_main(["result", "--queue", q, str(job["id"])]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["system"] == "GB" and row["status"] == "ok"
        assert row["seconds"] > 0


@pytest.mark.slow
class TestDeadLetterDrill:
    def test_poison_job_dead_letters_but_stays_visible(
            self, tmp_path, capsys, monkeypatch, isolated_grid):
        # This cell kills its worker on *every* attempt; the other job
        # must still complete and the poison job must end up a visible
        # dead letter, not a silent drop or a stuck drain.
        monkeypatch.setenv("REPRO_CHAOS_KILL_CELLS", f"GB:bfs:{GRAPH}")
        path = tmp_path / "q.db"
        queue = JobQueue(path, QueueConfig(
            max_attempts=2, backoff_base=0.05, backoff_cap=0.1,
            lease_seconds=30.0))
        poison = queue.submit("GB", "bfs", GRAPH, max_attempts=2)
        healthy = queue.submit("SS", "bfs", GRAPH)
        supervisor = QueueSupervisor(queue, workers=1, config=FAST,
                                     owner="drill")
        counts = supervisor.drain()
        assert counts["dead"] == 1 and counts["done"] == 1
        assert supervisor.stats["dead"] == 1
        dead = queue.get(poison.id)
        assert dead.state == DEAD and dead.attempts == 2
        assert queue.events(poison.id)[-1]["kind"] == "dead"
        assert queue.get(healthy.id).state == DONE
        queue.close()
        assert serve_main(["status", "--queue", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dead letters:" in out
        assert f"#{poison.id} GB bfs {GRAPH}" in out


#: Stand-alone drain driver for the SIGKILL drill.  A real file with a
#: __main__ guard because the worker pool uses the spawn start method
#: (the child re-imports its __main__ from its path).
DRAIN_CHILD = """\
import sys

from repro.service.config import QueueConfig, ServiceConfig
from repro.service.queue import JobQueue
from repro.service.queue_supervisor import QueueSupervisor

if __name__ == "__main__":
    queue = JobQueue(sys.argv[1], QueueConfig(lease_seconds=5.0))
    config = ServiceConfig(heartbeat_interval=0.05,
                           heartbeat_timeout=10.0, cell_deadline=8.0)
    QueueSupervisor(queue, workers=2, config=config,
                    owner="child").drain()
"""


@pytest.mark.slow
class TestKillAndRestartDrill:
    def test_sigkill_supervisor_restart_commits_exactly_once(
            self, tmp_path, isolated_grid):
        """The acceptance drill for the durable queue.

        SIGKILL a drain supervisor (and thereby orphan its leases) while
        the grid is in flight, restart against the same queue database,
        and require: every job terminal exactly once, nothing lost,
        nothing duplicated, and the mirrored experiment snapshot
        byte-identical to an uninterrupted sequential run.
        """
        apps = ("bfs", "cc")
        for app in apps:
            for system in ("SS", "GB", "LS"):
                experiments.run_cell(system, app, GRAPH)
        baseline = snapshot_bytes()
        experiments.clear_cache()

        path = tmp_path / "q.db"
        queue = JobQueue(path, QueueConfig(lease_seconds=5.0))
        job_ids = [
            queue.submit(system, app, GRAPH, tenant="drill",
                         idem_key=f"drill:{system}:{app}").id
            for app in apps for system in ("SS", "GB", "LS")]

        script = tmp_path / "drain_child.py"
        script.write_text(DRAIN_CHILD)
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, str(script), str(path)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                counts = queue.counts()
                if counts["done"] + counts["err"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("child drain made no progress before kill")
        finally:
            child.kill()
            child.wait()

        # Takeover: a fresh supervisor on the same database reclaims the
        # dead one's leases and finishes the grid, mirroring results.
        supervisor = QueueSupervisor(
            JobQueue(path, QueueConfig(lease_seconds=5.0)), workers=2,
            config=FAST, mirror_jobs=job_ids, owner="restart")
        counts = supervisor.drain()
        assert counts["queued"] == 0 and counts["leased"] == 0
        assert counts["dead"] == 0 and counts["err"] == 0
        assert counts["done"] == len(job_ids)
        for job_id in job_ids:
            job = queue.get(job_id)
            assert job.state == DONE and job.result is not None
            kinds = [e["kind"] for e in queue.events(job_id)]
            # Exactly one terminal commit ever, across both supervisors.
            assert kinds.count("done") == 1 and kinds.count("dead") == 0
        assert snapshot_bytes() == baseline
        queue.close()
