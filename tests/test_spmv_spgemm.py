"""Sparse kernels checked against scipy on random matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DimensionMismatch
from repro.sparse.csr import build_csr
from repro.sparse.semiring_ops import BINARY_FNS, MONOID_FNS
from repro.sparse.spgemm import (
    spgemm_diag_left,
    spgemm_flop_count,
    spgemm_masked_dot,
    spgemm_masked_saxpy,
    spgemm_saxpy,
)
from repro.sparse.spmv import mxv_push_transposed, spmv_pull, vxm_push


def random_csr(n, m, density, seed, ints=False):
    mat = sp.random(n, m, density=density, random_state=seed).tocsr()
    if ints:
        mat.data = np.round(mat.data * 9) + 1
    coo = mat.tocoo()
    return build_csr(n, m, coo.row, coo.col, coo.data), mat


class TestSpmvPull:
    def test_plus_times(self):
        A, S = random_csr(40, 40, 0.1, 1)
        x = np.random.default_rng(2).random(40)
        y, touched, flops = spmv_pull(A, x, MONOID_FNS["plus"],
                                      BINARY_FNS["times"])
        assert np.allclose(y, S @ x)
        assert flops == A.nvals

    def test_touched_marks_nonempty_rows(self):
        A, _ = random_csr(40, 40, 0.05, 3)
        x = np.ones(40)
        _, touched, _ = spmv_pull(A, x, MONOID_FNS["plus"],
                                  BINARY_FNS["times"])
        assert np.array_equal(touched, np.diff(A.indptr) > 0)

    def test_min_plus(self):
        A, S = random_csr(30, 30, 0.15, 4, ints=True)
        x = np.arange(30, dtype=np.float64)
        y, touched, _ = spmv_pull(A, x, MONOID_FNS["min"],
                                  BINARY_FNS["plus"])
        dense = S.toarray()
        for i in range(30):
            cols = np.nonzero(dense[i])[0]
            if len(cols):
                assert y[i] == min(dense[i, c] + x[c] for c in cols)


class TestPushKernels:
    def test_vxm_push_matches_dense(self):
        A, S = random_csr(35, 35, 0.12, 5)
        x_idx = np.array([1, 7, 20])
        x_val = np.array([2.0, 0.5, 3.0])
        y_idx, y_val, flops = vxm_push(A, x_idx, x_val, MONOID_FNS["plus"],
                                       BINARY_FNS["times"])
        xd = np.zeros(35)
        xd[x_idx] = x_val
        ref = xd @ S.toarray()
        got = np.zeros(35)
        got[y_idx] = y_val
        assert np.allclose(got, ref)

    def test_vxm_push_empty_input(self):
        A, _ = random_csr(10, 10, 0.2, 6)
        y_idx, y_val, flops = vxm_push(A, np.array([], dtype=np.int64),
                                       np.array([]), MONOID_FNS["plus"],
                                       BINARY_FNS["times"])
        assert len(y_idx) == 0 and flops == 0

    def test_mxv_push_transposed(self):
        A, S = random_csr(25, 25, 0.15, 7)
        At = A.transpose()
        x_idx = np.array([0, 5])
        x_val = np.array([1.0, 4.0])
        y_idx, y_val, _ = mxv_push_transposed(At, x_idx, x_val,
                                              MONOID_FNS["plus"],
                                              BINARY_FNS["times"])
        xd = np.zeros(25)
        xd[x_idx] = x_val
        ref = S.toarray() @ xd
        got = np.zeros(25)
        got[y_idx] = y_val
        assert np.allclose(got, ref)

    def test_noncommutative_mult_order(self):
        # second(x, A) in vxm must pick the matrix value.
        A, S = random_csr(20, 20, 0.2, 8, ints=True)
        x_idx = np.array([3])
        x_val = np.array([100.0])
        y_idx, y_val, _ = vxm_push(A, x_idx, x_val, MONOID_FNS["min"],
                                   BINARY_FNS["second"])
        cols, vals = A.row(3)
        assert np.array_equal(np.sort(y_idx), np.sort(cols.astype(np.int64)))
        for j, v in zip(y_idx, y_val):
            assert v == A.get(3, int(j))


class TestSpgemm:
    def test_saxpy_matches_scipy(self):
        A, SA = random_csr(30, 40, 0.1, 9)
        B, SB = random_csr(40, 25, 0.1, 10)
        C, flops = spgemm_saxpy(A, B, MONOID_FNS["plus"],
                                BINARY_FNS["times"])
        assert np.allclose(C.to_scipy().toarray(), (SA @ SB).toarray())
        assert flops == spgemm_flop_count(A, B)

    def test_saxpy_small_batches_same_result(self):
        A, SA = random_csr(30, 30, 0.15, 11)
        C1, _ = spgemm_saxpy(A, A, MONOID_FNS["plus"], BINARY_FNS["times"])
        C2, _ = spgemm_saxpy(A, A, MONOID_FNS["plus"], BINARY_FNS["times"],
                             batch_flops=7)
        assert (C1.to_scipy() != C2.to_scipy()).nnz == 0

    def test_saxpy_dimension_mismatch(self):
        A, _ = random_csr(5, 6, 0.3, 12)
        B, _ = random_csr(5, 6, 0.3, 13)
        with pytest.raises(DimensionMismatch):
            spgemm_saxpy(A, B, MONOID_FNS["plus"], BINARY_FNS["times"])

    def test_masked_dot_triangle_counting_form(self):
        # C<L> = L @ L' with plus_pair: common-neighbor counts.
        L = sp.tril(sp.random(35, 35, density=0.25, random_state=14),
                    k=-1).tocsr()
        L.data[:] = 1
        coo = L.tocoo()
        Lc = build_csr(35, 35, coo.row, coo.col, coo.data)
        C, work = spgemm_masked_dot(Lc, Lc, Lc, MONOID_FNS["plus"],
                                    BINARY_FNS["pair"])
        ref = (L @ L.T).toarray() * L.toarray()
        assert np.allclose(C.to_scipy().toarray(), ref)

    def test_masked_saxpy_equals_masked_dot(self):
        A, _ = random_csr(25, 25, 0.2, 15, ints=True)
        M, _ = random_csr(25, 25, 0.3, 16)
        At = A.transpose()
        C1, _ = spgemm_masked_dot(A, At, M, MONOID_FNS["plus"],
                                  BINARY_FNS["times"])
        # dot computes A @ (At)' == A @ A.
        C2, _ = spgemm_masked_saxpy(A, A, M, MONOID_FNS["plus"],
                                    BINARY_FNS["times"])
        assert np.allclose(C1.to_scipy().toarray(), C2.to_scipy().toarray())

    def test_masked_dot_drops_empty_dots(self):
        # Mask positions with no contributing pair must stay implicit.
        A = build_csr(3, 3, [0], [1], np.array([1.0]))
        mask = build_csr(3, 3, [0, 2], [0, 2], None)
        C, _ = spgemm_masked_dot(A, A.transpose(), mask, MONOID_FNS["plus"],
                                 BINARY_FNS["times"])
        # row 0 of A dotted with col 0 (= row 0 of At has entry at... ) is
        # A[0,:] . A[0,:]' = 1 at mask (0,0); (2,2) has no pairs.
        assert C.get(2, 2) is None

    def test_diag_left(self):
        B, SB = random_csr(20, 20, 0.2, 17)
        diag = np.arange(1, 21, dtype=np.float64)
        C, flops = spgemm_diag_left(diag, B, BINARY_FNS["times"])
        ref = sp.diags(diag) @ SB
        assert np.allclose(C.to_scipy().toarray(), ref.toarray())
        assert flops == B.nvals

    def test_diag_left_wrong_length(self):
        B, _ = random_csr(10, 10, 0.2, 18)
        with pytest.raises(DimensionMismatch):
            spgemm_diag_left(np.ones(5), B, BINARY_FNS["times"])


class TestTricount:
    def test_count_triangles_matches_trace(self):
        from repro.sparse.tricount import count_triangles_lower

        A, SA = random_csr(40, 40, 0.2, 19)
        sym = ((SA + SA.T) > 0).astype(np.float64)
        sym.setdiag(0)
        sym.eliminate_zeros()
        coo = sym.tocoo()
        symc = build_csr(40, 40, coo.row, coo.col, None)
        L = symc.extract_tril(strict=True)
        ntri, work, row_work = count_triangles_lower(L)
        ref = int(round((sym @ sym @ sym).diagonal().sum() / 6))
        assert ntri == ref
        assert row_work.sum() == work

    def test_twin_positions(self):
        from repro.sparse.tricount import twin_positions

        A, SA = random_csr(30, 30, 0.2, 20)
        sym = ((SA + SA.T) > 0).astype(np.float64)
        sym.setdiag(0)
        sym.eliminate_zeros()
        coo = sym.tocoo()
        symc = build_csr(30, 30, coo.row, coo.col, None)
        twin = twin_positions(symc)
        rows = np.repeat(np.arange(30), np.diff(symc.indptr))
        assert np.array_equal(rows[twin], symc.indices)
        assert np.array_equal(symc.indices[twin], rows)
        assert np.array_equal(twin[twin], np.arange(symc.nvals))

    def test_twin_positions_asymmetric_raises(self):
        A = build_csr(3, 3, [0], [1], None)
        from repro.sparse.tricount import twin_positions

        with pytest.raises(ValueError):
            twin_positions(A)

    def test_edge_supports_respects_alive(self):
        # Triangle 0-1-2 plus pendant edge 2-3.
        rows = [0, 1, 0, 2, 1, 2, 2, 3]
        cols = [1, 0, 2, 0, 2, 1, 3, 2]
        symc = build_csr(4, 4, rows, cols, None)
        from repro.sparse.tricount import edge_supports

        alive = np.ones(symc.nvals, dtype=bool)
        sup, work, _ = edge_supports(symc, alive)
        assert sup[symc.indptr[3]] == 0  # pendant edge has no support
        # Kill edge (0,1): the other triangle edges lose their support.
        pos01 = symc.indptr[0] + np.searchsorted(symc.row(0)[0], 1)
        alive[pos01] = False
        pos10 = symc.indptr[1] + np.searchsorted(symc.row(1)[0], 0)
        alive[pos10] = False
        sup2, _, _ = edge_supports(symc, alive)
        pos02 = symc.indptr[0] + np.searchsorted(symc.row(0)[0], 2)
        assert sup2[pos02] == 0
