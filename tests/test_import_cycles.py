"""Import-hygiene check: no top-level import cycles among repro modules.

The engine refactor deliberately layers the packages (errors -> engine ->
perf -> backends/runtime -> algorithms -> core); a cycle at import time
would make that layering a fiction and eventually deadlock a refactor.
This walks the AST of every module under ``src/repro``, collects its
*top-level* (module-scope) imports of other repro modules, and asserts
the resulting graph is acyclic.  Function-scope imports are exempt — they
are the sanctioned way to break a would-be cycle (and analysis.py uses
one for exactly that reason).
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def _module_name(path: pathlib.Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _top_level_repro_imports(tree: ast.Module, current: str):
    """Module-scope import targets inside the repro package, unresolved.

    ``from X import Y`` yields ``(X, Y)`` so the graph builder can decide
    whether ``Y`` is a submodule (edge to ``X.Y``) or just an attribute
    (edge to ``X``).
    """
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name, None
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base = current.split(".")
                module = ".".join(base[:len(base) - node.level + 1]
                                  + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if module.split(".")[0] == "repro":
                for alias in node.names:
                    yield module, alias.name


def _import_graph():
    raw = {}
    for path in sorted(SRC.joinpath("repro").rglob("*.py")):
        name = _module_name(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        raw[name] = list(_top_level_repro_imports(tree, name))
    graph = {}
    for name, imports in raw.items():
        deps = set()
        for module, attr in imports:
            # ``from pkg import sub`` depends on pkg.sub, not on pkg's
            # __init__ (Python resolves the submodule without requiring
            # the package body to have finished executing).
            if attr is not None and f"{module}.{attr}" in raw:
                deps.add(f"{module}.{attr}")
            else:
                deps.add(module)
        deps.discard(name)
        graph[name] = sorted(deps)
    return graph


def test_no_top_level_import_cycles():
    graph = _import_graph()

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}
    stack = []
    cycles = []

    def visit(name):
        color[name] = GRAY
        stack.append(name)
        for dep in graph.get(name, ()):
            if dep not in graph:
                # importing a package resolves to its __init__ module
                dep = dep if dep in color else None
            if dep is None:
                continue
            if color[dep] == GRAY:
                cycles.append(stack[stack.index(dep):] + [dep])
            elif color[dep] == WHITE:
                visit(dep)
        stack.pop()
        color[name] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name)

    assert cycles == [], "import cycles found:\n" + "\n".join(
        " -> ".join(c) for c in cycles)


def test_engine_is_below_perf_and_backends():
    """The engine package must not import perf, backends or algorithms."""
    graph = _import_graph()
    forbidden = ("repro.perf", "repro.graphblas", "repro.suitesparse",
                 "repro.galoisblas", "repro.runtime", "repro.galois",
                 "repro.lagraph", "repro.lonestar")
    for module, deps in graph.items():
        if not module.startswith("repro.engine"):
            continue
        bad = [d for d in deps if d.startswith(forbidden)]
        assert bad == [], f"{module} imports above its layer: {bad}"
