#!/usr/bin/env python
"""Run the complete evaluation and write every artifact to disk.

Regenerates Tables I-V and Figures 2-3 on the full nine-graph grid, writes
the rendered text to ``benchmarks/results/`` and the raw cells to
``benchmarks/results/cells.json``.  This is the long-form equivalent of
``repro-study all --save ...`` with progress output.

The run is resilient: every completed cell is checkpointed to a JSONL
journal (``--journal``, default ``<out>/journal.jsonl``), so a killed run
can be continued with ``--resume`` — already-journaled cells are recalled
instead of re-run, and the final ``cells.json`` is byte-identical to an
uninterrupted run's.  Fault injection for drills is configured through the
``REPRO_FAULTS`` environment knobs (see ``repro.faults``).

With ``--workers N`` (N > 1) the grid cells run on a supervised pool of N
worker processes (``repro.service``): crashed or hung workers are
respawned and their cells requeued, and the journal still commits in
canonical order, so ``cells.json`` stays byte-identical to a sequential
run's.  ``--workers`` composes with ``--resume`` and the fault knobs.
"""

import argparse
import pathlib
import sys
import time

from repro import faults
from repro.core import checkpoint, experiments, figures, tables
from repro.core.experiments import GRAPH_ORDER, STATUSES
from repro.core.systems import APPLICATIONS

DEFAULT_OUT = (pathlib.Path(__file__).resolve().parent.parent
               / "benchmarks" / "results")

#: Figure 2's panel: the four largest graphs.
LARGEST = GRAPH_ORDER[-4:]


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="artifact directory (created if missing)")
    parser.add_argument("--journal", type=pathlib.Path, default=None,
                        help="cell checkpoint journal "
                             "(default: <out>/journal.jsonl)")
    parser.add_argument("--resume", action="store_true",
                        help="recall cells already in the journal instead "
                             "of re-running them")
    parser.add_argument("--graphs", nargs="*", default=None,
                        help=f"graph subset (default: all of {GRAPH_ORDER})")
    parser.add_argument("--apps", nargs="*", default=None,
                        help=f"application subset (default: {APPLICATIONS})")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run grid cells on N supervised worker "
                             "processes (default: 1 = in-process)")
    parser.add_argument("--queue", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="route the grid through a durable job queue "
                             "at PATH (created if missing): cells are "
                             "submitted as idempotent jobs and drained by "
                             "a crash-safe QueueSupervisor with --workers "
                             "processes; a killed run re-invoked against "
                             "the same queue resumes exactly once per job")
    return parser.parse_args(argv)


def _drain_through_queue(queue_path, tasks, workers: int) -> None:
    """Run the grid as durable queue jobs instead of an in-memory list.

    Each task becomes one idempotent job (``study:<system>:<app>:<graph>``
    keys), so re-invoking a killed run against the same queue resubmits
    nothing — already-committed jobs replay their stored result into the
    journal and the rest resume from their requeued leases.  Results are
    mirrored into the experiment memo in submission order through the
    OrderedCommitter discipline, so the downstream renderers and
    ``cells.json`` behave exactly as in the ``--workers`` path.
    """
    from repro.service import JobQueue, QueueSupervisor

    queue = JobQueue(queue_path)
    job_ids = []
    for task in tasks:
        job = queue.submit(
            task.system, task.app, task.graph,
            params={"sweep": True} if task.sweep else {},
            tenant="study",
            idem_key=f"study:{task.system}:{task.app}:{task.graph}")
        job_ids.append(job.id)
    supervisor = QueueSupervisor(queue, workers=workers,
                                 mirror_jobs=job_ids)
    counts = supervisor.drain()
    print(supervisor.describe(), flush=True)
    if counts["dead"]:
        print(f"warning: {counts['dead']} job(s) dead-lettered; see "
              f"'repro-serve status --queue {queue_path}'",
              file=sys.stderr)
    queue.close()


def main(argv=None) -> int:
    args = parse_args(argv)
    out = args.out
    out.mkdir(parents=True, exist_ok=True)
    journal_path = args.journal or (out / "journal.jsonl")

    from repro.service.config import validate_env_knobs

    validate_env_knobs()
    experiments.validate_selection(graphs=args.graphs, apps=args.apps)
    graphs = list(args.graphs or GRAPH_ORDER)
    apps = list(args.apps or APPLICATIONS)

    faults.install_from_env()
    if args.workers < 1:
        print(f"--workers wants a positive worker count; got "
              f"{args.workers}", file=sys.stderr)
        return 2
    if args.resume:
        n = checkpoint.resume(journal_path)
        print(f"resuming: {n} cells recalled from {journal_path}",
              flush=True)
    else:
        checkpoint.attach(journal_path, fresh=True)

    if args.queue is not None or args.workers > 1:
        from repro.service import grid_tasks

        tasks = grid_tasks(
            graphs, apps,
            sweep_apps=[a for a in apps if a in figures.FIGURE2_APPS]
            or figures.FIGURE2_APPS,
            sweep_graphs=[g for g in graphs if g in LARGEST] or LARGEST)
        if args.queue is not None:
            _drain_through_queue(args.queue, tasks, args.workers)
        else:
            from repro.service import Supervisor

            supervisor = Supervisor(tasks, workers=args.workers)
            supervisor.run()
            print(supervisor.describe(), flush=True)

    targets = (
        ("table1", lambda: tables.table1(graphs)),
        ("table2", lambda: tables.table2(graphs, apps)),
        ("table3", lambda: tables.table3(graphs, apps)),
        ("table4", lambda: tables.table4(graphs, apps)),
        ("figure2", lambda: figures.figure2(
            apps=[a for a in apps if a in figures.FIGURE2_APPS]
            or figures.FIGURE2_APPS,
            graphs=[g for g in graphs if g in LARGEST] or LARGEST)),
        ("figure3", lambda: figures.figure3(graphs=graphs)),
        ("table5", lambda: tables.table5(graphs)),
    )
    t0 = time.time()
    summary = []
    for name, fn in targets:
        t = time.time()
        before = set(experiments.all_results())
        rendered = fn()
        fresh = [r for k, r in experiments.all_results().items()
                 if k not in before]
        summary.append((name, experiments.status_counts(fresh)))
        (out / f"{name}.txt").write_text(str(rendered) + "\n")
        print(f"[{time.time() - t0:7.0f}s] {name} done "
              f"({time.time() - t:.0f}s)", flush=True)
    experiments.set_journal(None)
    experiments.save_results(str(out / "cells.json"))

    print("cell summary (new cells per target):")
    for name, counts in summary:
        line = " ".join(f"{s}={counts[s]}" for s in STATUSES)
        print(f"  {name:<8s} {line}")
    total = experiments.status_counts()
    print("  " + "-" * 40)
    print(f"  {'grid':<8s} "
          + " ".join(f"{s}={total[s]}" for s in STATUSES))
    if total["ERR"]:
        print(f"warning: {total['ERR']} cell(s) ended in ERR; inspect "
              "cells.json error fields", file=sys.stderr)
    print(f"all artifacts in {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
