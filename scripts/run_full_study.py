#!/usr/bin/env python
"""Run the complete evaluation and write every artifact to disk.

Regenerates Tables I-V and Figures 2-3 on the full nine-graph grid, writes
the rendered text to ``benchmarks/results/`` and the raw cells to
``benchmarks/results/cells.json``.  This is the long-form equivalent of
``repro-study all --save ...`` with progress output.
"""

import pathlib
import sys
import time

from repro.core import figures, tables
from repro.core.experiments import save_results

OUT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def main():
    OUT.mkdir(exist_ok=True)
    t0 = time.time()
    for name, fn in (
        ("table1", tables.table1),
        ("table2", tables.table2),
        ("table3", tables.table3),
        ("table4", tables.table4),
        ("figure2", figures.figure2),
        ("figure3", figures.figure3),
        ("table5", tables.table5),
    ):
        t = time.time()
        rendered = fn()
        (OUT / f"{name}.txt").write_text(str(rendered) + "\n")
        print(f"[{time.time() - t0:7.0f}s] {name} done "
              f"({time.time() - t:.0f}s)", flush=True)
    save_results(str(OUT / "cells.json"))
    print(f"all artifacts in {OUT}")


if __name__ == "__main__":
    main()
