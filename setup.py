"""Setuptools shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, so ``pip install -e .`` (which builds an editable wheel) fails.
``python setup.py develop`` — or the .pth fallback below — installs the
package identically for this repository's purposes.
"""

from setuptools import setup

setup()
