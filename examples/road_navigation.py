#!/usr/bin/env python
"""Road-network routing: why asynchrony matters (paper §V-B, sssp).

Single-source shortest paths on a high-diameter road network, three ways:

* asynchronous delta-stepping on an OBIM priority worklist (Lonestar) —
  relaxations become visible immediately, no rounds;
* the same without edge tiling (ls-notile);
* bulk-synchronous delta-stepping through the GraphBLAS API (LAGraph 12c)
  — every relaxation wave is a full set of matrix-API calls with barriers.

On road networks the bulk-synchronous version executes thousands of rounds
(one per relaxation wave, bounded below by the graph diameter), which is
how the paper finds it >100x slower (Figure 3d).

Run:  python examples/road_navigation.py
"""

import numpy as np

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.graphs.generators import road_lattice
from repro.graphs.transform import random_weights
from repro.lagraph import delta_stepping as bulk_sync_sssp
from repro.lonestar import delta_stepping as async_sssp
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import CSRMatrix, build_csr

DELTA = 1 << 13


def build_road():
    n, src, dst = road_lattice(length=1200, width=3, seed=7)
    w = random_weights(len(src), seed=8)
    csr = build_csr(n, n, src, dst, w, dedup="min")
    return csr


def main():
    csr = build_road()
    print(f"road network: |V|={csr.nrows:,} |E|={csr.nvals:,} "
          f"(long thin lattice, diameter ~1200)\n")
    results = {}

    for name, tiled in (("async delta-stepping (ls)", True),
                        ("async, no edge tiling (ls-notile)", False)):
        machine = Machine()
        graph = Graph(GaloisRuntime(machine), csr, csr.values, name="road")
        machine.reset_measurement()
        dist = async_sssp(graph, 0, DELTA, tiled=tiled)
        results[name] = (machine, dist)

    machine = Machine()
    backend = GaloisBLASBackend(machine)
    Aw = gb.Matrix.from_csr(backend, gb.INT64, csr, label="road")
    machine.reset_measurement()
    dist_bs = bulk_sync_sssp(backend, Aw, 0, DELTA).dense_values()
    results["bulk-synchronous (LAGraph 12c)"] = (machine, dist_bs)

    # All three agree.
    dists = [np.asarray(d, dtype=np.int64) for _, d in results.values()]
    assert all(np.array_equal(dists[0], d) for d in dists[1:])
    far = int(dists[0][dists[0] < np.iinfo(np.int64).max].max())
    print(f"farthest intersection: {far:,} distance units; "
          "all variants agree\n")

    base = None
    print(f"{'variant':38s}{'rounds':>8s}{'loops':>8s}{'sim sec':>10s}"
          f"{'slowdown':>10s}")
    for name, (m, _) in results.items():
        sec = m.simulated_seconds()
        if base is None:
            base = sec
        print(f"{name:38s}{m.counters.rounds:>8,}{m.counters.loops:>8,}"
              f"{sec:>10.4f}{sec / base:>10.1f}x")
    print("\nThe matrix API cannot express a single priority worklist, so "
          "it pays one\nbulk-synchronous wave — several full API calls plus "
          "barriers — per relaxation\ndepth (paper limitation #4).")


if __name__ == "__main__":
    main()
