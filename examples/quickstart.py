#!/usr/bin/env python
"""Quickstart: the same BFS through both APIs the paper compares.

Builds a small synthetic social network, then computes BFS levels twice:

1. with the **matrix-based API** (GraphBLAS, as LAGraph's Algorithm 2 does:
   a masked vxm per round, three API calls each);
2. with the **graph-based API** (Galois worklists, as Lonestar's
   Algorithm 1 does: one fused loop per round);

verifies the answers agree, and prints what the simulated 56-core machine
observed — the instruction, memory-access and loop-count gaps that drive
the paper's Table IV.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.graphs.generators import chung_lu
from repro.lagraph import bfs as lagraph_bfs
from repro.lonestar import bfs as lonestar_bfs
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import build_csr


def main():
    # A 2000-vertex power-law "social network".
    n, src, dst = chung_lu(n=2000, avg_degree=12, seed=42)
    csr = build_csr(n, n, src, dst, None, dedup="last")
    source = int(np.argmax(np.diff(csr.indptr)))  # the paper's source policy
    print(f"graph: |V|={csr.nrows:,} |E|={csr.nvals:,} source={source}")

    # --- matrix-based API (LAGraph on GaloisBLAS) ------------------------
    machine_gb = Machine()
    backend = GaloisBLASBackend(machine_gb)
    A = gb.Matrix.from_csr(backend, gb.BOOL, csr, label="A")
    machine_gb.reset_measurement()
    dist_matrix = lagraph_bfs(backend, A, source).dense_values()

    # --- graph-based API (Lonestar on Galois) ----------------------------
    machine_ls = Machine()
    graph = Graph(GaloisRuntime(machine_ls), csr, name="social")
    machine_ls.reset_measurement()
    dist_graph = lonestar_bfs(graph, source)

    assert np.array_equal(dist_matrix, dist_graph), "APIs disagree!"
    reached = int((dist_graph > 0).sum())
    depth = int(dist_graph.max())
    print(f"bfs: reached {reached:,} vertices, {depth} levels; "
          f"both APIs agree\n")

    print(f"{'':24s}{'matrix API':>14s}{'graph API':>14s}{'ratio':>8s}")
    rows = [
        ("instructions", machine_gb.counters.instructions,
         machine_ls.counters.instructions),
        ("memory accesses", machine_gb.counters.memory_accesses(),
         machine_ls.counters.memory_accesses()),
        ("DRAM accesses", machine_gb.counters.dram,
         machine_ls.counters.dram),
        ("parallel loops", machine_gb.counters.loops,
         machine_ls.counters.loops),
    ]
    for label, m_val, g_val in rows:
        ratio = m_val / max(g_val, 1)
        print(f"{label:24s}{m_val:>14,}{g_val:>14,}{ratio:>8.2f}")
    t_m = machine_gb.simulated_seconds()
    t_g = machine_ls.simulated_seconds()
    print(f"{'simulated seconds':24s}{t_m:>14.5f}{t_g:>14.5f}"
          f"{t_m / t_g:>8.2f}")
    print("\nThe matrix API needs multiple passes (assign + vxm + nvals "
          "check) per round\nwhere the graph API fuses everything into one "
          "loop — the paper's 'lightweight\nloops' limitation.")


if __name__ == "__main__":
    main()
