#!/usr/bin/env python
"""Web-graph community analysis: triangles, trusses and components.

A workload straight out of the paper's motivation: given a web crawl, find
its dense link communities.  The pipeline runs

1. connected components (cc) to find the crawl's link islands,
2. triangle counting (tc) to measure clustering,
3. k-truss (ktruss) to extract the cohesive cores,
4. pagerank (pr) to rank the pages inside the biggest core,

each through BOTH stacks, verifying agreement and reporting the simulated
time and the materialization footprint the matrix API pays (paper
limitation #2: tc/ktruss build L, U and C matrices where the graph API
increments a scalar).

Run:  python examples/web_community_analysis.py
"""

import numpy as np

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.graphs.generators import web_crawl
from repro.graphs.transform import symmetrize
from repro import lagraph, lonestar
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import CSRMatrix, build_csr

K = 5


def pattern(csr):
    return CSRMatrix(csr.nrows, csr.ncols, csr.indptr, csr.indices, None)


def main():
    n, src, dst = web_crawl(n=3000, out_degree=20, seed=21)
    csr = build_csr(n, n, src, dst, None, dedup="last")
    sym, _ = symmetrize(csr)
    print(f"web crawl: |V|={n:,} |E|={csr.nvals:,} "
          f"(undirected view: {sym.nvals:,} arcs)\n")

    # ----- matrix-based pipeline -----------------------------------------
    machine_m = Machine()
    backend = GaloisBLASBackend(machine_m)
    Asym = gb.Matrix.from_csr(backend, gb.BOOL, pattern(sym), label="web")
    Adir = gb.Matrix.from_csr(backend, gb.BOOL, pattern(csr), label="webd")
    machine_m.reset_measurement()
    labels_m = lagraph.fastsv(backend, Asym).dense_values()
    ntri_m = lagraph.triangle_count(backend, Asym, "gb")
    truss_m, _ = lagraph.ktruss(backend, Asym, K)
    ranks_m = lagraph.pagerank_gb(backend, Adir, iters=10).dense_values()

    # ----- graph-based pipeline -------------------------------------------
    machine_g = Machine()
    rt = GaloisRuntime(machine_g)
    gsym = Graph(rt, pattern(sym), name="web")
    gdir = Graph(rt, pattern(csr), name="webd")
    machine_g.reset_measurement()
    labels_g = lonestar.afforest(gsym)
    ntri_g = lonestar.triangle_count(gsym)
    alive_g, _ = lonestar.ktruss(Graph(GaloisRuntime(machine_g), pattern(sym),
                                       name="web2"), K)
    ranks_g = lonestar.pagerank(gdir, iters=10)

    # ----- agreement -------------------------------------------------------
    assert len(np.unique(labels_m)) == len(np.unique(labels_g))
    assert ntri_m == ntri_g
    assert truss_m.nvals == alive_g.sum()
    assert np.allclose(ranks_m, ranks_g, rtol=1e-9)

    n_comp = len(np.unique(labels_g))
    core_vertices = np.unique(np.repeat(
        np.arange(n), np.diff(sym.indptr))[alive_g])
    top = np.argsort(ranks_g)[::-1][:5]
    print(f"components:        {n_comp}")
    print(f"triangles:         {ntri_g:,}")
    print(f"{K}-truss core:      {truss_m.nvals // 2:,} edges over "
          f"{len(core_vertices):,} pages")
    print("top pages by rank: " + ", ".join(
        f"#{v}({ranks_g[v]:.2e})" for v in top))

    print(f"\n{'pipeline':28s}{'sim sec':>10s}{'MRSS (model bytes)':>22s}")
    print(f"{'matrix API (GaloisBLAS)':28s}"
          f"{machine_m.simulated_seconds():>10.4f}"
          f"{machine_m.mrss_bytes():>22,}")
    print(f"{'graph API (Galois)':28s}"
          f"{machine_g.simulated_seconds():>10.4f}"
          f"{machine_g.mrss_bytes():>22,}")
    print("\nThe matrix pipeline materializes L, U and the support/count "
          "matrix C for\ntc and ktruss; the graph pipeline counts into "
          "scalars and a support array.")


if __name__ == "__main__":
    main()
