#!/usr/bin/env python
"""A miniature of the paper's whole study, end to end.

Runs the full three-system comparison (LAGraph/SuiteSparse, LAGraph/
GaloisBLAS, Lonestar/Galois) over a subset of the nine input graphs and all
six problems, prints a Table II-style grid with the fastest system starred,
and summarizes the average speedups the paper headlines:

* Lonestar ~5x faster than LAGraph/SuiteSparse,
* GaloisBLAS ~1.4x faster than SuiteSparse,
* Lonestar ~3.5x faster than GaloisBLAS.

Run:  python examples/api_comparison_study.py [graph ...]
"""

import sys

import numpy as np

from repro.core.experiments import OK, run_cell
from repro.core.systems import APPLICATIONS, SYSTEMS

DEFAULT_GRAPHS = ["road-USA-W", "rmat22", "eukarya"]


def geomean(values):
    values = [v for v in values if v > 0]
    return float(np.exp(np.mean(np.log(values)))) if values else float("nan")


def main(graphs):
    print(f"systems: SS = LAGraph/SuiteSparse, GB = LAGraph/GaloisBLAS, "
          f"LS = Lonestar/Galois")
    print(f"graphs:  {', '.join(graphs)}\n")

    header = f"{'':14s}" + "".join(f"{g:>14s}" for g in graphs)
    print(header)
    cells = {}
    for app in APPLICATIONS:
        for system in SYSTEMS:
            row = []
            for g in graphs:
                cell = run_cell(system, app, g)
                cells[(app, system, g)] = cell
                text = cell.display()
                if cell.status == OK:
                    others = [cells.get((app, s, g)) for s in SYSTEMS]
                    row.append(text)
                else:
                    row.append(text)
            print(f"{app + ' ' + system:14s}" +
                  "".join(f"{t:>14s}" for t in row))
        print()

    # Headline ratios (geomean over cells where both completed).
    pairs = {"SS/LS": [], "SS/GB": [], "GB/LS": []}
    for app in APPLICATIONS:
        for g in graphs:
            t = {s: cells[(app, s, g)] for s in SYSTEMS}
            if all(c.status == OK for c in t.values()):
                pairs["SS/LS"].append(t["SS"].seconds / t["LS"].seconds)
                pairs["SS/GB"].append(t["SS"].seconds / t["GB"].seconds)
                pairs["GB/LS"].append(t["GB"].seconds / t["LS"].seconds)

    print("average speedups (geomean), paper's headline in parentheses:")
    print(f"  Lonestar over SuiteSparse : {geomean(pairs['SS/LS']):5.2f}x  (~5x)")
    print(f"  GaloisBLAS over SuiteSparse: {geomean(pairs['SS/GB']):5.2f}x  (~1.4x)")
    print(f"  Lonestar over GaloisBLAS  : {geomean(pairs['GB/LS']):5.2f}x  (~3.5x)")


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT_GRAPHS)
