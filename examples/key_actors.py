#!/usr/bin/env python
"""Key-actor detection via betweenness centrality (the paper's §I example).

The paper opens with betweenness centrality — "find key actors in terrorist
networks" or "important river confluence points".  This example builds a
covert-network-like graph (tight cells bridged by a few couriers), computes
Brandes centrality through both APIs, checks they agree, and shows that the
couriers — not the highest-degree members — carry the highest centrality.

It also shows the cost asymmetry on this problem: the matrix-API forward
sweep must materialize one path-count vector per BFS level for the backward
sweep, while the graph API keeps two flat arrays.

Run:  python examples/key_actors.py
"""

import numpy as np

import repro.graphblas as gb
from repro.galois.graph import Graph
from repro.galoisblas import GaloisBLASBackend
from repro.lagraph import betweenness_centrality as matrix_bc
from repro.lonestar import betweenness_centrality as graph_bc
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime
from repro.sparse.csr import build_csr

N_CELLS = 8
CELL_SIZE = 24


def build_covert_network(seed=3):
    """Dense cells; one courier per adjacent cell pair bridges them."""
    rng = np.random.default_rng(seed)
    n = N_CELLS * CELL_SIZE
    src, dst = [], []
    couriers = []
    for c in range(N_CELLS):
        base = c * CELL_SIZE
        # Dense intra-cell communication.
        for _ in range(CELL_SIZE * 5):
            a, b = rng.integers(0, CELL_SIZE, 2)
            if a != b:
                src.append(base + a)
                dst.append(base + b)
        # The courier: first member of each cell talks to the next cell's.
        nxt = ((c + 1) % N_CELLS) * CELL_SIZE
        couriers.append(base)
        src += [base, nxt]
        dst += [nxt, base]
    csr = build_csr(n, n, np.array(src), np.array(dst), None, dedup="last")
    return csr, couriers


def main():
    csr, couriers = build_covert_network()
    n = csr.nrows
    sources = list(range(n))  # exact centrality
    print(f"covert network: {N_CELLS} cells x {CELL_SIZE} members, "
          f"|E|={csr.nvals:,}; couriers at {couriers}\n")

    machine_g = Machine()
    graph = Graph(GaloisRuntime(machine_g), csr, name="covert")
    machine_g.reset_measurement()
    scores_g = graph_bc(graph, sources)

    machine_m = Machine()
    backend = GaloisBLASBackend(machine_m)
    A = gb.Matrix.from_csr(backend, gb.BOOL, csr, label="covert")
    machine_m.reset_measurement()
    scores_m = matrix_bc(backend, A, sources).dense_values()

    assert np.allclose(scores_g, scores_m), "APIs disagree!"

    top = np.argsort(scores_g)[::-1][:N_CELLS]
    print("top actors by betweenness:")
    for v in top:
        role = "courier" if v in couriers else "member"
        print(f"  vertex {v:4d}  score {scores_g[v]:12.1f}  ({role})")
    found = sum(1 for v in top if v in couriers)
    print(f"\n{found}/{N_CELLS} of the top-{N_CELLS} are couriers — "
          "degree alone would have missed them.\n")

    print(f"{'API':24s}{'sim sec':>10s}{'allocations':>14s}")
    print(f"{'graph (Lonestar)':24s}{machine_g.simulated_seconds():>10.4f}"
          f"{machine_g.allocator.total_allocations:>14,}")
    print(f"{'matrix (LAGraph)':24s}{machine_m.simulated_seconds():>10.4f}"
          f"{machine_m.allocator.total_allocations:>14,}")
    print("\nThe matrix API materializes one sigma vector per BFS level "
          "per source;\nthe graph API keeps two flat arrays (paper "
          "limitation #2).")


if __name__ == "__main__":
    main()
