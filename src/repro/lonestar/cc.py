"""Lonestar connected components: Afforest, plus the ls-sv variant.

**Afforest** ([14], Table II's "ls") is the paper's showcase for
fine-grained vertex operations that a matrix API cannot express:

1. *neighbor rounds*: union each vertex with only its first couple of
   neighbors — a sampled subgraph, processing a small fraction of edges;
2. *component sampling*: estimate the largest intermediate component from a
   random vertex sample;
3. *finish*: only vertices outside that component process their remaining
   edges.

On social/web graphs the giant component forms in step 1, so step 3 touches
very few edges — an order of magnitude fewer instructions and memory
accesses than pointer-jumping over every edge every round (Table IV).

**Shiloach-Vishkin** (``ls-sv``, Figure 3c) hooks along all edges each
round, but being asynchronous it short-circuits parent chains *unboundedly*
within a round — unlike LAGraph's FastSV, whose bulk operations perform one
bounded jump per round.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.sparse.segreduce import scatter_reduce

#: Vertices sampled to identify the giant intermediate component.
SAMPLE_SIZE = 1024


def _find(parent: np.ndarray, u: int) -> int:
    """Union-find root with path halving (a fine-grained vertex op)."""
    while parent[u] != u:
        parent[u] = parent[parent[u]]
        u = parent[u]
    return u


def _link(parent: np.ndarray, u: int, v: int) -> int:
    """Union by minimum root; returns the number of pointer hops charged."""
    hops = 0
    while True:
        ru, rv = u, v
        while parent[ru] != ru:
            parent[ru] = parent[parent[ru]]
            ru = parent[ru]
            hops += 1
        while parent[rv] != rv:
            parent[rv] = parent[parent[rv]]
            rv = parent[rv]
            hops += 1
        if ru == rv:
            return hops + 2
        lo, hi = (ru, rv) if ru < rv else (rv, ru)
        parent[hi] = lo
        return hops + 3


def afforest(graph: Graph, neighbor_rounds: int = 2) -> np.ndarray:
    """Component labels (min reachable root id per component).

    ``graph`` must be the undirected (symmetric) view.
    """
    rt = graph.runtime
    n = graph.nnodes
    parent = graph.add_node_data("cc_parent", np.int64, fill=0)
    parent[:] = np.arange(n)
    indptr, indices = graph.csr.indptr, graph.csr.indices
    degrees = np.diff(indptr)

    # Phase 1: neighbor rounds — link each vertex with its r-th neighbor.
    for r in range(neighbor_rounds):
        rt.round()
        srcs = np.flatnonzero(degrees > r)
        hops = 0
        for u in srcs:
            hops += _link(parent, int(u), int(indices[indptr[u] + r]))
        rt.do_all(
            OpEvent(kind="do_all", label="cc_neighbor_round",
                    items=len(srcs)),
            instr_per_item=2.0,
            extra_instr=hops * 2,
            streams=[rt.rand(parent.nbytes, hops + len(srcs), elem_bytes=8),
                     rt.strided(graph.csr.nbytes, len(srcs))],
        )

    _compress(rt, parent)

    # Phase 2: sample to find the giant intermediate component.
    rng = np.random.default_rng(0xAF)
    sample = rng.integers(0, n, min(SAMPLE_SIZE, n))
    roots = parent[parent[sample]]
    giant = np.bincount(roots, minlength=n).argmax()
    rt.do_all(
        OpEvent(kind="do_all", label="cc_sample", items=len(sample)),
        instr_per_item=4.0,
        streams=[rt.rand(parent.nbytes, 2 * len(sample), elem_bytes=8)],
    )

    # Phase 3: finish — only vertices outside the giant component process
    # their remaining edges (the fine-grained saving).
    rt.round()
    outside = np.flatnonzero(parent[parent] != giant)
    hops = 0
    scanned = 0
    for u in outside:
        if _find(parent, int(u)) == giant:
            continue
        lo, hi = indptr[u] + neighbor_rounds, indptr[u + 1]
        scanned += max(0, hi - lo)
        for v in indices[lo:hi]:
            hops += _link(parent, int(u), int(v))
    rt.do_all(
        OpEvent(kind="do_all", label="cc_finish",
                items=max(len(outside), 1)),
        instr_per_item=2.0,
        extra_instr=hops * 2 + scanned * 2,
        streams=[rt.rand(parent.nbytes, hops + scanned, elem_bytes=8),
                 rt.strided(graph.csr.nbytes, scanned)],
        weights=degrees[outside] + 1 if len(outside) else None,
    )

    _compress(rt, parent)
    return parent.copy()


def shiloach_vishkin(graph: Graph) -> np.ndarray:
    """The ls-sv variant: hook along every edge, then jump to fixpoint.

    The pointer jumping inside a round runs to convergence without global
    barriers (asynchronous short-circuiting), which is what lets ls-sv beat
    LAGraph's bounded FastSV on high-diameter graphs (§V-B, Figure 3c).
    """
    rt = graph.runtime
    n = graph.nnodes
    parent = graph.add_node_data("cc_parent_sv", np.int64, fill=0)
    parent[:] = np.arange(n)
    rows = graph.csr.row_ids()
    cols = graph.csr.indices.astype(np.int64)

    while True:
        rt.round()
        before = parent.copy()
        # Hook: every edge pulls the larger root toward the smaller.
        scatter_reduce(parent, before[rows], before[cols], "min")
        scatter_reduce(parent, before[cols], before[rows], "min")
        rt.do_all(
            OpEvent(kind="do_all", label="sv_hook", items=len(rows)),
            instr_per_item=4.0,
            streams=[rt.seq(graph.csr.nbytes, len(rows)),
                     rt.rand(parent.nbytes, 4 * len(rows), elem_bytes=8)],
        )
        # Unbounded pointer jumping (asynchronous, barrier-free slices).
        # Each vertex short-circuits until its parent is a root; with path
        # compression the charged work is the number of pointers that
        # actually move, amortized near-linear — not a full pass per wave.
        while True:
            pp = parent[parent]
            moved = int(np.count_nonzero(pp != parent))
            rt.for_each(
                OpEvent(kind="for_each", label="sv_jump",
                        items=max(moved, 1)),
                instr_per_item=2.0,
                streams=[rt.rand(parent.nbytes, 2 * max(moved, 1),
                                 elem_bytes=8)],
            )
            if moved == 0:
                break
            parent[:] = pp
        if np.array_equal(parent, before):
            break
    return parent.copy()


def _compress(rt, parent: np.ndarray) -> None:
    """Full pointer-jump compression to roots (vectorized)."""
    hops = 0
    while True:
        pp = parent[parent]
        hops += 1
        if np.array_equal(pp, parent):
            break
        parent[:] = pp
    rt.do_all(
        OpEvent(kind="do_all", label="cc_compress", items=len(parent)),
        instr_per_item=1.0 * hops,
        streams=[rt.rand(parent.nbytes, hops * len(parent), elem_bytes=8)],
    )
