"""Lonestar PageRank: residual push with AoS node data (and ls-soa).

Per round, **one** fused ``do_all`` over the active vertices does all of:
read the residual, accumulate it into the pagerank, scale by the
out-degree, push the contribution to the out-neighbors' residuals — the
composite operator the matrix API must split into separate calls (gb-res
iterates the residual vector twice; §V-B "pr", Table V).

Table II's "ls" packs pagerank/residual/out-degree into one per-vertex
struct (array of structures): a vertex touch is one cache line.  The
"ls-soa" variant stores them as separate arrays — the same instructions,
more memory traffic — isolating the data-layout effect in Figure 3a.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import edge_scan_stream
from repro.sparse.segreduce import segment_reduce

#: Bytes of the packed per-vertex struct {rank f8, residual f8, degree i4}.
AOS_STRUCT_BYTES = 20


def pagerank(graph: Graph, iters: int = 10, damping: float = 0.85,
             layout: str = "aos") -> np.ndarray:
    """Ranks after ``iters`` residual rounds (same semantics as LAGraph's).

    ``layout`` is "aos" (Table II's ls) or "soa" (Figure 3a's ls-soa); the
    computed ranks are identical — only the modeled memory streams differ.
    """
    if layout not in ("aos", "soa"):
        raise ValueError(f"unknown layout {layout!r}")
    rt = graph.runtime
    n = graph.nnodes
    base = (1.0 - damping) / n
    rank = graph.add_node_data("pr_rank", np.float64, fill=base)
    residual = graph.add_node_data("pr_residual", np.float64, fill=base)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg == 0, 1.0, out_deg)

    for _ in range(iters):
        rt.round()
        active = np.flatnonzero(residual > 0)
        dsts, _, seg = graph.gather_out_edges(active)
        scanned = len(dsts)
        # --- the fused operator -----------------------------------------
        contrib = damping * residual[active] / safe_deg[active]
        if scanned:
            new_residual = segment_reduce(contrib[seg], dsts, n, "plus",
                                          dtype=np.float64)
        else:
            new_residual = np.zeros(n, dtype=np.float64)
        rank += new_residual          # pr update fused into the same loop
        residual[:] = new_residual
        # -----------------------------------------------------------------
        rt.do_all(
            OpEvent(kind="do_all", label="pr_round", items=len(active)),
            instr_per_item=4.0,
            extra_instr=scanned * 2,
            streams=_layout_streams(rt, graph, n, len(active), scanned,
                                    layout),
            weights=graph.out_degrees()[active] + 1,
        )
    return rank.copy()


def _layout_streams(rt, graph, n, n_active, scanned, layout):
    """Memory streams of one pr round under the chosen data layout.

    Active vertices arrive in work-stealing order, not memory order, so
    per-vertex field accesses behave like random line touches: the packed
    AoS struct puts all three fields on one line per vertex, while SoA pays
    one line per field per vertex (§V-B "pr", the ls vs ls-soa gap).
    """
    csr_stream = edge_scan_stream(rt, graph, scanned, n_active)
    if layout == "aos":
        struct_bytes = n * AOS_STRUCT_BYTES
        return [
            csr_stream,
            rt.rand(struct_bytes, n_active, elem_bytes=AOS_STRUCT_BYTES),
            rt.rand(struct_bytes, scanned, elem_bytes=AOS_STRUCT_BYTES),
        ]
    # SoA: rank, residual and degree live in three arrays — three separate
    # line touches per active vertex, and the scatter hits the residual
    # array.
    return [
        csr_stream,
        rt.rand(n * 8, n_active, elem_bytes=8),   # residual read
        rt.rand(n * 8, n_active, elem_bytes=8),   # rank update
        rt.rand(n * 4, n_active, elem_bytes=4),   # degree read
        rt.rand(n * 8, scanned, elem_bytes=8),    # residual scatter
    ]
