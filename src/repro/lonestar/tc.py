"""Lonestar triangle counting: ordered listing on the degree-sorted graph.

The algorithm ([39], Table II's "ls"):

1. preprocessing (excluded from measured time, like the paper): relabel
   vertices in ascending degree order;
2. keep, for each vertex, only the neighbors with smaller new id (the
   lower-triangular pattern L — rows are short because a vertex only keeps
   its lower-degree neighbors);
3. for every edge (u, v) in L, count ``|L[u] ∩ L[v]|``, incrementing a
   *scalar* — no output matrix is materialized, which is the paper's
   explanation for ls beating gb-ll despite executing more instructions
   (the runtime u > v > w ordering check; §V-B "tc", Table V).
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import DEFAULT_TILE
from repro.sparse.tricount import count_triangles_lower


def triangle_count(graph: Graph) -> int:
    """Triangles in the undirected graph (``graph`` = symmetric view)."""
    rt = graph.runtime
    # Preprocessing: degree sort + lower-triangular extraction.
    sorted_graph = graph.sorted_by_degree()
    L = sorted_graph.csr.extract_tril(strict=True)
    rt.charge_alloc(L.nbytes, "tc:L")
    rt.machine.reset_measurement()  # sorting is preprocessing (§IV)

    ntri, work, row_work = count_triangles_lower(L)
    rt.do_all(
        OpEvent(kind="do_all", label="tc_count", items=L.nrows),
        instr_per_item=2.0,
        # Intersection comparisons plus the runtime symmetry-break test
        # (u > v > w) that gb-ll's preprocessing avoids.
        extra_instr=work * 3 + L.nvals * 2,
        streams=[
            rt.strided(L.nbytes, work),       # neighbor-list merges
            rt.seq(L.nbytes, L.nvals),        # edge iteration
        ],
        weights=row_work + 1,                 # wedge work per vertex
        tile_edges=DEFAULT_TILE,              # edge-parallel iteration
    )
    return ntri
