"""Lonestar k-core: decremental peeling off a worklist (extension problem).

The graph-API version never rebuilds the graph: it keeps a live-degree
array, seeds a worklist with the vertices below ``k``, and each removal
decrements its neighbors' degrees, pushing any that fall below ``k`` —
work proportional to the edges removed, with removals immediately visible
(the same decremental/Gauss-Seidel pattern as Lonestar's ktruss).
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph


def k_core(graph: Graph, k: int):
    """Vertices of the k-core of the undirected graph (symmetric view).

    Returns ``(member, waves)`` with ``member`` boolean over vertices.
    """
    rt = graph.runtime
    n = graph.nnodes
    deg = graph.add_node_data("kcore_deg", np.int64, fill=0)
    deg[:] = graph.out_degrees()
    member = np.ones(n, dtype=bool)
    doomed = np.flatnonzero(deg < k)
    waves = 0
    while len(doomed):
        waves += 1
        rt.round()
        member[doomed] = False
        # Decrement the still-live neighbors of this wave's removals.
        from repro.sparse.csr import gather_rows

        nbr_cols = gather_rows(graph.csr, doomed)[0]
        total = len(nbr_cols)
        if total:
            nbrs = nbr_cols.astype(np.int64)
            live = member[nbrs]
            # One decrement per live neighbor hit: a counting scatter.
            deg -= np.bincount(nbrs[live], minlength=n)
        rt.for_each(
            OpEvent(kind="for_each", label="kcore_wave", items=len(doomed)),
            instr_per_item=3.0,
            extra_instr=total * 2,
            streams=[rt.strided(graph.csr.nbytes, total),
                     rt.rand(deg.nbytes, total, elem_bytes=8)],
        )
        doomed = np.flatnonzero(member & (deg < k))
    return member, waves
