"""Lonestar breadth-first search — the paper's Algorithm 1.

Round-based data-driven push bfs with a sparse worklist.  The whole round
body — read the frontier, scan its edges, test-and-set distances, build the
next worklist — is **one** fused ``galois::do_all`` loop: one pass over the
vertex data per round where LAGraph needs three separate GraphBLAS calls.
That fusion is the paper's explanation for the 5x bfs gap on road-USA
(§V-A "Loop fusion", Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import edge_scan_stream
from repro.galois.worklist import SparseWorklist
from repro.sparse.join import dedup_bounded
from repro.sparse.segreduce import scatter_reduce

#: Lonestar's BFS::DIST_INFINITY.
DIST_INFINITY = np.iinfo(np.uint32).max


def bfs(graph: Graph, source: int) -> np.ndarray:
    """Levels from ``source`` (source level 1, unreachable 0).

    The 1-based level convention matches Algorithm 1, which initializes the
    source to 1 so that 0 can mean "unreached" in the shared comparisons.
    """
    rt = graph.runtime
    n = graph.nnodes
    dist = graph.add_node_data("bfs_dist", np.uint32, fill=DIST_INFINITY)
    out_deg = graph.out_degrees()

    dist[source] = 1
    level = np.uint32(1)
    worklist = SparseWorklist(n)
    worklist.push(np.array([source]))
    current = worklist.swap()

    while len(current):
        rt.round()
        level += 1
        # --- one fused do_all over the frontier -------------------------
        dsts, _, _ = graph.gather_out_edges(current)
        scanned = len(dsts)
        unvisited = dist[dsts] == DIST_INFINITY
        fresh = dedup_bounded(dsts[unvisited], n)
        dist[fresh] = level
        worklist.push(fresh)
        rt.do_all(
            OpEvent(kind="do_all", label="bfs_round", items=len(current)),
            instr_per_item=2.0,
            extra_instr=scanned * 3,
            streams=[
                edge_scan_stream(rt, graph, scanned, len(current)),
                rt.rand(dist.nbytes, scanned + len(fresh)),  # dist r/w
                rt.seq(max(len(current) * 8, 64), len(current) + len(fresh),
                       elem_bytes=8),                        # worklists
            ],
            weights=out_deg[current] + 1,
        )
        current = worklist.swap()
        if level > n + 1:
            break  # safety net
    result = np.where(dist == DIST_INFINITY, 0, dist).astype(np.int32)
    return result


def bfs_direction_optimizing(graph: Graph, source: int,
                             alpha: int = 15) -> np.ndarray:
    """Direction-optimizing bfs (Beamer et al., as in Ligra/GBBS/Gunrock).

    An *extension* beyond the paper's Table II variant: when the frontier's
    out-edges outnumber the unvisited vertices' in-edges divided by
    ``alpha``, the round switches from push (scan the frontier) to pull
    (each unvisited vertex scans its in-neighbors and stops at the first
    visited one).  On low-diameter power-law graphs the middle rounds go
    pull and touch a fraction of the edges.  Related-work systems
    (GraphBLAST, Gunrock) apply the same optimization inside their mxv —
    it composes with either API; results are identical to :func:`bfs`.
    """
    rt = graph.runtime
    n = graph.nnodes
    dist = graph.add_node_data("bfs_do_dist", np.uint32, fill=DIST_INFINITY)
    out_deg = graph.out_degrees()
    in_csr = graph.in_csr()
    in_deg = np.diff(in_csr.indptr)

    dist[source] = 1
    level = np.uint32(1)
    frontier = np.array([source], dtype=np.int64)

    while len(frontier):
        rt.round()
        level += 1
        unvisited = np.flatnonzero(dist == DIST_INFINITY)
        push_edges = int(out_deg[frontier].sum())
        pull_edges = int(in_deg[unvisited].sum())
        if push_edges * alpha < pull_edges or len(unvisited) == 0:
            # Push round — identical to the baseline bfs round.
            dsts, _, _ = graph.gather_out_edges(frontier)
            fresh = dedup_bounded(dsts[dist[dsts] == DIST_INFINITY], n) \
                if len(dsts) else dsts.astype(np.int64)
            scanned = len(dsts)
            mode_items, weights = len(frontier), out_deg[frontier] + 1
        else:
            # Pull round: unvisited vertices scan in-neighbors; on average
            # they stop early, so charge half the candidate edges.
            srcs, _, seg = graph.gather_in_edges(unvisited)
            hit = dist[srcs] == level - 1 if len(srcs) else srcs
            fresh = dedup_bounded(unvisited[dedup_bounded(
                seg[hit], len(unvisited))], n) \
                if len(srcs) else np.empty(0, dtype=np.int64)
            scanned = max(len(srcs) // 2, 1)
            mode_items, weights = len(unvisited), in_deg[unvisited] + 1
        dist[fresh] = level
        rt.do_all(
            OpEvent(kind="do_all", label="bfs_do_round", items=mode_items),
            instr_per_item=2.0,
            extra_instr=scanned * 3,
            streams=[
                edge_scan_stream(rt, graph, scanned, mode_items),
                rt.rand(dist.nbytes, scanned + len(fresh)),
            ],
            weights=weights,
        )
        frontier = fresh.astype(np.int64)
        if level > n + 1:
            break
    return np.where(dist == DIST_INFINITY, 0, dist).astype(np.int32)


def bfs_parent(graph: Graph, source: int) -> np.ndarray:
    """Parent BFS with the graph API, fused like :func:`bfs`.

    Ties break toward the smallest predecessor id (matching
    :func:`repro.lagraph.bfs.bfs_parent`); unreachable vertices hold -1.
    """
    rt = graph.runtime
    n = graph.nnodes
    parent = graph.add_node_data("bfs_parent", np.int64, fill=-1)
    out_deg = graph.out_degrees()

    parent[source] = source
    current = np.array([source], dtype=np.int64)
    rounds = 0
    while len(current):
        rt.round()
        rounds += 1
        dsts, _, seg = graph.gather_out_edges(current)
        scanned = len(dsts)
        if scanned:
            dsts64 = dsts.astype(np.int64)
            unvisited = parent[dsts64] == -1
            cand_dst = dsts64[unvisited]
            cand_src = current[seg[unvisited]]
            # Smallest-predecessor tie-break via a min-scatter.
            stage = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            scatter_reduce(stage, cand_dst, cand_src, "min")
            fresh = dedup_bounded(cand_dst, n)
            parent[fresh] = stage[fresh]
        else:
            fresh = np.empty(0, dtype=np.int64)
        rt.do_all(
            OpEvent(kind="do_all", label="bfs_parent_round",
                    items=len(current)),
            instr_per_item=2.0,
            extra_instr=scanned * 3,
            streams=[
                edge_scan_stream(rt, graph, scanned, len(current)),
                rt.rand(parent.nbytes, scanned + len(fresh), elem_bytes=8),
            ],
            weights=out_deg[current] + 1,
        )
        current = fresh
        if rounds > n + 1:
            break
    return parent.copy()
