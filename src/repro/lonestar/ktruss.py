"""Lonestar k-truss: decremental supports, immediately-visible removals.

Both ktruss implementations remove under-supported edges until fixpoint, and
the k-truss is confluent (the fixpoint is independent of removal order), so
Lonestar and LAGraph compute identical trusses.  What differs — and what the
paper measures (§V-B "ktruss") — is the work per removal wave:

* LAGraph re-derives the support of **every** surviving edge each round with
  a full masked SpGEMM, materializing the support matrix C every time, and a
  removal only becomes visible at the next round's multiply (Jacobi);
* Lonestar computes supports **once**, then processes removals off a
  worklist: deleting edge (u, v) enumerates the triangles it participated in
  and *decrements* the supports of the other two edges of each — work
  proportional to the triangles destroyed, not to the surviving graph — and
  a removal is immediately visible to every other thread (Gauss-Seidel),
  which shortens the cascade (the paper's 1.6x round measurement).
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import DEFAULT_TILE
from repro.sparse.join import dedup_bounded, join_sorted
from repro.sparse.tricount import edge_supports, twin_positions


def ktruss(graph: Graph, k: int, max_rounds: int = 100000):
    """The k-truss of the undirected graph (``graph`` = symmetric view).

    Returns ``(alive, rounds)`` where ``alive`` marks surviving CSR entries
    and ``rounds`` counts removal waves after the initial support pass.
    """
    rt = graph.runtime
    csr = graph.csr
    needed = k - 2
    indptr, indices = csr.indptr, csr.indices
    entry_rows = csr.row_ids()

    alive = np.ones(csr.nvals, dtype=bool)
    rt.charge_alloc(alive.nbytes, "ktruss:alive")
    twin = twin_positions(csr)
    rt.charge_alloc(twin.nbytes, "ktruss:twin")

    # Initial supports: one full intersection pass (one fused do_all).
    supports, work, row_work = edge_supports(csr, alive)
    rt.charge_alloc(supports.nbytes, "ktruss:supports")
    rt.do_all(
        OpEvent(kind="do_all", label="ktruss_supports", items=csr.nrows),
        instr_per_item=2.0,
        extra_instr=work * 3,
        streams=[rt.strided(csr.nbytes, work),
                 rt.seq(supports.nbytes, csr.nvals, elem_bytes=8)],
        weights=row_work + 1,
        tile_edges=DEFAULT_TILE,
    )

    # Removal cascade: a worklist of doomed entry positions (both
    # orientations resolve to the lower position to dedup).
    doomed = np.flatnonzero(alive & (supports < needed))
    doomed = dedup_bounded(np.minimum(doomed, twin[doomed]), csr.nvals)
    rounds = 0
    while len(doomed) and rounds < max_rounds:
        rounds += 1
        rt.round()
        wave_work = 0
        freshly_doomed = []
        for p in doomed:
            if not alive[p]:
                continue
            # Remove this edge now — immediately visible (Gauss-Seidel), so
            # a triangle shared by two doomed edges is enumerated exactly
            # once, by whichever removal runs first.
            alive[p] = False
            alive[twin[p]] = False
            u = int(entry_rows[p])
            v = int(indices[p])
            lo_u, hi_u = indptr[u], indptr[u + 1]
            lo_v, hi_v = indptr[v], indptr[v + 1]
            row_u = indices[lo_u:hi_u]
            row_v = indices[lo_v:hi_v]
            live_u = alive[lo_u:hi_u]
            # Common live neighbors w: the triangles (u, v, w) destroyed.
            # One pairwise merge join — the Gauss-Seidel cascade's
            # immediate-visibility requirement forbids batching pairs.
            u_idx, v_idx = join_sorted(row_u, row_v)
            wave_work += len(row_u)
            live_common = live_u[u_idx] & alive[lo_v + v_idx]
            if not live_common.any():
                continue
            p_uw = lo_u + u_idx[live_common]
            p_vw = lo_v + v_idx[live_common]
            for q in np.concatenate([p_uw, p_vw]):
                supports[q] -= 1
                supports[twin[q]] -= 1
                if alive[q] and supports[q] < needed:
                    freshly_doomed.append(min(int(q), int(twin[q])))
        # One asynchronous wave: no global barrier between removals.
        rt.for_each(
            OpEvent(kind="for_each", label="ktruss_wave",
                    items=len(doomed)),
            instr_per_item=4.0,
            extra_instr=wave_work * 3,
            streams=[rt.strided(csr.nbytes, wave_work),
                     rt.rand(supports.nbytes, wave_work, elem_bytes=8)],
        )
        if freshly_doomed:
            doomed = dedup_bounded(
                np.asarray(freshly_doomed, dtype=np.int64), csr.nvals)
            doomed = doomed[alive[doomed]]
        else:
            doomed = np.empty(0, dtype=np.int64)
    return alive, rounds
