"""Lonestar single-source shortest paths: asynchronous delta-stepping.

The operator runs under ``galois::for_each`` on an OBIM priority worklist:
threads continuously drain the lowest-priority bucket, and a relaxation's
result is visible to other threads *immediately* — there are no rounds and
no global barriers between relaxations, only a synchronization when the
scheduler moves to the next priority level.  This asynchrony (plus edge
tiling for power-law degree skew) is what makes Lonestar's sssp >100x
faster than bulk-synchronous delta-stepping on road networks (§V-B,
Figure 3d).

``tiled=False`` gives the paper's ls-notile variant: high-degree vertices
become indivisible work items and the load-balance term of the machine
model grows accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import DEFAULT_TILE, edge_scan_stream
from repro.galois.worklist import OBIM
from repro.sparse.join import dedup_bounded
from repro.sparse.segreduce import scatter_reduce


def delta_stepping(
    graph: Graph,
    source: int,
    delta: int,
    tiled: bool = True,
    dist_dtype=np.int64,
) -> np.ndarray:
    """Distances from ``source``; unreachable vertices hold the dtype max."""
    rt = graph.runtime
    n = graph.nnodes
    inf = np.iinfo(dist_dtype).max
    dist = graph.add_node_data("sssp_dist", dist_dtype, fill=inf)
    out_deg = graph.out_degrees()
    weights = graph.weights
    if weights is None:
        raise ValueError("sssp requires edge weights")

    dist[source] = 0
    obim = OBIM(shift=delta, domain=n)
    obim.push(np.array([source]), np.array([0]))

    while True:
        bucket = obim.min_bucket()
        if bucket is None:
            break
        # Draining one priority level: asynchronous within the level.
        while obim.min_bucket() == bucket:
            items = obim.pop_bucket(bucket)
            # Stale-entry filter (a popped vertex may have been improved
            # past this bucket already).
            items = items[dist[items] // delta == bucket]
            if len(items) == 0:
                continue
            dsts, w, seg = graph.gather_out_edges(items)
            scanned = len(dsts)
            if scanned:
                cand = dist[items][seg] + w.astype(dist_dtype)
                before = dist[dsts]
                scatter_reduce(dist, dsts, cand, "min")
                improved = dedup_bounded(dsts[cand < before], n)
                improved = improved[dist[improved] < inf]
            else:
                improved = np.empty(0, dtype=np.int64)
            if len(improved):
                obim.push(improved, dist[improved])
            # Asynchronous slice: no global barrier.
            rt.for_each(
                OpEvent(kind="for_each", label="sssp_relax",
                        items=len(items)),
                instr_per_item=3.0,
                extra_instr=scanned * 4,
                streams=[
                    edge_scan_stream(rt, graph, scanned, len(items)),
                    rt.rand(dist.nbytes, scanned + len(improved),
                            elem_bytes=dist.itemsize),
                    rt.seq(max(len(items), 64) * 8,
                           len(items) + len(improved), elem_bytes=8),
                ],
                weights=out_deg[items] + 1,
                tile_edges=DEFAULT_TILE if tiled else None,
            )
        # Moving to the next priority level synchronizes the scheduler.
        rt.priority_sync(label="sssp_level")
        rt.round()
    return dist
