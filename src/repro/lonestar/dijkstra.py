"""Serial Dijkstra: the textbook asynchronous data-driven sssp (§II-A).

The paper cites Dijkstra as the canonical algorithm a matrix API *cannot*
express — a single priority worklist with no rounds.  It is included here
both as the reference the delta-stepping implementations are compared
against and as the limiting case of asynchrony (delta -> infinity gives
one bucket; delta -> 0 gives Dijkstra's total order).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph


def dijkstra(graph: Graph, source: int, dist_dtype=np.int64) -> np.ndarray:
    """Exact distances from ``source`` with a binary-heap worklist."""
    rt = graph.runtime
    n = graph.nnodes
    inf = np.iinfo(dist_dtype).max
    dist = graph.add_node_data("dij_dist", dist_dtype, fill=inf)
    weights = graph.weights
    if weights is None:
        raise ValueError("dijkstra requires edge weights")
    indptr, indices = graph.csr.indptr, graph.csr.indices

    dist[source] = 0
    heap = [(0, source)]
    settled = 0
    relaxations = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        settled += 1
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            cand = d + int(weights[pos])
            relaxations += 1
            if cand < dist[v]:
                dist[v] = cand
                heapq.heappush(heap, (cand, v))
    # Serial execution: one operator application per relaxation, with the
    # log-factor heap cost folded into the instruction charge.
    rt.for_each(
        OpEvent(kind="for_each", label="dijkstra_settle", items=settled),
        instr_per_item=8.0,
        extra_instr=relaxations * 6,
        streams=[rt.strided(graph.csr.nbytes, relaxations),
                 rt.rand(dist.nbytes, relaxations,
                         elem_bytes=dist.itemsize)],
    )
    return dist
