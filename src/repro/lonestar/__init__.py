"""Lonestar: the study's graph-based algorithm suite (§II-B, §IV).

Each module implements the Lonestar/Galois program the paper measured
(Table II) plus the constrained variants of the §V-B differential analysis,
written against the graph API in :mod:`repro.galois`.

Algorithm variants (paper's naming):

========  ==========================================  ====================
problem   Table II variant                            §V-B extras
========  ==========================================  ====================
bfs       round-based push (Algorithm 1), fused loop  —
cc        Afforest (sampling + fine-grained ops)      ls-sv (Shiloach-
                                                      Vishkin, async jumps)
ktruss    rounds w/ immediately-visible removals      —
pr        residual push, AoS node data                ls-soa (struct of
                                                      arrays)
sssp      asynchronous delta-stepping + edge tiling   ls-notile
tc        ordered triangle listing on sorted graph    —
========  ==========================================  ====================
"""

from repro.lonestar.bc import betweenness_centrality
from repro.lonestar.bfs import (bfs, bfs_direction_optimizing,
                               bfs_parent)
from repro.lonestar.cc import afforest, shiloach_vishkin
from repro.lonestar.dijkstra import dijkstra
from repro.lonestar.kcore import k_core
from repro.lonestar.ktruss import ktruss
from repro.lonestar.pagerank import pagerank
from repro.lonestar.sssp import delta_stepping
from repro.lonestar.tc import triangle_count

__all__ = [
    "afforest",
    "betweenness_centrality",
    "bfs",
    "bfs_direction_optimizing",
    "bfs_parent",
    "dijkstra",
    "delta_stepping",
    "k_core",
    "ktruss",
    "pagerank",
    "shiloach_vishkin",
    "triangle_count",
]
