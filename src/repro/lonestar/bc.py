"""Lonestar betweenness centrality (Brandes, level-synchronous).

The graph-API counterpart of :mod:`repro.lagraph.bc`: the forward sweep is
one fused ``do_all`` per BFS level (path counting and worklist building in
the same loop), and the backward dependency accumulation reads predecessors
directly off the CSR instead of materializing per-level sigma vectors —
only the level and sigma *arrays* persist, not a vector per level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.events import OpEvent
from repro.galois.graph import Graph
from repro.galois.loops import edge_scan_stream
from repro.sparse.join import dedup_bounded
from repro.sparse.segreduce import scatter_reduce


def betweenness_centrality(graph: Graph,
                           sources: Sequence[int]) -> np.ndarray:
    """Partial BC over the given source batch (unnormalized Brandes)."""
    rt = graph.runtime
    n = graph.nnodes
    bc = graph.add_node_data("bc_scores", np.float64, fill=0.0)
    out_deg = graph.out_degrees()

    for s in sources:
        _accumulate_source(graph, int(s), bc, out_deg)
    return bc.copy()


def _accumulate_source(graph: Graph, s: int, bc: np.ndarray,
                       out_deg: np.ndarray) -> None:
    rt = graph.runtime
    n = graph.nnodes
    level = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    level[s] = 0
    sigma[s] = 1.0

    # Forward: one fused loop per BFS level (count + worklist in one pass).
    levels = [np.array([s], dtype=np.int64)]
    depth = 0
    current = levels[0]
    while len(current):
        rt.round()
        depth += 1
        dsts, _, seg = graph.gather_out_edges(current)
        scanned = len(dsts)
        if scanned:
            dsts64 = dsts.astype(np.int64)
            level[dsts64[level[dsts64] == -1]] = depth
            on_level = level[dsts64] == depth
            scatter_reduce(sigma, dsts64[on_level],
                           sigma[current][seg[on_level]], "plus")
            fresh = dedup_bounded(dsts64[on_level], n)
        else:
            fresh = np.empty(0, dtype=np.int64)
        rt.do_all(
            OpEvent(kind="do_all", label="bc_forward", items=len(current)),
            instr_per_item=2.0,
            extra_instr=scanned * 4,
            streams=[edge_scan_stream(rt, graph, scanned, len(current)),
                     rt.rand(sigma.nbytes, 2 * scanned, elem_bytes=8)],
            weights=out_deg[current] + 1,
        )
        current = fresh
        if len(current):
            levels.append(current)

    # Backward: per level, pull dependencies from successors — fused.
    delta = np.zeros(n, dtype=np.float64)
    for d in range(len(levels) - 1, 0, -1):
        rt.round()
        verts = levels[d - 1]
        dsts, _, seg = graph.gather_out_edges(verts)
        scanned = len(dsts)
        if scanned:
            dsts64 = dsts.astype(np.int64)
            succ = level[dsts64] == d
            contrib = np.zeros(len(verts), dtype=np.float64)
            if succ.any():
                terms = (1.0 + delta[dsts64[succ]]) / sigma[dsts64[succ]]
                scatter_reduce(contrib, seg[succ], terms, "plus")
            delta[verts] += sigma[verts] * contrib
        rt.do_all(
            OpEvent(kind="do_all", label="bc_backward", items=len(verts)),
            instr_per_item=2.0,
            extra_instr=scanned * 5,
            streams=[edge_scan_stream(rt, graph, scanned, len(verts)),
                     rt.rand(delta.nbytes, 2 * scanned, elem_bytes=8)],
            weights=out_deg[verts] + 1,
        )
    delta[s] = 0.0
    bc += delta
