"""Stdlib HTTP JSON API over the durable job queue.

A deliberately thin front-end: ``http.server.ThreadingHTTPServer`` plus
hand-rolled routing, no third-party dependencies, every response JSON.
Each request opens its own :class:`~repro.service.queue.JobQueue`
connection (SQLite connections are not shareable across the server's
request threads; WAL mode keeps concurrent readers and the drain
supervisor's writer out of each other's way).

Routes::

    GET  /health                   liveness + queue state counts
    GET  /systems                  engine-registry catalog (valid targets)
    GET  /jobs?tenant=&state=      job listing (dead letters included)
    GET  /jobs/<id>                one job's public view
    GET  /jobs/<id>/result         committed result row (409 until done)
    GET  /jobs/<id>/events?since=N progress stream (long-poll cursor)
    POST /jobs                     submit {system, app, graph, params?,
                                   tenant?, priority?, idem_key?,
                                   deadline_ms?}

Error mapping: a malformed request is **400** (:class:`repro.errors.
InvalidValue` — did-you-mean text included verbatim), tenant admission
rejection is **429** (:class:`repro.errors.AdmissionDenied`), unknown
paths and ids are **404**.  ``POST /jobs`` answers **200** when the
idempotency key matched an existing job and **201** when it created one —
clients can tell a dedup from a fresh accept.

Load shedding: when ``REPRO_QUEUE_HIGH_WATER`` / ``REPRO_QUEUE_MAX_WAIT``
watermarks are configured and the queue is past them (depth, or how long
the oldest ready job has waited), ``POST /jobs`` answers **503** with a
``Retry-After`` header instead of accepting work it cannot serve in time
— shed at the door, not after the deadline has already burned in the
queue.  ``GET /health`` reports the same decision as ``shedding`` so
clients can back off before submitting.

Progress streaming is poll-based rather than chunked: ``/events?since=N``
returns every event after sequence ``N`` (heartbeats the drain supervisor
records from worker liveness, lease/requeue transitions, and the final
OpEvent-derived counter summary), and the client advances its cursor.
With the supervisor's heartbeat cadence this gives live progress through
plain ``curl`` loops without holding server threads open.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro import errors
from repro.service import governor
from repro.service.config import QueueConfig
from repro.service.queue import JobQueue


class _Handler(BaseHTTPRequestHandler):
    """One request = one queue connection = one JSON response."""

    #: Bound by :func:`make_server` on a per-server subclass.
    queue_path: Optional[str] = None
    queue_config: Optional[QueueConfig] = None
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # tests and drills drive this server; keep stderr clean

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _reply(self, code: int, payload, headers=None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _shed(self, queue: JobQueue):
        """The admission-control decision for this request (None = admit)."""
        config = queue.config
        return governor.shed_decision(
            queue.counts(), queue.oldest_ready_wait(),
            config.high_water, config.max_wait)

    def _with_queue(self, fn) -> None:
        queue = JobQueue(self.queue_path, config=self.queue_config)
        try:
            fn(queue)
        except errors.AdmissionDenied as exc:
            self._reply(429, {"error": str(exc)})
        except errors.InvalidValue as exc:
            self._reply(400, {"error": str(exc)})
        finally:
            queue.close()

    def _job_or_404(self, queue: JobQueue, raw_id: str):
        try:
            job_id = int(raw_id)
        except ValueError:
            self._reply(404, {"error": f"not a job id: {raw_id!r}"})
            return None
        job = queue.get(job_id)
        if job is None:
            self._reply(404, {"error": f"no such job: {job_id}"})
        return job

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self):
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]

        if parts == ["health"]:
            def _health(q):
                shed = self._shed(q)
                self._reply(200, {"ok": True, "queue": q.path,
                                  "counts": q.counts(), "shedding": shed})
            return self._with_queue(_health)
        if parts == ["systems"]:
            from repro.engine.registry import catalog

            return self._reply(200, {"systems": list(catalog())})
        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                def _list(q):
                    jobs = q.jobs(
                        tenant=query.get("tenant", [None])[0],
                        state=query.get("state", [None])[0])
                    self._reply(200, {"jobs": [j.to_json() for j in jobs],
                                      "counts": q.counts()})
                return self._with_queue(_list)
            if len(parts) == 2:
                def _get(q):
                    job = self._job_or_404(q, parts[1])
                    if job is not None:
                        self._reply(200, job.to_json())
                return self._with_queue(_get)
            if len(parts) == 3 and parts[2] == "result":
                def _result(q):
                    job = self._job_or_404(q, parts[1])
                    if job is None:
                        return
                    if job.result is None:
                        self._reply(409, {
                            "error": f"job {job.id} has no result yet",
                            "state": job.state, "note": job.note})
                        return
                    self._reply(200, {"job": job.to_json(),
                                      "result": job.result})
                return self._with_queue(_result)
            if len(parts) == 3 and parts[2] == "events":
                def _events(q):
                    job = self._job_or_404(q, parts[1])
                    if job is None:
                        return
                    try:
                        since = int(query.get("since", ["0"])[0])
                    except ValueError:
                        self._reply(400, {"error": "since wants an integer"})
                        return
                    events = q.events(job.id, since=since)
                    self._reply(200, {
                        "job": job.id, "state": job.state, "events": events,
                        "next_since": events[-1]["seq"] if events else since})
                return self._with_queue(_events)
        self._reply(404, {"error": f"no such route: {url.path}"})

    def do_POST(self):
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["jobs"]:
            return self._reply(404, {"error": f"no such route: {url.path}"})
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return self._reply(400, {"error": "body must be a JSON object"})
        if not isinstance(body, dict):
            return self._reply(400, {"error": "body must be a JSON object"})
        missing = [k for k in ("system", "app", "graph") if k not in body]
        if missing:
            return self._reply(400, {
                "error": f"missing required field(s): {', '.join(missing)}"})

        def _submit(q):
            existing = (q.find(body["idem_key"])
                        if body.get("idem_key") is not None else None)
            if existing is None:
                # Idempotent resubmits always answer (the job is already
                # in); only *new* work is shed at the watermark.
                shed = self._shed(q)
                if shed is not None:
                    self._reply(503, {"error": "queue over high water; "
                                               "retry later", "shed": shed},
                                headers={"Retry-After": shed["retry_after"]})
                    return
            job = q.submit(
                body["system"], body["app"], body["graph"],
                params=body.get("params"),
                tenant=body.get("tenant", "default"),
                priority=int(body.get("priority", 0)),
                idem_key=body.get("idem_key"),
                max_attempts=body.get("max_attempts"),
                deadline_ms=body.get("deadline_ms"))
            self._reply(200 if existing is not None else 201, job.to_json())
        return self._with_queue(_submit)


def make_server(queue_path, host: str = "127.0.0.1", port: int = 0,
                config: Optional[QueueConfig] = None) -> ThreadingHTTPServer:
    """Build (but do not start) the API server bound to one queue DB.

    ``port=0`` picks a free port (read it back from
    ``server.server_address``); call ``serve_forever()`` to run, from the
    CLI (``repro-serve api``) or a test thread.
    """
    handler = type("BoundHandler", (_Handler,), {
        "queue_path": str(queue_path), "queue_config": config})
    return ThreadingHTTPServer((host, int(port)), handler)
