"""The study-grid supervisor: dispatch, detect, respawn, requeue, commit.

Two layers live here.  :class:`WorkerPool` is the generic crash-isolated
pool: it owns the spawn-started workers (:mod:`repro.service.worker`),
multiplexes their pipes, and enforces the liveness rules —

* a **dead** worker (SIGKILL, segfault, injected
  :class:`~repro.faults.FatalFault`) surfaces as pipe EOF or a torn
  message — the worker is reaped, a replacement spawns, and the in-flight
  task is handed back to the work source;
* a **hung** worker (blown per-cell deadline, or heartbeat silence) is
  SIGKILLed first and then treated exactly like a dead one

— while *what* the work is stays behind a handful of hooks
(``_next_assignment``/``_task_done``/``_task_lost``/...).  Two work
sources plug in: the fixed-grid :class:`Supervisor` below, and the
durable-queue :class:`~repro.service.queue_supervisor.QueueSupervisor`.

:class:`Supervisor` owns the canonical task list for a grid run.  It adds
the grid-specific policies:

* a cell that has crashed ``max_crashes`` workers is **quarantined** as an
  ``ERR`` cell with ``error.type == "PoisonedCell"`` instead of being
  retried forever — one poisonous cell cannot stall the pool;
* cells are committed through :class:`repro.core.checkpoint.
  OrderedCommitter` in canonical task order, so the journal stays an
  in-order prefix (killed parallel runs resume like killed sequential
  ones) and ``cells.json`` is byte-identical to a sequential clean run's
  regardless of worker count, crashes, or injected faults;
* per-system circuit breakers (:mod:`repro.service.breaker`) watch outcome
  streams: a system that keeps crashing workers has its cells rerouted to
  a capability-compatible fallback from the engine registry, with a
  visible ``degraded`` flag on every rerouted cell.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import errors
from repro.core import checkpoint, experiments
from repro.core.experiments import ERR, OK, OOM, CellResult
from repro.service import governor, heartbeat
from repro.service.breaker import BreakerBoard
from repro.service.chaos import ChaosPlan
from repro.service.config import ServiceConfig
from repro.service.worker import worker_main

#: Reap reasons that mean "the worker vanished without a verdict" — the
#: deaths the memory governor runs OOM forensics on.
_SILENT_DEATHS = ("worker died (pipe closed)", "worker died (torn message)",
                  "worker died (process exited)")


@dataclass(frozen=True)
class CellTask:
    """One schedulable unit: a (system, app, graph) cell and its options."""

    #: Position in the canonical task list (the commit order).
    index: int
    system: str
    app: str
    graph: str
    #: Record the Figure 2 thread sweep alongside the 56-thread result.
    sweep: bool = False

    @property
    def key(self) -> Tuple[str, str, str]:
        """The experiment-memo key this task computes."""
        return (self.system, self.app, self.graph)


def grid_tasks(graphs: Sequence[str], apps: Sequence[str],
               systems: Optional[Sequence[str]] = None,
               sweep_apps: Sequence[str] = (),
               sweep_graphs: Sequence[str] = ()) -> List[CellTask]:
    """The canonical task list for a grid: app-major, then system, graph.

    The main grid iterates exactly the order the sequential Table II loop
    first touches cells in, so the parallel journal commits in the same
    canonical order a sequential run computes in.  The ``sweep_apps`` ×
    ``sweep_graphs`` corner (Figure 2's panel) is marked ``sweep=True``
    for the GB/LS systems so thread sweeps land in the same run; sweep
    cells outside the main grid (Figure 2 renders its default apps even
    under an ``--apps`` subset, like the sequential path) are appended
    after it, preserving one task per (system, app, graph) key.
    """
    from repro.core.systems import SYSTEMS

    systems = tuple(systems) if systems is not None else tuple(SYSTEMS)
    sweep_flags: Dict[Tuple[str, str, str], bool] = {}
    order: List[Tuple[str, str, str]] = []

    def _add(system, app, graph, sweep):
        key = (system, app, graph)
        if key not in sweep_flags:
            order.append(key)
        sweep_flags[key] = sweep_flags.get(key, False) or sweep

    for app in apps:
        for system in systems:
            for graph in graphs:
                _add(system, app, graph, False)
    for app in sweep_apps:
        for system in ("GB", "LS"):
            for graph in sweep_graphs:
                _add(system, app, graph, True)
    return [CellTask(index, system, app, graph,
                     sweep=sweep_flags[(system, app, graph)])
            for index, (system, app, graph) in enumerate(order)]


class _WorkerHandle:
    """Supervisor-side record of one live worker process."""

    __slots__ = ("worker_id", "process", "conn", "health", "ready",
                 "warmup")

    def __init__(self, worker_id, process, conn, warmup=()):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.health = heartbeat.WorkerHealth(worker_id)
        self.ready = False
        #: Graphs to prebuild (one PREBUILD task each) before this worker
        #: accepts grid cells, so its first cell per graph never spends
        #: its deadline on dataset generation.
        self.warmup = deque(warmup)


class WorkerPool:
    """Generic supervised pool of spawn-started cell workers.

    Owns spawning, pipe multiplexing, heartbeat/deadline health checks,
    reaping, and respawning; subclasses define the work source through
    the hooks below.  The pool itself never raises for worker-level
    failures — that is the contract both work sources inherit.
    """

    def __init__(self, workers: int,
                 config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else \
            ServiceConfig.from_env()
        # Cores-aware sizing: under REPRO_CORES_BUDGET the pool never
        # claims more than budget cores across both parallelism levels
        # (workers x kernel threads); without one, the request stands.
        requested = max(1, int(workers))
        self.pool_size, self.kernel_threads = governor.split_cores(
            requested, self.config.kernel_threads, self.config.cores_budget)
        #: The live cores split, published by ``repro-serve status``.
        self.cores_split = {
            "budget": int(self.config.cores_budget),
            "requested_workers": requested,
            "workers": self.pool_size,
            "kernel_threads": self.kernel_threads,
        }
        # Parsed in the supervisor purely to fail fast on malformed specs;
        # the plan itself strikes inside the workers (who re-read the env).
        ChaosPlan.from_env()
        self.stats: Dict[str, int] = {
            "spawned": 0, "respawns": 0, "crashes": 0, "prewarmed": 0,
            "prewarm_generated": 0, "mem_kills": 0,
        }
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        #: Prebuild task id per graph (negative; real task ids are >= 0).
        self._warm_ids: Dict[str, int] = {}
        # Consecutive workers dead before their READY: a startup problem
        # (import error, bad environment), not a poisonous cell — abort
        # instead of respawning forever.
        self._early_deaths = 0
        #: Graceful-drain state: once draining, no new work dispatches,
        #: the loop exits when the last in-flight task settles, and past
        #: the drain deadline :meth:`_drain_timeout` fails the rest back.
        self._draining = False
        self._drain_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Hooks: the work source
    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        """True when the event loop should stop."""
        raise NotImplementedError

    def _work_remains(self) -> bool:
        """True while a reaped worker is worth replacing."""
        raise NotImplementedError

    def _has_dispatchable(self) -> bool:
        """Cheap check: could *any* idle worker get work right now?"""
        raise NotImplementedError

    def _next_assignment(self, worker_id: int) -> Optional[dict]:
        """Claim the next task for ``worker_id``; returns the RUN payload
        (``id``/``system``/``app``/``graph``/``sweep``/``attempt``) or
        None when nothing is dispatchable after all.  The task must be
        registered as in-flight before returning — a failed send reaps
        the worker and hands the task back via :meth:`_task_lost`."""
        raise NotImplementedError

    def _task_done(self, task_id: int, row: dict) -> None:
        """A worker returned a finished cell row for ``task_id``."""
        raise NotImplementedError

    def _task_lost(self, task_id: int, reason: str,
                   oom: bool = False) -> None:
        """The worker holding ``task_id`` died or hung; reclaim it.

        ``oom=True`` marks a loss the memory governor attributed to an
        out-of-memory kill (budget breach, or silent death with a rising
        RSS history) — work sources retry those once in sharded mode
        before quarantining as ``OOM``."""
        raise NotImplementedError

    def _drain_timeout(self) -> None:
        """The drain grace expired with tasks still in flight; work
        sources fail them back to their queue before the loop exits."""

    def _graphs_to_warm(self) -> Iterable[str]:
        """Graphs a freshly spawned worker should prebuild."""
        return ()

    def _tick(self) -> None:
        """Per-loop maintenance (lease renewal, progress events)."""

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Stop taking new work; let in-flight tasks finish.

        Safe to call from a signal handler (it only sets flags): the
        event loop notices on its next pass, stops dispatching, and exits
        once the last in-flight task settles — or, after
        ``config.drain_grace`` seconds, fails the stragglers back via
        :meth:`_drain_timeout`.  Idempotent; the first call starts the
        grace clock.
        """
        if not self._draining:
            self._draining = True
            self._drain_deadline = time.monotonic() \
                + self.config.drain_grace

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress."""
        return self._draining

    def _busy_workers(self) -> int:
        """Workers with an in-flight (non-warmup) task."""
        return sum(1 for h in self._workers.values()
                   if h.health.task_id is not None
                   and h.health.task_id >= 0)

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _run_pool(self, initial_workers: int) -> None:
        """Spawn the pool and run the event loop to completion."""
        try:
            for _ in range(max(1, initial_workers)):
                self._spawn()
            self._event_loop()
        finally:
            self._shutdown()

    def _warm_id(self, graph: str) -> int:
        if graph not in self._warm_ids:
            self._warm_ids[graph] = -(len(self._warm_ids) + 1)
        return self._warm_ids[graph]

    def _spawn(self):
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(child_conn, worker_id),
            name=f"repro-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()  # parent keeps one end only, so EOF is real
        self._workers[worker_id] = _WorkerHandle(
            worker_id, process, parent_conn, warmup=self._graphs_to_warm())
        self.stats["spawned"] += 1

    def _shutdown(self):
        for handle in list(self._workers.values()):
            try:
                handle.conn.send((heartbeat.STOP,))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for handle in list(self._workers.values()):
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5)
            handle.conn.close()
        self._workers.clear()

    def _reap(self, handle: _WorkerHandle, reason: str,
              oom: bool = False):
        """Kill + account a dead/hung worker; hand its task back.

        ``oom=True`` marks a memory-governor kill outright; a *silent*
        death (SIGKILL leaves only a torn pipe) is additionally run
        through :func:`repro.service.governor.looks_like_oom` — the
        kernel's OOM killer looks exactly like any other SIGKILL except
        for the rising RSS history the heartbeats recorded.
        """
        if not oom and reason in _SILENT_DEATHS:
            oom = governor.looks_like_oom(handle.health.rss_history,
                                          self.config.mem_budget_bytes)
            if oom:
                reason = f"{reason}; RSS history reads as OOM kill"
        handle.process.kill()
        handle.process.join(timeout=5)
        try:
            handle.conn.close()
        except OSError:
            pass
        del self._workers[handle.worker_id]
        self.stats["crashes"] += 1
        if oom:
            self.stats["mem_kills"] += 1
        if handle.ready:
            self._early_deaths = 0
        else:
            self._early_deaths += 1
            if self._early_deaths >= 3:
                raise errors.ReproError(
                    f"{self._early_deaths} workers in a row died before "
                    f"initializing (last: {reason}); the worker "
                    "environment is broken — aborting instead of "
                    "respawning forever")

        task_id = handle.health.task_id
        if task_id is not None:
            self._task_lost(task_id, reason, oom=oom)

        if not self._finished() and self._work_remains():
            self._spawn()
            self.stats["respawns"] += 1

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _event_loop(self):
        tick = self.config.heartbeat_interval
        while not self._finished():
            if self._draining and self._busy_workers() == 0:
                break  # drained: nothing in flight, nothing new starts
            conns = {h.conn: h for h in self._workers.values()}
            for conn in _connection_wait(list(conns), timeout=tick):
                handle = conns[conn]
                if handle.worker_id not in self._workers:
                    continue  # reaped earlier this very iteration
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._reap(handle, "worker died (pipe closed)")
                    continue
                except Exception:
                    # A SIGKILL mid-write leaves a torn, unpicklable
                    # message; treat it exactly like a death.
                    self._reap(handle, "worker died (torn message)")
                    continue
                self._handle(handle, message)
            self._tick()
            self._check_health()
            if self._draining:
                if self._drain_deadline is not None \
                        and time.monotonic() > self._drain_deadline:
                    self._drain_timeout()
                    break
                continue  # no new dispatches while draining
            self._dispatch_idle()

    def _handle(self, handle: _WorkerHandle, message: tuple):
        tag = message[0]
        handle.health.beat()
        if tag == heartbeat.READY:
            handle.ready = True
            self._early_deaths = 0
        elif tag == heartbeat.RESULT:
            _tag, _wid, task_id, row = message
            self._task_done(task_id, row)
            handle.health.finished()
        elif tag == heartbeat.PREBUILT:
            handle.health.finished()
            self.stats["prewarmed"] += 1
            # 4th element: did the worker actually run a generator, or did
            # the artifact store satisfy the warm?  Absent (older worker)
            # counts as generated — the conservative reading.
            generated = message[3] if len(message) > 3 else True
            if generated:
                self.stats["prewarm_generated"] += 1
        elif tag == heartbeat.HB and len(message) > 2:
            handle.health.sample_rss(message[2])
        # START carries no state beyond proof of life.

    def _dispatch_idle(self):
        for handle in list(self._workers.values()):
            if not self._has_dispatchable():
                return
            if handle.worker_id not in self._workers:
                continue  # reaped by a failed send earlier this pass
            if handle.ready and handle.health.task_id is None:
                if handle.warmup:
                    self._dispatch_prebuild(handle)
                else:
                    payload = self._next_assignment(handle.worker_id)
                    if payload is None:
                        return
                    self._send_run(handle, payload)

    def _dispatch_prebuild(self, handle: _WorkerHandle):
        graph = handle.warmup.popleft()
        task_id = self._warm_id(graph)
        handle.health.started(task_id)
        try:
            handle.conn.send((heartbeat.PREBUILD,
                              {"id": task_id, "graph": graph}))
        except (OSError, ValueError, BrokenPipeError):
            self._reap(handle, "worker died (send failed)")

    def _send_run(self, handle: _WorkerHandle, payload: dict):
        # Stamp the (possibly budget-clamped) kernel-thread count onto
        # every task when it differs from the default, so workers fan
        # shard kernels out at exactly the width the split allows.
        if self.kernel_threads != 1 and "kernel_threads" not in payload:
            payload = dict(payload, kernel_threads=self.kernel_threads)
        # A job-propagated deadline becomes the hard-kill backstop:
        # cooperative cancellation gets the budget plus the grace window
        # to exit cleanly before the watchdog falls back to SIGKILL.
        deadline = None
        if payload.get("deadline_seconds") is not None:
            deadline = payload["deadline_seconds"] \
                + self.config.cancel_grace
        handle.health.started(payload["id"], deadline=deadline)
        try:
            handle.conn.send((heartbeat.RUN, payload))
        except (OSError, ValueError, BrokenPipeError):
            self._reap(handle, "worker died (send failed)")

    def _check_health(self):
        budget = self.config.mem_budget_bytes
        for handle in list(self._workers.values()):
            if handle.worker_id not in self._workers:
                continue
            if budget and handle.health.rss > budget:
                self._reap(handle, "memory budget exceeded "
                           f"({handle.health.rss} > {budget} bytes)",
                           oom=True)
            elif handle.health.over_deadline(self.config.cell_deadline):
                self._reap(handle, "cell deadline exceeded")
            elif handle.health.stale(self.config.heartbeat_timeout):
                self._reap(handle, "heartbeat lost")
            elif not handle.process.is_alive():
                self._reap(handle, "worker died (process exited)")


class Supervisor(WorkerPool):
    """Run a fixed task list on a supervised, crash-isolated worker pool.

    ``journal`` defaults to whatever journal is attached to the experiment
    layer (``--journal``/``--resume`` attach one); results also seed the
    in-process memo, so the table/figure renderers afterwards hit cache.
    """

    def __init__(self, tasks: Iterable[CellTask], workers: int,
                 config: Optional[ServiceConfig] = None,
                 journal=None):
        super().__init__(workers, config)
        self.tasks = list(tasks)
        self.journal = journal if journal is not None else \
            experiments.get_journal()
        self.stats.update({
            "tasks": len(self.tasks), "recalled": 0, "completed": 0,
            "requeued": 0, "quarantined": 0, "rerouted": 0,
            "oom_retried": 0, "oom_quarantined": 0,
        })
        # Distinct graphs in task order: each worker prebuilds the ones
        # still pending before accepting cells (negative task ids).
        for graph in dict.fromkeys(task.graph for task in self.tasks):
            self._warm_id(graph)
        self._pending: deque = deque()
        self._inflight: Dict[int, tuple] = {}
        self._crashes: Dict[int, int] = {}
        #: OOM-kill count per task index (tracked apart from generic
        #: crashes: one OOM buys a sharded retry, two a quarantine).
        self._oom_kills: Dict[int, int] = {}
        #: Task index -> shard geometry for its post-OOM sharded retry.
        self._shard_retry: Dict[int, int] = {}
        self._committer: Optional[checkpoint.OrderedCommitter] = None
        self._breakers: Optional[BreakerBoard] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> Dict[Tuple[str, str, str], CellResult]:
        """Execute every task; returns ``{key: CellResult}`` for all of
        them.

        Never raises for worker-level failures — that is the contract.
        Cells already satisfied by the experiment memo (a resumed journal)
        are recalled, not re-run, exactly like the sequential path.
        """
        from repro.engine.registry import system_codes

        self._committer = checkpoint.OrderedCommitter(
            len(self.tasks), journal=self.journal)
        self._breakers = BreakerBoard(
            system_codes(), self.config.breaker_threshold,
            self.config.breaker_cooldown,
            forced_open=self.config.breaker_force_open)
        memo = experiments.all_results()
        for task in self.tasks:
            cached = memo.get(task.key)
            if cached is not None and (not task.sweep or cached.thread_sweep
                                       or cached.status != OK):
                self._committer.skip(task.index)
                self.stats["recalled"] += 1
            else:
                self._pending.append(task)

        if self._pending:
            self._run_pool(min(self.pool_size, len(self._pending)))

        results = experiments.all_results()
        return {task.key: results[task.key] for task in self.tasks}

    # ------------------------------------------------------------------
    # Work-source hooks
    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return self._committer.done

    def _work_remains(self) -> bool:
        return bool(self._pending or self._inflight)

    def _has_dispatchable(self) -> bool:
        return bool(self._pending)

    def _graphs_to_warm(self):
        # Warm only graphs that still have pending cells: a late respawn
        # shouldn't rebuild datasets no remaining cell will touch.
        pending_graphs = ({t.graph for t in self._pending}
                          | {entry[0].graph
                             for entry in self._inflight.values()})
        return (g for g in self._warm_ids if g in pending_graphs)

    def _next_assignment(self, worker_id: int) -> Optional[dict]:
        task = self._pending.popleft()
        fallback = self._breakers.route(task.system)
        run_system = fallback or task.system
        degraded = None
        if fallback is not None:
            degraded = {"via": fallback,
                        "reason": f"circuit breaker open for {task.system}"}
            self.stats["rerouted"] += 1
        attempt = self._crashes.get(task.index, 0) + 1
        self._inflight[task.index] = (task, run_system, degraded)
        payload = {"id": task.index, "system": run_system, "app": task.app,
                   "graph": task.graph, "sweep": task.sweep,
                   "attempt": attempt}
        if task.index in self._shard_retry:
            payload["shard_rows"] = self._shard_retry[task.index]
        return payload

    def _task_done(self, task_id: int, row: dict):
        if task_id not in self._inflight:
            return  # late result for a cell already requeued elsewhere
        task, run_system, degraded = self._inflight.pop(task_id)
        if degraded is not None:
            row = dict(row)
            row["system"] = task.system  # keep the grid keyed as asked
            row["degraded"] = dict(degraded)
        result = experiments.cell_from_row(row)
        self._breakers.record(run_system, ok=result.status != ERR)
        self._committer.offer(task.index, result)
        self.stats["completed"] += 1

    def _task_lost(self, task_id: int, reason: str, oom: bool = False):
        if task_id not in self._inflight:
            return  # a prebuild (negative id); the respawn re-warms
        task, run_system, _degraded = self._inflight.pop(task_id)
        self._breakers.record(run_system, ok=False)
        if oom:
            # The memory-governor path, separate from generic crash
            # accounting: the first OOM kill retries the cell once in
            # sharded mode (the footprint drops to O(shard)); a second
            # quarantines it as an ``OOM`` cell — the paper's own status
            # for cells that cannot fit — not a generic PoisonedCell.
            kills = self._oom_kills.get(task.index, 0) + 1
            self._oom_kills[task.index] = kills
            if kills == 1:
                from repro.sparse.blocked import shard_rows_from_env

                self._shard_retry[task.index] = shard_rows_from_env()
                self._pending.appendleft(task)
                self.stats["oom_retried"] += 1
            else:
                self._committer.offer(
                    task.index, _oom_cell(task, kills, reason))
                self.stats["oom_quarantined"] += 1
                self.stats["completed"] += 1
            return
        crashes = self._crashes.get(task.index, 0) + 1
        self._crashes[task.index] = crashes
        if crashes >= self.config.max_crashes:
            self._committer.offer(
                task.index, _poisoned_cell(task, crashes, reason))
            self.stats["quarantined"] += 1
            self.stats["completed"] += 1
        else:
            self._pending.appendleft(task)
            self.stats["requeued"] += 1

    def describe(self) -> str:
        """One-line run summary for the CLIs' stderr diagnostics."""
        s = self.stats
        parts = [f"{s['tasks']} cells", f"{self.pool_size} workers"]
        for key in ("recalled", "prewarmed", "prewarm_generated", "crashes",
                    "requeued", "quarantined", "rerouted", "mem_kills",
                    "oom_retried", "oom_quarantined"):
            if s[key]:
                parts.append(f"{s[key]} {key}")
        return "service: " + ", ".join(parts)


def _poisoned_cell(task: CellTask, crashes: int, reason: str) -> CellResult:
    """The quarantine record for a cell that keeps killing its workers."""
    return CellResult(
        system=task.system, app=task.app, graph=task.graph,
        status=ERR, seconds=None, mrss_gb=0.0, counters={}, answer=None,
        thread_sweep={}, attempts=crashes,
        error={"type": "PoisonedCell",
               "message": f"quarantined after crashing {crashes} "
                          f"worker(s); last failure: {reason}",
               "traceback": ""})


def _oom_cell(task: CellTask, kills: int, reason: str) -> CellResult:
    """The quarantine record for a cell that OOM-killed its workers even
    after the sharded retry — an ``OOM`` cell, matching the paper's
    status for work that cannot fit."""
    return CellResult(
        system=task.system, app=task.app, graph=task.graph,
        status=OOM, seconds=None, mrss_gb=0.0, counters={}, answer=None,
        thread_sweep={}, attempts=kills,
        error={"type": "WorkerOOM",
               "message": f"worker OOM-killed {kills} time(s), including "
                          f"one sharded retry; last failure: {reason}",
               "traceback": ""})
