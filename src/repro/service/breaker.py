"""Per-system circuit breakers with capability-aware fallback routing.

A system whose cells keep crashing workers (or ending ``ERR``) should stop
receiving fresh cells for a while instead of grinding the whole grid
through its failure mode.  Each registered :class:`~repro.engine.registry.
SystemSpec` gets a :class:`CircuitBreaker` with the classic three states:

* **closed** — normal; cells run on their own system.  ``threshold``
  consecutive failures open the breaker.
* **open** — cells are rerouted to a capability-compatible fallback system
  (:func:`repro.engine.registry.compatible_fallbacks`) and flagged
  ``degraded`` — never substituted silently.  After ``cooldown`` dispatch
  decisions the breaker half-opens.
* **half-open** — exactly one probe cell runs on the original system;
  success closes the breaker, failure re-opens it for another cooldown.

The state machine is driven by dispatch decisions and commit outcomes —
counters, not wall clocks — so supervised runs stay deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine.registry import compatible_fallbacks

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate gate for one system (closed → open → half-open)."""

    def __init__(self, code: str, threshold: int, cooldown: int,
                 forced_open: bool = False):
        self.code = code
        self.threshold = threshold
        self.cooldown = cooldown
        self.forced_open = forced_open
        self.state = OPEN if forced_open else CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._cooldown_left = 0

    def __repr__(self):
        return (f"CircuitBreaker({self.code!r}, state={self.state!r}, "
                f"failures={self.consecutive_failures})")

    def allow(self) -> bool:
        """One dispatch decision: may a cell run on this system right now?

        Advances the open-state cooldown; the transition to half-open
        happens here, and the half-open probe is the single dispatch that
        gets a True while not closed.
        """
        if self.forced_open:
            return False
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = HALF_OPEN
                return True  # the probe
            return False
        return False  # HALF_OPEN: probe already in flight

    def record(self, ok: bool) -> None:
        """Feed one outcome (committed cell or worker crash) back in.

        ``ok`` means the cell committed without a worker crash and with a
        status other than ``ERR`` — the paper's TO/OOM are *modeled*
        results, not system failures.
        """
        if self.forced_open:
            return
        if ok:
            self.consecutive_failures = 0
            if self.state == HALF_OPEN:
                self.state = CLOSED
            return
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.threshold and
                self.consecutive_failures >= self.threshold):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self._cooldown_left = self.cooldown


class BreakerBoard:
    """The supervisor's set of breakers, one per system code, plus routing."""

    def __init__(self, codes, threshold: int, cooldown: int,
                 forced_open=()):
        self.breakers: Dict[str, CircuitBreaker] = {
            code: CircuitBreaker(code, threshold, cooldown,
                                 forced_open=code in tuple(forced_open))
            for code in codes}

    def admit(self, code: str) -> Tuple[str, Optional[str]]:
        """One admission decision for a cell of ``code``.

        Returns one of::

            ("run", None)          # breaker closed (or the half-open probe)
            ("reroute", fallback)  # breaker open; a healthy same-API
                                   # fallback exists — caller must flag
                                   # the cell degraded
            ("defer", None)        # breaker open and no healthy fallback

        Each call is one dispatch decision (it advances the open-state
        cooldown), so a caller that defers must not spin: the cooldown
        guarantees a half-open probe after ``cooldown`` decisions, which
        is what lets a deferred queue eventually drain.
        """
        breaker = self.breakers[code]
        if breaker.allow():
            return ("run", None)
        for fallback in compatible_fallbacks(code):
            other = self.breakers.get(fallback)
            if other is None or other.state == CLOSED:
                return ("reroute", fallback)
        return ("defer", None)

    def route(self, code: str) -> Optional[str]:
        """Decide where a cell of ``code`` runs: its own system or a
        fallback.

        The fixed-grid policy over :meth:`admit`: returns ``None`` to run
        on ``code`` itself (breaker closed, or the half-open probe, or no
        healthy fallback exists — a grid has nowhere to defer to, and
        rerouting to nothing helps nobody), else the fallback system's
        code.  The caller must flag rerouted cells as degraded.
        """
        _decision, fallback = self.admit(code)
        return fallback

    def record(self, code: str, ok: bool) -> None:
        """Feed an outcome to the breaker of the system that *ran* it."""
        breaker = self.breakers.get(code)
        if breaker is not None:
            breaker.record(ok)

    def open_codes(self):
        """Codes whose breaker is not closed (diagnostics)."""
        return tuple(code for code, b in self.breakers.items()
                     if b.state != CLOSED)

    def states(self) -> Dict[str, dict]:
        """JSON-able per-system snapshot — the ``repro-serve status
        --json`` view the drain supervisor publishes each tick."""
        return {
            code: {"state": b.state, "trips": b.trips,
                   "consecutive_failures": b.consecutive_failures}
            for code, b in self.breakers.items()}
