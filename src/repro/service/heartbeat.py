"""Worker liveness protocol: message tags, the heartbeat thread, health.

The supervisor and its workers talk over one duplex pipe per worker.  All
messages are small picklable tuples whose first element is a tag:

Worker → supervisor::

    (READY,    worker_id)                # spawn finished, imports done
    (HB,       worker_id, rss_bytes)     # periodic liveness beat + RSS
    (START,    worker_id, task_id)       # task accepted, about to run
    (RESULT,   worker_id, task_id, row)  # cell finished; row is JSON-clean
    (PREBUILT, worker_id, task_id)       # dataset prewarm finished

Supervisor → worker::

    (RUN,      task_dict)                # run one cell
    (PREBUILD, task_dict)                # warm one graph's dataset cache
    (STOP,)                              # drain and exit

Prebuild tasks carry negative ids (cell indices are >= 0), so a worker
dying mid-prewarm requeues nothing — the replacement worker restarts its
own warmup queue.

A SIGKILL'd worker never says goodbye: the supervisor learns of the death
from the pipe (EOF / a torn, unpicklable write) or from the process exit
code, both surfaced by :class:`WorkerHealth` bookkeeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.service import governor

#: Heartbeat RSS samples the supervisor keeps per worker — enough slope
#: for :func:`repro.service.governor.looks_like_oom` forensics, O(1) RAM.
RSS_HISTORY = 8

#: Message tags (worker → supervisor).
READY = "ready"
HB = "hb"
START = "start"
RESULT = "result"
PREBUILT = "prebuilt"

#: Message tags (supervisor → worker).
RUN = "run"
PREBUILD = "prebuild"
STOP = "stop"


class Heartbeat:
    """Daemon thread beating ``(HB, worker_id)`` down a pipe connection.

    Runs in the *worker* process alongside the cell computation; the GIL
    guarantees it keeps getting scheduled even while numpy kernels run, so
    a silent pipe means the worker is truly dead or wedged in
    uninterruptible state — exactly what the supervisor wants to detect.
    """

    def __init__(self, conn, worker_id: int, interval: float):
        self._conn = conn
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        #: Serializes pipe writes between this thread and the worker loop —
        #: concurrent ``Connection.send`` calls may interleave bytes.
        self.lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._beat, name=f"heartbeat-{worker_id}", daemon=True)

    def start(self) -> None:
        """Start beating."""
        self._thread.start()

    def stop(self) -> None:
        """Stop beating (idempotent; the daemon thread dies with the
        process anyway)."""
        self._stop.set()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                rss = governor.read_rss_bytes()
                with self.lock:
                    self._conn.send((HB, self._worker_id, rss))
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor went away; nothing left to tell


@dataclass
class WorkerHealth:
    """Supervisor-side liveness record for one worker.

    ``task_id``/``task_started`` track the in-flight cell (None when
    idle); ``last_beat`` is the monotonic time of the last message of any
    kind (every message proves liveness, not just HB).  ``rss``/
    ``rss_history`` hold the heartbeat-sampled resident set (bytes) the
    memory governor budgets against; ``task_deadline`` is the per-task
    hard-kill backstop in seconds (None falls back to the static
    ``cell_deadline``).
    """

    worker_id: int
    last_beat: float = field(default_factory=time.monotonic)
    task_id: Optional[int] = None
    task_started: Optional[float] = None
    rss: int = 0
    rss_history: Deque[int] = field(
        default_factory=lambda: deque(maxlen=RSS_HISTORY))
    task_deadline: Optional[float] = None

    def beat(self) -> None:
        """Record proof of life (any received message)."""
        self.last_beat = time.monotonic()

    def sample_rss(self, rss_bytes: int) -> None:
        """Record one heartbeat-borne RSS sample."""
        self.rss = int(rss_bytes)
        self.rss_history.append(self.rss)

    def started(self, task_id: int,
                deadline: Optional[float] = None) -> None:
        """Record that the worker accepted a cell (with its hard-kill
        deadline in seconds, when the job propagated one)."""
        self.task_id = task_id
        self.task_started = time.monotonic()
        self.task_deadline = deadline
        self.beat()

    def finished(self) -> None:
        """Record that the in-flight cell completed."""
        self.task_id = None
        self.task_started = None
        self.task_deadline = None
        self.beat()

    def stale(self, timeout: float,
              now: Optional[float] = None) -> bool:
        """True when the worker has been silent longer than ``timeout``."""
        now = time.monotonic() if now is None else now
        return now - self.last_beat > timeout

    def over_deadline(self, deadline: float,
                      now: Optional[float] = None) -> bool:
        """True when the in-flight cell has run longer than its deadline.

        ``deadline`` is the static default; a per-task deadline recorded
        at :meth:`started` (job-budget remainder + cancel grace) takes
        precedence.
        """
        if self.task_started is None:
            return False
        if self.task_deadline is not None:
            deadline = self.task_deadline
        now = time.monotonic() if now is None else now
        return now - self.task_started > deadline
