"""Deterministic worker-kill and worker-hang schedules for chaos drills.

:mod:`repro.faults` injects *exceptions* inside the cell computation; this
module injects *worker-level* deaths — the failure mode the supervisor
exists to survive.  A :class:`ChaosPlan` runs inside each worker and, at
the moment a scheduled cell starts, either SIGKILLs the worker's own
process (a real, unhandleable kill — indistinguishable from the OOM
killer) or hangs it forever (to exercise heartbeat/deadline detection).

Schedules are deterministic so drills replay exactly:

* ``REPRO_CHAOS_KILL_CELLS`` / ``REPRO_CHAOS_HANG_CELLS`` — semicolon-
  separated ``SYSTEM:app:graph[:attempt=N]`` specs.  Without ``attempt=N``
  the spec fires on *every* attempt (a poison cell); with it, only on that
  supervisor-side attempt number, so ``attempt=1`` kills once and the
  requeued cell completes.
* ``REPRO_CHAOS_KILL_RATE`` / ``REPRO_CHAOS_KILL_SEED`` — kill a seeded
  pseudo-random subset of cells on their first attempt.  The draw hashes
  ``(seed, system, app, graph)`` — no RNG state — so it is independent of
  worker count, dispatch order, and which worker runs the cell.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import errors

#: What a firing chaos spec does to the worker.
ACTIONS = ("kill", "hang")


@dataclass(frozen=True)
class ChaosSpec:
    """One scheduled worker death: which cell, which attempt, what action."""

    system: str
    app: str
    graph: str
    #: Supervisor-side attempt number this spec fires on; None = every
    #: attempt (a poison cell that crashes its worker forever).
    attempt: Optional[int] = None
    action: str = "kill"

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise errors.InvalidValue(
                f"unknown chaos action {self.action!r}; known: {ACTIONS}")
        if self.attempt is not None and self.attempt < 1:
            raise errors.InvalidValue(
                f"chaos attempt is 1-based; got {self.attempt}")

    def matches(self, system: str, app: str, graph: str,
                attempt: int) -> bool:
        """Whether this spec fires for the given cell attempt."""
        if (system, app, graph) != (self.system, self.app, self.graph):
            return False
        return self.attempt is None or self.attempt == attempt


def parse_spec(text: str, action: str) -> ChaosSpec:
    """Parse one ``SYSTEM:app:graph[:attempt=N]`` spec."""
    parts = [p.strip() for p in text.split(":") if p.strip()]
    if len(parts) not in (3, 4):
        raise errors.InvalidValue(
            f"bad chaos spec {text!r}: want SYSTEM:app:graph[:attempt=N]")
    attempt = None
    if len(parts) == 4:
        key, _, value = parts[3].partition("=")
        if key != "attempt":
            raise errors.InvalidValue(
                f"bad chaos spec {text!r}: unknown option {parts[3]!r}")
        try:
            attempt = int(value)
        except ValueError:
            raise errors.InvalidValue(
                f"bad chaos spec {text!r}: attempt wants an integer, "
                f"got {value!r}") from None
    return ChaosSpec(system=parts[0], app=parts[1], graph=parts[2],
                     attempt=attempt, action=action)


def _stable_unit(seed: int, system: str, app: str, graph: str) -> float:
    """Deterministic draw in [0, 1) from a hash — no RNG state to share."""
    digest = hashlib.sha256(
        f"{seed}:{system}:{app}:{graph}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class ChaosPlan:
    """The kill/hang schedule a worker consults at every cell start."""

    def __init__(self, specs: Tuple[ChaosSpec, ...] = (),
                 kill_rate: float = 0.0, seed: int = 0):
        self.specs = tuple(specs)
        if not 0.0 <= kill_rate <= 1.0:
            raise errors.InvalidValue(
                f"chaos kill rate must be in [0, 1]; got {kill_rate}")
        self.kill_rate = kill_rate
        self.seed = seed

    def __bool__(self):
        return bool(self.specs) or self.kill_rate > 0.0

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "ChaosPlan":
        """Build (and validate) the plan from the ``REPRO_CHAOS_*`` knobs."""
        env = os.environ if environ is None else environ
        specs = []
        for name, action in (("REPRO_CHAOS_KILL_CELLS", "kill"),
                             ("REPRO_CHAOS_HANG_CELLS", "hang")):
            raw = env.get(name, "").strip()
            specs += [parse_spec(p, action)
                      for p in raw.split(";") if p.strip()]
        try:
            rate = float(env.get("REPRO_CHAOS_KILL_RATE", "0") or 0)
            seed = int(env.get("REPRO_CHAOS_KILL_SEED", "0") or 0)
        except ValueError as exc:
            raise errors.InvalidValue(
                f"bad REPRO_CHAOS_KILL_RATE/SEED: {exc}") from None
        return cls(tuple(specs), kill_rate=rate, seed=seed)

    def action_for(self, system: str, app: str, graph: str,
                   attempt: int) -> Optional[str]:
        """The scheduled action for this cell attempt, or None.

        Explicit specs win; the seeded random channel only ever kills on
        the *first* attempt, so every randomly killed cell completes on
        requeue and a chaos run converges to the clean run's grid.
        """
        for spec in self.specs:
            if spec.matches(system, app, graph, attempt):
                return spec.action
        if (self.kill_rate > 0.0 and attempt == 1 and
                _stable_unit(self.seed, system, app, graph) < self.kill_rate):
            return "kill"
        return None

    def strike(self, system: str, app: str, graph: str,
               attempt: int) -> None:
        """Carry out the scheduled action, if any (worker-side).

        ``kill`` raises SIGKILL against the worker's own pid — a real
        un-catchable kill.  ``hang`` sleeps forever so the supervisor's
        deadline/heartbeat machinery has something to detect.
        """
        action = self.action_for(system, app, graph, attempt)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600)
