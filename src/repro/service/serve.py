"""``repro-serve``: the job-queue front door (submit/status/result/drain/api).

The study CLIs run a *grid*; this CLI runs a *service*.  Jobs go into a
durable SQLite queue (:mod:`repro.service.queue`) and are executed by a
drain supervisor feeding the supervised worker pool — submission,
execution, and inspection are separate processes that can start, die, and
restart independently::

    repro-serve submit --queue q.db GB bfs road-USA-W --tenant alice
    repro-serve drain  --queue q.db --workers 4        # crash-safe
    repro-serve status --queue q.db [--json]           # incl. dead letters
    repro-serve result --queue q.db 1
    repro-serve api    --queue q.db --port 8080        # HTTP JSON API

``drain`` installs a SIGTERM handler that *drains* instead of dying:
leasing stops, in-flight cells finish (or fail back to the queue after
``REPRO_DRAIN_GRACE`` seconds), the committer flushes, and the process
exits 0 — ``kill -TERM`` is the graceful-shutdown path, not an outage.
``status --json`` adds the governor's live view (per-worker RSS, breaker
states, supervisor stats) published through the queue's meta table.

Every subcommand validates the ``REPRO_*`` environment first
(:func:`repro.service.config.validate_env_knobs`), so a typo'd knob fails
the command instead of silently running with defaults.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys

from repro import errors, faults
from repro.service.config import (QueueConfig, ServiceConfig,
                                  validate_env_knobs)
from repro.service.queue import DEAD, QUEUED, JobQueue


def _add_queue_arg(parser):
    parser.add_argument("--queue", required=True, metavar="PATH",
                        help="the queue database (created on first use)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Durable job-queue service over the study harness.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="enqueue one job")
    _add_queue_arg(p)
    p.add_argument("system", help="system code (SS/GB/LS)")
    p.add_argument("app", help="application name")
    p.add_argument("graph", help="graph name")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0,
                   help="higher dispatches first (default 0)")
    p.add_argument("--idem-key", default=None,
                   help="resubmitting the same key returns the existing "
                        "job instead of enqueueing a duplicate")
    p.add_argument("--sweep", action="store_true",
                   help="record the Figure 2 thread sweep for this cell")
    p.add_argument("--deadline-ms", type=float, default=None,
                   metavar="MS",
                   help="total time budget for this job; past it the cell "
                        "is cancelled cooperatively (CANCELLED, not ERR)")
    p.add_argument("--fault", default=None, metavar="SPEC",
                   help="per-job fault plan (REPRO_FAULTS syntax, e.g. "
                        "kernel:memhog:mb=256) scoped to this one cell")

    p = sub.add_parser("status", help="queue state counts + stuck jobs")
    _add_queue_arg(p)
    p.add_argument("--tenant", default=None, help="filter to one tenant")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable status: counts, tenants, dead "
                        "letters, plus the drain supervisor's published "
                        "worker-RSS/breaker/drain snapshot")

    p = sub.add_parser("result", help="print one job's committed result")
    _add_queue_arg(p)
    p.add_argument("job_id", type=int)

    p = sub.add_parser("drain", help="execute jobs until none are open")
    _add_queue_arg(p)
    p.add_argument("--workers", type=int, default=1, metavar="N")

    p = sub.add_parser("api", help="serve the HTTP JSON API")
    _add_queue_arg(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        validate_env_knobs()
        return _dispatch(args)
    except errors.AdmissionDenied as exc:
        print(f"repro-serve: admission denied: {exc}", file=sys.stderr)
        return 3
    except errors.InvalidValue as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "submit":
        queue = JobQueue(args.queue)
        params = {"sweep": True} if args.sweep else {}
        if args.fault:
            params["faults"] = args.fault
        job = queue.submit(args.system, args.app, args.graph,
                           params=params, tenant=args.tenant,
                           priority=args.priority, idem_key=args.idem_key,
                           deadline_ms=args.deadline_ms)
        print(json.dumps(job.to_json(), sort_keys=True))
        queue.close()
        return 0

    if args.command == "status":
        queue = JobQueue(args.queue)
        if args.as_json:
            status = {
                "counts": queue.counts(),
                "tenants": queue.tenant_counts(),
                "dead": [job.to_json() for job in
                         queue.jobs(tenant=args.tenant, state=DEAD)],
                "workers": queue.get_meta("workers", default=[]),
                "breakers": queue.get_meta("breakers", default={}),
                "cores": queue.get_meta("cores", default={}),
                "supervisor": queue.get_meta("supervisor", default={}),
            }
            print(json.dumps(status, sort_keys=True))
            queue.close()
            return 0
        counts = queue.counts()
        print("queue:", " ".join(
            f"{state}={counts[state]}"
            for state in ("queued", "leased", "done", "err", "dead"))
            + f" (deferred={counts['deferred']})")
        for tenant, states in sorted(queue.tenant_counts().items()):
            line = " ".join(f"{s}={n}" for s, n in sorted(states.items()))
            print(f"  tenant {tenant}: {line}")
        # The acceptance bar: dead-lettered and deferred jobs must be
        # *visible*, never silently dropped.
        dead = queue.jobs(tenant=args.tenant, state=DEAD)
        if dead:
            print("dead letters:")
            for job in dead:
                print(f"  #{job.id} {job.system} {job.app} {job.graph} "
                      f"tenant={job.tenant} attempts={job.attempts} "
                      f"note={job.note!r}")
        now = queue.clock()
        deferred = [job for job in queue.jobs(tenant=args.tenant,
                                              state=QUEUED)
                    if job.not_before > now]
        if deferred:
            print("deferred (backoff/breaker window):")
            for job in deferred:
                print(f"  #{job.id} {job.system} {job.app} {job.graph} "
                      f"tenant={job.tenant} retry_in="
                      f"{job.not_before - now:.1f}s note={job.note!r}")
        queue.close()
        return 0

    if args.command == "result":
        queue = JobQueue(args.queue)
        job = queue.get(args.job_id)
        queue.close()
        if job is None:
            print(f"repro-serve: no such job: {args.job_id}",
                  file=sys.stderr)
            return 2
        if job.result is None:
            print(f"repro-serve: job {job.id} has no result yet "
                  f"(state={job.state})", file=sys.stderr)
            return 1
        print(json.dumps(job.result, sort_keys=True))
        return 0

    if args.command == "drain":
        from repro.service.queue_supervisor import QueueSupervisor

        if args.workers < 1:
            print("repro-serve: --workers wants a positive worker count; "
                  f"got {args.workers}", file=sys.stderr)
            return 2
        faults.install_from_env()
        queue = JobQueue(args.queue)
        supervisor = QueueSupervisor(queue, workers=args.workers,
                                     config=ServiceConfig.from_env())
        # SIGTERM means "finish what you started, then leave": stop
        # leasing, let in-flight cells land (or fail back after the drain
        # grace), flush the committer, exit 0.  The handler only flips
        # flags — everything async-signal-unsafe happens in the event
        # loop.  Registration fails off the main thread (tests drive
        # _dispatch from threads); those callers drain without the hook.
        with contextlib.suppress(ValueError):
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: supervisor.request_drain())
        counts = supervisor.drain()
        print(supervisor.describe(), file=sys.stderr)
        print(json.dumps(counts, sort_keys=True))
        queue.close()
        return 1 if counts["dead"] else 0

    if args.command == "api":
        from repro.service.api import make_server

        # Fail fast on a malformed queue path / schema before binding.
        JobQueue(args.queue, config=QueueConfig.from_env()).close()
        server = make_server(args.queue, host=args.host, port=args.port,
                             config=QueueConfig.from_env())
        host, port = server.server_address[:2]
        print(f"repro-serve: API on http://{host}:{port} over "
              f"{args.queue}", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
