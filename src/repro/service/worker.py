"""The out-of-process cell worker: run cells, heartbeat, die honestly.

Each worker is a spawn-started process owning one duplex pipe to the
supervisor.  Its loop is deliberately thin: install the environment's
fault plan, announce readiness, then run one cell per ``RUN`` message via
:func:`repro.core.experiments.run_cell` and send the JSON-clean row back.

Failure behavior is the whole point:

* A :class:`repro.faults.FatalFault` (the injected process kill) is *not*
  absorbed — the worker exits with a distinct code, exactly as if the OS
  had killed it, and the supervisor requeues the in-flight cell.
* The chaos plan (:mod:`repro.service.chaos`) may SIGKILL or hang the
  worker at a scheduled cell start — a real kill, not a simulation of one.
* Anything else unexpected escaping :func:`run_cell` (which already folds
  cell-local errors into ``ERR`` rows) also dies loudly rather than
  guessing: supervision, not in-worker heroics, owns recovery.

Result rows round-trip through JSON before hitting the pipe, so the bytes
the supervisor commits are exactly what the journal/snapshot writers
would produce in-process — the byte-identity guarantee does not depend on
what pickle does to numpy scalars.
"""

from __future__ import annotations

import contextlib
import json
import os
import time

from repro import faults
from repro.core import experiments
from repro.engine import cancel
from repro.service import chaos, heartbeat
from repro.service.config import ServiceConfig

#: Worker exit code for a FatalFault (distinct from SIGKILL's -9).
FATAL_EXIT = 41


def json_clean_row(result: "experiments.CellResult") -> dict:
    """The persisted form of a cell, normalized through one JSON round trip.

    ``cell_to_row`` + JSON encode/decode converts numpy scalars and int
    dict keys the same way :func:`repro.core.experiments.save_results`
    does, so a row that crossed a process boundary serializes to the same
    bytes as one that never left.
    """
    row = json.loads(json.dumps(experiments.cell_to_row(result),
                                default=experiments._jsonify))
    return row


def worker_main(conn, worker_id: int) -> None:
    """Worker process entry point (the spawn target).

    ``conn`` is the worker's end of the duplex pipe; everything else —
    fault plan, chaos schedule, retry policy — comes from the inherited
    environment, so a worker behaves exactly like a sequential run of the
    same cell under the same knobs.
    """
    faults.install_from_env()
    plan = chaos.ChaosPlan.from_env()
    config = ServiceConfig.from_env()
    beat = heartbeat.Heartbeat(conn, worker_id, config.heartbeat_interval)
    beat.start()
    with beat.lock:
        conn.send((heartbeat.READY, worker_id))
    while True:
        message = conn.recv()
        if message[0] == heartbeat.STOP:
            return
        task = message[1]
        with beat.lock:
            conn.send((heartbeat.START, worker_id, task["id"]))
        if message[0] == heartbeat.PREBUILD:
            # Warm this process's dataset cache so the first *cell* on
            # each graph doesn't spend its deadline on generation (uk07's
            # crawl takes the longest).  A failed warm is non-fatal: the
            # cell will just build lazily, exactly as before.
            generated = True
            try:
                from repro.graphs import datasets

                before = datasets.generation_count()
                dataset = datasets.get_dataset(task["graph"])
                dataset.build()
                dataset.build_symmetric()
                # With the artifact store warm this stays at zero: every
                # worker mmaps the same published shard files instead of
                # regenerating the graph per process.
                generated = datasets.generation_count() > before
            except faults.FatalFault:
                os._exit(FATAL_EXIT)
            except Exception:
                pass
            with beat.lock:
                conn.send((heartbeat.PREBUILT, worker_id, task["id"],
                           generated))
            continue
        plan.strike(task["system"], task["app"], task["graph"],
                    task["attempt"])
        try:
            with _task_scope(task):
                result = experiments.run_cell(
                    task["system"], task["app"], task["graph"],
                    sweep_threads=task["sweep"], use_cache=False)
        except faults.FatalFault:
            # The simulated process kill: die like one.  The supervisor
            # sees the exit and requeues the cell.
            os._exit(FATAL_EXIT)
        row = json_clean_row(result)
        with beat.lock:
            conn.send((heartbeat.RESULT, worker_id, task["id"], row))


@contextlib.contextmanager
def _task_scope(task: dict):
    """Apply one task's governor payload around its ``run_cell``.

    Three optional keys, each restored on exit so tasks stay isolated:

    * ``deadline_seconds`` — installs a :class:`CancelToken` with a
      monotonic deadline; the cell exits cooperatively as ``CANCELLED``
      at the next OpEvent boundary past its budget.
    * ``faults`` — a per-job fault-spec string (``REPRO_FAULTS`` syntax)
      scoped to this one cell, layered over any process-wide plan: how
      the drills make *one job* slow or memory-hungry deterministically.
    * ``shard_rows`` — the post-OOM sharded retry: points
      ``REPRO_SHARD_ROWS`` at the requested geometry and drops this
      process's dataset cache so the cell rebuilds against O(shard)
      mmapped loads instead of the monolithic CSR.
    * ``kernel_threads`` — the supervisor's cores-budget split: points
      ``REPRO_KERNEL_THREADS`` at the clamped per-worker width for this
      task (:func:`repro.sparse.parallel.kernel_threads` reads the
      environment per fan-out, so no cache needs dropping).
    """
    from repro.graphs import datasets

    stack = contextlib.ExitStack()
    with stack:
        if task.get("deadline_seconds") is not None:
            token = cancel.CancelToken(
                deadline=time.monotonic() + task["deadline_seconds"])
            stack.enter_context(cancel.scope(token))
        if task.get("faults"):
            job_plan = faults.plan_from_env(
                {"REPRO_FAULTS": task["faults"]})
            if job_plan is not None:
                stack.enter_context(faults.injected(job_plan))
        if task.get("shard_rows") is not None:
            previous = os.environ.get("REPRO_SHARD_ROWS")
            os.environ["REPRO_SHARD_ROWS"] = str(task["shard_rows"])
            datasets.clear_cache()

            def _restore(prev=previous):
                if prev is None:
                    os.environ.pop("REPRO_SHARD_ROWS", None)
                else:
                    os.environ["REPRO_SHARD_ROWS"] = prev
                datasets.clear_cache()

            stack.callback(_restore)
        if task.get("kernel_threads") is not None:
            previous = os.environ.get("REPRO_KERNEL_THREADS")
            os.environ["REPRO_KERNEL_THREADS"] = str(task["kernel_threads"])

            def _restore_threads(prev=previous):
                if prev is None:
                    os.environ.pop("REPRO_KERNEL_THREADS", None)
                else:
                    os.environ["REPRO_KERNEL_THREADS"] = prev

            stack.callback(_restore_threads)
        yield
