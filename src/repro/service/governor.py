"""Resource-governor primitives: RSS sampling, OOM forensics, footprint
estimation, and the load-shedding decision.

This module is the *policy* half of end-to-end resource governance; the
mechanisms live where the resources do:

* Workers sample their own RSS (:func:`read_rss_bytes`) into every
  heartbeat, giving the supervisor a per-worker memory history.
* The supervisor enforces ``REPRO_WORKER_MEM_BUDGET`` against those
  samples and, when a worker dies without a verdict (SIGKILL, torn
  pipe), asks :func:`looks_like_oom` whether the heartbeat history reads
  like a kernel OOM kill — rising RSS that approached the budget — so
  the loss is retried once in sharded mode and then quarantined as
  ``OOM`` rather than a generic ``PoisonedCell``.
* Before dispatching, the queue supervisor asks
  :func:`estimate_footprint` (artifact-manifest nnz/nrows — *metadata
  only*, no payload faulted in) whether the cell can fit a worker's
  budget monolithically, sharded, or not at all.
* The HTTP front-end asks :func:`shed_decision` whether to refuse new
  work with 503 + Retry-After before the queue drowns
  (``REPRO_QUEUE_HIGH_WATER`` depth / ``REPRO_QUEUE_MAX_WAIT`` latency
  watermarks).
* The worker pool asks :func:`split_cores` how to divide a
  ``REPRO_CORES_BUDGET`` between cell-parallelism (``--workers``) and
  per-worker kernel threads (``REPRO_KERNEL_THREADS``) so the two levels
  of parallelism never oversubscribe the machine.

Everything here is either a pure function of its inputs or reads a
``/proc`` snapshot, so each policy is unit-testable without spawning a
single worker.
"""

from __future__ import annotations

import os
import resource
from typing import Dict, Optional, Sequence, Tuple

#: Bytes of working memory charged per stored edge beyond the mmapped
#: payload itself: indices + values resident, plus the transient
#: structures (frontiers, accumulators, join buffers) the kernels build.
#: Deliberately conservative — the estimator's job is to keep a cell
#: that *cannot* fit from killing a worker, not to pack tightly.
BYTES_PER_EDGE = 16

#: Bytes charged per row (indptr, rank/dist/label vectors, plan arrays).
BYTES_PER_ROW = 8

#: Fraction of the budget the last heartbeat RSS must have reached for a
#: silent worker death to be ruled an OOM kill.
OOM_RSS_FRACTION = 0.8

#: Bounds for the Retry-After hint on a shed response, seconds.
RETRY_AFTER_MIN = 1
RETRY_AFTER_MAX = 60


def read_rss_bytes(pid: Optional[int] = None) -> int:
    """Current resident set size in bytes (self, or another pid).

    Prefers ``/proc/<pid>/statm`` (Linux); falls back to
    :func:`resource.getrusage` peak RSS for the calling process when
    ``/proc`` is unavailable.  Returns 0 if neither source works — the
    governor treats 0 as "no sample", never as evidence.
    """
    try:
        with open(f"/proc/{pid if pid is not None else 'self'}/statm",
                  "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    if pid is not None:
        return 0
    try:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (OSError, ValueError):
        return 0


def looks_like_oom(rss_history: Sequence[int], budget_bytes: int) -> bool:
    """Whether a silent worker death reads like a kernel OOM kill.

    The kernel's OOM killer leaves no exit message — just a SIGKILLed
    process and a torn pipe.  The forensic signature the governor
    accepts: a heartbeat RSS history that was *rising* and whose last
    sample had reached :data:`OOM_RSS_FRACTION` of the worker budget.
    With no budget configured (0) there is no yardstick, so nothing is
    classified as OOM and every loss keeps the existing crash semantics.
    """
    if budget_bytes <= 0:
        return False
    samples = [s for s in rss_history if s > 0]
    if not samples:
        return False
    if samples[-1] < OOM_RSS_FRACTION * budget_bytes:
        return False
    return len(samples) < 2 or samples[-1] >= samples[0]


def estimate_footprint(manifest: dict) -> Tuple[int, int]:
    """(monolithic_bytes, max_shard_bytes) working-set estimate.

    Pure arithmetic over an artifact manifest's metadata — ``nnz`` and
    ``nrows`` totals plus the per-shard rows/nnz the store records — so
    the admission decision costs a JSON read, not a graph load.  The
    per-shard figure still charges the full row vectors (rank/dist
    arrays span all rows regardless of which shard streams).
    """
    nrows = int(manifest["nrows"])
    total = int(manifest["nnz"]) * BYTES_PER_EDGE + nrows * BYTES_PER_ROW
    max_shard = 0
    for shard in manifest.get("shards", ()):
        shard_bytes = int(shard["nnz"]) * BYTES_PER_EDGE \
            + nrows * BYTES_PER_ROW
        max_shard = max(max_shard, shard_bytes)
    return total, max_shard if max_shard else total


def fit_verdict(manifest: Optional[dict], budget_bytes: int,
                headroom: int = 0) -> str:
    """How a cell fits a worker budget: ``"fits"``/``"sharded"``/``"no"``.

    ``headroom`` is memory already committed on the worker (its current
    RSS floor).  With the governor off (no budget) or no manifest to
    consult, the verdict is ``"fits"`` — admission control never blocks
    on missing metadata, it only uses metadata it has.
    """
    if budget_bytes <= 0 or manifest is None:
        return "fits"
    total, max_shard = estimate_footprint(manifest)
    available = budget_bytes - headroom
    if total <= available:
        return "fits"
    if max_shard <= available:
        return "sharded"
    return "no"


def split_cores(workers: int, kernel_threads: int,
                budget: int) -> Tuple[int, int]:
    """Clamp a ``(workers, kernel_threads)`` request to a cores budget.

    The invariant the supervisor enforces: ``workers * kernel_threads <=
    budget`` — an N-worker pool whose workers each fan kernels over K
    threads claims N*K cores, and claiming more than the budget just
    makes every core slower (oversubscription thrashes caches and
    defeats both levels of parallelism).  Kernel threads win the tie:
    the per-worker thread count is clamped to the budget first, then the
    worker count takes whatever whole multiple still fits (floor 1 — a
    pool always keeps one worker).  ``budget <= 0`` disables budgeting
    and passes the request through unchanged.
    """
    workers = max(1, int(workers))
    kernel_threads = max(1, int(kernel_threads))
    if budget <= 0:
        return workers, kernel_threads
    budget = int(budget)
    kernel_threads = min(kernel_threads, max(1, budget))
    workers = min(workers, max(1, budget // kernel_threads))
    return workers, kernel_threads


def shed_decision(counts: Dict[str, int], oldest_wait: float,
                  high_water: int, max_wait: float) -> Optional[dict]:
    """Whether the API should refuse new work right now.

    Returns None to admit, or a JSON-able dict naming the tripped
    watermark plus a bounded Retry-After hint.  Two watermarks, either
    sheds: *depth* (open jobs ≥ ``high_water``) and *latency* (oldest
    dispatchable job has waited past ``max_wait`` seconds — a shallow
    queue that is not draining is just as overloaded as a deep one).
    """
    depth = counts.get("queued", 0) + counts.get("leased", 0)
    if high_water and depth >= high_water:
        # Hint scales with overshoot: a queue twice over its watermark
        # asks callers to stay away longer.
        retry = _bound_retry(2 * depth / high_water)
        return {"reason": "queue depth", "depth": depth,
                "high_water": high_water, "retry_after": retry}
    if max_wait and oldest_wait > max_wait:
        retry = _bound_retry(oldest_wait - max_wait)
        return {"reason": "lease latency", "depth": depth,
                "oldest_wait": round(oldest_wait, 3),
                "max_wait": max_wait, "retry_after": retry}
    return None


def _bound_retry(seconds: float) -> int:
    return int(min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, seconds)))
