"""Supervised multi-worker execution of the study grid (``repro.service``).

The sequential study loop (``repro-study all``, ``run_full_study.py``) runs
every cell in one process: a worker-level death — a real SIGKILL/OOM-kill
or an injected :class:`repro.faults.FatalFault` — aborts the whole grid and
only the checkpoint journal survives.  This package keeps the study alive
through such deaths by running cells *out of process* under supervision:

* :mod:`repro.service.supervisor` — the in-process supervisor: owns the
  canonical task list, dispatches cells to a spawn-based worker pool,
  detects dead or hung workers (pipe EOF, missed heartbeats, a blown
  per-cell deadline), respawns them, requeues the in-flight cell, and
  quarantines a cell as ``ERR``/``PoisonedCell`` after it has crashed
  ``K`` workers.  Results are committed through the checkpoint cell
  journal in canonical task order, so a parallel, fault-ridden run
  produces a ``cells.json`` byte-identical to a sequential clean run.
* :mod:`repro.service.worker` — the out-of-process worker loop: runs one
  cell at a time via :func:`repro.core.experiments.run_cell` with the
  fault plan installed from the environment, heartbeating throughout.
* :mod:`repro.service.breaker` — per-system circuit breakers (closed →
  open → half-open) that reroute cells from a crash-looping system to a
  capability-compatible fallback from the engine registry, flagging the
  rerouted cell as *degraded* instead of failing (or substituting)
  silently.
* :mod:`repro.service.chaos` — deterministic worker-kill/hang schedules
  for drills (the service-level analogue of :mod:`repro.faults`).
* :mod:`repro.service.config` — the ``REPRO_SERVICE_*`` /
  ``REPRO_CELL_*`` / ``REPRO_BREAKER_*`` environment knobs, validated up
  front (see the "Environment knobs" table in EXPERIMENTS.md).

Both CLIs expose the pool via ``--workers N``; the default ``N=1`` keeps
the existing in-process sequential path byte-for-byte unchanged.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ChaosPlan
from repro.service.config import ServiceConfig
from repro.service.supervisor import CellTask, Supervisor, grid_tasks

__all__ = [
    "CellTask",
    "ChaosPlan",
    "CircuitBreaker",
    "ServiceConfig",
    "Supervisor",
    "grid_tasks",
]
