"""Supervised multi-worker execution of the study grid (``repro.service``).

The sequential study loop (``repro-study all``, ``run_full_study.py``) runs
every cell in one process: a worker-level death — a real SIGKILL/OOM-kill
or an injected :class:`repro.faults.FatalFault` — aborts the whole grid and
only the checkpoint journal survives.  This package keeps the study alive
through such deaths by running cells *out of process* under supervision:

* :mod:`repro.service.supervisor` — the in-process supervisor: owns the
  canonical task list, dispatches cells to a spawn-based worker pool,
  detects dead or hung workers (pipe EOF, missed heartbeats, a blown
  per-cell deadline), respawns them, requeues the in-flight cell, and
  quarantines a cell as ``ERR``/``PoisonedCell`` after it has crashed
  ``K`` workers.  Results are committed through the checkpoint cell
  journal in canonical task order, so a parallel, fault-ridden run
  produces a ``cells.json`` byte-identical to a sequential clean run.
* :mod:`repro.service.worker` — the out-of-process worker loop: runs one
  cell at a time via :func:`repro.core.experiments.run_cell` with the
  fault plan installed from the environment, heartbeating throughout.
* :mod:`repro.service.breaker` — per-system circuit breakers (closed →
  open → half-open) that reroute cells from a crash-looping system to a
  capability-compatible fallback from the engine registry, flagging the
  rerouted cell as *degraded* instead of failing (or substituting)
  silently.
* :mod:`repro.service.chaos` — deterministic worker-kill/hang schedules
  for drills (the service-level analogue of :mod:`repro.faults`).
* :mod:`repro.service.config` — the ``REPRO_SERVICE_*`` /
  ``REPRO_CELL_*`` / ``REPRO_BREAKER_*`` / ``REPRO_JOB_*`` environment
  knobs, validated up front (see the "Environment knobs" table in
  EXPERIMENTS.md), plus :func:`~repro.service.config.validate_env_knobs`
  rejecting unknown ``REPRO_*`` names.
* :mod:`repro.service.queue` — the durable SQLite-WAL job queue
  (idempotent submission, crash-safe leases, retry with backoff,
  dead-letter state, tenant admission control).
* :mod:`repro.service.queue_supervisor` — drains the queue through the
  same worker pool, with exactly-once result commit and breaker-driven
  defer/reroute admission.
* :mod:`repro.service.api` / :mod:`repro.service.serve` — the service
  front-end: a stdlib HTTP JSON API and the ``repro-serve`` CLI
  (``submit``/``status``/``result``/``drain``/``api``).

Both study CLIs expose the pool via ``--workers N``; the default ``N=1``
keeps the existing in-process sequential path byte-for-byte unchanged.
``run_full_study.py --queue`` routes the same grid through the durable
queue instead.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ChaosPlan
from repro.service.config import QueueConfig, ServiceConfig, \
    validate_env_knobs
from repro.service.queue import Job, JobQueue
from repro.service.queue_supervisor import QueueSupervisor
from repro.service.supervisor import (CellTask, Supervisor, WorkerPool,
                                      grid_tasks)

__all__ = [
    "CellTask",
    "ChaosPlan",
    "CircuitBreaker",
    "Job",
    "JobQueue",
    "QueueConfig",
    "QueueSupervisor",
    "ServiceConfig",
    "Supervisor",
    "WorkerPool",
    "grid_tasks",
    "validate_env_knobs",
]
