"""Environment knobs for the supervised worker pool, validated up front.

Like the fault knobs (``REPRO_FAULTS``), every service knob is parsed and
range-checked before any worker spawns, so a typo fails the run immediately
with :class:`repro.errors.InvalidValue` instead of surfacing as a confusing
mid-grid stall.  The full knob table lives in EXPERIMENTS.md ("Environment
knobs"); a lint-style test asserts the two stay in sync.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro import errors

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Default seconds of heartbeat silence before a worker counts as hung.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default wall-clock seconds one cell may occupy a worker.
DEFAULT_CELL_DEADLINE = 600.0

#: Default number of worker crashes before a cell is quarantined.
DEFAULT_MAX_CRASHES = 3

#: Default consecutive per-system failures that open the circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 5

#: Default number of dispatch decisions an open breaker waits before
#: letting one half-open probe through.
DEFAULT_BREAKER_COOLDOWN = 8


def _positive_float(env: dict, name: str, default: float) -> float:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise errors.InvalidValue(
            f"{name} wants a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise errors.InvalidValue(f"{name} must be > 0; got {value}")
    return value


def _nonnegative_int(env: dict, name: str, default: int) -> int:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise errors.InvalidValue(
            f"{name} wants an integer, got {raw!r}") from None
    if value < 0:
        raise errors.InvalidValue(f"{name} must be >= 0; got {value}")
    return value


@dataclass(frozen=True)
class ServiceConfig:
    """Validated supervisor policy (heartbeat, deadline, quarantine, breaker).

    Build one with :meth:`from_env` (the CLIs do) or directly in tests.
    """

    #: Seconds between worker heartbeats.
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    #: Seconds of heartbeat silence before a busy worker counts as hung.
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    #: Wall-clock seconds one cell may occupy a worker before it is killed
    #: and the cell requeued.
    cell_deadline: float = DEFAULT_CELL_DEADLINE
    #: Worker crashes on the same cell before it is quarantined as
    #: ``ERR``/``PoisonedCell`` (>= 1; crash K of the same cell poisons it).
    max_crashes: int = DEFAULT_MAX_CRASHES
    #: Consecutive per-system crash/ERR outcomes that open its breaker
    #: (0 disables the breaker entirely).
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    #: Dispatch decisions an open breaker waits before one half-open probe.
    breaker_cooldown: int = DEFAULT_BREAKER_COOLDOWN
    #: System codes whose breaker is forced open for the whole run.
    breaker_force_open: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise errors.InvalidValue("heartbeat interval/timeout must be "
                                      "> 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise errors.InvalidValue(
                "heartbeat timeout must exceed the heartbeat interval "
                f"(got timeout={self.heartbeat_timeout}, "
                f"interval={self.heartbeat_interval})")
        if self.cell_deadline <= 0:
            raise errors.InvalidValue("cell deadline must be > 0")
        if self.max_crashes < 1:
            raise errors.InvalidValue(
                f"max crashes must be >= 1; got {self.max_crashes}")

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "ServiceConfig":
        """Read and validate every ``REPRO_SERVICE_*``-family knob.

        Raises :class:`repro.errors.InvalidValue` on any malformed value —
        called by the CLIs before the first worker spawns.
        """
        env = os.environ if environ is None else environ
        force_raw = env.get("REPRO_BREAKER_FORCE_OPEN", "").strip()
        force = tuple(c.strip() for c in force_raw.split(",") if c.strip())
        if force:
            from repro.engine.registry import get_system

            for code in force:
                get_system(code)  # raises with did-you-mean when unknown
        return cls(
            heartbeat_interval=_positive_float(
                env, "REPRO_SERVICE_HEARTBEAT", DEFAULT_HEARTBEAT_INTERVAL),
            heartbeat_timeout=_positive_float(
                env, "REPRO_SERVICE_HEARTBEAT_TIMEOUT",
                DEFAULT_HEARTBEAT_TIMEOUT),
            cell_deadline=_positive_float(
                env, "REPRO_CELL_DEADLINE", DEFAULT_CELL_DEADLINE),
            max_crashes=_nonnegative_int(
                env, "REPRO_CELL_MAX_CRASHES", DEFAULT_MAX_CRASHES),
            breaker_threshold=_nonnegative_int(
                env, "REPRO_BREAKER_THRESHOLD", DEFAULT_BREAKER_THRESHOLD),
            breaker_cooldown=_nonnegative_int(
                env, "REPRO_BREAKER_COOLDOWN", DEFAULT_BREAKER_COOLDOWN),
            breaker_force_open=force,
        )
