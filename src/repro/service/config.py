"""Environment knobs for the supervised worker pool, validated up front.

Like the fault knobs (``REPRO_FAULTS``), every service knob is parsed and
range-checked before any worker spawns, so a typo fails the run immediately
with :class:`repro.errors.InvalidValue` instead of surfacing as a confusing
mid-grid stall.  The full knob table lives in EXPERIMENTS.md ("Environment
knobs"); a lint-style test asserts the two stay in sync.

On top of per-knob parsing, :func:`validate_env_knobs` catches the typo
class parsing cannot: a *misspelled knob name* (RETRIES typed RETIRES) is
simply an unread variable, silently reverting the run to defaults.  The
CLIs call the validator at startup; any ``REPRO_``-prefixed variable not
in :data:`KNOWN_KNOBS` fails fast with a did-you-mean suggestion unless
``REPRO_ALLOW_UNKNOWN_KNOBS=1`` downgrades it to a stderr warning.
"""

from __future__ import annotations

import difflib
import os
import sys
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro import errors
from repro.sparse.parallel import kernel_threads_from_env

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Default seconds of heartbeat silence before a worker counts as hung.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default wall-clock seconds one cell may occupy a worker.
DEFAULT_CELL_DEADLINE = 600.0

#: Default number of worker crashes before a cell is quarantined.
DEFAULT_MAX_CRASHES = 3

#: Default consecutive per-system failures that open the circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 5

#: Default number of dispatch decisions an open breaker waits before
#: letting one half-open probe through.
DEFAULT_BREAKER_COOLDOWN = 8

#: Default supervisor-level attempts per queued job before dead-letter.
DEFAULT_JOB_MAX_ATTEMPTS = 3

#: Default first-retry backoff in seconds (doubles per attempt).
DEFAULT_JOB_BACKOFF = 0.25

#: Default ceiling on the exponential retry backoff, in seconds.
DEFAULT_JOB_BACKOFF_CAP = 30.0

#: Default seconds a breaker-deferred job waits before redispatch.
DEFAULT_JOB_DEFER = 1.0

#: Default seconds a job lease lasts without renewal before it expires
#: and the job is requeued (crash-safety for a killed supervisor).
DEFAULT_LEASE_SECONDS = 120.0

#: Default per-tenant cap on open (queued + leased) jobs; 0 = unlimited.
DEFAULT_TENANT_MAX_ACTIVE = 0

#: Default job wall-clock budget in milliseconds; 0 = no deadline.
DEFAULT_JOB_DEADLINE_MS = 0.0

#: Default per-worker RSS budget in MiB; 0 = memory governor off.
DEFAULT_WORKER_MEM_BUDGET_MB = 0.0

#: Default open-job count (queued + leased) above which the API sheds;
#: 0 = load shedding off.
DEFAULT_QUEUE_HIGH_WATER = 0

#: Default seconds the oldest dispatchable job may wait before the API
#: sheds on lease latency; 0 = latency watermark off.
DEFAULT_QUEUE_MAX_WAIT = 0.0

#: Default grace seconds past a propagated deadline before the
#: supervisor hard-kills a worker that failed to cancel cooperatively.
DEFAULT_CANCEL_GRACE = 5.0

#: Default seconds a draining supervisor waits for in-flight jobs to
#: finish before failing them back to the queue.
DEFAULT_DRAIN_GRACE = 30.0

#: Default total-cores budget split between cell workers and kernel
#: threads; 0 = budgeting off (workers and threads taken as requested).
DEFAULT_CORES_BUDGET = 0

#: Default kernel threads per worker (``REPRO_KERNEL_THREADS``); 1 = the
#: sequential shard loop.
DEFAULT_KERNEL_THREADS = 1

#: Every complete REPRO_* knob name any part of the harness reads — the
#: source of truth for :func:`validate_env_knobs`.  A lint-style test
#: (tests/test_env_knobs_doc.py) asserts this set matches the knobs the
#: source tree actually mentions, so it cannot rot.
KNOWN_KNOBS = frozenset({
    "REPRO_FAULTS",
    "REPRO_FAULTS_RATE",
    "REPRO_FAULTS_SEED",
    "REPRO_CELL_RETRIES",
    "REPRO_CELL_WALL_BUDGET",
    "REPRO_SERVICE_HEARTBEAT",
    "REPRO_SERVICE_HEARTBEAT_TIMEOUT",
    "REPRO_CELL_DEADLINE",
    "REPRO_CELL_MAX_CRASHES",
    "REPRO_BREAKER_THRESHOLD",
    "REPRO_BREAKER_COOLDOWN",
    "REPRO_BREAKER_FORCE_OPEN",
    "REPRO_CHAOS_KILL_CELLS",
    "REPRO_CHAOS_HANG_CELLS",
    "REPRO_CHAOS_KILL_RATE",
    "REPRO_CHAOS_KILL_SEED",
    "REPRO_FUSION",
    "REPRO_PLAN_CACHE",
    "REPRO_PLAN_CACHE_STATS",
    "REPRO_JOB_MAX_ATTEMPTS",
    "REPRO_JOB_BACKOFF",
    "REPRO_JOB_BACKOFF_CAP",
    "REPRO_JOB_DEFER",
    "REPRO_LEASE_SECONDS",
    "REPRO_TENANT_MAX_ACTIVE",
    "REPRO_ALLOW_UNKNOWN_KNOBS",
    "REPRO_BENCH_GRAPHS",
    "REPRO_BENCH_APPS",
    "REPRO_ARTIFACTS",
    "REPRO_ARTIFACT_DIR",
    "REPRO_SHARD_ROWS",
    "REPRO_JOB_DEADLINE",
    "REPRO_WORKER_MEM_BUDGET",
    "REPRO_QUEUE_HIGH_WATER",
    "REPRO_QUEUE_MAX_WAIT",
    "REPRO_CANCEL_GRACE",
    "REPRO_DRAIN_GRACE",
    "REPRO_KERNEL_THREADS",
    "REPRO_CORES_BUDGET",
})


def validate_env_knobs(environ: Optional[dict] = None) -> Tuple[str, ...]:
    """Reject (or warn about) unrecognized ``REPRO_*`` environment knobs.

    A typo'd knob name is otherwise *silently ignored* — the most
    dangerous failure mode a knob can have (RETRIES typed RETIRES
    quietly keeps the default retry policy).  Called by the CLIs before
    any work starts.  Returns the tuple of unknown names (empty when the
    environment is clean); raises :class:`repro.errors.InvalidValue`
    naming each offender with a did-you-mean suggestion, unless
    ``REPRO_ALLOW_UNKNOWN_KNOBS=1`` is set, in which case the offenders
    are listed on stderr and execution continues.
    """
    env = os.environ if environ is None else environ
    unknown = tuple(sorted(
        name for name in env
        if name.startswith("REPRO_") and name not in KNOWN_KNOBS))
    if not unknown:
        return ()
    details = []
    for name in unknown:
        close = difflib.get_close_matches(name, KNOWN_KNOBS, n=1,
                                          cutoff=0.6)
        hint = f" (did you mean {close[0]}?)" if close else ""
        details.append(f"{name}{hint}")
    if env.get("REPRO_ALLOW_UNKNOWN_KNOBS", "").strip() == "1":
        print("warning: ignoring unrecognized REPRO_* knob(s): "
              + ", ".join(details), file=sys.stderr)
        return unknown
    raise errors.InvalidValue(
        "unrecognized REPRO_* environment knob(s): " + ", ".join(details)
        + ". A misspelled knob silently does nothing, so this fails "
        "fast; set REPRO_ALLOW_UNKNOWN_KNOBS=1 to downgrade to a "
        "warning. Known knobs are listed in EXPERIMENTS.md "
        "('Environment knobs').")


def _positive_float(env: dict, name: str, default: float) -> float:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise errors.InvalidValue(
            f"{name} wants a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise errors.InvalidValue(f"{name} must be > 0; got {value}")
    return value


def _nonnegative_float(env: dict, name: str, default: float) -> float:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise errors.InvalidValue(
            f"{name} wants a number, got {raw!r}") from None
    if value < 0:
        raise errors.InvalidValue(f"{name} must be >= 0; got {value}")
    return value


def _nonnegative_int(env: dict, name: str, default: int) -> int:
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise errors.InvalidValue(
            f"{name} wants an integer, got {raw!r}") from None
    if value < 0:
        raise errors.InvalidValue(f"{name} must be >= 0; got {value}")
    return value


@dataclass(frozen=True)
class ServiceConfig:
    """Validated supervisor policy (heartbeat, deadline, quarantine, breaker).

    Build one with :meth:`from_env` (the CLIs do) or directly in tests.
    """

    #: Seconds between worker heartbeats.
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    #: Seconds of heartbeat silence before a busy worker counts as hung.
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    #: Wall-clock seconds one cell may occupy a worker before it is killed
    #: and the cell requeued.
    cell_deadline: float = DEFAULT_CELL_DEADLINE
    #: Worker crashes on the same cell before it is quarantined as
    #: ``ERR``/``PoisonedCell`` (>= 1; crash K of the same cell poisons it).
    max_crashes: int = DEFAULT_MAX_CRASHES
    #: Consecutive per-system crash/ERR outcomes that open its breaker
    #: (0 disables the breaker entirely).
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    #: Dispatch decisions an open breaker waits before one half-open probe.
    breaker_cooldown: int = DEFAULT_BREAKER_COOLDOWN
    #: System codes whose breaker is forced open for the whole run.
    breaker_force_open: Tuple[str, ...] = field(default_factory=tuple)
    #: Per-worker RSS budget in MiB; a worker exceeding it is reaped and
    #: the memory governor classifies the loss as an OOM kill.  0 = off.
    mem_budget_mb: float = DEFAULT_WORKER_MEM_BUDGET_MB
    #: Grace seconds past a propagated deadline before a worker that
    #: failed to cancel cooperatively is hard-killed.
    cancel_grace: float = DEFAULT_CANCEL_GRACE
    #: Seconds a draining supervisor waits for in-flight jobs before
    #: failing them back to the queue.
    drain_grace: float = DEFAULT_DRAIN_GRACE
    #: Total cores split between cell workers and per-worker kernel
    #: threads (``REPRO_CORES_BUDGET``); 0 = budgeting off.
    cores_budget: int = DEFAULT_CORES_BUDGET
    #: Kernel threads each worker fans shard tasks over
    #: (``REPRO_KERNEL_THREADS``); 1 = the sequential shard loop.
    kernel_threads: int = DEFAULT_KERNEL_THREADS

    @property
    def mem_budget_bytes(self) -> int:
        """The worker RSS budget in bytes (0 = governor off)."""
        return int(self.mem_budget_mb * 2**20)

    def __post_init__(self):
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise errors.InvalidValue("heartbeat interval/timeout must be "
                                      "> 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise errors.InvalidValue(
                "heartbeat timeout must exceed the heartbeat interval "
                f"(got timeout={self.heartbeat_timeout}, "
                f"interval={self.heartbeat_interval})")
        if self.cell_deadline <= 0:
            raise errors.InvalidValue("cell deadline must be > 0")
        if self.max_crashes < 1:
            raise errors.InvalidValue(
                f"max crashes must be >= 1; got {self.max_crashes}")
        if self.mem_budget_mb < 0:
            raise errors.InvalidValue(
                "worker memory budget must be >= 0 (0 = off); got "
                f"{self.mem_budget_mb}")
        if self.cancel_grace <= 0 or self.drain_grace <= 0:
            raise errors.InvalidValue("cancel/drain grace must be > 0")
        if self.cores_budget < 0:
            raise errors.InvalidValue(
                "cores budget must be >= 0 (0 = off); got "
                f"{self.cores_budget}")
        if self.kernel_threads < 1:
            raise errors.InvalidValue(
                f"kernel threads must be >= 1; got {self.kernel_threads}")

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "ServiceConfig":
        """Read and validate every ``REPRO_SERVICE_*``-family knob.

        Raises :class:`repro.errors.InvalidValue` on any malformed value —
        called by the CLIs before the first worker spawns.
        """
        env = os.environ if environ is None else environ
        force_raw = env.get("REPRO_BREAKER_FORCE_OPEN", "").strip()
        force = tuple(c.strip() for c in force_raw.split(",") if c.strip())
        if force:
            from repro.engine.registry import get_system

            for code in force:
                get_system(code)  # raises with did-you-mean when unknown
        return cls(
            heartbeat_interval=_positive_float(
                env, "REPRO_SERVICE_HEARTBEAT", DEFAULT_HEARTBEAT_INTERVAL),
            heartbeat_timeout=_positive_float(
                env, "REPRO_SERVICE_HEARTBEAT_TIMEOUT",
                DEFAULT_HEARTBEAT_TIMEOUT),
            cell_deadline=_positive_float(
                env, "REPRO_CELL_DEADLINE", DEFAULT_CELL_DEADLINE),
            max_crashes=_nonnegative_int(
                env, "REPRO_CELL_MAX_CRASHES", DEFAULT_MAX_CRASHES),
            breaker_threshold=_nonnegative_int(
                env, "REPRO_BREAKER_THRESHOLD", DEFAULT_BREAKER_THRESHOLD),
            breaker_cooldown=_nonnegative_int(
                env, "REPRO_BREAKER_COOLDOWN", DEFAULT_BREAKER_COOLDOWN),
            breaker_force_open=force,
            mem_budget_mb=_nonnegative_float(
                env, "REPRO_WORKER_MEM_BUDGET",
                DEFAULT_WORKER_MEM_BUDGET_MB),
            cancel_grace=_positive_float(
                env, "REPRO_CANCEL_GRACE", DEFAULT_CANCEL_GRACE),
            drain_grace=_positive_float(
                env, "REPRO_DRAIN_GRACE", DEFAULT_DRAIN_GRACE),
            cores_budget=_nonnegative_int(
                env, "REPRO_CORES_BUDGET", DEFAULT_CORES_BUDGET),
            kernel_threads=kernel_threads_from_env(env),
        )


@dataclass(frozen=True)
class QueueConfig:
    """Validated durable-queue policy (attempts, backoff, leases, admission).

    Governs :class:`repro.service.queue.JobQueue`; build one with
    :meth:`from_env` (the CLIs do) or directly in tests.
    """

    #: Supervisor-level attempts (leases) per job before dead-letter.
    max_attempts: int = DEFAULT_JOB_MAX_ATTEMPTS
    #: First-retry backoff in seconds; doubles per attempt.
    backoff_base: float = DEFAULT_JOB_BACKOFF
    #: Ceiling on the exponential backoff, in seconds.
    backoff_cap: float = DEFAULT_JOB_BACKOFF_CAP
    #: Seconds a breaker-deferred job waits before redispatch.
    defer_seconds: float = DEFAULT_JOB_DEFER
    #: Seconds a lease lasts without renewal before it expires and the
    #: job is requeued.
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    #: Per-tenant cap on open (queued + leased) jobs; 0 = unlimited.
    tenant_max_active: int = DEFAULT_TENANT_MAX_ACTIVE
    #: Default wall-clock budget (milliseconds) stamped on submissions
    #: that do not pass ``deadline_ms`` explicitly; 0 = no deadline.
    job_deadline_ms: float = DEFAULT_JOB_DEADLINE_MS
    #: Open-job count (queued + leased) above which the API sheds new
    #: submissions with 503 + Retry-After; 0 = shedding off.
    high_water: int = DEFAULT_QUEUE_HIGH_WATER
    #: Seconds the oldest dispatchable job may wait before the API sheds
    #: on lease latency; 0 = latency watermark off.
    max_wait: float = DEFAULT_QUEUE_MAX_WAIT

    def __post_init__(self):
        if self.max_attempts < 1:
            raise errors.InvalidValue(
                f"job max attempts must be >= 1; got {self.max_attempts}")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise errors.InvalidValue("backoff base/cap must be > 0")
        if self.backoff_cap < self.backoff_base:
            raise errors.InvalidValue(
                "backoff cap must be >= the base "
                f"(got cap={self.backoff_cap}, base={self.backoff_base})")
        if self.defer_seconds <= 0 or self.lease_seconds <= 0:
            raise errors.InvalidValue("defer/lease seconds must be > 0")
        if self.tenant_max_active < 0:
            raise errors.InvalidValue(
                "tenant max active must be >= 0 (0 = unlimited); got "
                f"{self.tenant_max_active}")
        if self.job_deadline_ms < 0:
            raise errors.InvalidValue(
                "job deadline must be >= 0 ms (0 = no deadline); got "
                f"{self.job_deadline_ms}")
        if self.high_water < 0 or self.max_wait < 0:
            raise errors.InvalidValue(
                "queue high-water/max-wait must be >= 0 (0 = off)")

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "QueueConfig":
        """Read and validate every ``REPRO_JOB_*``/``REPRO_LEASE_*`` knob."""
        env = os.environ if environ is None else environ
        return cls(
            max_attempts=_nonnegative_int(
                env, "REPRO_JOB_MAX_ATTEMPTS", DEFAULT_JOB_MAX_ATTEMPTS),
            backoff_base=_positive_float(
                env, "REPRO_JOB_BACKOFF", DEFAULT_JOB_BACKOFF),
            backoff_cap=_positive_float(
                env, "REPRO_JOB_BACKOFF_CAP", DEFAULT_JOB_BACKOFF_CAP),
            defer_seconds=_positive_float(
                env, "REPRO_JOB_DEFER", DEFAULT_JOB_DEFER),
            lease_seconds=_positive_float(
                env, "REPRO_LEASE_SECONDS", DEFAULT_LEASE_SECONDS),
            tenant_max_active=_nonnegative_int(
                env, "REPRO_TENANT_MAX_ACTIVE", DEFAULT_TENANT_MAX_ACTIVE),
            job_deadline_ms=_nonnegative_float(
                env, "REPRO_JOB_DEADLINE", DEFAULT_JOB_DEADLINE_MS),
            high_water=_nonnegative_int(
                env, "REPRO_QUEUE_HIGH_WATER", DEFAULT_QUEUE_HIGH_WATER),
            max_wait=_nonnegative_float(
                env, "REPRO_QUEUE_MAX_WAIT", DEFAULT_QUEUE_MAX_WAIT),
        )
