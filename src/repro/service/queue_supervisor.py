"""Drain the durable job queue through the supervised worker pool.

:class:`QueueSupervisor` is the second work source for
:class:`repro.service.supervisor.WorkerPool` (the first being the fixed
study grid): instead of a task list it owns a
:class:`repro.service.queue.JobQueue` and keeps leasing ready jobs until
none remain open.  The robustness contract, layer by layer:

* **Worker dies / hangs** — the pool reaps it (pipe EOF, heartbeat
  silence, blown deadline), and the job's lease is *failed back* to the
  queue: requeued with exponential backoff, or dead-lettered once
  ``max_attempts`` leases have been burned.  The per-cell quarantine the
  grid supervisor applies (``PoisonedCell``) is subsumed by the queue's
  attempt budget.
* **Supervisor dies** — leases stop being renewed.  A restarted drain
  calls :meth:`~repro.service.queue.JobQueue.requeue_orphans` (it owns no
  workers, so every lease in the database is an orphan) and takes over;
  a concurrent queue *reader* instead relies on lease expiry.  Either
  way the lease's attempt count fences the dead supervisor's workers:
  their late results no longer match and cannot commit.
* **Exactly-once commit** — a result lands in the queue via
  :meth:`~repro.service.queue.JobQueue.complete` exactly once (state +
  owner + attempts guard); when the drain mirrors results into the
  experiment layer (``mirror_jobs``), the mirror goes through an
  :class:`~repro.core.checkpoint.OrderedCommitter` in submission order,
  so the journal stays an in-order prefix and ``cells.json`` is
  byte-identical to a sequential clean run — the queue commit happens
  *first*, and a crash between the two replays the stored result blob
  into the journal on restart (offers are idempotent).
* **Admission control** — every lease decision consults the per-system
  circuit breakers via :meth:`~repro.service.breaker.BreakerBoard.admit`:
  an open breaker reroutes the job to a capability-compatible fallback
  (result re-keyed to the asked system with a ``degraded`` flag) or, with
  no healthy fallback, *defers* the job — pushes its ``not_before`` out
  and moves on, never dropping it.  Breaker cooldowns are counted in
  admission decisions, so a deferred queue always earns a half-open
  probe and cannot livelock.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.core import checkpoint, experiments
from repro.core.experiments import ERR, CellResult
from repro.service.breaker import BreakerBoard
from repro.service.config import ServiceConfig
from repro.service.queue import DEAD, Job, JobQueue
from repro.service.supervisor import WorkerPool

#: Event-loop ticks between per-job "heartbeat" progress events (with the
#: default 0.25 s heartbeat interval: one event per in-flight job per
#: ~10 s — enough for a progress stream, cheap enough for SQLite).
HEARTBEAT_EVENT_TICKS = 40


class QueueSupervisor(WorkerPool):
    """Lease-execute-commit loop over a :class:`JobQueue`.

    ``mirror_jobs`` (a list of job ids, in the order their cells should
    commit) additionally mirrors those jobs' results into the experiment
    memo/journal through an :class:`OrderedCommitter` — the mode
    ``run_full_study.py --queue`` uses so a queue-driven study still
    renders tables and writes a canonical ``cells.json``.  ``owner``
    names this supervisor on its leases; it defaults to the pid and only
    needs overriding in tests.
    """

    def __init__(self, queue: JobQueue, workers: int,
                 config: Optional[ServiceConfig] = None,
                 mirror_jobs: Optional[List[int]] = None,
                 journal=None, owner: Optional[str] = None):
        super().__init__(workers, config)
        self.queue = queue
        self.owner = owner if owner is not None else f"pid:{os.getpid()}"
        self.stats.update({
            "jobs": 0, "reclaimed": 0, "completed": 0, "requeued": 0,
            "deferred": 0, "rerouted": 0, "dead": 0, "stale": 0,
        })
        #: job_id -> (leased Job snapshot, system it runs on, degraded).
        self._inflight: Dict[int, Tuple[Job, str, Optional[dict]]] = {}
        self._breakers: Optional[BreakerBoard] = None
        self._mirror_index: Dict[int, int] = {
            job_id: index
            for index, job_id in enumerate(mirror_jobs or [])}
        self._committer: Optional[checkpoint.OrderedCommitter] = None
        self._journal = journal
        self._ticks = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, int]:
        """Run until no job is queued or leased; returns queue counts.

        Safe to call against a queue a dead supervisor left behind (its
        leases are reclaimed first) and safe to re-run after this process
        is itself killed — that is the whole point.
        """
        from repro.engine.registry import system_codes

        self._breakers = BreakerBoard(
            system_codes(), self.config.breaker_threshold,
            self.config.breaker_cooldown,
            forced_open=self.config.breaker_force_open)
        reclaimed = self.queue.requeue_orphans()
        self.stats["reclaimed"] = len(reclaimed)

        if self._mirror_index:
            journal = self._journal if self._journal is not None else \
                experiments.get_journal()
            self._committer = checkpoint.OrderedCommitter(
                len(self._mirror_index), journal=journal)
            self._seed_mirror()

        open_count = sum(
            1 for job in self.queue.jobs(limit=1_000_000)
            if job.state in ("queued", "leased"))
        self.stats["jobs"] = open_count
        if open_count:
            self._run_pool(min(self.pool_size, open_count))
        return self.queue.counts()

    def describe(self) -> str:
        """One-line drain summary for the CLIs' stderr diagnostics."""
        s = self.stats
        parts = [f"{s['jobs']} jobs", f"{self.pool_size} workers"]
        for key in ("reclaimed", "prewarmed", "crashes", "requeued",
                    "deferred", "rerouted", "dead", "stale"):
            if s[key]:
                parts.append(f"{s[key]} {key}")
        return "queue: " + ", ".join(parts)

    # ------------------------------------------------------------------
    # Result mirroring (the OrderedCommitter discipline)
    # ------------------------------------------------------------------
    def _seed_mirror(self):
        """Settle already-terminal mirrored jobs before the loop starts.

        A restarted drain finds jobs a predecessor committed to the queue
        but maybe not to the journal (the crash window between the two
        commits): replaying the stored result blob here is idempotent —
        the committer skips cells the resumed journal already seeded, and
        a re-offer of the same row is byte-identical by construction.
        """
        memo = experiments.all_results()
        for job_id, index in self._mirror_index.items():
            job = self.queue.get(job_id)
            if job is None or job.state not in ("done", "err", "dead"):
                continue
            if job.result is not None:
                result = experiments.cell_from_row(job.result)
                if memo.get(result.key) is not None:
                    self._committer.skip(index)
                else:
                    self._committer.offer(index, result)
            else:  # dead-lettered without ever producing a row
                self._committer.offer(index, _dead_letter_cell(job))

    def _mirror(self, job_id: int, result: CellResult):
        if self._committer is None:
            return
        index = self._mirror_index.get(job_id)
        if index is not None:
            self._committer.offer(index, result)

    # ------------------------------------------------------------------
    # Work-source hooks
    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return not self.queue.has_open_jobs()

    def _work_remains(self) -> bool:
        return self.queue.has_open_jobs()

    def _has_dispatchable(self) -> bool:
        return self.queue.peek_ready() is not None

    def _graphs_to_warm(self):
        return self.queue.open_graphs()

    def _next_assignment(self, worker_id: int) -> Optional[dict]:
        while True:
            job = self.queue.peek_ready()
            if job is None:
                return None
            decision, fallback = self._breakers.admit(job.system)
            if decision == "defer":
                # Open breaker, no healthy fallback: push the job's
                # dispatch window out and look at the next one.  The
                # breaker cooldown is charged per admit() call, so the
                # deferral loop itself earns the half-open probe.
                self.queue.defer(
                    job.id,
                    note=f"circuit breaker open for {job.system}")
                self.stats["deferred"] += 1
                continue
            leased = self.queue.lease(job.id, self.owner)
            if leased is None:
                continue  # raced with another writer; pick again
            run_system = leased.system
            degraded = None
            if decision == "reroute":
                run_system = fallback
                degraded = {
                    "via": fallback,
                    "reason": f"circuit breaker open for {leased.system}"}
                self.stats["rerouted"] += 1
                self.queue.record(leased.id, "rerouted", degraded)
            self._inflight[leased.id] = (leased, run_system, degraded)
            return {"id": leased.id, "system": run_system,
                    "app": leased.app, "graph": leased.graph,
                    "sweep": bool(leased.params.get("sweep")),
                    "attempt": leased.attempts}

    def _task_done(self, job_id: int, row: dict):
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return
        job, run_system, degraded = entry
        if degraded is not None:
            row = dict(row)
            row["system"] = job.system  # keep keyed as the tenant asked
            row["degraded"] = dict(degraded)
        self._breakers.record(run_system, ok=row.get("status") != ERR)
        if self.queue.complete(job_id, self.owner, job.attempts, row):
            self.stats["completed"] += 1
            self._mirror(job_id, experiments.cell_from_row(row))
        else:
            # Lease fencing: the queue already settled this job (another
            # supervisor took it over after our lease expired) — this
            # result must not commit a second time.
            self.stats["stale"] += 1

    def _task_lost(self, job_id: int, reason: str):
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return  # a prebuild (negative id); the respawn re-warms
        job, run_system, _degraded = entry
        self._breakers.record(run_system, ok=False)
        state = self.queue.fail(job_id, self.owner, job.attempts, reason)
        if state == DEAD:
            self.stats["dead"] += 1
            dead = self.queue.get(job_id)
            if dead is not None:
                self._mirror(job_id, _dead_letter_cell(dead))
        else:
            self.stats["requeued"] += 1

    def _tick(self):
        self._ticks += 1
        emit = self._ticks % HEARTBEAT_EVENT_TICKS == 0
        for job_id in list(self._inflight):
            self.queue.renew(job_id, self.owner)
            if emit:
                self.queue.record(job_id, "heartbeat",
                                  {"owner": self.owner})


def _dead_letter_cell(job: Job) -> CellResult:
    """The mirrored record for a job whose attempt budget ran out."""
    return CellResult(
        system=job.system, app=job.app, graph=job.graph,
        status=ERR, seconds=None, mrss_gb=0.0, counters={}, answer=None,
        thread_sweep={}, attempts=job.attempts,
        error={"type": "DeadLetter",
               "message": f"job {job.id} dead-lettered after "
                          f"{job.attempts} attempt(s); last failure: "
                          f"{job.note or 'unknown'}",
               "traceback": ""})
