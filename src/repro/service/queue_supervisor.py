"""Drain the durable job queue through the supervised worker pool.

:class:`QueueSupervisor` is the second work source for
:class:`repro.service.supervisor.WorkerPool` (the first being the fixed
study grid): instead of a task list it owns a
:class:`repro.service.queue.JobQueue` and keeps leasing ready jobs until
none remain open.  The robustness contract, layer by layer:

* **Worker dies / hangs** — the pool reaps it (pipe EOF, heartbeat
  silence, blown deadline), and the job's lease is *failed back* to the
  queue: requeued with exponential backoff, or dead-lettered once
  ``max_attempts`` leases have been burned.  The per-cell quarantine the
  grid supervisor applies (``PoisonedCell``) is subsumed by the queue's
  attempt budget.
* **Supervisor dies** — leases stop being renewed.  A restarted drain
  calls :meth:`~repro.service.queue.JobQueue.requeue_orphans` (it owns no
  workers, so every lease in the database is an orphan) and takes over;
  a concurrent queue *reader* instead relies on lease expiry.  Either
  way the lease's attempt count fences the dead supervisor's workers:
  their late results no longer match and cannot commit.
* **Exactly-once commit** — a result lands in the queue via
  :meth:`~repro.service.queue.JobQueue.complete` exactly once (state +
  owner + attempts guard); when the drain mirrors results into the
  experiment layer (``mirror_jobs``), the mirror goes through an
  :class:`~repro.core.checkpoint.OrderedCommitter` in submission order,
  so the journal stays an in-order prefix and ``cells.json`` is
  byte-identical to a sequential clean run — the queue commit happens
  *first*, and a crash between the two replays the stored result blob
  into the journal on restart (offers are idempotent).
* **Admission control** — every lease decision consults the per-system
  circuit breakers via :meth:`~repro.service.breaker.BreakerBoard.admit`:
  an open breaker reroutes the job to a capability-compatible fallback
  (result re-keyed to the asked system with a ``degraded`` flag) or, with
  no healthy fallback, *defers* the job — pushes its ``not_before`` out
  and moves on, never dropping it.  Breaker cooldowns are counted in
  admission decisions, so a deferred queue always earns a half-open
  probe and cannot livelock.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.core import checkpoint, experiments
from repro.core.experiments import CANCELLED, ERR, OOM, CellResult
from repro.service import governor
from repro.service.breaker import BreakerBoard
from repro.service.config import ServiceConfig
from repro.service.queue import DEAD, Job, JobQueue
from repro.service.supervisor import WorkerPool

#: Event-loop ticks between per-job "heartbeat" progress events (with the
#: default 0.25 s heartbeat interval: one event per in-flight job per
#: ~10 s — enough for a progress stream, cheap enough for SQLite).
HEARTBEAT_EVENT_TICKS = 40

#: Event-loop ticks between queue_meta status snapshots (worker RSS,
#: breaker states) — the ``repro-serve status --json`` feed.
STATUS_PUBLISH_TICKS = 8

#: Times a job may be deferred for "does not fit any worker's memory
#: budget" before it is leased and failed toward dead-letter instead —
#: an over-budget job must not livelock the drain.
MAX_MEM_DEFERRALS = 3


class QueueSupervisor(WorkerPool):
    """Lease-execute-commit loop over a :class:`JobQueue`.

    ``mirror_jobs`` (a list of job ids, in the order their cells should
    commit) additionally mirrors those jobs' results into the experiment
    memo/journal through an :class:`OrderedCommitter` — the mode
    ``run_full_study.py --queue`` uses so a queue-driven study still
    renders tables and writes a canonical ``cells.json``.  ``owner``
    names this supervisor on its leases; it defaults to the pid and only
    needs overriding in tests.
    """

    def __init__(self, queue: JobQueue, workers: int,
                 config: Optional[ServiceConfig] = None,
                 mirror_jobs: Optional[List[int]] = None,
                 journal=None, owner: Optional[str] = None):
        super().__init__(workers, config)
        self.queue = queue
        self.owner = owner if owner is not None else f"pid:{os.getpid()}"
        self.stats.update({
            "jobs": 0, "reclaimed": 0, "completed": 0, "requeued": 0,
            "deferred": 0, "rerouted": 0, "dead": 0, "stale": 0,
            "cancelled": 0, "oom_retried": 0, "oom_quarantined": 0,
            "mem_deferred": 0, "failed_back": 0,
        })
        #: job_id -> (leased Job snapshot, system it runs on, degraded).
        self._inflight: Dict[int, Tuple[Job, str, Optional[dict]]] = {}
        self._breakers: Optional[BreakerBoard] = None
        #: job_id -> shard geometry for its post-OOM sharded retry.
        self._shard_retry: Dict[int, int] = {}
        #: job_id -> OOM kills so far (one buys the sharded retry).
        self._oom_kills: Dict[int, int] = {}
        #: job_id -> times deferred for not fitting the memory budget.
        self._mem_deferrals: Dict[int, int] = {}
        #: graph -> artifact manifest (or None), memoized per drain.
        self._manifests: Dict[str, Optional[dict]] = {}
        self._mirror_index: Dict[int, int] = {
            job_id: index
            for index, job_id in enumerate(mirror_jobs or [])}
        self._committer: Optional[checkpoint.OrderedCommitter] = None
        self._journal = journal
        self._ticks = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, int]:
        """Run until no job is queued or leased; returns queue counts.

        Safe to call against a queue a dead supervisor left behind (its
        leases are reclaimed first) and safe to re-run after this process
        is itself killed — that is the whole point.
        """
        from repro.engine.registry import system_codes

        self._breakers = BreakerBoard(
            system_codes(), self.config.breaker_threshold,
            self.config.breaker_cooldown,
            forced_open=self.config.breaker_force_open)
        reclaimed = self.queue.requeue_orphans()
        self.stats["reclaimed"] = len(reclaimed)

        if self._mirror_index:
            journal = self._journal if self._journal is not None else \
                experiments.get_journal()
            self._committer = checkpoint.OrderedCommitter(
                len(self._mirror_index), journal=journal)
            self._seed_mirror()

        open_count = sum(
            1 for job in self.queue.jobs(limit=1_000_000)
            if job.state in ("queued", "leased"))
        self.stats["jobs"] = open_count
        if open_count:
            self._run_pool(min(self.pool_size, open_count))
        self._publish_status()
        return self.queue.counts()

    def describe(self) -> str:
        """One-line drain summary for the CLIs' stderr diagnostics."""
        s = self.stats
        parts = [f"{s['jobs']} jobs", f"{self.pool_size} workers"]
        for key in ("reclaimed", "prewarmed", "crashes", "requeued",
                    "deferred", "rerouted", "dead", "stale", "cancelled",
                    "mem_kills", "oom_retried", "oom_quarantined",
                    "mem_deferred", "failed_back"):
            if s[key]:
                parts.append(f"{s[key]} {key}")
        return "queue: " + ", ".join(parts)

    # ------------------------------------------------------------------
    # Result mirroring (the OrderedCommitter discipline)
    # ------------------------------------------------------------------
    def _seed_mirror(self):
        """Settle already-terminal mirrored jobs before the loop starts.

        A restarted drain finds jobs a predecessor committed to the queue
        but maybe not to the journal (the crash window between the two
        commits): replaying the stored result blob here is idempotent —
        the committer skips cells the resumed journal already seeded, and
        a re-offer of the same row is byte-identical by construction.
        """
        memo = experiments.all_results()
        for job_id, index in self._mirror_index.items():
            job = self.queue.get(job_id)
            if job is None or job.state not in ("done", "err", "dead"):
                continue
            if job.result is not None:
                result = experiments.cell_from_row(job.result)
                if memo.get(result.key) is not None:
                    self._committer.skip(index)
                else:
                    self._committer.offer(index, result)
            else:  # dead-lettered without ever producing a row
                self._committer.offer(index, _dead_letter_cell(job))

    def _mirror(self, job_id: int, result: CellResult):
        if self._committer is None:
            return
        index = self._mirror_index.get(job_id)
        if index is not None:
            self._committer.offer(index, result)

    # ------------------------------------------------------------------
    # Work-source hooks
    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return not self.queue.has_open_jobs()

    def _work_remains(self) -> bool:
        return self.queue.has_open_jobs()

    def _has_dispatchable(self) -> bool:
        return self.queue.peek_ready() is not None

    def _graphs_to_warm(self):
        return self.queue.open_graphs()

    def _next_assignment(self, worker_id: int) -> Optional[dict]:
        while True:
            job = self.queue.peek_ready()
            if job is None:
                return None
            now = self.queue.clock()
            if job.deadline is not None and job.deadline <= now:
                # Budget spent while queued: settle as CANCELLED without
                # burning a worker on a job whose caller gave up on it.
                self._cancel_before_dispatch(job)
                continue
            decision, fallback = self._breakers.admit(job.system)
            if decision == "defer":
                # Open breaker, no healthy fallback: push the job's
                # dispatch window out and look at the next one.  The
                # breaker cooldown is charged per admit() call, so the
                # deferral loop itself earns the half-open probe.
                self.queue.defer(
                    job.id,
                    note=f"circuit breaker open for {job.system}")
                self.stats["deferred"] += 1
                continue
            verdict, fit_shard_rows = self._fit(job)
            if verdict == "no":
                self._defer_for_memory(job)
                continue
            leased = self.queue.lease(job.id, self.owner)
            if leased is None:
                continue  # raced with another writer; pick again
            run_system = leased.system
            degraded = None
            if decision == "reroute":
                run_system = fallback
                degraded = {
                    "via": fallback,
                    "reason": f"circuit breaker open for {leased.system}"}
                self.stats["rerouted"] += 1
                self.queue.record(leased.id, "rerouted", degraded)
            self._inflight[leased.id] = (leased, run_system, degraded)
            payload = {"id": leased.id, "system": run_system,
                       "app": leased.app, "graph": leased.graph,
                       "sweep": bool(leased.params.get("sweep")),
                       "attempt": leased.attempts}
            if leased.deadline is not None:
                # The cell's budget is the job's *remaining* budget,
                # still capped by the static per-cell deadline.
                payload["deadline_seconds"] = min(
                    self.config.cell_deadline, leased.deadline - now)
            if leased.id in self._shard_retry:
                payload["shard_rows"] = self._shard_retry[leased.id]
            elif fit_shard_rows is not None:
                payload["shard_rows"] = fit_shard_rows
            if leased.params.get("faults"):
                payload["faults"] = leased.params["faults"]
            return payload

    def _cancel_before_dispatch(self, job: Job) -> None:
        """Settle an already-over-deadline queued job as ``CANCELLED``.

        Still goes through lease -> complete so the commit is fenced like
        any other: a raced writer that leased it first simply wins.
        """
        leased = self.queue.lease(job.id, self.owner)
        if leased is None:
            return
        cell = _cancelled_cell(leased, "deadline expired before dispatch")
        row = experiments.cell_to_row(cell)
        if self.queue.complete(job.id, self.owner, leased.attempts, row):
            self.stats["cancelled"] += 1
            self._mirror(job.id, cell)

    def _fit(self, job: Job):
        """Memory-governor admission: (verdict, shard_rows_for_dispatch).

        With a budget configured and artifact metadata available, a cell
        estimated over budget monolithically but fitting shard-wise is
        dispatched sharded up front (``shard_rows`` travels in the
        payload) instead of waiting to OOM; one estimated over budget
        even sharded reports ``"no"``.
        """
        budget = self.config.mem_budget_bytes
        if not budget:
            return "fits", None
        manifest = self._manifest(job.graph)
        verdict = governor.fit_verdict(manifest, budget)
        if verdict == "sharded":
            return verdict, int(manifest["shard_rows"])
        return verdict, None

    def _manifest(self, graph: str) -> Optional[dict]:
        """The graph's artifact manifest (metadata only), memoized; None
        when the store is off or has not published this graph."""
        if graph not in self._manifests:
            from repro.graphs import artifacts

            manifest = None
            store = artifacts.store_from_env()
            if store is not None:
                for variant in ("dir", "sym"):
                    try:
                        manifest = store.read_manifest(graph, variant)
                        break
                    except artifacts.ArtifactError:
                        continue
            self._manifests[graph] = manifest
        return self._manifests[graph]

    def _defer_for_memory(self, job: Job) -> bool:
        """Defer an over-budget job, or fail it toward dead-letter after
        :data:`MAX_MEM_DEFERRALS` — it must not livelock the drain.
        Returns True when the job was deferred (caller keeps scanning)."""
        deferrals = self._mem_deferrals.get(job.id, 0) + 1
        self._mem_deferrals[job.id] = deferrals
        if deferrals <= MAX_MEM_DEFERRALS:
            self.queue.defer(job.id, note="exceeds worker memory budget")
            self.stats["mem_deferred"] += 1
            return True
        leased = self.queue.lease(job.id, self.owner)
        if leased is not None:
            state = self.queue.fail(job.id, self.owner, leased.attempts,
                                    "exceeds worker memory budget")
            if state == DEAD:
                self.stats["dead"] += 1
                dead = self.queue.get(job.id)
                if dead is not None:
                    self._mirror(job.id, _dead_letter_cell(dead))
        return False

    def _task_done(self, job_id: int, row: dict):
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return
        job, run_system, degraded = entry
        if degraded is not None:
            row = dict(row)
            row["system"] = job.system  # keep keyed as the tenant asked
            row["degraded"] = dict(degraded)
        self._breakers.record(run_system, ok=row.get("status") != ERR)
        if self.queue.complete(job_id, self.owner, job.attempts, row):
            self.stats["completed"] += 1
            self._mirror(job_id, experiments.cell_from_row(row))
        else:
            # Lease fencing: the queue already settled this job (another
            # supervisor took it over after our lease expired) — this
            # result must not commit a second time.
            self.stats["stale"] += 1

    def _task_lost(self, job_id: int, reason: str, oom: bool = False):
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return  # a prebuild (negative id); the respawn re-warms
        job, run_system, _degraded = entry
        self._breakers.record(run_system, ok=False)
        if oom:
            kills = self._oom_kills.get(job_id, 0) + 1
            self._oom_kills[job_id] = kills
            if kills == 1:
                # First OOM kill buys one sharded retry: the requeued
                # job redispatches with an O(shard) working set.
                from repro.sparse.blocked import shard_rows_from_env

                self._shard_retry[job_id] = shard_rows_from_env()
                state = self.queue.fail(job_id, self.owner, job.attempts,
                                        reason)
                if state == DEAD:  # attempt budget ran out first
                    self.stats["dead"] += 1
                    dead = self.queue.get(job_id)
                    if dead is not None:
                        self._mirror(job_id, _dead_letter_cell(dead))
                else:
                    self.stats["oom_retried"] += 1
                return
            # Sharded retry OOMed too: quarantine as an ``OOM`` cell —
            # a *committed result* (the paper's own status for work that
            # cannot fit), not a dead-letter.
            cell = _worker_oom_cell(job, kills, reason)
            row = experiments.cell_to_row(cell)
            if self.queue.complete(job_id, self.owner, job.attempts, row):
                self.stats["oom_quarantined"] += 1
                self._mirror(job_id, cell)
            else:
                self.stats["stale"] += 1
            return
        state = self.queue.fail(job_id, self.owner, job.attempts, reason)
        if state == DEAD:
            self.stats["dead"] += 1
            dead = self.queue.get(job_id)
            if dead is not None:
                self._mirror(job_id, _dead_letter_cell(dead))
        else:
            self.stats["requeued"] += 1

    def _tick(self):
        self._ticks += 1
        emit = self._ticks % HEARTBEAT_EVENT_TICKS == 0
        for job_id in list(self._inflight):
            self.queue.renew(job_id, self.owner)
            if emit:
                self.queue.record(job_id, "heartbeat",
                                  {"owner": self.owner})
        if self._ticks % STATUS_PUBLISH_TICKS == 0:
            self._publish_status()

    def _publish_status(self):
        """Snapshot worker RSS/state and breaker states into queue_meta —
        the machine-readable feed ``repro-serve status --json`` reports
        from any process holding the queue path."""
        self.queue.set_meta("workers", [
            {"worker_id": h.worker_id, "ready": h.ready,
             "rss": h.health.rss, "task": h.health.task_id}
            for h in self._workers.values()])
        if self._breakers is not None:
            self.queue.set_meta("breakers", self._breakers.states())
        self.queue.set_meta("cores", self.cores_split)
        self.queue.set_meta("supervisor", {
            "owner": self.owner, "draining": self._draining,
            "stats": {k: v for k, v in self.stats.items() if v}})

    def _drain_timeout(self):
        """Drain grace expired: fail every in-flight job back to the
        queue (requeue with backoff, or dead-letter) so no lease is left
        dangling when the process exits."""
        for job_id in list(self._inflight):
            job, _run_system, _degraded = self._inflight.pop(job_id)
            state = self.queue.fail(job_id, self.owner, job.attempts,
                                    "drain grace expired")
            self.stats["failed_back"] += 1
            if state == DEAD:
                self.stats["dead"] += 1
                dead = self.queue.get(job_id)
                if dead is not None:
                    self._mirror(job_id, _dead_letter_cell(dead))


def _cancelled_cell(job: Job, reason: str) -> CellResult:
    """The committed record for a job cancelled before dispatch (its
    deadline expired while it sat queued) — no partial trace exists."""
    return CellResult(
        system=job.system, app=job.app, graph=job.graph,
        status=CANCELLED, seconds=None, mrss_gb=0.0, counters={},
        answer=None, thread_sweep={}, attempts=job.attempts,
        error={"type": "Cancelled", "message": reason, "traceback": ""})


def _worker_oom_cell(job: Job, kills: int, reason: str) -> CellResult:
    """The committed record for a job whose workers were OOM-killed even
    after the sharded retry."""
    return CellResult(
        system=job.system, app=job.app, graph=job.graph,
        status=OOM, seconds=None, mrss_gb=0.0, counters={}, answer=None,
        thread_sweep={}, attempts=kills,
        error={"type": "WorkerOOM",
               "message": f"worker OOM-killed {kills} time(s), including "
                          f"one sharded retry; last failure: {reason}",
               "traceback": ""})


def _dead_letter_cell(job: Job) -> CellResult:
    """The mirrored record for a job whose attempt budget ran out."""
    return CellResult(
        system=job.system, app=job.app, graph=job.graph,
        status=ERR, seconds=None, mrss_gb=0.0, counters={}, answer=None,
        thread_sweep={}, attempts=job.attempts,
        error={"type": "DeadLetter",
               "message": f"job {job.id} dead-lettered after "
                          f"{job.attempts} attempt(s); last failure: "
                          f"{job.note or 'unknown'}",
               "traceback": ""})
