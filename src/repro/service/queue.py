"""Durable SQLite-WAL job queue: crash-safe leases, retry/backoff, tenants.

The supervised worker pool (:mod:`repro.service.supervisor`) made cell
execution survive *worker* deaths, but its task list lived in supervisor
memory: a supervisor crash lost every queued cell that had not reached the
journal, and there was no way to submit, deduplicate, or retry work across
process lifetimes.  :class:`JobQueue` moves the task list into a SQLite
database so the queue itself is the write-ahead log:

* **Jobs** are ``graph x app x system x params`` payloads with a tenant,
  a priority, and an optional idempotency key — resubmitting the same key
  returns the existing job (whatever its state) instead of duplicating
  work across supervisor restarts.
* **State machine** ``queued -> leased -> done | err | dead``.  ``done``
  holds a committed result row (cell status ``ok``/``TO``/``OOM``);
  ``err`` holds a result row whose cell ended ``ERR`` (the harness
  captured the exception); ``dead`` is the dead-letter state for a job
  whose *workers* kept dying — after ``max_attempts`` leases it stops
  being retried but remains visible (``repro-serve status``), never
  silently dropped.
* **Crash-safe leases.**  A dispatched job carries a lease (owner +
  deadline).  The supervisor renews leases while its worker heartbeats;
  a supervisor or worker killed mid-job simply stops renewing, the lease
  expires, and :meth:`expire_leases` (or a restarted supervisor's
  :meth:`requeue_orphans` takeover) requeues the job with exponential
  backoff plus deterministic jitter.  The lease's ``attempts`` counter
  doubles as a fencing token: a result from a worker whose lease was
  already expired and re-issued is rejected by :meth:`complete`, so a
  job's result commits **exactly once** no matter how many times its
  workers or supervisors died.
* **Tenant admission control.**  ``REPRO_TENANT_MAX_ACTIVE`` caps each
  tenant's open (queued + leased) jobs; an over-cap submission raises
  :class:`repro.errors.AdmissionDenied` (HTTP 429 in the front-end)
  instead of letting one tenant starve the pool.
* **Torn-tail durability.**  The database opens with ``journal_mode=WAL``
  and ``synchronous=NORMAL`` — the same discipline the JSONL cell journal
  applies by hand (:mod:`repro.core.checkpoint` tolerates a torn final
  line): a process killed mid-append loses at most the uncommitted tail
  of the WAL, and SQLite's checksummed frames recover the longest valid
  prefix on the next open (drill-tested in ``tests/test_jobqueue.py``).

Progress is observable: every transition appends to a ``job_events``
table (``submitted``/``leased``/``deferred``/``requeued``/``heartbeat``/
``done``/``err``/``dead``), and the supervisor adds throttled heartbeat
events plus an OpEvent-derived counter summary on completion, which the
HTTP API streams via ``GET /jobs/<id>/events?since=N``.
"""

from __future__ import annotations

import json
import sqlite3
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro import errors
from repro.service.config import QueueConfig

#: Job states (the queue-level state machine).
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
ERR = "err"
DEAD = "dead"

STATES = (QUEUED, LEASED, DONE, ERR, DEAD)

#: States with work still owed to the job.
OPEN_STATES = (QUEUED, LEASED)

#: States a job never leaves.
TERMINAL_STATES = (DONE, ERR, DEAD)

#: Version stamp of the jobs schema (rejected when mismatched, like the
#: cell journal's ``schema`` field).  v2 added the ``deadline`` column
#: (absolute wall-clock budget for deadline propagation).
QUEUE_SCHEMA = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    idem_key TEXT UNIQUE,
    tenant TEXT NOT NULL,
    system TEXT NOT NULL,
    app TEXT NOT NULL,
    graph TEXT NOT NULL,
    params TEXT NOT NULL,
    priority INTEGER NOT NULL,
    state TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    max_attempts INTEGER NOT NULL,
    lease_owner TEXT,
    lease_deadline REAL,
    deadline REAL,
    not_before REAL NOT NULL,
    note TEXT,
    result TEXT,
    created REAL NOT NULL,
    updated REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_ready
    ON jobs(state, not_before, priority, id);
CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs(tenant, state);
CREATE TABLE IF NOT EXISTS job_events (
    job_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    ts REAL NOT NULL,
    kind TEXT NOT NULL,
    detail TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


def backoff_seconds(job_id: int, attempt: int, base: float,
                    cap: float) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``base * 2^(attempt-1)`` capped at ``cap``, stretched by a jitter
    factor in ``[1, 1.5)`` drawn from ``crc32(job_id:attempt)`` — jittered
    so requeued jobs do not stampede, deterministic so drills and tests
    replay identically (no wall-clock or RNG state involved).
    """
    delay = min(cap, base * (2.0 ** max(0, attempt - 1)))
    frac = zlib.crc32(f"{job_id}:{attempt}".encode()) / 2.0 ** 32
    return delay * (1.0 + 0.5 * frac)


@dataclass(frozen=True)
class Job:
    """One row of the jobs table, parsed."""

    id: int
    idem_key: Optional[str]
    tenant: str
    system: str
    app: str
    graph: str
    params: Dict
    priority: int
    state: str
    attempts: int
    max_attempts: int
    lease_owner: Optional[str]
    lease_deadline: Optional[float]
    #: Absolute wall-clock instant (queue-clock domain) the job's budget
    #: expires; None = no deadline.
    deadline: Optional[float]
    not_before: float
    note: Optional[str]
    result: Optional[dict]
    created: float
    updated: float

    @property
    def key(self) -> Tuple[str, str, str]:
        """The experiment-cell key this job computes."""
        return (self.system, self.app, self.graph)

    def to_json(self) -> dict:
        """JSON-able public view (result blob elided; fetch it via
        ``result``/``GET /jobs/<id>/result``)."""
        return {
            "id": self.id,
            "idem_key": self.idem_key,
            "tenant": self.tenant,
            "system": self.system,
            "app": self.app,
            "graph": self.graph,
            "params": self.params,
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "lease_owner": self.lease_owner,
            "lease_deadline": self.lease_deadline,
            "deadline": self.deadline,
            "not_before": self.not_before,
            "note": self.note,
            "has_result": self.result is not None,
        }


def _job_from_row(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"], idem_key=row["idem_key"], tenant=row["tenant"],
        system=row["system"], app=row["app"], graph=row["graph"],
        params=json.loads(row["params"]), priority=row["priority"],
        state=row["state"], attempts=row["attempts"],
        max_attempts=row["max_attempts"], lease_owner=row["lease_owner"],
        lease_deadline=row["lease_deadline"], deadline=row["deadline"],
        not_before=row["not_before"],
        note=row["note"],
        result=json.loads(row["result"]) if row["result"] else None,
        created=row["created"], updated=row["updated"])


class JobQueue:
    """One connection to the durable queue (single-writer discipline).

    ``clock`` is injectable for tests; everything time-based (leases,
    backoff, deferral) goes through it.  Multiple processes may hold a
    ``JobQueue`` on the same path (the HTTP front-end submits while a
    drain supervisor executes); SQLite WAL plus a busy timeout arbitrates
    writes.  Only one *supervisor* should drain a queue at a time — a
    second drainer is safe (leases fence commits) but wasteful.
    """

    def __init__(self, path, config: Optional[QueueConfig] = None,
                 clock=time.time):
        self.path = str(path)
        self.config = config if config is not None else \
            QueueConfig.from_env()
        self.clock = clock
        self._conn = sqlite3.connect(self.path, timeout=5.0)
        self._conn.row_factory = sqlite3.Row
        # The torn-tail discipline (see module docstring): WAL keeps
        # readers unblocked and makes a mid-write kill lose at most the
        # unsynced tail; NORMAL syncs at WAL checkpoints, matching the
        # cell journal's per-record fsync durability class without a
        # full fsync per statement.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        self._conn.executescript(_SCHEMA)
        with self._conn:
            row = self._conn.execute(
                "SELECT value FROM queue_meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO queue_meta(key, value) VALUES('schema', ?)",
                    (str(QUEUE_SCHEMA),))
            elif int(row["value"]) != QUEUE_SCHEMA:
                raise errors.InvalidValue(
                    f"unsupported queue schema {row['value']!r} in "
                    f"{self.path}; this build reads schema {QUEUE_SCHEMA}")

    def close(self) -> None:
        """Close the underlying connection (checkpoints the WAL)."""
        self._conn.close()

    def __repr__(self):
        return f"JobQueue({self.path!r})"

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, system: str, app: str, graph: str,
               params: Optional[dict] = None, tenant: str = "default",
               priority: int = 0, idem_key: Optional[str] = None,
               max_attempts: Optional[int] = None,
               deadline_ms: Optional[float] = None) -> Job:
        """Accept one job; returns the (possibly pre-existing) row.

        Validates the payload up front via the engine registry and the
        dataset table (did-you-mean errors, same as the CLIs), enforces
        the per-tenant admission cap, and deduplicates on ``idem_key``:
        resubmitting a key returns the existing job — including one
        already ``done`` — which is what makes a restarted batch submit
        idempotent.

        ``deadline_ms`` is the job's wall-clock budget from *submission*,
        persisted as an absolute instant in the queue-clock domain (so
        the whole deadline path replays under an injected clock); omitted
        it falls back to the ``REPRO_JOB_DEADLINE`` default (0 = none).
        """
        from repro.core.experiments import validate_selection
        from repro.engine.registry import get_application, get_system

        get_system(system)
        get_application(app)
        validate_selection(graphs=[graph])
        if not tenant or not isinstance(tenant, str):
            raise errors.InvalidValue(
                f"tenant must be a non-empty string; got {tenant!r}")
        params = dict(params or {})
        now = self.clock()

        if deadline_ms is None:
            default_ms = self.config.job_deadline_ms
            deadline_ms = default_ms if default_ms > 0 else None
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                raise errors.InvalidValue(
                    "deadline_ms wants a number of milliseconds, got "
                    f"{deadline_ms!r}") from None
            if deadline_ms <= 0:
                raise errors.InvalidValue(
                    f"deadline_ms must be > 0; got {deadline_ms}")
        deadline = now + deadline_ms / 1000.0 \
            if deadline_ms is not None else None

        if idem_key is not None:
            existing = self._conn.execute(
                "SELECT * FROM jobs WHERE idem_key=?", (idem_key,)
            ).fetchone()
            if existing is not None:
                return _job_from_row(existing)

        cap = self.config.tenant_max_active
        if cap:
            active = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE tenant=? AND "
                "state IN (?, ?)", (tenant, QUEUED, LEASED)).fetchone()["n"]
            if active >= cap:
                raise errors.AdmissionDenied(
                    f"tenant {tenant!r} already has {active} open job(s) "
                    f"(cap {cap}, REPRO_TENANT_MAX_ACTIVE); retry after "
                    "some complete")

        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO jobs (idem_key, tenant, system, app, graph, "
                "params, priority, state, attempts, max_attempts, "
                "deadline, not_before, created, updated) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0, ?, ?, 0, ?, ?)",
                (idem_key, tenant, system, app, graph,
                 json.dumps(params, sort_keys=True), int(priority), QUEUED,
                 max_attempts if max_attempts is not None
                 else self.config.max_attempts, deadline, now, now))
            job_id = cursor.lastrowid
            detail = {"tenant": tenant, "system": system, "app": app,
                      "graph": graph, "priority": int(priority)}
            if deadline_ms is not None:
                detail["deadline_ms"] = deadline_ms
            self._record(job_id, "submitted", detail)
        return self.get(job_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, job_id: int) -> Optional[Job]:
        """The job row, or None for an unknown id."""
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id=?", (job_id,)).fetchone()
        return _job_from_row(row) if row is not None else None

    def find(self, idem_key: str) -> Optional[Job]:
        """The job holding ``idem_key``, or None."""
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE idem_key=?", (idem_key,)).fetchone()
        return _job_from_row(row) if row is not None else None

    def peek_ready(self) -> Optional[Job]:
        """The next dispatchable job (no lease taken): highest priority
        first, then submission order; backoff/deferral windows respected."""
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE state=? AND not_before<=? "
            "ORDER BY priority DESC, id ASC LIMIT 1",
            (QUEUED, self.clock())).fetchone()
        return _job_from_row(row) if row is not None else None

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None, limit: int = 200) -> List[Job]:
        """Job rows, newest last, optionally filtered."""
        clauses, args = [], []
        if tenant is not None:
            clauses.append("tenant=?")
            args.append(tenant)
        if state is not None:
            if state not in STATES:
                raise errors.InvalidValue(
                    f"unknown job state {state!r}; known states: {STATES}")
            clauses.append("state=?")
            args.append(state)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        args.append(int(limit))
        rows = self._conn.execute(
            f"SELECT * FROM jobs{where} ORDER BY id ASC LIMIT ?",
            args).fetchall()
        return [_job_from_row(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` plus ``deferred`` (queued jobs waiting out
        a backoff/deferral window) — the ``repro-serve status`` summary."""
        counts = {state: 0 for state in STATES}
        for row in self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            counts[row["state"]] = row["n"]
        counts["deferred"] = self._conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state=? AND not_before>?",
            (QUEUED, self.clock())).fetchone()["n"]
        return counts

    def tenant_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant ``{state: count}`` maps (admission diagnostics)."""
        tenants: Dict[str, Dict[str, int]] = {}
        for row in self._conn.execute(
                "SELECT tenant, state, COUNT(*) AS n FROM jobs "
                "GROUP BY tenant, state"):
            tenants.setdefault(row["tenant"], {})[row["state"]] = row["n"]
        return tenants

    def oldest_ready_wait(self) -> float:
        """Seconds the oldest dispatchable queued job has been waiting.

        0.0 when nothing is dispatchable — the lease-latency signal the
        load shedder (``REPRO_QUEUE_MAX_WAIT``) watches: a deep-but-fast
        queue is healthy, a shallow-but-stuck one is not.
        """
        now = self.clock()
        row = self._conn.execute(
            "SELECT MIN(created) AS oldest FROM jobs "
            "WHERE state=? AND not_before<=?", (QUEUED, now)).fetchone()
        if row is None or row["oldest"] is None:
            return 0.0
        return max(0.0, now - row["oldest"])

    def has_open_jobs(self) -> bool:
        """True while any job is queued or leased."""
        row = self._conn.execute(
            "SELECT 1 FROM jobs WHERE state IN (?, ?) LIMIT 1",
            (QUEUED, LEASED)).fetchone()
        return row is not None

    def open_graphs(self) -> Tuple[str, ...]:
        """Distinct graphs among open jobs, submission order — the set a
        fresh worker prebuilds."""
        rows = self._conn.execute(
            "SELECT graph FROM jobs WHERE state IN (?, ?) "
            "ORDER BY id ASC", (QUEUED, LEASED)).fetchall()
        return tuple(dict.fromkeys(r["graph"] for r in rows))

    def results(self) -> Iterable[Tuple[Job, dict]]:
        """(job, result row) for every terminal job holding a result."""
        for row in self._conn.execute(
                "SELECT * FROM jobs WHERE state IN (?, ?) AND result IS "
                "NOT NULL ORDER BY id ASC", (DONE, ERR)):
            job = _job_from_row(row)
            yield job, job.result

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def lease(self, job_id: int, owner: str) -> Optional[Job]:
        """Atomically move a queued job to ``leased`` for ``owner``.

        Bumps ``attempts`` (the incremented value is the fencing token
        :meth:`complete`/:meth:`fail` require) and sets the lease
        deadline.  Returns None if the job was not dispatchable anymore —
        the caller just picks another.
        """
        now = self.clock()
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state=?, attempts=attempts+1, "
                "lease_owner=?, lease_deadline=?, updated=? "
                "WHERE id=? AND state=? AND not_before<=?",
                (LEASED, owner, now + self.config.lease_seconds, now,
                 job_id, QUEUED, now))
            if cursor.rowcount != 1:
                return None
            job = self.get(job_id)
            self._record(job_id, "leased",
                         {"owner": owner, "attempt": job.attempts})
        return job

    def renew(self, job_id: int, owner: str) -> bool:
        """Extend a live lease (the supervisor's heartbeat-driven renewal)."""
        now = self.clock()
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_deadline=?, updated=? "
                "WHERE id=? AND state=? AND lease_owner=?",
                (now + self.config.lease_seconds, now, job_id, LEASED,
                 owner))
        return cursor.rowcount == 1

    def defer(self, job_id: int, seconds: Optional[float] = None,
              note: str = "deferred") -> bool:
        """Push a queued job's earliest dispatch out (no attempt charged).

        The admission path for an open circuit breaker with no healthy
        fallback: the job stays queued — visible, never dropped — and
        becomes dispatchable again once the window passes.
        """
        now = self.clock()
        seconds = self.config.defer_seconds if seconds is None else seconds
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET not_before=?, note=?, updated=? "
                "WHERE id=? AND state=?",
                (now + seconds, note, now, job_id, QUEUED))
            if cursor.rowcount == 1:
                self._record(job_id, "deferred",
                             {"seconds": seconds, "note": note})
        return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # Completion / failure (exactly-once commit)
    # ------------------------------------------------------------------
    def complete(self, job_id: int, owner: str, token: int,
                 row: dict) -> bool:
        """Commit a finished job's result row — exactly once.

        ``token`` is the ``attempts`` value of the lease that produced
        ``row``.  A duplicate commit (job already terminal) and a stale
        commit (lease expired and re-issued since) both return False and
        change nothing; only the live leaseholder's first commit lands.
        The job ends ``done``, or ``err`` when the cell itself ended
        ``ERR`` (the result row is kept either way).
        """
        now = self.clock()
        state = ERR if row.get("status") == "ERR" else DONE
        blob = json.dumps(row, sort_keys=True)
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state=?, result=?, lease_owner=NULL, "
                "lease_deadline=NULL, note=NULL, updated=? "
                "WHERE id=? AND state=? AND lease_owner=? AND attempts=?",
                (state, blob, now, job_id, LEASED, owner, token))
            if cursor.rowcount != 1:
                return False
            detail = {"status": row.get("status"),
                      "seconds": row.get("seconds")}
            counters = row.get("counters") or {}
            # The OpEvent-derived run shape, surfaced to the progress
            # stream without shipping the full counter set.
            for key in ("loops", "rounds", "instructions"):
                if key in counters:
                    detail[key] = counters[key]
            if row.get("degraded"):
                detail["degraded"] = row["degraded"]
            self._record(job_id, state, detail)
        return True

    def fail(self, job_id: int, owner: str, token: int, error: str) -> str:
        """Record a failed lease (worker died, lease expired).

        Requeues with exponential backoff + deterministic jitter while
        attempts remain, else dead-letters.  Returns the job's new state
        (``queued``/``dead``), or its current state when the lease was
        already stale (someone else owns the retry).
        """
        now = self.clock()
        job = self.get(job_id)
        if job is None:
            raise errors.InvalidValue(f"unknown job id {job_id}")
        if job.state != LEASED or job.lease_owner != owner \
                or job.attempts != token:
            return job.state
        if job.attempts >= job.max_attempts:
            with self._conn:
                self._conn.execute(
                    "UPDATE jobs SET state=?, lease_owner=NULL, "
                    "lease_deadline=NULL, note=?, updated=? WHERE id=?",
                    (DEAD, error, now, job_id))
                self._record(job_id, DEAD,
                             {"error": error, "attempts": job.attempts})
            return DEAD
        delay = backoff_seconds(job_id, job.attempts,
                                self.config.backoff_base,
                                self.config.backoff_cap)
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET state=?, lease_owner=NULL, "
                "lease_deadline=NULL, not_before=?, note=?, updated=? "
                "WHERE id=?",
                (QUEUED, now + delay, error, now, job_id))
            self._record(job_id, "requeued",
                         {"error": error, "attempt": job.attempts,
                          "backoff_seconds": round(delay, 3)})
        return QUEUED

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def expire_leases(self, now: Optional[float] = None) -> List[int]:
        """Requeue (or dead-letter) every job whose lease deadline passed.

        The background safety net: a supervisor killed mid-run stops
        renewing, and whoever next touches the queue reclaims its jobs.
        """
        now = self.clock() if now is None else now
        expired = self._conn.execute(
            "SELECT id, lease_owner, attempts FROM jobs "
            "WHERE state=? AND lease_deadline<?", (LEASED, now)).fetchall()
        reclaimed = []
        for row in expired:
            self.fail(row["id"], row["lease_owner"], row["attempts"],
                      "lease expired")
            reclaimed.append(row["id"])
        return reclaimed

    def requeue_orphans(self) -> List[int]:
        """Immediately reclaim *every* leased job (supervisor takeover).

        A starting supervisor owns no workers, so any lease in the
        database is an orphan of a dead predecessor; waiting out the
        lease deadline would be correct but slow.  Single-supervisor
        deployments (the CLI drain) call this on startup.
        """
        rows = self._conn.execute(
            "SELECT id, lease_owner, attempts FROM jobs WHERE state=?",
            (LEASED,)).fetchall()
        reclaimed = []
        for row in rows:
            self.fail(row["id"], row["lease_owner"], row["attempts"],
                      "orphaned lease (supervisor takeover)")
            reclaimed.append(row["id"])
        return reclaimed

    # ------------------------------------------------------------------
    # Shared metadata (supervisor -> status channel)
    # ------------------------------------------------------------------
    def set_meta(self, key: str, value) -> None:
        """Publish one JSON value into ``queue_meta`` (upsert).

        The drain supervisor uses this as its side of the status channel:
        worker RSS/state and breaker snapshots land here each tick, so
        ``repro-serve status --json`` can report them from any process
        holding the queue path.  The ``schema`` key is reserved.
        """
        if key == "schema":
            raise errors.InvalidValue("queue_meta key 'schema' is reserved")
        with self._conn:
            self._conn.execute(
                "INSERT INTO queue_meta(key, value) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, json.dumps(value, sort_keys=True)))

    def get_meta(self, key: str, default=None):
        """Read back one JSON value from ``queue_meta``."""
        row = self._conn.execute(
            "SELECT value FROM queue_meta WHERE key=?", (key,)).fetchone()
        if row is None:
            return default
        return json.loads(row["value"])

    # ------------------------------------------------------------------
    # Progress events
    # ------------------------------------------------------------------
    def record(self, job_id: int, kind: str, detail: dict) -> None:
        """Append one progress event (public hook for the supervisor's
        heartbeat/reroute annotations)."""
        with self._conn:
            self._record(job_id, kind, detail)

    def _record(self, job_id: int, kind: str, detail: dict) -> None:
        self._conn.execute(
            "INSERT INTO job_events (job_id, seq, ts, kind, detail) "
            "SELECT ?, COALESCE(MAX(seq), 0) + 1, ?, ?, ? "
            "FROM job_events WHERE job_id=?",
            (job_id, self.clock(), kind, json.dumps(detail, sort_keys=True),
             job_id))

    def events(self, job_id: int, since: int = 0) -> List[dict]:
        """Progress events after sequence number ``since`` — the polling
        cursor behind ``GET /jobs/<id>/events``."""
        rows = self._conn.execute(
            "SELECT seq, ts, kind, detail FROM job_events "
            "WHERE job_id=? AND seq>? ORDER BY seq ASC",
            (job_id, since)).fetchall()
        return [{"seq": r["seq"], "ts": r["ts"], "kind": r["kind"],
                 "detail": json.loads(r["detail"])} for r in rows]
