"""LAGraph k-truss: round-based support filtering.

Each round computes per-edge support with a masked SpGEMM and drops edges
below ``k-2`` — a pure Jacobi iteration: removals only become visible at the
next round's multiply.  The paper measures that this costs ~1.6x more rounds
than Lonestar's version, where removals are immediately visible
(Gauss-Seidel), and that the intermediate support matrix ``C`` is
materialized every round (§V-B "ktruss").
"""

from __future__ import annotations

import repro.graphblas as gb
from repro.graphblas.descriptor import REPLACE_STRUCT
from repro.graphblas.ops import PLUS_PAIR


def ktruss(backend, A: gb.Matrix, k: int, max_rounds: int = 1000):
    """The k-truss of undirected ``A``.

    Returns ``(S, rounds)`` where ``S`` is a Matrix whose pattern is the
    truss's edge set and whose values are the per-edge triangle supports.
    ``A`` must be symmetric with no self-loops.
    """
    n = A.nrows
    # Working copy: the candidate edge set, shrinking every round.
    S = A.dup(label="ktruss:S")
    C = gb.Matrix(backend, gb.INT64, n, n, label="ktruss:C")
    support_needed = k - 2

    rounds = 0
    last_nvals = S.nvals
    while rounds < max_rounds:
        rounds += 1
        backend.runtime.round()
        # Support: C<S> = S*S' counts, for each surviving edge (u,v), the
        # common neighbors of u and v inside the candidate set.  S is
        # symmetric so S*S' == S*S; the dot form uses the mask's pattern.
        gb.mxm(C, S, S, PLUS_PAIR, mask=S, desc=REPLACE_STRUCT)
        # Keep edges whose support reaches k-2 (select materializes the new
        # candidate matrix — the per-round allocation Table III reflects).
        gb.select(C, "ge", C, support_needed)
        new_nvals = C.nvals
        if new_nvals == last_nvals:
            break
        last_nvals = new_nvals
        S.replace_csr(C.csr.copy())
    S.replace_csr(C.csr.copy())
    return S, rounds
