"""LAGraph breadth-first search — the paper's Algorithm 2.

A round-based, data-driven, push-style bfs: frontier vertices propagate new
levels to their out-neighbors each round.  Each round is **three** GraphBLAS
calls (assign, nvals check, vxm), i.e. three passes over vertex-sized data
where the Lonestar version (Algorithm 1) fuses everything into one loop —
the instruction/memory gap of Table IV.
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.graphblas.descriptor import REPLACE_COMP
from repro.graphblas.ops import LOR_LAND
from repro.graphblas.pipeline import FusedPipeline


def bfs(backend, A: gb.Matrix, source: int) -> gb.Vector:
    """Levels from ``source``: source gets 1, unreached vertices get 0.

    (LAGraph's basic variant initializes distances to 0 via GrB_assign and
    marks visited vertices with level >= 1, exactly as Algorithm 2 does.)
    """
    n = A.nrows
    dist = gb.Vector(backend, gb.INT32, n, label="bfs:dist")
    frontier = gb.Vector(backend, gb.BOOL, n,
                         rep=_frontier_rep(backend, n), label="bfs:frontier")

    # The assign -> vxm round body runs fused: the masked writes happen in
    # place instead of through fresh dense temporaries, with identical
    # results and identical op events.
    pipe = FusedPipeline(backend)

    # dist = 0 everywhere (make the vector dense) — Algorithm 2 line 6.
    pipe.assign(dist, 0)
    # frontier = {source} — line 8.
    frontier.set_element(source, True)
    level = 1

    while True:
        pipe.round()
        # Pass 1: assign the current level to frontier vertices (lines 11-12).
        pipe.assign(dist, level, mask=frontier)
        # Pass 2: emptiness check (lines 13-16).
        if frontier.nvals == 0:
            break
        level += 1
        # Pass 3: next frontier = frontier x A under the complement of the
        # visited set (lines 17-19); visited vertices have dist != 0.
        pipe.vxm(frontier, frontier, A, LOR_LAND, mask=dist,
                 desc=REPLACE_COMP)
        if level > n + 1:
            break  # safety net; cannot trigger on a correct graph
    return dist


def _frontier_rep(backend, n: int):
    """GaloisBLAS picks a sparse rep for the frontier (§III-B); the distance
    vector stays a dense array on both backends."""
    pick = getattr(backend, "pick_rep", None)
    if pick is None:
        return None
    return pick(size=n, expected_nvals=n // 16)


def bfs_parent(backend, A: gb.Matrix, source: int) -> gb.Vector:
    """Parent BFS (LAGraph's second output): ``parent[v]`` is v's
    predecessor on some shortest unweighted path from ``source``.

    The frontier carries *vertex ids* instead of levels, and the vxm uses
    the MIN_FIRST semiring so each newly reached vertex adopts the smallest
    frontier id among its predecessors — the deterministic tie-break that
    keeps all three stacks' answers comparable.  The source is its own
    parent; unreachable vertices have no entry.
    """
    import numpy as np

    from repro.graphblas.ops import MIN_FIRST

    n = A.nrows
    parent = gb.Vector(backend, gb.INT64, n, label="bfs:parent")
    frontier = gb.Vector(backend, gb.INT64, n,
                         rep=_frontier_rep(backend, n),
                         label="bfs:id_frontier")

    parent.set_element(source, source)
    frontier.set_element(source, source)

    while frontier.nvals:
        backend.runtime.round()
        # Candidates adopt the minimum frontier id among in-neighbors,
        # excluding already-parented vertices (structural complement mask).
        gb.vxm(frontier, frontier, A, MIN_FIRST, mask=parent,
               desc=gb.Descriptor(mask_comp=True, mask_structure=True,
                                  replace=True))
        if frontier.nvals == 0:
            break
        # Record the parents (merge; existing entries never overwritten
        # because the mask already excluded parented vertices).
        gb.assign(parent, frontier, accum=gb.binary("min"))
        # The new frontier pushes its own ids next round.
        idx, _vals = frontier.to_pairs()
        frontier.build(idx, idx)
    return parent
