"""LAGraph: the study's matrix-based algorithm library (§II-C, §IV).

Each module implements the LAGraph 3.2.1 variant the paper selected
(Table II) plus the differential-analysis variants of §V-B, written purely
against the GraphBLAS API in :mod:`repro.graphblas` — they run unchanged on
the SuiteSparse and GaloisBLAS backends.

Algorithm variants (paper's naming):

========  ==========================================  ==================
problem   Table II variant                            §V-B extras
========  ==========================================  ==================
bfs       basic level bfs (Algorithm 2)               —
cc        FastSV (bounded pointer jumping)            —
ktruss    round-based support filtering               —
pr        topology-driven, contributions in edges     gb-res (residual)
sssp      bulk-synchronous delta-stepping (12c)       —
tc        SandiaDot                                   gb-sort, gb-ll
========  ==========================================  ==================
"""

from repro.lagraph.bc import betweenness_centrality
from repro.lagraph.bfs import bfs, bfs_parent
from repro.lagraph.cc import fastsv
from repro.lagraph.kcore import k_core
from repro.lagraph.ktruss import ktruss
from repro.lagraph.pagerank import pagerank_gb, pagerank_gb_res
from repro.lagraph.sssp import delta_stepping
from repro.lagraph.tc import triangle_count

__all__ = [
    "betweenness_centrality",
    "bfs",
    "bfs_parent",
    "delta_stepping",
    "fastsv",
    "k_core",
    "ktruss",
    "pagerank_gb",
    "pagerank_gb_res",
    "triangle_count",
]
