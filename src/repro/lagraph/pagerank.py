"""LAGraph PageRank: the topology-driven variant and the residual variant.

Canonical semantics (shared with Lonestar so all variants agree, as the
paper arranged by modifying LAGraph's pr, §IV): run ``iters`` rounds of

    contribution_t(v) = alpha * y_t(v) / outdeg(v)        (pushed along edges)
    y_{t+1}(u) = sum over in-neighbors v of contribution_t(v)
    pr = (1-alpha)/n + sum_t y_t

with ``y_0 = (1-alpha)/n`` and no dangling redistribution (contributions of
sink vertices vanish, exactly like a push-style residual implementation).

Two implementations:

* :func:`pagerank_gb` — Table II's "gb": contributions are stored *in the
  edge data*: a diagonal matrix of scaled ranks is multiplied into A
  (materializing an |E|-sized contribution matrix every round) and column-
  reduced.  GaloisBLAS detects the diagonal operand and takes its scaling
  fast path; SuiteSparse runs a general SpGEMM.
* :func:`pagerank_gb_res` — §V-B's "gb-res": a residual vector replaces the
  edge-data contributions.  Per round the residual is iterated over twice —
  once to accumulate into pr, once to scale by the out-degrees — because the
  two updates are separate API calls (the fusion Lonestar gets for free).
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.engine.events import OpEvent
from repro.graphblas.ops import PLUS_FIRST, PLUS_TIMES, binary, monoid
from repro.graphblas.pipeline import FusedPipeline

_PLUS = binary("plus")
_TIMES = binary("times")


def _out_degree_vector(backend, A: gb.Matrix) -> gb.Vector:
    """Float out-degrees (1 for sinks, so division is safe; a sink's
    contribution is annihilated later because it has no out-edges)."""
    d = gb.Vector(backend, gb.FP64, A.nrows, label="pr:outdeg")
    gb.reduce_to_vector(d, A, monoid("plus"))
    dd = d.dense_values(fill=0.0)
    dd[dd == 0] = 1.0
    d.build(np.arange(A.nrows), dd)
    return d


def pagerank_gb(backend, A: gb.Matrix, iters: int = 10,
                damping: float = 0.85) -> gb.Vector:
    """Topology-driven LAGraph pr (contributions materialized in edge data).

    ``A`` here is the *ones* adjacency (pattern); ranks flow src -> dst.
    """
    n = A.nrows
    base = (1.0 - damping) / n
    outdeg = _out_degree_vector(backend, A)
    deg_dense = outdeg.dense_values(fill=1.0)

    pr = gb.Vector(backend, gb.FP64, n, label="pr:rank")
    gb.assign(pr, base)
    y = pr.dup(label="pr:y")

    D = gb.Matrix(backend, gb.FP64, n, n, label="pr:diag")
    C = gb.Matrix(backend, gb.FP64, n, n, label="pr:contrib")
    ids = np.arange(n, dtype=np.int64)

    for _ in range(iters):
        backend.runtime.round()
        # Scaled ranks on the diagonal: D = diag(alpha * y / outdeg).
        scaled = damping * y.dense_values(fill=0.0) / deg_dense
        D.replace_csr(_diag_csr(n, scaled))
        backend.emit(OpEvent(
            kind="assign", label="pr_diag_build", items=n, out_nvals=n,
        ), out=D)
        # Contribution matrix: C = D x A — every edge gets its source's
        # contribution as its value (the "edge data" of the paper's gb).
        gb.mxm(C, D, A, PLUS_TIMES)
        # New y: column sums of C (reduce the transpose's rows).
        gb.reduce_to_vector(y, C, monoid("plus"),
                            desc=gb.Descriptor(transpose_a=True))
        _densify(y)
        # Accumulate into pr.
        gb.eWiseAdd(pr, pr, y, monoid("plus"))
    return pr


def pagerank_gb_res(backend, A: gb.Matrix, iters: int = 10,
                    damping: float = 0.85) -> gb.Vector:
    """Residual-based pr matching Lonestar's computation (§V-B "gb-res")."""
    n = A.nrows
    base = (1.0 - damping) / n
    outdeg = _out_degree_vector(backend, A)

    pr = gb.Vector(backend, gb.FP64, n, label="pr:rank")
    gb.assign(pr, base)
    res = pr.dup(label="pr:residual")

    contrib = gb.Vector(backend, gb.FP64, n, label="pr:contrib")
    # The whole round body is one fusable chain (ewise -> apply -> vxm):
    # the pipeline runs it without materializing the per-call dense
    # temporaries while emitting the exact same op events.
    pipe = FusedPipeline(backend)
    for it in range(iters):
        pipe.round()
        if it > 0:
            # Call 1: pr += res  (first pass over the residual vector).
            pipe.ewise_add(pr, pr, res, monoid("plus"))
        # Call 2: contrib = alpha * res / outdeg  (second pass; the
        # multiply-by-outdegree the paper counts as a separate call).
        pipe.ewise_mult(contrib, res, outdeg, binary("div"))
        pipe.apply(contrib, binary("times").bind_first(damping), contrib)
        # Call 3: res' = contrib' x A (push contributions along edges).
        pipe.vxm(res, contrib, A, PLUS_FIRST)
        pipe.densify(res)
    pipe.ewise_add(pr, pr, res, monoid("plus"))
    return pr


def _densify(v: gb.Vector) -> None:
    """Give implicit zeros explicit entries (keeps iteration shapes fixed)."""
    vals = v.dense_values(fill=0.0)
    v.build(np.arange(v.size), vals)


def _diag_csr(n: int, values: np.ndarray):
    from repro.sparse.csr import CSRMatrix

    return CSRMatrix(
        n, n,
        np.arange(n + 1, dtype=np.int64),
        np.arange(n, dtype=np.int32),
        values.astype(np.float64),
    )
