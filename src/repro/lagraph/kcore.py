"""LAGraph k-core: bulk peeling rounds (extension problem).

The k-core is the maximal subgraph in which every vertex has degree >= k.
LAGraph computes it by *bulk peeling*: each round derives the surviving
subgraph's degree vector and removes every vertex below k — which, in a
matrix API, means re-extracting the surviving submatrix (materializing it)
every round, because degrees must be recomputed against the shrunken
pattern.  A removal only becomes visible at the next round (Jacobi), the
same limitation pair (materialization + rounds) the paper measures on
ktruss.
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.engine.events import OpEvent
from repro.graphblas.ops import monoid


def k_core(backend, A: gb.Matrix, k: int, max_rounds: int = 100000):
    """Vertices of the k-core of undirected ``A`` (symmetric, no loops).

    Returns ``(member, rounds)`` where ``member`` is a boolean numpy array
    over the original vertex ids.
    """
    n = A.nrows
    member = np.ones(n, dtype=bool)
    # The working submatrix, re-materialized every peeling round.
    S = A.dup(label="kcore:S")
    ids = np.arange(n, dtype=np.int64)
    alive_ids = ids

    deg = gb.Vector(backend, gb.INT64, n, label="kcore:deg")
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        backend.runtime.round()
        # Pass 1: degrees of the surviving subgraph.
        deg2 = gb.Vector(backend, gb.INT64, len(alive_ids),
                         label="kcore:deg_alive")
        gb.reduce_to_vector(deg2, S, monoid("plus"))
        dense = deg2.dense_values(fill=0)
        present = deg2.present_mask()
        counts = np.where(present, dense, 0)
        # Pass 2: who falls below k this round?
        doomed_local = np.flatnonzero(counts < k)
        backend.emit(OpEvent(
            kind="select", label="kcore_below_k", items=len(alive_ids),
            out_nvals=len(doomed_local),
        ), out=deg2)
        deg2.free()
        if len(doomed_local) == 0:
            break
        member[alive_ids[doomed_local]] = False
        keep_local = np.flatnonzero(counts >= k)
        alive_ids = alive_ids[keep_local]
        # Pass 3: materialize the surviving submatrix for the next round.
        S2 = gb.Matrix(backend, A.type, len(keep_local), len(keep_local),
                       label="kcore:S")
        gb.extractMatrix(S2, S, keep_local, keep_local)
        S.free()
        S = S2
    S.free()
    deg.free()
    return member, rounds
