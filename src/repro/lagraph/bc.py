"""LAGraph batch betweenness centrality (Brandes/Brandes-batch, [1]).

The paper's introduction motivates graph analytics with betweenness
centrality — "find key actors in terrorist networks" — and LAGraph ships a
batched Brandes implementation built from GraphBLAS primitives.  This is an
*extension* beyond the paper's six Table II problems, included because it
exercises the API patterns the study measures at their hardest: the forward
sweep is a masked vxm per BFS level (lightweight loops), and every level's
path-count frontier must be **materialized and retained** for the backward
sweep (materialization) — 2d+3 API calls and d stored vectors for a
d-level graph.

Unweighted, directed; scores are unnormalized Brandes centrality
(sum over source-target dependencies), computed for a batch of sources.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

import repro.graphblas as gb
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.ops import PLUS_FIRST, PLUS_TIMES, binary, monoid

_REPLACE_COMP_STRUCT = Descriptor(replace=True, mask_comp=True,
                                  mask_structure=True)


def betweenness_centrality(backend, A: gb.Matrix,
                           sources: Sequence[int]) -> gb.Vector:
    """Partial BC: dependency sums over the given batch of sources.

    Passing every vertex as a source gives exact Brandes centrality; the
    LAGraph convention (and this function's default benchmark use) is a
    small sample batch.
    """
    n = A.nrows
    bc = gb.Vector(backend, gb.FP64, n, label="bc:scores")
    gb.assign(bc, 0.0)

    for s in sources:
        _accumulate_source(backend, A, int(s), bc)
    return bc


def _accumulate_source(backend, A: gb.Matrix, s: int, bc: gb.Vector) -> None:
    n = A.nrows
    # sigma per level: the number of shortest paths reaching each vertex,
    # one *materialized* sparse vector per BFS level (kept for phase 2).
    sigmas = []
    visited = gb.Vector(backend, gb.BOOL, n, label="bc:visited")
    frontier = gb.Vector(backend, gb.FP64, n, label="bc:frontier")
    frontier.set_element(s, 1.0)
    visited.set_element(s, True)

    while frontier.nvals:
        backend.runtime.round()
        sigmas.append(frontier.dup(label="bc:sigma"))
        # next frontier: path counts pushed along edges, excluding visited.
        gb.vxm(frontier, frontier, A, PLUS_FIRST, mask=visited,
               desc=_REPLACE_COMP_STRUCT)
        # mark the new frontier visited (structural union).
        gb.eWiseAdd(visited, visited,
                    _pattern_of(backend, frontier), monoid("lor"))

    # Backward sweep: delta accumulates dependencies level by level.
    delta = gb.Vector(backend, gb.FP64, n, label="bc:delta")
    gb.assign(delta, 0.0)
    at_desc = Descriptor(transpose_a=True)
    for level in range(len(sigmas) - 1, 0, -1):
        backend.runtime.round()
        w_sigma = sigmas[level]
        # t = (1 + delta) / sigma on the level's vertices.
        t = gb.Vector(backend, gb.FP64, n, label="bc:t")
        gb.apply(t, binary("plus").bind_first(1.0), delta,
                 mask=w_sigma, desc=Descriptor(replace=True,
                                               mask_structure=True))
        gb.eWiseMult(t, t, w_sigma, binary("div"))
        # pull the weighted dependencies back one level: u gets
        # sum over successors w of sigma(u) * t(w).
        back = gb.Vector(backend, gb.FP64, n, label="bc:back")
        gb.vxm(back, t, A, PLUS_FIRST, desc=at_desc)
        gb.eWiseMult(back, back, sigmas[level - 1], binary("times"))
        gb.eWiseAdd(delta, delta, back, monoid("plus"))
        t.free()
        back.free()
    # bc += delta (source excluded: delta[s] counts paths from s).
    delta.remove_element(s)
    gb.eWiseAdd(bc, bc, delta, monoid("plus"))
    for v in sigmas:
        v.free()


def _pattern_of(backend, v: gb.Vector) -> gb.Vector:
    out = gb.Vector(backend, gb.BOOL, v.size, label="bc:pattern")
    idx = v.indices()
    out.build(idx, np.ones(len(idx), dtype=bool))
    return out
