"""LAGraph triangle counting: SandiaDot plus the §V-B variants.

Table II's variant is **SandiaDot**: extract the strictly lower and upper
triangular parts, compute ``C<L> = L * U'`` with the PLUS_PAIR semiring via
dot products, and reduce ``C``.  The paper's limitation #2 is visible right
in the code: L, U and C are all *materialized* |E|/2-sized matrices, and the
count requires a final full pass over C — where Lonestar just increments a
scalar inside the search loop.

Variants (§V-B, Figure 3b):

* ``gb``      — SandiaDot on the input as-is (Table II);
* ``gb-sort`` — SandiaDot on the degree-sorted graph (no benefit: the
  algorithm does not exploit the order, as the paper notes);
* ``gb-ll``   — the triangle-*listing* algorithm on the degree-sorted
  graph: only the lower-triangular (lower-degree-neighbor) matrix is used
  for both operands, ``C<L> = L * L'``, avoiding work on high-degree rows.
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.graphblas.descriptor import Descriptor, REPLACE_STRUCT
from repro.graphblas.ops import PLUS_PAIR, monoid


def triangle_count(backend, A: gb.Matrix, variant: str = "gb") -> int:
    """Triangles in the undirected graph ``A`` (symmetric, no self-loops).

    ``variant`` selects gb / gb-sort / gb-ll; for gb-sort and gb-ll the
    caller passes the degree-sorted matrix (sorting is preprocessing and is
    excluded from measured time, like the paper does).
    """
    n = A.nrows
    L = gb.Matrix(backend, gb.BOOL, n, n, label="tc:L")
    gb.select(L, "tril", A, -1)

    if variant in ("gb", "gb-sort"):
        U = gb.Matrix(backend, gb.BOOL, n, n, label="tc:U")
        gb.select(U, "triu", A, 1)
        C = gb.Matrix(backend, gb.INT64, n, n, label="tc:C")
        # C<L> = L * U' with plus_pair, dot method (SandiaDot).
        gb.mxm(C, L, U, PLUS_PAIR, mask=L,
               desc=Descriptor(mask_structure=True, replace=True,
                               transpose_b=True),
               method="dot")
        ntri = int(gb.reduce_to_scalar(C, monoid("plus")))
        U.free()
    elif variant == "gb-ll":
        # Triangle listing: wedges u>v>w checked against L only; row
        # lengths are bounded because L keeps lower-degree neighbors.
        C = gb.Matrix(backend, gb.INT64, n, n, label="tc:C")
        gb.mxm(C, L, L, PLUS_PAIR, mask=L,
               desc=Descriptor(mask_structure=True, replace=True,
                               transpose_b=True),
               method="dot")
        ntri = int(gb.reduce_to_scalar(C, monoid("plus")))
    else:
        raise ValueError(f"unknown tc variant {variant!r}")
    C.free()
    L.free()
    return ntri
