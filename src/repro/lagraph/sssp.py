"""LAGraph single-source shortest paths: bulk-synchronous delta-stepping.

This follows the structure of LAGraph's delta-stepping "variant 12c" the
paper selected (§IV, [38]): distances are settled bucket by bucket
(``[i*delta, (i+1)*delta)``), and within a bucket the relaxation is a Jacobi
iteration — a masked ``vxm`` over the current bucket's *changed* vertices,
followed by an element-wise min merge, repeated until the bucket stops
changing.  Every inner iteration is several full GraphBLAS calls and hence
several loop nests with barriers; on high-diameter graphs the number of
inner iterations approaches the graph diameter, which is exactly why the
paper measures bulk-synchronous sssp >100x slower than asynchronous
Lonestar sssp on road networks (§V-B, Figure 3d).
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.engine.events import OpEvent
from repro.graphblas.ops import MIN_PLUS, binary, monoid
from repro.graphblas.pipeline import FusedPipeline

_MIN = binary("min")


def delta_stepping(backend, A: gb.Matrix, source: int, delta: int,
                   dist_type=None) -> gb.Vector:
    """Distances from ``source`` over the weighted matrix ``A``.

    ``dist_type`` defaults to INT64 for integer weights (the paper uses
    INT32 except on eukarya where it overflows; pass ``gb.INT32`` to
    reproduce the overflow-prone configuration).
    """
    n = A.nrows
    dtype = dist_type or gb.INT64
    inf = dtype.max_value()

    dist = gb.Vector(backend, dtype, n, label="sssp:dist")
    gb.assign(dist, inf)
    dist.set_element(source, 0)

    # The frontier of vertices whose distance changed in the last step.
    changed = gb.Vector(backend, dtype, n, label="sssp:changed")
    req = gb.Vector(backend, dtype, n, label="sssp:req")

    # The vxm -> compare -> min-merge inner body fuses: distance reads use
    # the backing arrays directly (no defensive copies) and the merge runs
    # without intermediate temporaries; events are unchanged.
    pipe = FusedPipeline(backend)

    step = 0
    max_steps = 64 * n  # safety net; never reached on valid inputs
    while step < max_steps:
        bucket_hi = (step + 1) * delta
        d = pipe.dense(dist)
        # Inner Jacobi loop: relax inside the current bucket to fixpoint.
        # Seed the changed set with the bucket's unsettled vertices.
        active_idx = np.flatnonzero((d >= step * delta) & (d < bucket_hi))
        changed.build(active_idx, d[active_idx])
        while changed.nvals:
            pipe.round()
            # Call 1: candidate distances from the changed set (min-plus).
            req.clear()
            pipe.vxm(req, changed, A, MIN_PLUS)
            # Call 2: which candidates actually improve?  (compare pass)
            req_d = pipe.dense(req, fill=inf)
            improved = req_d < pipe.dense(dist)
            backend.emit(OpEvent(
                kind="ewise_mult", label="sssp_improved", items=req.nvals,
                out_nvals=req.nvals,
            ), out=req)
            # Call 3: merge into dist (eWiseAdd min).
            pipe.ewise_add(dist, dist, req, monoid("min"))
            # Call 4: next changed set = improved vertices still in bucket.
            idx = np.flatnonzero(improved & (req_d < bucket_hi))
            changed.build(idx, req_d[idx])
            backend.emit(OpEvent(
                kind="assign", label="sssp_next_changed", items=len(idx),
                out_nvals=len(idx),
            ), out=changed)
        # Advance to the next non-empty bucket.
        d = pipe.dense(dist)
        unsettled = d[(d >= bucket_hi) & (d < inf)]
        if len(unsettled) == 0:
            break
        step = int(unsettled.min() // delta)
    return dist
