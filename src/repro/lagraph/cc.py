"""LAGraph connected components: the FastSV variant (§IV, [37]).

FastSV is a bulk-synchronous pointer-jumping algorithm.  Each round applies
a *fixed* number of hooking/shortcutting steps to every vertex through bulk
GraphBLAS operations — the restriction the paper contrasts with Lonestar's
Afforest (fine-grained sampling, inexpressible in a matrix API) and with
ls-sv's unbounded asynchronous pointer jumping (§V-B, Figure 3c).

One round is five GraphBLAS calls:

1. ``mxv``     — min grandparent among neighbors (stochastic hooking input);
2. ``assign``  — hook parents: ``f[f[u]] = min(f[f[u]], mngp[u])``;
3. ``eWiseAdd``— aggressive hooking onto the vertex itself;
4. ``eWiseAdd``— shortcutting ``f = min(f, gp)``;
5. ``extract`` — new grandparents ``gp = f[f]``.
"""

from __future__ import annotations

import numpy as np

import repro.graphblas as gb
from repro.graphblas.ops import MIN_SECOND, binary, monoid

_MIN = binary("min")
_MIN_MONOID = monoid("min")


def fastsv(backend, A: gb.Matrix) -> gb.Vector:
    """Component labels: ``f[v]`` is the minimum vertex id in v's component.

    ``A`` must be structurally symmetric (the undirected view; the paper
    computes *weakly* connected components, §IV).
    """
    n = A.nrows
    ids = np.arange(n, dtype=np.int64)

    f = gb.Vector(backend, gb.INT64, n, label="cc:f")
    f.build(ids, ids)
    gp = f.dup(label="cc:gp")
    mngp = f.dup(label="cc:mngp")

    while True:
        backend.runtime.round()
        f_before = f.dense_values()

        # (1) mngp = min over neighbors of gp, keeping the old value for
        # isolated vertices (accum=min merges with the previous mngp).
        gb.mxv(mngp, A, gp, MIN_SECOND, accum=_MIN)
        # (2) stochastic hooking: parents adopt the min neighbor grandparent.
        gb.assign(f, mngp, indices=f_before, accum=_MIN)
        # (3) aggressive hooking onto the vertex itself.
        gb.eWiseAdd(f, f, mngp, _MIN_MONOID, accum=_MIN)
        # (4) shortcutting: f = min(f, gp).
        gb.eWiseAdd(f, f, gp, _MIN_MONOID, accum=_MIN)
        # (5) gp = f[f]  (one bounded pointer-jumping step).
        f_now = f.dense_values()
        gb.extract(gp, f, f_now)

        if np.array_equal(gp.dense_values(), f_now):
            break
    return f
