"""repro — a reproduction of "A Study of APIs for Graph Analytics Workloads".

The package implements both software stacks the paper compares:

* a matrix-based stack: a GraphBLAS API (:mod:`repro.graphblas`) with two
  backends — :mod:`repro.suitesparse` and :mod:`repro.galoisblas` — and the
  LAGraph algorithm library (:mod:`repro.lagraph`);
* a graph-based stack: a Galois-style runtime and graph API
  (:mod:`repro.galois`) and the Lonestar algorithms (:mod:`repro.lonestar`);

plus a deterministic machine model (:mod:`repro.perf`), the nine scaled input
graphs (:mod:`repro.graphs`), and the study harness that regenerates every
table and figure of the paper (:mod:`repro.core`).
"""

from repro.perf import Machine, PerfCounters

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "PerfCounters",
    "SYSTEMS",
    "System",
    "make_system",
    "__version__",
]


def __getattr__(name):
    # Lazy import: repro.core pulls in every subsystem, which would make
    # importing any leaf module (e.g. repro.sparse) pay for the whole stack.
    if name in ("SYSTEMS", "System", "make_system"):
        from repro.core import systems

        return getattr(systems, name if name != "SYSTEMS" else "SYSTEMS")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
