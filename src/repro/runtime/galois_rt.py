"""Galois runtime model (the substrate of GaloisBLAS and Lonestar, §III-B).

Galois provides chunked work stealing (loops default to
``Schedule.STEAL``, whose imbalance is bounded by the largest work item),
huge-page backing, thread binding, and **memory preallocation**: pages are
reserved up front so execution never dynamically allocates.  Preallocation
is modeled in the allocator (it raises small-graph MRSS above SuiteSparse's,
exactly the Table III effect) and is sized when a system is constructed.

The runtime is also the Galois-side *emitter* of the unified op-event
protocol: Lonestar operators describe each loop with an
:class:`~repro.engine.events.OpEvent` and hand it to :meth:`do_all`
(bulk-parallel, one closing barrier) or :meth:`for_each` (one asynchronous
worklist slice, barrier-free), mirroring how GraphBLAS operations hand
events to ``backend.emit``.  Both charge the machine exactly as before and
record the event in the machine's execution trace.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import OpEvent
from repro.errors import InvalidValue
from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.runtime.base import Runtime

#: Fixed dispatch cost of one asynchronous worklist slice: threads keep
#: pulling work without a barrier, so this is far below a loop launch.
FOR_EACH_SLICE_NS = 15_000.0


def _tiled_max_item(weights, tile_edges):
    """Largest indivisible work item under edge tiling (§V-B)."""
    if weights is not None and len(weights) and tile_edges:
        return float(min(np.max(weights), tile_edges))
    return None


class GaloisRuntime(Runtime):
    """The Galois execution model: work stealing plus huge pages."""

    default_schedule = Schedule.STEAL
    huge_pages = True
    loop_fixed_ns = 180_000.0
    name = "galois"

    def __init__(self, machine: Machine):
        super().__init__(machine)

    # ------------------------------------------------------------------
    # Op-event emitters (the Galois side of the unified protocol)
    # ------------------------------------------------------------------
    def do_all(
        self,
        event: OpEvent,
        *,
        instr_per_item: float = 2.0,
        streams=(),
        weights=None,
        tile_edges=None,
        extra_instr: int = 0,
    ) -> OpEvent:
        """Charge one ``galois::do_all`` loop (work stealing, one barrier).

        ``event.items`` is the loop's item count; the cost-shaping knobs
        (instruction proxy, memory streams, per-item weights, edge tiling)
        stay keyword arguments because they never leave the machine model.
        Returns the recorded (stamped) event.
        """
        if event.kind != "do_all":
            raise InvalidValue(
                f"do_all emits 'do_all' events, got {event.kind!r}")
        ctx = self.machine.context
        ctx.open_span()
        try:
            self.parallel(
                n_items=event.items,
                instr_per_item=instr_per_item,
                streams=streams,
                weights=weights,
                max_item_weight=_tiled_max_item(weights, tile_edges),
                schedule=Schedule.STEAL,
                extra_instr=extra_instr,
            )
        finally:
            recorded = ctx.close_span(event)
        return recorded

    def for_each(
        self,
        event: OpEvent,
        *,
        instr_per_item: float = 2.0,
        streams=(),
        weights=None,
        tile_edges=None,
        extra_instr: int = 0,
    ) -> OpEvent:
        """Charge one asynchronous slice of a ``galois::for_each`` loop.

        No barrier: threads drain the worklist continuously.  The
        scheduling cost of the concurrent worklist is folded into
        ``instr_per_item``.  Returns the recorded (stamped) event.
        """
        if event.kind != "for_each":
            raise InvalidValue(
                f"for_each emits 'for_each' events, got {event.kind!r}")
        ctx = self.machine.context
        ctx.open_span()
        try:
            self.machine.charge_loop(
                schedule=Schedule.STEAL,
                instructions=int(event.items * instr_per_item) + extra_instr,
                streams=streams,
                n_items=event.items,
                weights=weights,
                max_item_weight=_tiled_max_item(weights, tile_edges),
                huge_pages=self.huge_pages,
                barrier=False,
                fixed_ns=FOR_EACH_SLICE_NS,
            )
        finally:
            recorded = ctx.close_span(event)
        return recorded

    def priority_sync(self, label: str = "") -> OpEvent:
        """Synchronize the priority scheduler (drain the current bucket).

        Delta-stepping's level boundary: an explicit barrier between
        priority buckets, recorded as a ``barrier`` op event.
        """
        ctx = self.machine.context
        ctx.open_span()
        try:
            self.machine.charge_loop(
                schedule=Schedule.STEAL,
                instructions=0,
                n_items=0,
                huge_pages=self.huge_pages,
                barrier=True,
            )
        finally:
            recorded = ctx.close_span(
                OpEvent(kind="barrier", label=label, barrier=True))
        return recorded
