"""Galois runtime model (the substrate of GaloisBLAS and Lonestar, §III-B).

Galois provides chunked work stealing (loops default to
``Schedule.STEAL``, whose imbalance is bounded by the largest work item),
huge-page backing, thread binding, and **memory preallocation**: pages are
reserved up front so execution never dynamically allocates.  Preallocation
is modeled in the allocator (it raises small-graph MRSS above SuiteSparse's,
exactly the Table III effect) and is sized when a system is constructed.
"""

from __future__ import annotations

from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.runtime.base import Runtime


class GaloisRuntime(Runtime):
    """The Galois execution model: work stealing plus huge pages."""

    default_schedule = Schedule.STEAL
    huge_pages = True
    loop_fixed_ns = 180_000.0
    name = "galois"

    def __init__(self, machine: Machine):
        super().__init__(machine)
