"""Runtime interface shared by the OpenMP and Galois models."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.engine.events import OpEvent
from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.perf.memmodel import AccessPattern, AccessStream


class TrackedArray:
    """A numpy array whose storage is charged to the tracking allocator."""

    __slots__ = ("data", "_allocation", "_runtime")

    def __init__(self, runtime: "Runtime", data: np.ndarray, label: str):
        self.data = data
        self._runtime = runtime
        self._allocation = runtime.machine.allocator.allocate(data.nbytes, label)

    def free(self) -> None:
        """Release the tracked storage."""
        self._runtime.machine.allocator.free(self._allocation)

    def __len__(self):
        return len(self.data)


class Runtime:
    """Base runtime: charging helpers bound to one :class:`Machine`.

    Subclasses fix the default schedule and the huge-page behaviour, which is
    where the paper's two runtime systems differ (§III).
    """

    #: Default schedule for parallel loops; overridden by subclasses.
    default_schedule = Schedule.DYNAMIC
    #: Whether the runtime backs memory with huge pages (§IV: Galois yes,
    #: SuiteSparse no).
    huge_pages = False
    #: Fixed cost of launching one parallel loop (fork/join, scheduling).
    #: Independent of the dataset's scale; calibrated so round-dominated
    #: workloads (bfs/sssp on road networks) land near the paper's times.
    loop_fixed_ns = 150_000.0
    name = "runtime"

    def __init__(self, machine: Machine):
        self.machine = machine

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def parallel(
        self,
        n_items: int,
        instr_per_item: float = 1.0,
        streams: Iterable[AccessStream] = (),
        weights: Optional[Sequence] = None,
        max_item_weight: Optional[float] = None,
        schedule: Optional[Schedule] = None,
        extra_instr: int = 0,
    ):
        """Charge one parallel loop of ``n_items`` items.

        ``instr_per_item`` is the instruction proxy per item (documented at
        each call site); ``streams`` declare the loop's memory traffic.
        """
        return self.machine.charge_loop(
            schedule=schedule or self.default_schedule,
            instructions=int(n_items * instr_per_item) + extra_instr,
            streams=streams,
            n_items=n_items,
            weights=weights,
            max_item_weight=max_item_weight,
            huge_pages=self.huge_pages,
            fixed_ns=self.loop_fixed_ns,
        )

    def serial(self, instructions: int = 0, streams: Iterable[AccessStream] = ()):
        """Charge a serial code segment (no barrier, single thread)."""
        return self.machine.charge_loop(
            schedule=Schedule.SERIAL,
            instructions=instructions,
            streams=streams,
            huge_pages=self.huge_pages,
            barrier=False,
        )

    def round(self) -> None:
        """Mark an algorithm-level round."""
        self.machine.round()

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def new_array(
        self, shape, dtype, label: str, fill=None, first_touch: bool = True
    ) -> TrackedArray:
        """Allocate a tracked numpy array, charging first-touch traffic.

        First touch is a sequential write pass over the array, which is how
        materialization costs enter the model (the paper's limitation #2).
        """
        if fill is None:
            data = np.zeros(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        arr = TrackedArray(self, data, label)
        if first_touch and data.size:
            # The first-touch pass is the graph API's materialization
            # signal, so it is recorded as an ``alloc`` op event.
            ctx = self.machine.context
            ctx.open_span()
            try:
                self.parallel(
                    n_items=data.size,
                    instr_per_item=1.0,
                    streams=[
                        AccessStream(
                            array_bytes=data.nbytes,
                            n_accesses=data.size,
                            pattern=AccessPattern.SEQUENTIAL,
                            elem_bytes=data.itemsize,
                        )
                    ],
                )
            finally:
                ctx.close_span(OpEvent(
                    kind="alloc", label=label, items=data.size,
                    bytes_materialized=data.nbytes))
        return arr

    def track(self, data: np.ndarray, label: str) -> TrackedArray:
        """Track an existing array's storage without first-touch charges."""
        return TrackedArray(self, data, label)

    def charge_alloc(self, nbytes: int, label: str):
        """Record a raw allocation (no array object)."""
        return self.machine.allocator.allocate(nbytes, label)

    def free(self, allocation) -> None:
        """Release a raw allocation."""
        self.machine.allocator.free(allocation)

    # Convenience stream constructors ------------------------------------
    @staticmethod
    def seq(array_bytes: int, n_accesses: int, elem_bytes: int = 4) -> AccessStream:
        return AccessStream(array_bytes, n_accesses, AccessPattern.SEQUENTIAL, elem_bytes)

    @staticmethod
    def rand(array_bytes: int, n_accesses: int, elem_bytes: int = 4) -> AccessStream:
        return AccessStream(array_bytes, n_accesses, AccessPattern.RANDOM, elem_bytes)

    @staticmethod
    def strided(array_bytes: int, n_accesses: int, elem_bytes: int = 4) -> AccessStream:
        return AccessStream(array_bytes, n_accesses, AccessPattern.STRIDED, elem_bytes)
