"""Simulated parallel runtimes.

The paper compares two runtime systems: OpenMP (under SuiteSparse, with
static/dynamic self-scheduling) and Galois (work stealing, thread binding,
huge pages, memory preallocation).  Algorithms execute their numpy kernels
for real; the runtime objects here charge the machine model for what each
parallel loop *would* cost on the paper's 56-core machine.
"""

from repro.runtime.base import Runtime, TrackedArray
from repro.runtime.openmp import OpenMPRuntime
from repro.runtime.galois_rt import GaloisRuntime

__all__ = ["GaloisRuntime", "OpenMPRuntime", "Runtime", "TrackedArray"]
