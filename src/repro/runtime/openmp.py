"""OpenMP-style runtime model (SuiteSparse's substrate, §III-A).

SuiteSparse divides CSR rows (or CSC columns) among threads and relies on
OpenMP static/dynamic scheduling plus its own self-scheduling.  The model
therefore defaults parallel loops to ``Schedule.STATIC`` — contiguous block
partitions whose imbalance is computed from the declared per-item weights —
and exposes ``dynamic()`` for the kernels SuiteSparse self-schedules.

Huge pages are *not* used: the paper observed SuiteSparse performs better
without them (§IV), so its DRAM accesses pay the full latency.
"""

from __future__ import annotations

from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.runtime.base import Runtime


class OpenMPRuntime(Runtime):
    """SuiteSparse's OpenMP execution model."""

    default_schedule = Schedule.STATIC
    huge_pages = False
    loop_fixed_ns = 140_000.0
    name = "openmp"

    def __init__(self, machine: Machine):
        super().__init__(machine)

    def dynamic(self, n_items, instr_per_item=1.0, streams=(), weights=None,
                max_item_weight=None, extra_instr=0):
        """A loop under OpenMP ``schedule(dynamic)`` / self-scheduling."""
        return self.parallel(
            n_items,
            instr_per_item=instr_per_item,
            streams=streams,
            weights=weights,
            max_item_weight=max_item_weight,
            schedule=Schedule.DYNAMIC,
            extra_instr=extra_instr,
        )
