"""A loop-fusing GraphBLAS backend: the paper's future-work ablation.

The paper's conclusion (§VII) argues that limitations (i) lightweight loops
and (ii) materialization "may be solved using restructuring compiler
technology": a compiler that fuses consecutive GraphBLAS calls into one
loop would eliminate the extra passes, loop launches and intermediate
write-backs — at the price of breaking the separation of concerns between
algorithm developers and system programmers.

:class:`FusedGaloisBLASBackend` models that hypothetical compiler: when an
element-wise operation immediately follows another fusable operation, it is
charged as a *continuation of the same loop* — no loop launch, no API-call
overhead, no separate write-back pass; only the marginal per-element
instructions.  Matrix products and reductions still break the fusion chain
(a compiler cannot fuse across an SpGEMM's data dependence).

The ablation benchmark (``benchmarks/bench_ablation.py``) measures how much
of the Lonestar advantage this recovers: on round-dominated workloads most
of the per-round overhead disappears, but the bulk-synchronous rounds
themselves — limitation (iv) — remain, which is exactly the paper's point
that compiler technology addresses only limitations (i) and (ii).
"""

from __future__ import annotations

from dataclasses import replace

from repro.galoisblas.backend import GaloisBLASBackend
from repro.graphblas.backend import INSTR_PER_ELEM
from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine

#: Cost events a restructuring compiler could fuse into the previous pass.
FUSABLE = frozenset({
    "ewise_add", "ewise_mult", "apply", "assign", "select", "extract",
    "reduce_vector",
})


class FusedGaloisBLASBackend(GaloisBLASBackend):
    """GaloisBLAS plus hypothetical compiler-driven loop fusion."""

    name = "galoisblas-fused"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        self._chain_open = False
        self.fused_calls = 0

    def emit(self, event, out, *, mat=None, mat2=None, weights=None):
        """Charge an op event, fusing it into the previous pass if possible.

        A fused continuation materializes nothing: the values flow in
        registers, so the recorded event carries ``bytes_materialized=0``.
        """
        if event.kind in FUSABLE and self._chain_open:
            # Fused continuation: values flow in registers; only the
            # marginal per-element instructions are charged, with no loop
            # launch, call overhead or write-back pass.
            self.fused_calls += 1
            n = max(event.items, 1)
            ctx = self.machine.context
            ctx.open_span()
            try:
                self.machine.charge_loop(
                    schedule=Schedule.STEAL,
                    instructions=int(n * INSTR_PER_ELEM),
                    n_items=n,
                    huge_pages=True,
                    barrier=False,
                    fixed_ns=0.0,
                )
            finally:
                # Stamp the continuation so trace analysis can count fused
                # calls and the intermediate bytes the fusion skipped.
                recorded = ctx.close_span(replace(
                    event, fused=True,
                    bytes_not_materialized=self._materialized_bytes(event,
                                                                    out)))
            return recorded
        recorded = super().emit(event, out, mat=mat, mat2=mat2,
                                weights=weights)
        self._chain_open = (event.kind in FUSABLE
                            or event.kind in ("mxv", "vxm"))
        return recorded
