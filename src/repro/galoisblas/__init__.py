"""GaloisBLAS — the paper's GraphBLAS-on-Galois implementation (§III-B).

The same GraphBLAS API as :mod:`repro.suitesparse`, but running on the
Galois runtime model: chunked work stealing, huge pages, preallocated
memory, three sparse-vector representations chosen per use (ordered map,
unordered list, dense array), custom matrix-vector kernels, and a
diagonal-matrix SpGEMM fast path.
"""

from repro.galoisblas.backend import GaloisBLASBackend, GALOIS_PREALLOC_BYTES

__all__ = ["GaloisBLASBackend", "GALOIS_PREALLOC_BYTES"]
