"""The GaloisBLAS backend: GraphBLAS kernels on the Galois runtime."""

from __future__ import annotations

from repro.graphblas.backend import BaseBackend
from repro.graphblas.vector import (
    REP_DENSE_ARRAY,
    REP_ORDERED_MAP,
    REP_UNORDERED_LIST,
)
from repro.perf.machine import Machine
from repro.runtime.galois_rt import GaloisRuntime

#: Pages the Galois runtime reserves up front (scaled machine bytes).  This
#: is why GaloisBLAS/Lonestar MRSS exceeds SuiteSparse's on small graphs in
#: Table III.
GALOIS_PREALLOC_BYTES = 2 * 2**30


class GaloisBLASBackend(BaseBackend):
    """GraphBLAS kernels with Galois's runtime and vector representations."""

    name = "galoisblas"
    default_vector_rep = REP_DENSE_ARRAY
    #: Custom mxv/vxm kernels (not routed through matrix-matrix machinery),
    #: but each call still launches Galois parallel loops (nanoseconds).
    call_overhead_ns = 150_000.0
    supports_diag_opt = True

    def __init__(self, machine: Machine):
        super().__init__(GaloisRuntime(machine))

    def pick_rep(self, size: int, expected_nvals: int, ordered: bool = False) -> str:
        """Choose among the three vector representations (§III-B).

        Dense array when most entries will be explicit (like bfs's distance
        vector); ordered map when sparse and iteration order matters;
        unordered list when sparse and only parallel insert/remove is needed.
        """
        if expected_nvals * 4 >= size:
            return REP_DENSE_ARRAY
        return REP_ORDERED_MAP if ordered else REP_UNORDERED_LIST
