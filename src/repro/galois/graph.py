"""Galois graph ADT.

A :class:`Graph` owns CSR out-edge topology (and builds the in-edge CSC view
lazily), optional edge weights, and named node-data arrays whose storage is
charged to the machine's allocator — matching how Galois's ``LC_CSR_Graph``
stores label fields.

The vectorized neighborhood methods (:meth:`Graph.gather_out_edges`) give
bulk operators numpy-speed execution; their *cost* is charged by the loop
helpers in :mod:`repro.galois.loops`, not here.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import IndexOutOfBounds, InvalidValue
from repro.runtime.base import Runtime, TrackedArray
from repro.sparse.csr import CSRMatrix, gather_rows


class Graph:
    """A directed graph in CSR form with optional edge weights."""

    def __init__(self, runtime: Runtime, csr: CSRMatrix,
                 weights: Optional[np.ndarray] = None, name: str = "graph"):
        if csr.nrows != csr.ncols:
            raise InvalidValue("graphs must have square adjacency structure")
        if weights is not None and len(weights) != csr.nvals:
            raise InvalidValue("weights length must equal edge count")
        self.runtime = runtime
        self.name = name
        self.csr = csr
        self.weights = weights
        self._csc: Optional[CSRMatrix] = None
        self._csc_weights: Optional[np.ndarray] = None
        # Structural-metadata memo (numpy-level only; the machine model's
        # accounting is untouched — kernels still declare the same streams).
        self._in_deg: Optional[np.ndarray] = None
        self.node_data: Dict[str, TrackedArray] = {}
        nbytes = csr.nbytes + (weights.nbytes if weights is not None else 0)
        self._allocation = runtime.charge_alloc(nbytes, f"Graph:{name}")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def nnodes(self) -> int:
        return self.csr.nrows

    @property
    def nedges(self) -> int:
        return self.csr.nvals

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex (cached by the CSR; do not mutate)."""
        return self.csr.row_degrees()

    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex (cached; do not mutate)."""
        if self._in_deg is None:
            self._in_deg = np.bincount(self.csr.indices,
                                       minlength=self.nnodes)
            self._in_deg.setflags(write=False)
        return self._in_deg

    def out_neighbors(self, node: int) -> np.ndarray:
        """Destination ids of ``node``'s out-edges."""
        cols, _ = self.csr.row(node)
        return cols

    def out_edges(self, node: int):
        """(destinations, weights) of ``node``'s out-edges."""
        if not 0 <= node < self.nnodes:
            raise IndexOutOfBounds(f"node {node} out of range")
        lo, hi = self.csr.indptr[node], self.csr.indptr[node + 1]
        dsts = self.csr.indices[lo:hi]
        w = None if self.weights is None else self.weights[lo:hi]
        return dsts, w

    def in_csr(self) -> CSRMatrix:
        """The in-edge (CSC) view, built once on first use."""
        if self._csc is None:
            self._csc = self.csr.transpose()
            self.runtime.charge_alloc(self._csc.nbytes, f"Graph:{self.name}:in")
            self.runtime.parallel(
                n_items=self.nedges,
                instr_per_item=4.0,
                streams=[
                    self.runtime.seq(self.csr.nbytes, self.nedges),
                    self.runtime.rand(self.csr.nbytes, self.nedges),
                ],
            )
        return self._csc

    # ------------------------------------------------------------------
    # Bulk neighborhood access (for vectorized operators)
    # ------------------------------------------------------------------
    def gather_out_edges(self, sources: np.ndarray):
        """Edges out of ``sources``: (dsts, weights, seg) concatenated.

        ``seg[k]`` is the position in ``sources`` edge ``k`` belongs to, so
        ``sources[seg]`` recovers per-edge source ids.
        """
        dsts, positions, seg = gather_rows(self.csr, sources)
        w = None if self.weights is None else self.weights[positions]
        return dsts, w, seg

    def gather_in_edges(self, targets: np.ndarray):
        """Edges into ``targets`` via the CSC view: (srcs, weights, seg)."""
        csc = self.in_csr()
        srcs, positions, seg = gather_rows(csc, targets)
        if self.weights is None:
            w = None
        else:
            if self._csc_weights is None:
                # Align weights with the CSC ordering once.
                order = np.argsort(self.csr.indices, kind="stable")
                self._csc_weights = self.weights[order]
                self.runtime.charge_alloc(
                    self._csc_weights.nbytes, f"Graph:{self.name}:in_weights")
            w = self._csc_weights[positions]
        return srcs, w, seg

    # ------------------------------------------------------------------
    # Node data
    # ------------------------------------------------------------------
    def add_node_data(self, label: str, dtype, fill=0) -> np.ndarray:
        """Allocate a node-label array (charged, first-touch)."""
        tracked = self.runtime.new_array(self.nnodes, dtype,
                                         f"Graph:{self.name}:{label}",
                                         fill=fill)
        self.node_data[label] = tracked
        return tracked.data

    def get_data(self, label: str) -> np.ndarray:
        """A previously added node-data array."""
        return self.node_data[label].data

    def max_out_degree_vertex(self) -> int:
        """The bfs/sssp source the paper uses for non-road graphs (§IV)."""
        return int(np.argmax(self.out_degrees()))

    def sorted_by_degree(self) -> "Graph":
        """Relabeled copy with vertices in ascending total-degree order.

        This is the preprocessing step of Lonestar's triangle-listing tc;
        the sorted graph is also fed to the gb-sort/gb-ll variants (§V-B).
        """
        total = self.out_degrees() + self.in_degrees()
        perm = np.argsort(total, kind="stable").astype(np.int64)
        new_csr = self.csr.permute(perm)
        self.runtime.parallel(
            n_items=self.nedges,
            instr_per_item=6.0,
            streams=[self.runtime.seq(self.csr.nbytes, self.nedges),
                     self.runtime.rand(self.csr.nbytes, self.nedges)],
        )
        return Graph(self.runtime, new_csr, None, name=f"{self.name}_sorted")

    def __repr__(self):
        weighted = "weighted" if self.weights is not None else "unweighted"
        return (f"Graph({self.name!r}, |V|={self.nnodes}, |E|={self.nedges}, "
                f"{weighted})")
