"""The graph-based API (the paper's Galois system, §II-B).

Provides the abstract data types Lonestar programs are written against:

* :class:`~repro.galois.graph.Graph` — CSR topology with optional edge
  weights, lazy in-edge (CSC) view, node-data arrays, and vectorized
  neighborhood gathers for bulk operators;
* worklists — :class:`~repro.galois.worklist.SparseWorklist` (explicit
  active-vertex list), :class:`~repro.galois.worklist.DenseWorklist`
  (bit-vector), and :class:`~repro.galois.worklist.OBIM` (soft-priority
  buckets, the scheduler under asynchronous delta-stepping);
* loop constructs — :meth:`~repro.runtime.galois_rt.GaloisRuntime.do_all`
  (bulk parallel loop over vertices/edges, one barrier) and
  :meth:`~repro.runtime.galois_rt.GaloisRuntime.for_each` (asynchronous
  worklist execution, barrier-free between pushes), with edge tiling for
  load balance; operators describe each loop with an
  :class:`~repro.engine.events.OpEvent`.

The crucial API property the paper leans on: an operator here can fuse
arbitrary composite updates in one loop, perform fine-grained operations on
individual vertices, and run asynchronously off a single worklist — the
three things a matrix-based API cannot express.
"""

from repro.galois.graph import Graph
from repro.galois.loops import DEFAULT_TILE, edge_scan_stream
from repro.galois.worklist import DenseWorklist, OBIM, SparseWorklist

__all__ = [
    "DEFAULT_TILE",
    "DenseWorklist",
    "Graph",
    "OBIM",
    "SparseWorklist",
    "edge_scan_stream",
]
