"""The graph-based API (the paper's Galois system, §II-B).

Provides the abstract data types Lonestar programs are written against:

* :class:`~repro.galois.graph.Graph` — CSR topology with optional edge
  weights, lazy in-edge (CSC) view, node-data arrays, and vectorized
  neighborhood gathers for bulk operators;
* worklists — :class:`~repro.galois.worklist.SparseWorklist` (explicit
  active-vertex list), :class:`~repro.galois.worklist.DenseWorklist`
  (bit-vector), and :class:`~repro.galois.worklist.OBIM` (soft-priority
  buckets, the scheduler under asynchronous delta-stepping);
* loop constructs — :func:`~repro.galois.loops.do_all` (bulk parallel loop
  over vertices/edges, one barrier) and
  :func:`~repro.galois.loops.for_each` (asynchronous worklist execution,
  barrier-free between pushes), with edge tiling for load balance.

The crucial API property the paper leans on: an operator here can fuse
arbitrary composite updates in one loop, perform fine-grained operations on
individual vertices, and run asynchronously off a single worklist — the
three things a matrix-based API cannot express.
"""

from repro.galois.graph import Graph
from repro.galois.worklist import DenseWorklist, OBIM, SparseWorklist
from repro.galois.loops import LoopCharge, do_all, for_each_charge

__all__ = [
    "DenseWorklist",
    "Graph",
    "LoopCharge",
    "OBIM",
    "SparseWorklist",
    "do_all",
    "for_each_charge",
]
