"""Worklists: the active-vertex tracking structures of §II-A.

* :class:`SparseWorklist` — an explicit list of active vertices with a
  current/next pair for round-based data-driven algorithms (Algorithm 1);
* :class:`DenseWorklist` — a bit-vector of size |V|;
* :class:`OBIM` — ordered-by-integer-metric soft-priority buckets, the
  Galois scheduler that asynchronous delta-stepping runs on.  Lower
  priorities are drained first; pushes go to any bucket, including the one
  being drained (that is the asynchrony — no round barrier between a push
  and its processing).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import InvalidValue
from repro.sparse.join import dedup_bounded


class SparseWorklist:
    """Current/next active-vertex lists (vectorized push/swap)."""

    def __init__(self, nnodes: int, dedup: bool = True):
        self.nnodes = nnodes
        self.dedup = dedup
        self._current = np.empty(0, dtype=np.int64)
        self._next_chunks = []

    def push(self, items: np.ndarray) -> None:
        """Add items to the *next* worklist."""
        items = np.asarray(items, dtype=np.int64)
        if len(items):
            self._next_chunks.append(items)

    def swap(self) -> np.ndarray:
        """Make next current; returns the new current items."""
        if self._next_chunks:
            merged = np.concatenate(self._next_chunks)
            if self.dedup:
                # Node ids are bounded by |V|: O(n) flag dedup, same
                # sorted-unique output as the np.unique it replaces.
                merged = dedup_bounded(merged, self.nnodes)
            self._current = merged
        else:
            self._current = np.empty(0, dtype=np.int64)
        self._next_chunks = []
        return self._current

    @property
    def current(self) -> np.ndarray:
        return self._current

    def empty(self) -> bool:
        """True when the *next* worklist has nothing pending."""
        return not self._next_chunks

    def __len__(self):
        return len(self._current)


class DenseWorklist:
    """Bit-vector worklist of size |V| (the paper's dense worklist)."""

    def __init__(self, nnodes: int):
        self.nnodes = nnodes
        self._bits = np.zeros(nnodes, dtype=bool)

    def set(self, items: np.ndarray) -> None:
        """Mark items active."""
        self._bits[np.asarray(items, dtype=np.int64)] = True

    def clear(self) -> None:
        """Deactivate everything."""
        self._bits[:] = False

    def take_all(self) -> np.ndarray:
        """Drain: return active ids and clear the bits."""
        items = np.flatnonzero(self._bits)
        self._bits[:] = False
        return items

    @property
    def count(self) -> int:
        return int(self._bits.sum())

    def __len__(self):
        return self.count


class OBIM:
    """Ordered-by-integer-metric priority buckets (soft priorities, §II-B).

    ``push(items, priorities)`` files items by ``priority // shift`` (the
    delta-stepping bucket function when ``shift`` is the delta);
    ``pop_bucket()`` drains the lowest non-empty bucket.  Items may be
    pushed into the bucket currently being drained, which is what lets
    asynchronous delta-stepping settle a bucket without global barriers.
    ``domain`` — the exclusive upper bound on item ids (|V|), when known —
    unlocks the O(n) flag-array dedup for bucket drains.
    """

    def __init__(self, shift: int = 1, domain: Optional[int] = None):
        if shift <= 0:
            raise InvalidValue("OBIM shift must be positive")
        self.shift = shift
        self.domain = domain
        self._buckets: Dict[int, list] = {}
        self.pushes = 0

    def push(self, items: np.ndarray, priorities: np.ndarray) -> None:
        """File items into buckets by ``priority // shift``."""
        items = np.asarray(items, dtype=np.int64)
        if len(items) == 0:
            return
        priorities = np.asarray(priorities)
        keys = (priorities // self.shift).astype(np.int64)
        self.pushes += len(items)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_items = items[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk_keys, chunk in zip(
            np.split(sorted_keys, boundaries), np.split(sorted_items, boundaries)
        ):
            if len(chunk):
                self._buckets.setdefault(int(chunk_keys[0]), []).append(chunk)

    def min_bucket(self) -> Optional[int]:
        """Lowest non-empty bucket key, or None when drained."""
        live = [k for k, chunks in self._buckets.items() if chunks]
        return min(live) if live else None

    def pop_bucket(self, key: Optional[int] = None) -> np.ndarray:
        """Drain one bucket (the lowest by default)."""
        if key is None:
            key = self.min_bucket()
        if key is None:
            return np.empty(0, dtype=np.int64)
        chunks = self._buckets.pop(key, [])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(chunks)
        if self.domain is not None:
            return dedup_bounded(merged, self.domain)
        return np.unique(merged)

    def empty(self) -> bool:
        """True when every bucket has been drained."""
        return self.min_bucket() is None
