"""Galois loop constructs and their cost accounting.

Lonestar operators execute as vectorized numpy kernels for speed; these
helpers charge the machine model with what the equivalent ``galois::do_all``
or ``galois::for_each`` loop costs on the 56-core machine:

* :func:`do_all` — one bulk-parallel loop with work stealing and a closing
  barrier (Algorithm 1's round body is one ``do_all`` — the *fused* loop the
  matrix API cannot express);
* :func:`for_each_charge` — a slice of an asynchronous worklist loop:
  charged barrier-free, because ``for_each`` threads keep pulling from the
  worklist without synchronizing between pushes.

Edge tiling (§V-B, sssp): when ``tile_edges`` is set, a high-degree vertex's
edges are split into tiles of that size, capping the largest indivisible
work item the load-balance model sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.perf.costmodel import Schedule
from repro.runtime.base import Runtime

#: Galois's default edge-tile granularity.
DEFAULT_TILE = 512

#: Fixed dispatch cost of one asynchronous worklist slice: threads keep
#: pulling work without a barrier, so this is far below a loop launch.
FOR_EACH_SLICE_NS = 15_000.0


@dataclass
class LoopCharge:
    """Declared cost of one operator loop (what the operator touches)."""

    n_items: int
    instr_per_item: float = 2.0
    streams: Sequence = ()
    weights: Optional[np.ndarray] = None
    tile_edges: Optional[int] = None
    extra_instr: int = 0


def edge_scan_stream(runtime: Runtime, graph, scanned: int, n_sources: int):
    """The CSR traffic of scanning ``scanned`` edges from ``n_sources`` rows.

    A sparse frontier hops between row starts (strided locality); a frontier
    covering most of the graph degenerates into a sequential CSR pass.
    """
    if n_sources * 2 >= graph.nnodes:
        return runtime.seq(graph.csr.nbytes, scanned)
    return runtime.strided(graph.csr.nbytes, scanned)


def do_all(runtime: Runtime, charge: LoopCharge) -> None:
    """Charge one ``galois::do_all`` loop (work stealing, one barrier)."""
    max_item = None
    if charge.weights is not None and len(charge.weights) and charge.tile_edges:
        max_item = float(min(np.max(charge.weights), charge.tile_edges))
    runtime.parallel(
        n_items=charge.n_items,
        instr_per_item=charge.instr_per_item,
        streams=charge.streams,
        weights=charge.weights,
        max_item_weight=max_item,
        schedule=Schedule.STEAL,
        extra_instr=charge.extra_instr,
    )


def for_each_charge(runtime: Runtime, charge: LoopCharge) -> None:
    """Charge one asynchronous slice of a ``galois::for_each`` loop.

    No barrier: threads drain the worklist continuously.  The scheduling
    cost of the concurrent worklist is folded into ``instr_per_item``.
    """
    max_item = None
    if charge.weights is not None and len(charge.weights) and charge.tile_edges:
        max_item = float(min(np.max(charge.weights), charge.tile_edges))
    runtime.machine.charge_loop(
        schedule=Schedule.STEAL,
        instructions=int(charge.n_items * charge.instr_per_item)
        + charge.extra_instr,
        streams=charge.streams,
        n_items=charge.n_items,
        weights=charge.weights,
        max_item_weight=max_item,
        huge_pages=runtime.huge_pages,
        barrier=False,
        fixed_ns=FOR_EACH_SLICE_NS,
    )
