"""Galois loop helpers shared by the Lonestar operators.

The loop constructs themselves live on the runtime:
:meth:`repro.runtime.galois_rt.GaloisRuntime.do_all` (bulk-parallel loop
with work stealing and a closing barrier) and
:meth:`repro.runtime.galois_rt.GaloisRuntime.for_each` (one asynchronous
worklist slice, barrier-free) — both emitters of the unified
:class:`~repro.engine.events.OpEvent` protocol.  This module keeps the
pieces that describe *what a loop touches* rather than how it is charged.

Edge tiling (§V-B, sssp): when ``tile_edges`` is passed to an emitter, a
high-degree vertex's edges are split into tiles of that size, capping the
largest indivisible work item the load-balance model sees.
"""

from __future__ import annotations

from repro.runtime.base import Runtime

#: Galois's default edge-tile granularity.
DEFAULT_TILE = 512


def edge_scan_stream(runtime: Runtime, graph, scanned: int, n_sources: int):
    """The CSR traffic of scanning ``scanned`` edges from ``n_sources`` rows.

    A sparse frontier hops between row starts (strided locality); a frontier
    covering most of the graph degenerates into a sequential CSR pass.
    """
    if n_sources * 2 >= graph.nnodes:
        return runtime.seq(graph.csr.nbytes, scanned)
    return runtime.strided(graph.csr.nbytes, scanned)
