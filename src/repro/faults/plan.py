"""Fault specs, the active plan, and the trip points' fast path."""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro import errors

#: Trip-point names compiled into the harness.
SITES = ("kernel", "alloc")

#: Injectable fault kinds.  The first four *raise*; the last two are
#: side-effect kinds that *act* at the trip point and let the cell keep
#: running: ``memhog`` allocates (and pins) ``mb`` MiB of real memory per
#: firing to drive RSS up against ``REPRO_WORKER_MEM_BUDGET``, and
#: ``slow`` sleeps ``ms`` milliseconds per firing to burn wall clock
#: against a job deadline.  Both exist so the governor drills (OOM kill,
#: cooperative cancellation, drain under load) replay deterministically.
KINDS = ("fault", "oom", "timeout", "fatal", "memhog", "slow")

#: Kinds that perform a side effect instead of raising.
ACTING_KINDS = ("memhog", "slow")


class InjectedFault(errors.ReproError):
    """A permanent fault raised by the active :class:`FaultPlan`.

    Cells failing with this land in ``ERR`` (they are not retried).
    """

    def __init__(self, message: str, site: str = "", kind: str = "fault"):
        super().__init__(message)
        self.site = site
        self.kind = kind


class TransientFault(InjectedFault):
    """An injected fault that a retry is expected to clear.

    :func:`repro.core.experiments.run_cell` retries cells failing with this
    under its bounded backoff policy; the fault plan's call counters keep
    advancing across attempts, so an ``nth``-triggered transient fires once
    and the retry passes.
    """


class FatalFault(BaseException):
    """An injected fault that no per-cell handler may absorb.

    Derives from :class:`BaseException` on purpose: it models the process
    being killed mid-run (power loss, OOM-killer), so it must escape
    ``run_cell``'s ``except Exception`` and abort the study loop — the
    scenario the checkpoint journal exists to recover from.
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic injection: fire at the Nth crossing of a site.

    ``site`` is ``"kernel"``, ``"alloc"`` or ``"*"``; ``kind`` one of
    ``"fault"``/``"oom"``/``"timeout"``/``"fatal"``.  The spec fires on
    trips ``nth .. nth + times - 1`` of its site (1-based, counted per site
    across the whole plan lifetime); ``times=0`` means "from ``nth``
    onwards, forever".  ``transient=True`` raises :class:`TransientFault`
    regardless of ``kind`` (the kind is kept in the message and attribute).
    """

    site: str = "*"
    kind: str = "fault"
    nth: int = 1
    times: int = 1
    transient: bool = False
    #: ``memhog`` only: MiB of touched memory pinned per firing.
    mb: int = 16
    #: ``slow`` only: milliseconds slept per firing.
    ms: int = 100

    def __post_init__(self):
        if self.site not in SITES + ("*",):
            raise errors.InvalidValue(
                f"unknown fault site {self.site!r}; known: {list(SITES)} or '*'")
        if self.kind not in KINDS:
            raise errors.InvalidValue(
                f"unknown fault kind {self.kind!r}; known: {list(KINDS)}")
        if self.nth < 1:
            raise errors.InvalidValue("fault nth is 1-based; got "
                                      f"{self.nth}")
        if self.times < 0:
            raise errors.InvalidValue("fault times must be >= 0 "
                                      "(0 = forever)")
        if self.mb < 1 or self.ms < 1:
            raise errors.InvalidValue("fault mb/ms must be >= 1; got "
                                      f"mb={self.mb}, ms={self.ms}")
        if self.transient and self.kind in ACTING_KINDS:
            raise errors.InvalidValue(
                f"fault kind {self.kind!r} acts instead of raising; "
                "'transient' does not apply")

    def matches(self, site: str, count: int) -> bool:
        """Whether this spec fires for the ``count``-th trip at ``site``."""
        if self.site != "*" and self.site != site:
            return False
        if count < self.nth:
            return False
        return self.times == 0 or count < self.nth + self.times


class FaultPlan:
    """A set of :class:`FaultSpec`\\ s plus an optional seeded random rate.

    The plan owns one call counter per site, so trigger points are
    deterministic for a fixed workload; the probabilistic channel draws
    from ``numpy``'s :func:`~numpy.random.default_rng` seeded at
    construction, so it too replays identically.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (),
                 rate: float = 0.0, seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        if not 0.0 <= rate <= 1.0:
            raise errors.InvalidValue("fault rate must be in [0, 1]; got "
                                      f"{rate}")
        self.rate = rate
        self.seed = seed
        self._rng = None
        if rate > 0.0:
            import numpy as np

            self._rng = np.random.default_rng(seed)
        self.counts = {site: 0 for site in SITES}
        #: Faults raised so far, as (site, count, kind, transient) tuples.
        self.fired: List[tuple] = []
        #: ``memhog`` ballast: referenced so the pages stay resident and
        #: the process RSS genuinely rises until the plan is dropped.
        self.ballast: List[object] = []

    def trip(self, site: str, label: str = "") -> None:
        """Advance the site counter; raise or act if any spec (or the
        rate) fires.  Side-effect kinds (``memhog``/``slow``) act and
        fall through so the cell keeps running."""
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        for spec in self.specs:
            if spec.matches(site, count):
                if spec.kind in ACTING_KINDS:
                    self._act(site, count, spec)
                else:
                    self._raise(site, count, spec.kind, spec.transient,
                                label)
        if self._rng is not None and self._rng.random() < self.rate:
            self._raise(site, count, "fault", True, label)

    def _act(self, site: str, count: int, spec: FaultSpec) -> None:
        self.fired.append((site, count, spec.kind, False))
        if spec.kind == "memhog":
            import numpy as np

            block = np.empty(spec.mb << 20, dtype=np.uint8)
            block[::4096] = 1  # touch every page so RSS actually grows
            self.ballast.append(block)
        elif spec.kind == "slow":
            import time

            time.sleep(spec.ms / 1000.0)

    def _raise(self, site: str, count: int, kind: str, transient: bool,
               label: str):
        self.fired.append((site, count, kind, transient))
        where = f"{site} trip #{count}" + (f" ({label})" if label else "")
        if kind == "fatal":
            raise FatalFault(f"injected fatal fault at {where}", site=site)
        if transient:
            raise TransientFault(
                f"injected transient {kind} at {where}", site=site, kind=kind)
        if kind == "oom":
            raise errors.OutOfMemoryError(f"injected OOM at {where}")
        if kind == "timeout":
            raise errors.TimeoutError(f"injected timeout at {where}")
        raise InjectedFault(f"injected fault at {where}",
                            site=site, kind=kind)


#: The installed plan; ``None`` keeps every trip point a cheap no-op.
_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make ``plan`` the active plan (``None`` disables injection)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear() -> None:
    """Disable fault injection."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _PLAN


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """Scope a plan to a ``with`` block, restoring the previous one."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def trip(site: str, label: str = "") -> None:
    """Trip point hook — called from kernel/allocator boundaries."""
    if _PLAN is not None:
        _PLAN.trip(site, label)


# ----------------------------------------------------------------------
# Environment configuration
# ----------------------------------------------------------------------

def parse_spec(text: str) -> FaultSpec:
    """Parse one ``site:kind[:transient][:nth=N][:times=N][:mb=N][:ms=N]``
    spec."""
    parts = [p.strip() for p in text.split(":") if p.strip()]
    if len(parts) < 2:
        raise errors.InvalidValue(
            f"bad fault spec {text!r}: want site:kind[:transient][:nth=N]"
            "[:times=N][:mb=N][:ms=N]")
    site, kind = parts[0], parts[1]
    kwargs = {"site": site, "kind": kind}
    for extra in parts[2:]:
        if extra == "transient":
            kwargs["transient"] = True
        elif (extra.startswith("nth=") or extra.startswith("times=")
              or extra.startswith("mb=") or extra.startswith("ms=")):
            key, _, value = extra.partition("=")
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise errors.InvalidValue(
                    f"bad fault spec {text!r}: {key} wants an integer, "
                    f"got {value!r}") from None
        else:
            raise errors.InvalidValue(
                f"bad fault spec {text!r}: unknown option {extra!r}")
    return FaultSpec(**kwargs)


def plan_from_env(environ=None) -> Optional[FaultPlan]:
    """Build a plan from ``REPRO_FAULTS``/``_RATE``/``_SEED``, or ``None``."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_FAULTS", "").strip()
    rate = float(env.get("REPRO_FAULTS_RATE", "0") or 0)
    seed = int(env.get("REPRO_FAULTS_SEED", "0") or 0)
    specs = [parse_spec(p) for p in raw.split(";") if p.strip()]
    if not specs and rate == 0.0:
        return None
    return FaultPlan(specs, rate=rate, seed=seed)


def install_from_env(environ=None) -> Optional[FaultPlan]:
    """Install the environment-configured plan; returns it (or ``None``).

    A no-op (keeping any programmatically installed plan) when the
    environment requests nothing.  Also validates the companion
    ``REPRO_CELL_RETRIES`` knob so a malformed retry setting fails the
    run here, up front, like a malformed fault spec.
    """
    from repro.faults.policy import retry_policy_from_env

    retry_policy_from_env(environ)  # validate-only; run_cell reads it live
    plan = plan_from_env(environ)
    if plan is not None:
        install(plan)
    return plan
