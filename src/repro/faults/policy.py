"""Bounded retry-with-backoff policy for transient per-cell faults."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import errors


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and with what delays, a failed attempt is retried.

    ``max_attempts`` bounds the *total* number of attempts (first try
    included).  Delays grow geometrically — ``backoff_base *
    backoff_factor**(attempt - 1)`` seconds after the given attempt, capped
    at ``backoff_cap`` — and are real wall-clock sleeps, kept tiny by
    default because the injected faults they answer are simulated too.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise errors.InvalidValue("max_attempts must be >= 1; got "
                                      f"{self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise errors.InvalidValue("backoff delays must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after the given (1-based) failed attempt."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    def wait(self, attempt: int) -> float:
        """Sleep out the backoff for ``attempt``; returns the delay used."""
        d = self.delay(attempt)
        if d > 0:
            self.sleep(d)
        return d


#: Retries disabled: one attempt, no sleeping.
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base=0.0)


def retry_policy_from_env(environ: Optional[dict] = None,
                          default: Optional[RetryPolicy] = None
                          ) -> RetryPolicy:
    """The cell retry policy, honoring the ``REPRO_CELL_RETRIES`` knob.

    ``REPRO_CELL_RETRIES`` is the total number of attempts per cell (first
    try included, so ``1`` disables retries); unset/empty keeps
    ``default`` (the built-in :class:`RetryPolicy` when None).  A
    malformed value raises :class:`~repro.errors.InvalidValue` — the knob
    is also validated at install time by
    :func:`repro.faults.install_from_env`, like the fault knobs, so bad
    settings fail a run before its first cell.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_CELL_RETRIES", "").strip()
    if not raw:
        return default if default is not None else RetryPolicy()
    try:
        attempts = int(raw)
    except ValueError:
        raise errors.InvalidValue(
            "REPRO_CELL_RETRIES wants an integer number of attempts "
            f"(first try included); got {raw!r}") from None
    return RetryPolicy(max_attempts=attempts)
