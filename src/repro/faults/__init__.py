"""Deterministic fault injection for resilience testing (``repro.faults``).

The experiment grid legitimately contains failing cells (the paper's ``TO``
and ``OOM`` annotations), so the execution layer must survive *any* cell
failing without losing the rest of the run.  This package makes that
property testable: it plants trip points at the two boundaries every cell
crosses — kernel loop charging (:meth:`repro.perf.machine.Machine.charge_loop`)
and allocation (:meth:`repro.perf.allocator.TrackingAllocator.allocate`) —
and lets a seeded :class:`FaultPlan` raise transient or permanent faults on
the Nth crossing.

Typical use::

    from repro import faults

    plan = faults.FaultPlan([faults.FaultSpec("kernel", "fault",
                                              nth=7, transient=True)])
    with faults.injected(plan):
        run_cell("GB", "bfs", "rmat22", use_cache=False)

Environment knobs (read by the CLI and ``scripts/run_full_study.py`` via
:func:`install_from_env`):

* ``REPRO_FAULTS`` — semicolon-separated specs
  ``site:kind[:transient][:nth=N][:times=N]``, e.g.
  ``kernel:fault:transient:nth=40;alloc:oom:nth=900``.  Sites: ``kernel``,
  ``alloc`` or ``*``.  Kinds: ``fault`` (generic), ``oom``, ``timeout``,
  ``fatal`` (escapes the per-cell handler — simulates a killed run).
* ``REPRO_FAULTS_RATE`` / ``REPRO_FAULTS_SEED`` — probabilistic transient
  faults at the given per-trip rate, from a seeded (deterministic) RNG.
* ``REPRO_CELL_RETRIES`` — total attempts per cell for transient faults
  (first try included; validated at install time like the specs above).
"""

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    FatalFault,
    InjectedFault,
    TransientFault,
    active_plan,
    clear,
    injected,
    install,
    install_from_env,
    plan_from_env,
    trip,
)
from repro.faults.policy import NO_RETRY, RetryPolicy, retry_policy_from_env

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FatalFault",
    "InjectedFault",
    "NO_RETRY",
    "RetryPolicy",
    "TransientFault",
    "active_plan",
    "clear",
    "injected",
    "install",
    "install_from_env",
    "plan_from_env",
    "retry_policy_from_env",
    "trip",
]
