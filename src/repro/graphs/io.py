"""Graph file I/O: edge lists and MatrixMarket coordinate files.

The original study loads its inputs from Galois .gr / MatrixMarket files.
This module provides the equivalent interchange formats so users can run
the harness on their own graphs:

* ``.el`` / ``.wel`` — whitespace-separated (weighted) edge lists, one
  ``src dst [weight]`` per line (the GAP benchmark suite's format);
* ``.mtx`` — MatrixMarket ``coordinate`` format (1-based indices), as
  LAGraph consumes; ``pattern`` and ``integer``/``real`` fields supported,
  ``general`` and ``symmetric`` symmetries supported.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidValue
from repro.sparse.csr import CSRMatrix, build_csr


def write_edge_list(path: str, csr: CSRMatrix,
                    weights: Optional[np.ndarray] = None) -> None:
    """Write ``src dst [weight]`` lines (a .el or .wel file)."""
    rows = np.repeat(np.arange(csr.nrows, dtype=np.int64),
                     np.diff(csr.indptr))
    with open(path, "w") as f:
        if weights is None:
            for r, c in zip(rows, csr.indices):
                f.write(f"{r} {c}\n")
        else:
            if len(weights) != csr.nvals:
                raise InvalidValue("weights length must equal nvals")
            for r, c, w in zip(rows, csr.indices, weights):
                f.write(f"{r} {c} {w}\n")


def read_edge_list(path: str, nnodes: Optional[int] = None,
                   dedup: str = "min") -> Tuple[CSRMatrix, Optional[np.ndarray]]:
    """Read a .el/.wel file; returns (csr, weights-or-None)."""
    srcs, dsts, vals = [], [], []
    weighted = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if len(parts) == 2:
                this_weighted = False
            elif len(parts) == 3:
                this_weighted = True
            else:
                raise InvalidValue(f"{path}:{lineno}: expected 2 or 3 fields")
            if weighted is None:
                weighted = this_weighted
            elif weighted != this_weighted:
                raise InvalidValue(f"{path}:{lineno}: mixed weighted and "
                                   "unweighted lines")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                vals.append(int(float(parts[2])))
    src = np.array(srcs, dtype=np.int64)
    dst = np.array(dsts, dtype=np.int64)
    n = nnodes or (int(max(src.max(initial=-1), dst.max(initial=-1))) + 1)
    w = np.array(vals, dtype=np.int64) if weighted else None
    csr = build_csr(n, n, src, dst, w, dedup=dedup)
    return csr, csr.values


def write_matrix_market(path: str, csr: CSRMatrix,
                        comment: str = "") -> None:
    """Write a MatrixMarket coordinate file (1-based, general)."""
    field = "pattern" if csr.values is None else (
        "integer" if np.issubdtype(csr.values.dtype, np.integer) else "real")
    rows = np.repeat(np.arange(csr.nrows, dtype=np.int64),
                     np.diff(csr.indptr))
    with open(path, "w") as f:
        f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            f.write(f"% {comment}\n")
        f.write(f"{csr.nrows} {csr.ncols} {csr.nvals}\n")
        if csr.values is None:
            for r, c in zip(rows, csr.indices):
                f.write(f"{r + 1} {c + 1}\n")
        else:
            for r, c, v in zip(rows, csr.indices, csr.values):
                f.write(f"{r + 1} {c + 1} {v}\n")


def read_matrix_market(path: str) -> Tuple[CSRMatrix, Optional[np.ndarray]]:
    """Read a MatrixMarket coordinate file; returns (csr, weights)."""
    with open(path) as f:
        header = f.readline()
        parts = header.strip().split()
        if (len(parts) < 5 or parts[0] != "%%MatrixMarket"
                or parts[1] != "matrix" or parts[2] != "coordinate"):
            raise InvalidValue(f"{path}: not a MatrixMarket coordinate file")
        field, symmetry = parts[3], parts[4]
        if field not in ("pattern", "integer", "real"):
            raise InvalidValue(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise InvalidValue(f"{path}: unsupported symmetry {symmetry!r}")
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nrows, ncols, nvals = (int(x) for x in line.split())
        srcs, dsts, vals = [], [], []
        for _ in range(nvals):
            entry = f.readline().split()
            srcs.append(int(entry[0]) - 1)
            dsts.append(int(entry[1]) - 1)
            if field != "pattern":
                vals.append(float(entry[2]))
    src = np.array(srcs, dtype=np.int64)
    dst = np.array(dsts, dtype=np.int64)
    w = None
    if field == "integer":
        w = np.array(vals, dtype=np.int64)
    elif field == "real":
        w = np.array(vals, dtype=np.float64)
    if symmetry == "symmetric":
        off = src != dst
        src, dst = (np.concatenate([src, dst[off]]),
                    np.concatenate([dst, src[off]]))
        if w is not None:
            w = np.concatenate([w, w[off]])
    csr = build_csr(nrows, ncols, src, dst, w, dedup="min")
    return csr, csr.values
