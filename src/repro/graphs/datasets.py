"""The nine scaled input graphs of the study (Table I twins).

Every dataset is a seeded synthetic twin of one of the paper's inputs at
roughly 1/1000 linear scale (see DESIGN.md §5), carrying:

* the generator and weight policy;
* the experiment defaults the paper fixes per graph (§IV): bfs/sssp source
  policy, the ktruss ``k``, the sssp delta, and eukarya's 64-bit distances;
* the paper-scale |V|, |E| and CSR size used to derive each dataset's
  ``scale`` factor, which calibrates the machine model's byte/time scaling.

Builds are cached per process: generating uk07's ~1M edges takes a couple
of seconds and every system under test loads the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import InvalidValue
from repro.graphs import generators as gen
from repro.graphs.transform import (
    heavy_tailed_weights,
    random_weights,
    symmetrize,
)
from repro.sparse.csr import CSRMatrix, build_csr


@dataclass(frozen=True)
class Dataset:
    """One input graph plus its per-graph experiment defaults."""

    name: str
    kind: str
    directed: bool
    native_weights: bool
    weight_style: str  # "random" | "road" | "protein"
    builder: Callable[[], Tuple[int, np.ndarray, np.ndarray]]
    paper_v: float
    paper_e: float
    paper_csr_gb: float
    #: bfs/sssp source: the highest out-degree vertex, except vertex 0 for
    #: road networks (§IV).
    source_policy: str = "max_degree"
    ktruss_k: int = 7
    sssp_delta: int = 1 << 13
    dist_64bit: bool = False
    seed: int = 7

    # ------------------------------------------------------------------
    def build(self) -> Tuple[CSRMatrix, Optional[np.ndarray]]:
        """The directed CSR and its edge weights (cached per process)."""
        cached = _CACHE.get(self.name)
        if cached is None:
            n, src, dst = self.builder()
            csr = build_csr(n, n, src, dst, None, dedup="last")
            weights = self._make_weights(csr)
            cached = {"csr": csr, "weights": weights}
            _CACHE[self.name] = cached
        return cached["csr"], cached["weights"]

    def build_symmetric(self) -> Tuple[CSRMatrix, Optional[np.ndarray]]:
        """The undirected view used by cc, tc and ktruss (cached)."""
        cached = _CACHE.get(self.name)
        if cached is None or "sym" not in cached:
            csr, weights = self.build()
            sym, sym_w = symmetrize(csr, weights)
            _CACHE[self.name].update({"sym": sym, "sym_weights": sym_w})
            cached = _CACHE[self.name]
        return cached["sym"], cached["sym_weights"]

    def _make_weights(self, csr: CSRMatrix) -> np.ndarray:
        if self.weight_style == "protein":
            return heavy_tailed_weights(csr.nvals, self.seed + 1)
        # Road distances and the generated random weights share the same
        # uniform 1..255 integer policy.
        return random_weights(csr.nvals, self.seed + 1)

    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Linear scale factor vs the paper's dataset (edges ratio)."""
        csr, _ = self.build()
        return self.paper_e / max(csr.nvals, 1)

    def source_vertex(self) -> int:
        """The bfs/sssp source under the paper's policy."""
        if self.source_policy == "vertex0":
            return 0
        csr, _ = self.build()
        return int(np.argmax(np.diff(csr.indptr)))

    def __repr__(self):
        return f"Dataset({self.name!r}, kind={self.kind!r})"


_CACHE: Dict[str, dict] = {}


def clear_cache() -> None:
    """Drop all cached builds (tests use this to control memory)."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# The nine graphs, in Table I's size order.
# ----------------------------------------------------------------------

DATASETS: Dict[str, Dataset] = {}


def _register(ds: Dataset) -> Dataset:
    DATASETS[ds.name] = ds
    return ds


ROAD_USA_W = _register(Dataset(
    name="road-USA-W",
    kind="road network",
    directed=True,  # stored directed with both orientations present
    native_weights=True,
    weight_style="road",
    builder=lambda: gen.road_lattice(length=3150, width=2, seed=11),
    paper_v=6.3e6, paper_e=15.1e6, paper_csr_gb=0.2,
    source_policy="vertex0",
    ktruss_k=4,
))

ROAD_USA = _register(Dataset(
    name="road-USA",
    kind="road network",
    directed=True,
    native_weights=True,
    weight_style="road",
    builder=lambda: gen.road_lattice(length=5975, width=4, seed=12),
    paper_v=23.9e6, paper_e=57.7e6, paper_csr_gb=0.6,
    source_policy="vertex0",
    ktruss_k=4,
))

RMAT22 = _register(Dataset(
    name="rmat22",
    kind="synthetic power-law",
    directed=True,
    native_weights=False,
    weight_style="random",
    builder=lambda: gen.rmat(scale=12, edge_factor=16, seed=13),
    paper_v=4.2e6, paper_e=67.1e6, paper_csr_gb=0.5,
))

INDOCHINA04 = _register(Dataset(
    name="indochina04",
    kind="web crawl",
    directed=True,
    native_weights=False,
    weight_style="random",
    builder=lambda: gen.web_crawl(n=7400, out_degree=26, seed=14),
    paper_v=7.4e6, paper_e=191.6e6, paper_csr_gb=1.5,
))

EUKARYA = _register(Dataset(
    name="eukarya",
    kind="protein dataset",
    directed=True,
    native_weights=True,
    weight_style="protein",
    builder=lambda: gen.protein_similarity(n=3200, avg_degree=240,
                                           n_components=5, seed=15),
    paper_v=3.2e6, paper_e=359.7e6, paper_csr_gb=2.8,
    sssp_delta=1 << 20,
    dist_64bit=True,
))

RMAT26 = _register(Dataset(
    name="rmat26",
    kind="synthetic power-law",
    directed=True,
    native_weights=False,
    weight_style="random",
    builder=lambda: gen.rmat(scale=14, edge_factor=16, seed=16),
    paper_v=67.1e6, paper_e=1074e6, paper_csr_gb=8.6,
))

TWITTER40 = _register(Dataset(
    name="twitter40",
    kind="social network",
    directed=True,
    native_weights=False,
    weight_style="random",
    builder=lambda: gen.chung_lu(n=10400, avg_degree=80, in_skew=1.35,
                                 seed=17),
    paper_v=41.7e6, paper_e=1468e6, paper_csr_gb=12.0,
))

FRIENDSTER = _register(Dataset(
    name="friendster",
    kind="social network",
    directed=False,
    native_weights=False,
    weight_style="random",
    builder=lambda: _undirected(gen.chung_lu(n=16400, avg_degree=14,
                                             exponent=2.3, seed=18)),
    paper_v=65.6e6, paper_e=1806e6, paper_csr_gb=28.0,
))

UK07 = _register(Dataset(
    name="uk07",
    kind="web crawl",
    directed=True,
    native_weights=False,
    weight_style="random",
    builder=lambda: gen.web_crawl(n=8200, out_degree=58, seed=19,
                                  copy_prob=0.65),
    paper_v=105.9e6, paper_e=3717e6, paper_csr_gb=29.0,
))

#: The paper's Figure 2 uses the four largest graphs.
LARGEST_FOUR = ("rmat26", "twitter40", "friendster", "uk07")


def _undirected(coo):
    n, src, dst = coo
    return n, np.concatenate([src, dst]), np.concatenate([dst, src])


def get_dataset(name: str) -> Dataset:
    """Look up a dataset by name (built-in or user-registered)."""
    if name not in DATASETS:
        raise InvalidValue(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[name]


def load_csr(name: str):
    """Convenience: (csr, weights) for a dataset name."""
    return get_dataset(name).build()


def register_file_dataset(
    name: str,
    path: str,
    kind: str = "user graph",
    directed: bool = True,
    paper_e: Optional[float] = None,
    source_policy: str = "max_degree",
    ktruss_k: int = 7,
    sssp_delta: int = 1 << 13,
) -> Dataset:
    """Register a user-supplied graph file as a dataset.

    Accepts the formats of :mod:`repro.graphs.io` (.el/.wel edge lists and
    .mtx MatrixMarket).  ``paper_e`` sets the machine model's scale factor
    (how many paper-scale edges this graph stands for); omitted, the graph
    is treated as full scale (scale ~1: no byte/time scaling).  The
    returned dataset works everywhere the built-in nine do — ``run_cell``,
    ``repro-study`` and the benchmarks.
    """
    from repro.graphs import io as graph_io

    def _build():
        if path.endswith(".mtx"):
            csr, _ = graph_io.read_matrix_market(path)
        else:
            csr, _ = graph_io.read_edge_list(path)
        rows = np.repeat(np.arange(csr.nrows, dtype=np.int64),
                         np.diff(csr.indptr))
        return csr.nrows, rows, csr.indices.astype(np.int64)

    ds = Dataset(
        name=name,
        kind=kind,
        directed=directed,
        native_weights=False,
        weight_style="random",
        builder=_build,
        paper_v=0.0,
        paper_e=0.0,  # resolved below (Dataset is frozen)
        paper_csr_gb=0.0,
        source_policy=source_policy,
        ktruss_k=ktruss_k,
        sssp_delta=sssp_delta,
    )
    DATASETS[name] = ds
    if paper_e is not None:
        object.__setattr__(ds, "paper_e", float(paper_e))
    else:
        # Full scale: paper_e equals the actual edge count, so the scale
        # factor resolves to 1.
        csr, _ = ds.build()
        object.__setattr__(ds, "paper_e", float(max(csr.nvals, 1)))
    return ds


def unregister_dataset(name: str) -> None:
    """Remove a user-registered dataset (built-ins may not be removed)."""
    builtin = {"road-USA-W", "road-USA", "rmat22", "indochina04", "eukarya",
               "rmat26", "twitter40", "friendster", "uk07"}
    if name in builtin:
        raise InvalidValue(f"{name!r} is a built-in dataset")
    DATASETS.pop(name, None)
    _CACHE.pop(name, None)
