"""On-disk graph artifact store: build once, mmap many.

Every worker process used to rebuild one monolithic in-memory CSR per
graph.  This module turns a built graph into an immutable on-disk
**artifact** — versioned, checksummed, mmap-loadable ``.npy`` shard files —
that any number of processes open read-only through ``np.load(...,
mmap_mode="r")``, sharing one page-cache copy instead of N private heaps.

Layout (one artifact per dataset × variant × shard geometry)::

    <REPRO_ARTIFACT_DIR>/
      <dataset>/
        <variant>-r<shard_rows>/        # "dir" or "sym" variant
          manifest.json                 # spec, seed, geometry, checksums
          shard-0000.indptr.npy         # local indptr (int64, rows+1)
          shard-0000.indices.npy        # global column ids (int32)
          shard-0000.values.npy         # weights/values (optional)
          shard-0001.indptr.npy ...

The manifest is keyed by **generator spec + seed + shard geometry**: a
loaded artifact whose recorded spec differs from the dataset's current one
is a miss (stale), and a different ``REPRO_SHARD_ROWS`` resolves to a
sibling directory, so geometries coexist instead of clobbering each other.

**Atomic publish protocol.**  A publisher writes everything into a
``.tmp-*`` sibling directory, fsyncs every file and the directory, then
``os.rename``\\ s it onto the final path.  Rename is atomic on POSIX, and
renaming onto an existing directory fails — so when several workers race
to publish the same graph, exactly one rename wins; the losers detect the
winner's manifest, discard their temp dir, and mmap the winner's files.
Readers therefore never observe a half-written artifact.

**Corruption discipline.**  :meth:`ArtifactStore.load` runs cheap
structural validation (manifest schema, file sizes, npy headers, indptr
invariants — O(rows), never O(nnz), so it does not fault in payload
pages); :meth:`ArtifactStore.verify` streams full SHA-256 checksums.
Either failure raises :class:`ArtifactCorrupt`, which the dataset layer
answers by discarding the artifact and rebuilding — a truncated or
bit-flipped shard costs a rebuild, never a crash and never a wrong answer.

The store only changes where graph bytes live.  What any kernel computes,
and what the machine model charges, is byte-identical with the store on,
off (``REPRO_ARTIFACTS=0``), or resharded — CI proves it on the study grid.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import errors
from repro.sparse.blocked import (
    BlockedCSR,
    CSRShard,
    row_slice,
    shard_bounds,
    shard_rows_from_env,
)
from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, PTR_DTYPE

#: Manifest schema version; bump on any incompatible layout change.
STORE_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Module-wide observability counters (reset per process; tests and the
#: prewarm accounting read them).
STATS: Dict[str, int] = {
    "loads": 0, "publishes": 0, "lost_races": 0, "rebuilds": 0,
}


class ArtifactError(errors.ReproError):
    """Base class for artifact-store failures."""


class ArtifactMiss(ArtifactError):
    """No artifact published for this (dataset, variant, geometry) key."""


class ArtifactCorrupt(ArtifactError):
    """An artifact exists but fails validation (truncated file, checksum
    mismatch, structural invariant violation).  The dataset layer responds
    by discarding and rebuilding."""


def enabled(environ: Optional[dict] = None) -> bool:
    """Whether dataset resolution should go through the store.

    Opt-in by pointing ``REPRO_ARTIFACT_DIR`` at a directory;
    ``REPRO_ARTIFACTS=0`` force-disables even when the directory is set
    (the reproducibility-invariant toggle CI exercises).
    """
    env = os.environ if environ is None else environ
    if env.get("REPRO_ARTIFACTS", "").strip() == "0":
        return False
    return bool(env.get("REPRO_ARTIFACT_DIR", "").strip())


def store_from_env(environ: Optional[dict] = None) -> Optional["ArtifactStore"]:
    """The environment-configured store, or None when disabled."""
    env = os.environ if environ is None else environ
    if not enabled(env):
        return None
    return ArtifactStore(env["REPRO_ARTIFACT_DIR"].strip(),
                         shard_rows=shard_rows_from_env(env))


def _sha256(path: Path, chunk: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _save_array(directory: Path, name: str, array: np.ndarray) -> dict:
    """Write one ``.npy`` payload file, fsync it, return its manifest row."""
    path = directory / name
    np.save(path, array)
    _fsync_file(path)
    return {
        "file": name,
        "bytes": path.stat().st_size,
        "sha256": _sha256(path),
        "dtype": str(array.dtype),
        "shape": list(array.shape),
    }


class ArtifactStore:
    """A directory of published graph artifacts (see module docstring)."""

    def __init__(self, root, shard_rows: Optional[int] = None):
        self.root = Path(root)
        self.shard_rows = shard_rows_from_env() if shard_rows is None \
            else int(shard_rows)
        if self.shard_rows < 1:
            raise errors.InvalidValue(
                f"shard_rows must be >= 1; got {self.shard_rows}")

    # ------------------------------------------------------------------
    # Paths and keys
    # ------------------------------------------------------------------
    def path(self, name: str, variant: str) -> Path:
        """The artifact directory for (dataset, variant, this geometry)."""
        if not name or "/" in name or name.startswith("."):
            raise errors.InvalidValue(f"bad dataset name {name!r}")
        if variant not in ("dir", "sym"):
            raise errors.InvalidValue(
                f"unknown variant {variant!r} (want 'dir' or 'sym')")
        return self.root / name / f"{variant}-r{self.shard_rows}"

    def has(self, name: str, variant: str) -> bool:
        """Whether a published (manifest-bearing) entry exists."""
        return (self.path(name, variant) / MANIFEST_NAME).is_file()

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(self, name: str, variant: str, csr: CSRMatrix,
                weights: Optional[np.ndarray] = None,
                spec: str = "") -> Path:
        """Shard, write, fsync and atomically publish one built graph.

        ``csr.values`` (when present) are stored as the shards' value
        files; otherwise ``weights`` (entry-aligned, e.g. the separate
        edge-weight array of a pattern graph) takes that slot, recorded in
        the manifest as ``values_role: "weights"``.  Exactly one of many
        racing publishers wins the rename; the rest discard their temp
        dirs and return the winner's path.
        """
        final = self.path(name, variant)
        if csr.values is not None and weights is not None:
            raise errors.InvalidValue(
                "publish wants stored values or separate weights, not both")
        payload = csr.values if csr.values is not None else weights
        values_role = ("values" if csr.values is not None
                       else "weights" if weights is not None else "none")
        if payload is not None and len(payload) != csr.nvals:
            raise errors.DimensionMismatch(
                f"payload length {len(payload)} != nvals {csr.nvals}")

        self.root.mkdir(parents=True, exist_ok=True)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.root / (f".tmp-{name}-{variant}-{os.getpid()}-"
                           f"{uuid.uuid4().hex[:8]}")
        tmp.mkdir()
        try:
            shards_meta: List[dict] = []
            for k, (lo, hi) in enumerate(
                    shard_bounds(csr.nrows, self.shard_rows)):
                local = row_slice(csr, lo, hi)
                degrees = local.row_degrees()
                prefix = f"shard-{k:04d}"
                files = {
                    "indptr": _save_array(
                        tmp, f"{prefix}.indptr.npy",
                        np.ascontiguousarray(local.indptr,
                                             dtype=PTR_DTYPE)),
                    "indices": _save_array(
                        tmp, f"{prefix}.indices.npy",
                        np.ascontiguousarray(local.indices,
                                             dtype=INDEX_DTYPE)),
                }
                if payload is not None:
                    p_lo, p_hi = int(csr.indptr[lo]), int(csr.indptr[hi])
                    files["values"] = _save_array(
                        tmp, f"{prefix}.values.npy",
                        np.ascontiguousarray(payload[p_lo:p_hi]))
                shards_meta.append({
                    "rows": [lo, hi],
                    "nnz": int(local.nvals),
                    "degree_min": int(degrees.min()) if len(degrees) else 0,
                    "degree_max": int(degrees.max()) if len(degrees) else 0,
                    "files": files,
                })
            manifest = {
                "store_version": STORE_VERSION,
                "name": name,
                "variant": variant,
                "spec": spec,
                "shard_rows": self.shard_rows,
                "nrows": csr.nrows,
                "ncols": csr.ncols,
                "nnz": csr.nvals,
                "values_role": values_role,
                "shards": shards_meta,
            }
            manifest_path = tmp / MANIFEST_NAME
            manifest_path.write_text(
                json.dumps(manifest, indent=1, sort_keys=True))
            _fsync_file(manifest_path)
            _fsync_dir(tmp)
            try:
                os.rename(tmp, final)
            except OSError:
                # Renaming onto an existing directory fails: someone else
                # won the publish race (or the artifact already existed).
                # Their files are as good as ours — same deterministic
                # build — so discard ours and use theirs.
                if (final / MANIFEST_NAME).is_file():
                    STATS["lost_races"] += 1
                    return final
                raise
            _fsync_dir(final.parent)
            STATS["publishes"] += 1
            return final
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def read_manifest(self, name: str, variant: str) -> dict:
        """Parse and schema-check an artifact's manifest."""
        path = self.path(name, variant) / MANIFEST_NAME
        if not path.is_file():
            raise ArtifactMiss(
                f"no artifact for {name}/{variant} (r{self.shard_rows}) "
                f"under {self.root}")
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactCorrupt(
                f"unreadable manifest {path}: {exc}") from None
        for key in ("store_version", "shards", "nrows", "ncols", "nnz",
                    "shard_rows", "values_role", "spec"):
            if key not in manifest:
                raise ArtifactCorrupt(f"manifest {path} lacks {key!r}")
        if manifest["store_version"] != STORE_VERSION:
            raise ArtifactMiss(
                f"artifact {name}/{variant} has store version "
                f"{manifest['store_version']}, this build wants "
                f"{STORE_VERSION}")
        return manifest

    def load(self, name: str, variant: str,
             spec: Optional[str] = None,
             ) -> Tuple[BlockedCSR, Optional[np.ndarray]]:
        """Open an artifact as a lazily mmap-loaded :class:`BlockedCSR`.

        Returns ``(blocked, weights)``: for a ``values_role == "weights"``
        artifact the per-shard value files come back as one entry-aligned
        weights array (mmap for a single shard, concatenated otherwise)
        and the shards themselves are pattern-only; for ``"values"`` the
        values live inside the shard CSRs.  ``spec`` (when given) must
        match the manifest's — a mismatch is a miss, i.e. the artifact is
        stale for the current generator/seed.

        Validation here is structural and O(rows): file sizes against the
        manifest, npy headers, indptr monotonicity/consistency.  Payload
        bytes are only checksummed by :meth:`verify`, so loading never
        faults the whole graph into memory.
        """
        manifest = self.read_manifest(name, variant)
        if spec is not None and manifest["spec"] != spec:
            raise ArtifactMiss(
                f"artifact {name}/{variant} was built from spec "
                f"{manifest['spec']!r}, current spec is {spec!r}")
        directory = self.path(name, variant)
        values_role = manifest["values_role"]
        ncols = int(manifest["ncols"])

        shards: List[CSRShard] = []
        weight_parts: List[np.ndarray] = []
        for meta in manifest["shards"]:
            lo, hi = (int(meta["rows"][0]), int(meta["rows"][1]))
            nnz = int(meta["nnz"])
            files = meta["files"]
            for role, row in files.items():
                fpath = directory / row["file"]
                if not fpath.is_file():
                    raise ArtifactCorrupt(
                        f"{name}/{variant}: missing shard file "
                        f"{row['file']}")
                actual = fpath.stat().st_size
                if actual != row["bytes"]:
                    raise ArtifactCorrupt(
                        f"{name}/{variant}: {row['file']} is {actual} "
                        f"bytes, manifest says {row['bytes']} (truncated "
                        "or overwritten)")

            indptr = self._mmap(directory, files["indptr"], PTR_DTYPE,
                                name, variant)
            if len(indptr) != hi - lo + 1:
                raise ArtifactCorrupt(
                    f"{name}/{variant}: shard [{lo}, {hi}) indptr has "
                    f"{len(indptr)} entries, want {hi - lo + 1}")
            if len(indptr) and (int(indptr[0]) != 0
                                or int(indptr[-1]) != nnz
                                or bool(np.any(np.diff(indptr) < 0))):
                raise ArtifactCorrupt(
                    f"{name}/{variant}: shard [{lo}, {hi}) indptr fails "
                    "structural validation (non-monotone or wrong span)")

            attach_values = values_role == "values"
            shards.append(CSRShard(
                lo, hi,
                loader=self._shard_loader(directory, files, indptr, ncols,
                                          attach_values, name, variant),
                nnz=nnz,
                degree_min=int(meta["degree_min"]),
                degree_max=int(meta["degree_max"])))
            if values_role == "weights":
                weight_parts.append(self._mmap(
                    directory, files["values"], None, name, variant))

        blocked = BlockedCSR(int(manifest["nrows"]), ncols, shards)
        if blocked.nvals != int(manifest["nnz"]):
            raise ArtifactCorrupt(
                f"{name}/{variant}: shard nnz totals {blocked.nvals}, "
                f"manifest says {manifest['nnz']}")
        weights = None
        if values_role == "weights":
            if len(weight_parts) == 1:
                weights = weight_parts[0]
            else:
                # The concatenation is a fresh buffer; pin it read-only so
                # the whole loaded artifact is immutable either way.
                weights = np.concatenate(weight_parts)
                weights.setflags(write=False)
            if len(weights) != blocked.nvals:
                raise ArtifactCorrupt(
                    f"{name}/{variant}: weights cover {len(weights)} "
                    f"entries, matrix has {blocked.nvals}")
        STATS["loads"] += 1
        return blocked, weights

    def _mmap(self, directory: Path, row: dict, expect_dtype,
              name: str, variant: str) -> np.ndarray:
        path = directory / row["file"]
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ArtifactCorrupt(
                f"{name}/{variant}: cannot mmap {row['file']}: "
                f"{exc}") from None
        if str(array.dtype) != row["dtype"] or (
                expect_dtype is not None
                and array.dtype != np.dtype(expect_dtype)):
            raise ArtifactCorrupt(
                f"{name}/{variant}: {row['file']} has dtype "
                f"{array.dtype}, manifest says {row['dtype']}")
        return array

    def _shard_loader(self, directory: Path, files: dict,
                      indptr: np.ndarray, ncols: int, attach_values: bool,
                      name: str, variant: str):
        def load() -> CSRMatrix:
            indices = self._mmap(directory, files["indices"], INDEX_DTYPE,
                                 name, variant)
            values = None
            if attach_values:
                values = self._mmap(directory, files["values"], None,
                                    name, variant)
            return CSRMatrix(len(indptr) - 1, ncols, indptr, indices,
                             values)

        return load

    # ------------------------------------------------------------------
    # Inventory, verification, gc
    # ------------------------------------------------------------------
    def entries(self) -> List[dict]:
        """Every valid manifest in the store (any geometry), sorted."""
        rows = []
        if not self.root.is_dir():
            return rows
        for manifest_path in sorted(self.root.glob(
                "*/*/" + MANIFEST_NAME)):
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            manifest["_path"] = str(manifest_path.parent)
            rows.append(manifest)
        return rows

    def verify(self, name: Optional[str] = None,
               variant: Optional[str] = None) -> List[str]:
        """Full-checksum verification; returns human-readable problems.

        Streams SHA-256 over every payload file of every (matching)
        artifact and re-runs the structural load validation.  An empty
        list means the store is sound.
        """
        problems = []
        checked = 0
        for manifest in self.entries():
            if name is not None and manifest.get("name") != name:
                continue
            if variant is not None and manifest.get("variant") != variant:
                continue
            directory = Path(manifest["_path"])
            label = f"{manifest.get('name')}/{directory.name}"
            for meta in manifest.get("shards", ()):
                for role, row in meta.get("files", {}).items():
                    fpath = directory / row["file"]
                    if not fpath.is_file():
                        problems.append(f"{label}: missing {row['file']}")
                        continue
                    if fpath.stat().st_size != row["bytes"]:
                        problems.append(
                            f"{label}: {row['file']} size "
                            f"{fpath.stat().st_size} != manifest "
                            f"{row['bytes']}")
                        continue
                    digest = _sha256(fpath)
                    if digest != row["sha256"]:
                        problems.append(
                            f"{label}: {row['file']} checksum mismatch "
                            f"({digest[:12]} != {row['sha256'][:12]})")
            checked += 1
            # Structural pass with the artifact's own geometry.
            try:
                sibling = ArtifactStore(
                    self.root, shard_rows=int(manifest["shard_rows"]))
                sibling.load(manifest["name"], manifest["variant"])
            except ArtifactError as exc:
                problems.append(f"{label}: {exc}")
        if name is not None and checked == 0:
            problems.append(f"{name}: no artifact found")
        return problems

    def discard(self, name: str, variant: str) -> bool:
        """Atomically retire one artifact (rename away, then delete)."""
        directory = self.path(name, variant)
        if not directory.exists():
            return False
        trash = self.root / f".trash-{uuid.uuid4().hex[:8]}"
        try:
            os.rename(directory, trash)
        except OSError:
            return False
        shutil.rmtree(trash, ignore_errors=True)
        return True

    def gc(self, known_names: Optional[List[str]] = None,
           dry_run: bool = False) -> List[str]:
        """Sweep temp/trash debris, corrupt artifacts and (optionally)
        artifacts for datasets not in ``known_names``.  Returns the paths
        removed (or that would be, under ``dry_run``)."""
        removed = []
        if not self.root.is_dir():
            return removed
        for debris in sorted(self.root.glob(".tmp-*")) + sorted(
                self.root.glob(".trash-*")):
            removed.append(str(debris))
            if not dry_run:
                shutil.rmtree(debris, ignore_errors=True)
        for dataset_dir in sorted(p for p in self.root.iterdir()
                                  if p.is_dir()
                                  and not p.name.startswith(".")):
            if known_names is not None and \
                    dataset_dir.name not in known_names:
                removed.append(str(dataset_dir))
                if not dry_run:
                    shutil.rmtree(dataset_dir, ignore_errors=True)
                continue
            for artifact_dir in sorted(p for p in dataset_dir.iterdir()
                                       if p.is_dir()):
                if not (artifact_dir / MANIFEST_NAME).is_file():
                    removed.append(str(artifact_dir))
                    if not dry_run:
                        shutil.rmtree(artifact_dir, ignore_errors=True)
            if not dry_run and dataset_dir.is_dir() and \
                    not any(dataset_dir.iterdir()):
                removed.append(str(dataset_dir))
                dataset_dir.rmdir()
        return removed
