"""Graph transformations: symmetrization, triangular extraction, weights."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, build_csr


def symmetrize(csr: CSRMatrix, weights: Optional[np.ndarray] = None):
    """Undirected view: ``A | A'`` pattern, min-combining duplicate weights.

    This is the preprocessing cc/tc/ktruss apply to directed inputs (weakly
    connected components and undirected triangle problems, §IV).
    """
    rows = csr.row_ids()
    cols = csr.indices.astype(np.int64)
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    if weights is None:
        sym = build_csr(csr.nrows, csr.ncols, all_rows, all_cols, None,
                        dedup="last")
        return sym, None
    w2 = np.concatenate([weights, weights])
    sym = build_csr(csr.nrows, csr.ncols, all_rows, all_cols, w2, dedup="min")
    return sym, sym.values


def random_weights(
    nvals: int, seed: int, low: int = 1, high: int = 255, dtype=np.int64
) -> np.ndarray:
    """Uniform integer edge weights (the paper generates random weights for
    graphs without native ones, §IV)."""
    rng = np.random.default_rng(seed)
    return rng.integers(low, high + 1, nvals).astype(dtype)


def heavy_tailed_weights(
    nvals: int, seed: int, max_exp: int = 37, min_exp: int = 22,
    dtype=np.int64,
) -> np.ndarray:
    """Wide-range similarity weights for the eukarya twin.

    Weights are uniform over [2**min_exp, 2**max_exp]; the floor exceeds
    delta, so successive relaxation waves land in fresh buckets.  Shortest-path distances then
    spread over a huge range, which reproduces eukarya's sssp pathology:
    32-bit distances overflow (the paper switches this one graph to 64-bit)
    and the vertices occupy thousands of distinct delta-stepping buckets
    even with the enlarged delta = 2**20 (§IV) — each of which is a full
    bulk-synchronous round for the matrix API but a cheap scheduler hop for
    the asynchronous worklist, producing the paper's >100x sssp gap on
    this graph.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(2**min_exp, 2**max_exp, nvals,
                        dtype=np.int64).astype(dtype)


def align_weights_to_csr(
    nrows: int,
    ncols: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
) -> Tuple[CSRMatrix, np.ndarray]:
    """Build a weighted CSR from COO, returning (csr, csr-ordered weights)."""
    csr = build_csr(nrows, ncols, src, dst, weights, dedup="min")
    return csr, csr.values
