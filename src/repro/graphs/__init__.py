"""Input graphs: generators, the nine scaled paper datasets, properties.

The paper's nine inputs (Table I) are real datasets we cannot ship; each is
replaced by a seeded synthetic twin matched on the structural axes the
study's analysis depends on — degree distribution, diameter class, average
degree, directedness and weights (see DESIGN.md §1 and §5).
"""

from repro.graphs.generators import (
    chung_lu,
    protein_similarity,
    rmat,
    road_lattice,
    web_crawl,
)
from repro.graphs.datasets import DATASETS, Dataset, get_dataset, load_csr
from repro.graphs.properties import GraphProperties, compute_properties

__all__ = [
    "DATASETS",
    "Dataset",
    "GraphProperties",
    "chung_lu",
    "compute_properties",
    "get_dataset",
    "load_csr",
    "protein_similarity",
    "rmat",
    "road_lattice",
    "web_crawl",
]
