"""``repro-graphs``: manage the on-disk graph artifact store.

The study's graphs are deterministic generator outputs, so they are built
*once* and mmap'd everywhere after (:mod:`repro.graphs.artifacts`).  This
CLI is the operator's front door to that store::

    repro-graphs build --root /var/cache/repro rmat22 uk07   # publish
    repro-graphs build --root /var/cache/repro --all
    repro-graphs list --root /var/cache/repro                # inventory
    repro-graphs verify --root /var/cache/repro              # checksums
    repro-graphs gc --root /var/cache/repro                  # sweep debris

``--root`` defaults to ``REPRO_ARTIFACT_DIR``; ``--shard-rows`` overrides
``REPRO_SHARD_ROWS`` for this invocation.  Exit codes: 0 ok, 1 problems
found (verify), 2 bad usage/environment.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import errors
from repro.graphs import artifacts, datasets
from repro.service.config import validate_env_knobs


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-graphs`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-graphs",
        description="Build, inspect and garbage-collect the mmap-backed "
                    "graph artifact store.")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="store directory (default: REPRO_ARTIFACT_DIR)")
    parser.add_argument("--shard-rows", type=int, default=None, metavar="N",
                        help="rows per shard (default: REPRO_SHARD_ROWS "
                             "or 65536)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="generate and publish dataset artifacts")
    p.add_argument("names", nargs="*",
                   help="dataset names (see repro.graphs.datasets)")
    p.add_argument("--all", action="store_true",
                   help="build every built-in dataset")
    p.add_argument("--force", action="store_true",
                   help="discard and republish even when up-to-date")

    sub.add_parser("list", help="print the store inventory")

    p = sub.add_parser("verify", help="full checksum + structural check")
    p.add_argument("name", nargs="?", default=None,
                   help="restrict to one dataset")

    p = sub.add_parser("gc", help="sweep temp debris and unknown datasets")
    p.add_argument("--keep-unknown", action="store_true",
                   help="keep artifacts for datasets not registered here")
    p.add_argument("--dry-run", action="store_true",
                   help="print what would be removed without removing")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        # Flags shadow the environment so the dataset machinery (which
        # reads the env) and this process agree on one store.
        if args.root is not None:
            os.environ["REPRO_ARTIFACT_DIR"] = args.root
        if args.shard_rows is not None:
            os.environ["REPRO_SHARD_ROWS"] = str(args.shard_rows)
        validate_env_knobs()
        store = artifacts.store_from_env()
        if store is None:
            print("repro-graphs: no store configured; pass --root or set "
                  "REPRO_ARTIFACT_DIR (and REPRO_ARTIFACTS != 0)",
                  file=sys.stderr)
            return 2
        return _dispatch(args, store)
    except errors.InvalidValue as exc:
        print(f"repro-graphs: {exc}", file=sys.stderr)
        return 2


def _dispatch(args, store: artifacts.ArtifactStore) -> int:
    if args.command == "build":
        names = list(args.names)
        if args.all:
            names += [name for name, ds in sorted(datasets.DATASETS.items())
                      if not ds.from_file and name not in names]
        if not names:
            print("repro-graphs: nothing to build; name datasets or pass "
                  "--all", file=sys.stderr)
            return 2
        for name in names:
            ds = datasets.get_dataset(name)
            if ds.from_file:
                print(f"{name}: file-backed dataset, not stored")
                continue
            if args.force:
                store.discard(name, "dir")
                store.discard(name, "sym")
            before = datasets.generation_count()
            # Resolving through the store publishes on miss; a fresh
            # per-dataset cache bounds this process to one graph at a
            # time.
            datasets.clear_cache()
            ds.build()
            ds.build_symmetric()
            datasets.clear_cache()
            action = ("built" if datasets.generation_count() > before
                      else "up-to-date")
            print(f"{name}: {action} "
                  f"({store.path(name, 'dir').parent})")
        return 0

    if args.command == "list":
        rows = store.entries()
        if not rows:
            print(f"store {store.root}: empty")
            return 0
        print(f"store {store.root}:")
        for manifest in rows:
            nbytes = sum(
                row["bytes"]
                for shard in manifest.get("shards", ())
                for row in shard.get("files", {}).values())
            print(f"  {manifest['name']}/{manifest['variant']}"
                  f"-r{manifest['shard_rows']}: "
                  f"{manifest['nrows']} rows, {manifest['nnz']} nnz, "
                  f"{len(manifest.get('shards', ()))} shard(s), "
                  f"{nbytes / 1e6:.1f} MB")
        return 0

    if args.command == "verify":
        problems = store.verify(name=args.name)
        for problem in problems:
            print(f"repro-graphs: {problem}", file=sys.stderr)
        if problems:
            return 1
        checked = [m for m in store.entries()
                   if args.name is None or m["name"] == args.name]
        print(f"verified {len(checked)} artifact(s): all checksums match")
        return 0

    if args.command == "gc":
        known = None if args.keep_unknown else sorted(datasets.DATASETS)
        removed = store.gc(known_names=known, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        for path in removed:
            print(f"{verb} {path}")
        print(f"gc: {verb} {len(removed)} path(s)")
        return 0

    raise errors.InvalidValue(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
