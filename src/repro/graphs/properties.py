"""Graph properties for Table I: sizes, degrees, approximate diameter."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix, gather_rows


@dataclass(frozen=True)
class GraphProperties:
    """The property row Table I reports for one graph."""

    name: str
    nnodes: int
    nedges: int
    avg_degree: float
    max_out_degree: int
    max_in_degree: int
    approx_diameter: int
    csr_bytes: int
    #: CSR size extrapolated to paper scale (what Table I's GB column holds).
    paper_scale_csr_gb: float


def bfs_levels(csr: CSRMatrix, source: int) -> np.ndarray:
    """Unweighted BFS levels from ``source`` (-1 for unreachable)."""
    n = csr.nrows
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        dsts = gather_rows(csr, frontier)[0].astype(np.int64)
        if len(dsts) == 0:
            break
        fresh = np.unique(dsts[level[dsts] < 0])
        if len(fresh) == 0:
            break
        level[fresh] = depth
        frontier = fresh
    return level


def pseudo_diameter(csr: CSRMatrix, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep BFS lower bound on the diameter (unweighted).

    Starts from the largest connected region reachable from a high-degree
    vertex, then repeatedly sweeps from the farthest vertex found.
    """
    if csr.nvals == 0:
        return 0
    start = int(np.argmax(np.diff(csr.indptr)))
    best = 0
    source = start
    for _ in range(sweeps):
        levels = bfs_levels(csr, source)
        ecc = int(levels.max())
        if ecc <= best:
            break
        best = ecc
        source = int(np.argmax(levels))
    return best


def compute_properties(name: str, csr: CSRMatrix, weights, scale: float,
                       sym: CSRMatrix = None) -> GraphProperties:
    """Compute the Table I row for one graph."""
    out_deg = np.diff(csr.indptr)
    in_deg = np.bincount(csr.indices, minlength=csr.nrows)
    diameter_view = sym if sym is not None else csr
    csr_bytes = csr.nbytes + (weights.nbytes if weights is not None else 0)
    return GraphProperties(
        name=name,
        nnodes=csr.nrows,
        nedges=csr.nvals,
        avg_degree=csr.nvals / max(csr.nrows, 1),
        max_out_degree=int(out_deg.max()) if len(out_deg) else 0,
        max_in_degree=int(in_deg.max()) if len(in_deg) else 0,
        approx_diameter=pseudo_diameter(diameter_view),
        csr_bytes=csr_bytes,
        paper_scale_csr_gb=csr_bytes * scale / 2**30,
    )
