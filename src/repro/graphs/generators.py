"""Synthetic graph generators.

Each generator returns COO edge arrays ``(nnodes, src, dst)``; weights are
attached by :mod:`repro.graphs.datasets` per the paper's policy ("the road
networks and protein dataset have edge weights; for the other graphs, we
generate random edge weights", §IV).

Generator → paper-graph mapping:

* :func:`rmat` — rmat22, rmat26 (synthetic power-law, [30]);
* :func:`road_lattice` — road-USA-W, road-USA (high diameter, degree ≤ 4ish);
* :func:`web_crawl` — indochina04, uk07 (copying model: high clustering,
  skewed in-degrees, dense neighborhoods → triangle blow-up);
* :func:`chung_lu` — twitter40, friendster (power-law social networks);
* :func:`protein_similarity` — eukarya (dense similarity graph, several
  components, heavy-tailed large weights).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidValue

Coo = Tuple[int, np.ndarray, np.ndarray]


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
) -> Coo:
    """Recursive-matrix (RMAT/Graph500) power-law generator.

    ``2**scale`` vertices, ``edge_factor * 2**scale`` sampled edges (before
    self-loop removal and deduplication, which happen at CSR build).
    """
    if not 0 < a + b + c < 1:
        raise InvalidValue("rmat probabilities must leave d = 1-a-b-c > 0")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrants: a (0,0), b (0,1), c (1,0), d (1,1).
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        diag = r >= a + b + c
        bit = 1 << (scale - level - 1)
        src += bit * (down | diag)
        dst += bit * (right | diag)
    keep = src != dst
    return n, src[keep], dst[keep]


def road_lattice(
    length: int,
    width: int,
    seed: int = 1,
    drop_prob: float = 0.05,
    shortcut_prob: float = 0.01,
) -> Coo:
    """A long thin lattice: the road-network twin.

    ``length x width`` intersections connected to their 4-neighbors (both
    directions), with a fraction of segments dropped and a few local
    shortcuts added.  The strip shape preserves the real road networks'
    defining property at reduced scale: diameter on the order of ``length``
  , with degrees bounded by a small constant.
    """
    n = length * width
    rng = np.random.default_rng(seed)
    ids = np.arange(n, dtype=np.int64).reshape(length, width)

    horiz_a = ids[:-1, :].ravel()
    horiz_b = ids[1:, :].ravel()
    vert_a = ids[:, :-1].ravel()
    vert_b = ids[:, 1:].ravel()
    seg_a = np.concatenate([horiz_a, vert_a])
    seg_b = np.concatenate([horiz_b, vert_b])

    keep = rng.random(len(seg_a)) >= drop_prob
    # Never drop the spine (column 0 along the strip) so the graph stays
    # connected end to end.
    spine = np.isin(seg_a, ids[:, 0]) & np.isin(seg_b, ids[:, 0])
    keep |= spine
    seg_a, seg_b = seg_a[keep], seg_b[keep]

    n_short = int(shortcut_prob * n)
    if n_short:
        s_row = rng.integers(0, length - 3, n_short)
        jump = rng.integers(2, 4, n_short)
        s_col = rng.integers(0, width, n_short)
        sc_a = ids[s_row, s_col]
        sc_b = ids[np.minimum(s_row + jump, length - 1), s_col]
        seg_a = np.concatenate([seg_a, sc_a])
        seg_b = np.concatenate([seg_b, sc_b])

    src = np.concatenate([seg_a, seg_b])
    dst = np.concatenate([seg_b, seg_a])
    return n, src, dst


def web_crawl(
    n: int,
    out_degree: float,
    seed: int = 1,
    copy_prob: float = 0.6,
    hub_fraction: float = 0.002,
) -> Coo:
    """Copying-model web graph (indochina04 / uk07 twins).

    Each arriving page picks a prototype among earlier pages and copies a
    fraction of its out-links, pointing the rest at random earlier pages
    with preference for a small hub set.  Copying produces the high
    clustering (triangle density) and heavy in-degree skew of web crawls.
    """
    rng = np.random.default_rng(seed)
    n_hubs = max(4, int(hub_fraction * n))
    # Lognormal out-degrees around the target mean.
    sigma = 1.0
    mu = np.log(out_degree) - sigma**2 / 2
    degs = np.minimum(
        np.maximum(rng.lognormal(mu, sigma, n).astype(np.int64), 1), n // 2
    )
    src_chunks = []
    dst_chunks = []
    adj = [np.empty(0, dtype=np.int64)] * n
    start = n_hubs + 1
    # Seed block: hubs densely interlinked.
    seed_src, seed_dst = np.meshgrid(np.arange(start), np.arange(start))
    sel = seed_src != seed_dst
    src_chunks.append(seed_src[sel].ravel().astype(np.int64))
    dst_chunks.append(seed_dst[sel].ravel().astype(np.int64))
    for h in range(start):
        adj[h] = np.setdiff1d(np.arange(start, dtype=np.int64), [h])
    for v in range(start, n):
        d = int(degs[v])
        proto = int(rng.integers(0, v))
        proto_links = adj[proto]
        n_copy = min(len(proto_links), int(d * copy_prob))
        if n_copy:
            copied = rng.choice(proto_links, size=n_copy, replace=False)
        else:
            copied = np.empty(0, dtype=np.int64)
        n_rand = d - n_copy
        if n_rand > 0:
            to_hubs = rng.random(n_rand) < 0.3
            rand_targets = np.where(
                to_hubs,
                rng.integers(0, n_hubs, n_rand),
                rng.integers(0, v, n_rand),
            )
        else:
            rand_targets = np.empty(0, dtype=np.int64)
        targets = np.unique(np.concatenate([copied, rand_targets]))
        targets = targets[targets != v]
        adj[v] = targets
        if len(targets):
            src_chunks.append(np.full(len(targets), v, dtype=np.int64))
            dst_chunks.append(targets)
    src = np.concatenate(src_chunks)
    dst = np.concatenate(dst_chunks)
    # Shuffle vertex ids: the construction order correlates id with degree
    # (hubs get low ids), which would bias every id-ordered kernel
    # (triangular extraction, unsorted triangle counting).
    relabel = rng.permutation(n)
    return n, relabel[src], relabel[dst]


def chung_lu(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: int = 1,
    in_skew: float = 1.0,
) -> Coo:
    """Chung-Lu power-law graph (twitter40 / friendster twins).

    Endpoint sampling proportional to Zipf-ish weights gives a power-law
    degree distribution; ``in_skew > 1`` sharpens the in-degree tail
    relative to the out-degree tail (twitter's celebrity effect).
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w_out = ranks ** (-1.0 / (exponent - 1.0))
    w_in = ranks ** (-in_skew / (exponent - 1.0))
    rng.shuffle(w_out)
    rng.shuffle(w_in)
    p_out = w_out / w_out.sum()
    p_in = w_in / w_in.sum()
    m = int(avg_degree * n)
    src = rng.choice(n, size=m, p=p_out)
    dst = rng.choice(n, size=m, p=p_in)
    keep = src != dst
    return n, src[keep].astype(np.int64), dst[keep].astype(np.int64)


def protein_similarity(
    n: int,
    avg_degree: float,
    n_components: int = 12,
    seed: int = 1,
) -> Coo:
    """Protein-similarity network (eukarya twin).

    Dense clusters of similar sequences (protein families) with sparse
    bridges inside each component and *no* edges across components: the
    real eukarya graph is a union of family clusters.  Directed edges in
    both orientations, moderate diameter within components.
    """
    rng = np.random.default_rng(seed)
    # Component sizes: one dominant component plus smaller ones.
    raw = rng.pareto(1.2, n_components) + 1
    sizes = np.maximum((raw / raw.sum() * n).astype(np.int64), 8)
    sizes[0] += n - sizes.sum()  # make sizes sum to exactly n
    src_chunks = []
    dst_chunks = []
    offset = 0
    fam_size = 40
    # A well-connected hub protein in the dominant component: the paper's
    # source policy picks the max-out-degree vertex (§IV), which must live
    # in the main component for sssp/bfs to exercise the whole graph.
    hub_degree = min(int(sizes[0]) - 1, 3 * fam_size + int(avg_degree) * 2)
    hub_targets = rng.choice(np.arange(1, sizes[0]), hub_degree,
                             replace=False)
    src_chunks.append(np.concatenate([np.zeros(hub_degree, dtype=np.int64),
                                      hub_targets]))
    dst_chunks.append(np.concatenate([hub_targets,
                                      np.zeros(hub_degree, dtype=np.int64)]))
    for size in sizes:
        # Cap density so small components cannot out-hub the main one.
        m = min(int(avg_degree * size), (size * (size - 1)) // 8)
        # Families: dense local clusters of ~fam_size proteins, arranged
        # along a chain — cross-family links only reach *adjacent*
        # families, which gives the component a diameter on the order of
        # the family count (eukarya's approx. diameter is 48, §Table I).
        n_fam = max(1, size // fam_size)
        a = rng.integers(0, size, m)
        fam_of_a = a // fam_size
        same_fam = rng.random(m) < 0.9
        neighbor_fam = np.clip(
            fam_of_a + rng.integers(-1, 2, m), 0, n_fam - 1)
        b = np.where(
            same_fam,
            np.minimum(fam_of_a * fam_size + rng.integers(0, fam_size, m),
                       size - 1),
            np.minimum(neighbor_fam * fam_size
                       + rng.integers(0, fam_size, m), size - 1),
        )
        keep = a != b
        a, b = a[keep] + offset, b[keep] + offset
        src_chunks.append(np.concatenate([a, b]))
        dst_chunks.append(np.concatenate([b, a]))
        offset += size
    return n, np.concatenate(src_chunks), np.concatenate(dst_chunks)
