"""Compressed Sparse Row matrix storage.

This is the storage format SuiteSparse, GaloisBLAS and Galois all share in
the paper (§III).  A :class:`CSRMatrix` is an immutable-shape container of
three numpy arrays: ``indptr`` (int64, length nrows+1), ``indices`` (int32,
column ids sorted within each row) and optional ``values``.

A matrix with ``values is None`` is *pattern-only* (an unweighted graph /
boolean matrix); kernels treat its entries as 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch, IndexOutOfBounds, InvalidValue
from repro.sparse.segreduce import segment_reduce

INDEX_DTYPE = np.int32
PTR_DTYPE = np.int64


class CSRMatrix:
    """A sparse matrix in CSR form with sorted, deduplicated rows."""

    __slots__ = ("nrows", "ncols", "indptr", "indices", "values",
                 "_row_ids", "_degrees", "_plan_cache")

    def __init__(self, nrows, ncols, indptr, indices, values=None):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=PTR_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.values = None if values is None else np.ascontiguousarray(values)
        # Structural-metadata memo (numpy-level artifacts only: these never
        # appear in the machine model's memory accounting).  ``_plan_cache``
        # holds the kernel plan memos of repro.sparse.plancache.
        self._row_ids: Optional[np.ndarray] = None
        self._degrees: Optional[np.ndarray] = None
        self._plan_cache: Optional[dict] = None
        if len(self.indptr) != self.nrows + 1:
            raise DimensionMismatch(
                f"indptr length {len(self.indptr)} != nrows+1 ({self.nrows + 1})"
            )
        if self.indptr[-1] != len(self.indices):
            raise InvalidValue("indptr[-1] must equal len(indices)")
        if self.values is not None and len(self.values) != len(self.indices):
            raise DimensionMismatch("values and indices lengths differ")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of explicit entries."""
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Payload bytes of the CSR arrays (Table I's 'CSR size')."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.values is not None:
            total += self.values.nbytes
        return total

    def row_degrees(self) -> np.ndarray:
        """Number of explicit entries per row (cached; do not mutate)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
            self._degrees.setflags(write=False)
        return self._degrees

    def row_ids(self) -> np.ndarray:
        """Row id of each explicit entry, ascending (cached; do not mutate).

        The expanded ``np.repeat(arange(nrows), diff(indptr))`` array that
        the vectorized kernels all need; computing it once per matrix
        instead of once per kernel call is the structural-metadata cache.
        Being sorted, it is also a valid ``sorted_ids`` argument to
        :func:`repro.sparse.segreduce.segment_reduce`.
        """
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.nrows, dtype=np.int64), self.row_degrees()
            )
            self._row_ids.setflags(write=False)
        return self._row_ids

    def invalidate_memos(self) -> None:
        """Drop the structural memos and every cached kernel plan.

        The library never mutates ``indptr``/``indices`` of a live matrix
        (transformations build new objects), but tooling and tests that do
        must call this so structure-derived plans cannot be replayed
        against the new structure.
        """
        from repro.sparse import plancache

        plancache.drop(self)
        self._row_ids = None
        self._degrees = None

    def row(self, i: int):
        """(columns, values) of row ``i``; values is None for pattern."""
        if not 0 <= i < self.nrows:
            raise IndexOutOfBounds(f"row {i} out of range [0, {self.nrows})")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        cols = self.indices[lo:hi]
        vals = None if self.values is None else self.values[lo:hi]
        return cols, vals

    def get(self, i: int, j: int):
        """Value at (i, j), or None if the entry is not explicit."""
        cols, vals = self.row(i)
        pos = np.searchsorted(cols, j)
        if pos < len(cols) and cols[pos] == j:
            return True if vals is None else vals[pos]
        return None

    def value_array(self, dtype=np.float64) -> np.ndarray:
        """values, or an implicit all-ones array for pattern matrices."""
        if self.values is not None:
            return self.values
        return np.ones(self.nvals, dtype=dtype)

    # ------------------------------------------------------------------
    # Transformations (pure; callers account for their cost)
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """The transposed matrix, also in CSR (i.e. this matrix's CSC view)."""
        nnz = self.nvals
        rows = self.row_ids()
        order = np.argsort(self.indices, kind="stable")
        new_indices = rows[order]
        new_values = None if self.values is None else self.values[order]
        counts = np.bincount(self.indices, minlength=self.ncols)
        new_indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
        out = CSRMatrix(self.ncols, self.nrows, new_indptr, new_indices, new_values)
        assert out.nvals == nnz
        return out

    def extract_tril(self, strict: bool = True) -> "CSRMatrix":
        """Lower-triangular part (col < row, or <= when not strict)."""
        return self._triangular(lower=True, strict=strict)

    def extract_triu(self, strict: bool = True) -> "CSRMatrix":
        """Upper-triangular part (col > row, or >= when not strict)."""
        return self._triangular(lower=False, strict=strict)

    def _triangular(self, lower: bool, strict: bool) -> "CSRMatrix":
        rows = self.row_ids()
        if lower:
            keep = self.indices < rows if strict else self.indices <= rows
        else:
            keep = self.indices > rows if strict else self.indices >= rows
        return self.filter_entries(keep)

    def filter_entries(self, keep: np.ndarray) -> "CSRMatrix":
        """New matrix keeping only entries where ``keep`` (bool mask) holds."""
        if len(keep) != self.nvals:
            raise DimensionMismatch("keep mask length must equal nvals")
        new_rows = self.row_ids()[keep]
        counts = np.bincount(new_rows, minlength=self.nrows)
        new_indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
        return CSRMatrix(
            self.nrows,
            self.ncols,
            new_indptr,
            self.indices[keep],
            None if self.values is None else self.values[keep],
        )

    def permute(self, perm: np.ndarray) -> "CSRMatrix":
        """Symmetric relabeling: row/col i of the result is ``perm[i]`` of self.

        ``perm`` maps new ids to old ids (i.e. it is the ordering such that
        ``new[i] = old[perm[i]]``), as produced by ``np.argsort(degrees)``.
        """
        if len(perm) != self.nrows or self.nrows != self.ncols:
            raise DimensionMismatch("permute requires a square matrix and full perm")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(len(perm), dtype=perm.dtype)
        new_rows = inverse[self.row_ids()].astype(np.int64)
        new_cols = inverse[self.indices].astype(INDEX_DTYPE)
        vals = self.values
        return build_csr(
            self.nrows, self.ncols, new_rows, new_cols,
            None if vals is None else vals, dedup="error",
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy of all storage arrays."""
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            None if self.values is None else self.values.copy(),
        )

    def to_scipy(self):
        """Convert to scipy.sparse.csr_matrix (test oracle helper)."""
        import scipy.sparse as sp

        vals = self.value_array()
        return sp.csr_matrix(
            (vals, self.indices, self.indptr), shape=(self.nrows, self.ncols)
        )

    def __repr__(self):
        kind = "pattern" if self.values is None else str(self.values.dtype)
        return (
            f"CSRMatrix({self.nrows}x{self.ncols}, nvals={self.nvals}, {kind})"
        )


def build_csr(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: Optional[np.ndarray] = None,
    dedup: str = "last",
) -> CSRMatrix:
    """Build a CSR matrix from COO triples, sorting and deduplicating.

    ``dedup`` chooses what happens to duplicate (row, col) pairs: ``"last"``
    keeps the last value, ``"sum"`` and ``"min"`` combine, ``"error"`` raises.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if len(rows) != len(cols):
        raise DimensionMismatch("rows and cols must have equal length")
    if values is not None and len(values) != len(rows):
        raise DimensionMismatch("values length must match rows/cols")
    if len(rows) and (rows.min() < 0 or rows.max() >= nrows):
        raise IndexOutOfBounds("row index out of range")
    if len(cols) and (cols.min() < 0 or cols.max() >= ncols):
        raise IndexOutOfBounds("col index out of range")

    keys = rows * ncols + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values_sorted = None if values is None else np.asarray(values)[order]

    unique_keys, first_pos = np.unique(keys, return_index=True)
    if len(unique_keys) != len(keys):
        if dedup == "error":
            raise InvalidValue("duplicate (row, col) entries")
        if values_sorted is not None:
            if dedup == "last":
                # Last occurrence of each key in the stable order.
                last_pos = np.concatenate((first_pos[1:], [len(keys)])) - 1
                values_sorted = values_sorted[last_pos]
            elif dedup in ("sum", "min"):
                # Duplicate runs are contiguous in the stable key order, so
                # first_pos doubles as the reduction's row_splits — and the
                # reduction happens in the value dtype itself (the seed's
                # float64 round-trip truncated int64 and dropped dtype).
                splits = np.concatenate((first_pos, [len(keys)]))
                values_sorted = segment_reduce(
                    values_sorted, None, len(unique_keys),
                    "plus" if dedup == "sum" else "min",
                    dtype=values_sorted.dtype, row_splits=splits,
                )
            else:
                raise InvalidValue(f"unknown dedup policy {dedup!r}")
    elif values_sorted is not None and dedup == "last":
        pass  # already unique

    out_rows = (unique_keys // ncols).astype(np.int64)
    out_cols = (unique_keys % ncols).astype(INDEX_DTYPE)
    if values_sorted is not None and len(values_sorted) != len(unique_keys):
        values_sorted = values_sorted[: len(unique_keys)]
    counts = np.bincount(out_rows, minlength=nrows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
    return CSRMatrix(nrows, ncols, indptr, out_cols, values_sorted)


def expand_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[k], stops[k])`` without a Python loop.

    The index-expansion primitive underneath :func:`gather_rows` and the
    merge-join engine: turns per-row (or per-slice) boundary pairs into the
    flat positions they cover, in order.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lens = stops - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    bounds = np.concatenate(([0], np.cumsum(lens)))
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - bounds[:-1], lens)
    return out


def gather_rows(matrix: CSRMatrix, rows: np.ndarray):
    """Concatenate several CSR rows without a Python loop.

    Returns ``(cols, val_positions, segment_ids)`` where ``cols`` is the
    concatenation of ``matrix.indices`` slices for each requested row,
    ``val_positions`` indexes into ``matrix.indices``/``matrix.values`` and
    ``segment_ids[k]`` tells which position of ``rows`` element ``k`` came
    from.  This is the workhorse of the vectorized SpMV/SpGEMM kernels.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = matrix.indptr[rows]
    lens = matrix.indptr[rows + 1] - starts
    positions = expand_ranges(starts, starts + lens)
    if len(positions) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty.astype(INDEX_DTYPE), empty, empty
    segment_ids = np.repeat(np.arange(len(rows), dtype=np.int64), lens)
    return matrix.indices[positions], positions, segment_ids
