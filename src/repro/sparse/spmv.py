"""Vectorized semiring matrix-vector kernels over CSR storage.

Two styles, matching §II-C of the paper:

* :func:`spmv_pull` — SDOT style: iterate output entries, dot each matrix row
  with a dense input vector (a pull-style vertex operator);
* :func:`vxm_push` — SAXPY style: iterate the explicit entries of a sparse
  input vector, scatter-combine rows of the matrix into the output (a
  push-style vertex operator, one round of a round-based data-driven
  algorithm).

Each kernel returns the result plus the number of semiring multiplications it
performed (its flops), which callers use to charge the machine model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, gather_rows
from repro.sparse.segreduce import group_reduce
from repro.sparse.semiring_ops import BinaryFn, MonoidFn, SegmentReducer


def spmv_pull(
    A: CSRMatrix,
    x: np.ndarray,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dense ``y = A (+.x) x`` with a pull over rows (SDOT).

    Returns ``(y, touched, flops)`` where ``touched[i]`` says row ``i`` had at
    least one explicit entry (so ``y[i]`` is a real value, not the identity).

    A :class:`repro.sparse.blocked.BlockedCSR` operand runs shard-by-shard
    (bit-identical result, O(shard) working set).
    """
    if hasattr(A, "shards"):
        from repro.sparse import blocked

        return blocked.spmv_pull(A, x, add, mult, out_dtype=out_dtype)
    out_dtype = np.dtype(out_dtype or x.dtype)
    nnz = A.nvals
    rows = A.row_ids()
    a_vals = A.value_array(out_dtype)
    products = mult.apply(a_vals, x[A.indices])
    reducer = SegmentReducer(add)
    # CSR entries are grouped by row, so indptr doubles as the reduction's
    # segment boundaries — the presorted fast path.
    y = reducer.reduce(products, rows, A.nrows, dtype=out_dtype,
                       row_splits=A.indptr, cache_on=A)
    touched = A.row_degrees() > 0
    return y, touched, nnz


def vxm_push(
    A: CSRMatrix,
    x_idx: np.ndarray,
    x_vals: np.ndarray,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Sparse ``y' = x' (+.x) A`` pushing along rows of A (SAXPY).

    ``x_idx``/``x_vals`` are the explicit entries of the sparse input.
    Returns ``(y_idx, y_vals, flops)`` with ``y_idx`` sorted ascending.

    A :class:`repro.sparse.blocked.BlockedCSR` operand runs shard-by-shard
    (bit-identical result for the sorted frontiers every caller passes).
    """
    if hasattr(A, "shards"):
        from repro.sparse import blocked

        return blocked.vxm_push(A, x_idx, x_vals, add, mult,
                                out_dtype=out_dtype)
    out_dtype = np.dtype(out_dtype or x_vals.dtype)
    if len(x_idx) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    cols, positions, seg = gather_rows(A, x_idx)
    flops = len(cols)
    if flops == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    a_vals = (
        np.ones(flops, dtype=out_dtype)
        if A.values is None
        else A.values[positions].astype(out_dtype, copy=False)
    )
    products = mult.apply(x_vals[seg].astype(out_dtype, copy=False), a_vals)
    # Densify-by-column instead of np.unique(return_inverse): two O(n)
    # bincount passes where unique pays an O(n log n) sort.
    y_idx, y_vals = group_reduce(cols.astype(np.int64), products, A.ncols,
                                 add, dtype=out_dtype, cache_on=A)
    return y_idx, y_vals, flops


def mxv_push_transposed(
    At: CSRMatrix,
    x_idx: np.ndarray,
    x_vals: np.ndarray,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=None,
):
    """``y = A (+.x) x`` for sparse x given the transpose ``At`` in CSR.

    ``A x`` pushes along *columns* of A, i.e. rows of ``At``; the semiring
    multiply receives ``(A[i, j], x[j])`` in that order.
    """
    out_dtype = np.dtype(out_dtype or x_vals.dtype)
    if len(x_idx) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    cols, positions, seg = gather_rows(At, x_idx)
    flops = len(cols)
    if flops == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    a_vals = (
        np.ones(flops, dtype=out_dtype)
        if At.values is None
        else At.values[positions].astype(out_dtype, copy=False)
    )
    products = mult.apply(a_vals, x_vals[seg].astype(out_dtype, copy=False))
    y_idx, y_vals = group_reduce(cols.astype(np.int64), products, At.ncols,
                                 add, dtype=out_dtype, cache_on=At)
    return y_idx, y_vals, flops
