"""Shared sparse-matrix storage and kernels.

Both GraphBLAS backends (:mod:`repro.suitesparse`, :mod:`repro.galoisblas`)
and the graph API (:mod:`repro.galois`) store topology in the CSR structures
defined here.  The kernels are vectorized with numpy for execution speed;
performance *accounting* (instructions, access streams, scheduling) is done
by the callers through the machine model, never inferred from wall clock.

Scatter/gather reductions all route through :mod:`repro.sparse.segreduce`,
the fast-path engine that picks the best numpy plan per monoid/dtype;
sorted-row intersections route through :mod:`repro.sparse.join`, its
merge-join counterpart.

Out-of-core storage lives in :mod:`repro.sparse.blocked`: a
:class:`~repro.sparse.blocked.BlockedCSR` partitions a matrix into
row-range shards (each one a local :class:`~repro.sparse.csr.CSRMatrix`
with its own plan-cache slots), and the SpMV/SpGEMM kernels accept it
directly, iterating shard-by-shard with bit-identical results.
"""

from repro.sparse.blocked import BlockedCSR, CSRShard, row_slice, shard_bounds
from repro.sparse.csr import CSRMatrix, build_csr, expand_ranges, gather_rows
from repro.sparse.join import (
    JoinResult,
    dedup_bounded,
    join_sorted,
    masked_row_join,
    row_pair_join,
)
from repro.sparse.segreduce import (
    coo_group_reduce,
    group_reduce,
    identity_for,
    scatter_reduce,
    segment_reduce,
)
from repro.sparse.semiring_ops import (
    BinaryFn,
    MonoidFn,
    SegmentReducer,
)

__all__ = [
    "BinaryFn",
    "BlockedCSR",
    "CSRMatrix",
    "CSRShard",
    "JoinResult",
    "MonoidFn",
    "SegmentReducer",
    "build_csr",
    "coo_group_reduce",
    "dedup_bounded",
    "expand_ranges",
    "gather_rows",
    "group_reduce",
    "identity_for",
    "join_sorted",
    "masked_row_join",
    "row_pair_join",
    "row_slice",
    "scatter_reduce",
    "segment_reduce",
    "shard_bounds",
]
