"""Shared sparse-matrix storage and kernels.

Both GraphBLAS backends (:mod:`repro.suitesparse`, :mod:`repro.galoisblas`)
and the graph API (:mod:`repro.galois`) store topology in the CSR structures
defined here.  The kernels are vectorized with numpy for execution speed;
performance *accounting* (instructions, access streams, scheduling) is done
by the callers through the machine model, never inferred from wall clock.

Scatter/gather reductions all route through :mod:`repro.sparse.segreduce`,
the fast-path engine that picks the best numpy plan per monoid/dtype.
"""

from repro.sparse.csr import CSRMatrix, build_csr, gather_rows
from repro.sparse.segreduce import (
    group_reduce,
    identity_for,
    scatter_reduce,
    segment_reduce,
)
from repro.sparse.semiring_ops import (
    BinaryFn,
    MonoidFn,
    SegmentReducer,
)

__all__ = [
    "BinaryFn",
    "CSRMatrix",
    "MonoidFn",
    "SegmentReducer",
    "build_csr",
    "gather_rows",
    "group_reduce",
    "identity_for",
    "scatter_reduce",
    "segment_reduce",
]
