"""Fast-path segment reduction engine.

Every hot scatter-reduction in the repo — the semiring "add" across CSR
row segments, SpGEMM's SAXPY combine, the lonestar kernels' test-and-set
rounds — is some instance of *segment reduce*: fold ``values`` grouped by
``segment_ids`` with a monoid.  This module is the single entry point for
that operation; it picks the fastest numpy plan per monoid/dtype/sortedness
instead of leaving each call site to hand-roll a ``np.ufunc.at`` loop.

Plans, in the order the dispatcher tries them:

* ``row_splits`` (CSR ``indptr``-style boundaries) — the caller proves the
  values are already grouped contiguously per segment, so the reduction is
  one ``ufunc.reduceat`` over the precomputed starts: no sort, no scatter.
  CSR row expansions (SpMV pull, reduce-to-vector, build dedup) hit this.
* ``sorted_ids`` — same, but the boundaries are recovered with one
  ``diff``/``flatnonzero`` scan first.
* *plus over float64* — ``np.bincount(weights=...)``, which accumulates
  sequentially in array order and is therefore **bit-identical** to the
  ``np.add.at`` loop it replaces (``ufunc.reduceat`` is not: it uses
  blocked accumulation, so it is reserved for exact dtypes).  Narrower
  floats keep the sequential ``np.add.at`` scatter: any plan that widens
  the accumulator or blocks the sum rounds differently.
* *plus over ints/bools* — ``np.add.at`` on the **value dtype itself**.
  The seed routed integer sums through ``bincount``'s float64 weights,
  silently rounding int64 values >= 2**53 and changing overflow semantics;
  accumulating in the integer dtype is exact (wrap-around matches numpy's
  own integer arithmetic).
* *everything else* — a pre-cast ``ufunc.at`` scatter.

On the ``ufunc.at`` uses inside this module: numpy >= 1.24 ships indexed
inner loops that make dtype-matched ``ufunc.at`` run at memcpy-like speed,
but only when no casting is involved — a mismatched operand silently falls
back to the original unbuffered one-element-at-a-time loop, which measures
10-20x slower (see ``benchmarks/bench_wallclock.py``).  The engine
guarantees the fast loop by casting values to the output dtype *before*
the scatter, and it is the only place in the kernel code allowed to call
``ufunc.at`` at all, so the fast/slow distinction is enforced in one spot.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import IndexOutOfBounds, InvalidValue
from repro.sparse import plancache

#: Monoid kinds the engine understands (the study's semiring "add" set).
MONOID_KINDS = ("plus", "times", "min", "max", "lor", "land")

#: Execution plans :func:`select_plan` can pick, in dispatch precedence.
SEGREDUCE_PLANS = ("bincount_f64", "add_at_float", "bincount_lor",
                   "reduceat_splits", "reduceat_sorted", "scatter_at")

#: The reduceat/at ufunc per monoid kind.  ``land`` reduces with minimum and
#: ``lor`` with maximum over the identity-filled output, matching the seed's
#: semantics (values are 0/1-valued wherever these monoids are used).
_UFUNC = {
    "plus": np.add,
    "times": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "land": np.minimum,
    "lor": np.maximum,
}


def identity_for(kind: str, dtype) -> object:
    """The monoid identity value for a given dtype.

    MIN/MAX use the dtype's extreme values so integer distance vectors behave
    like the 32-/64-bit distance types the paper switches between for
    eukarya (§IV).
    """
    dtype = np.dtype(dtype)
    if kind == "plus":
        return dtype.type(0)
    if kind == "times":
        return dtype.type(1)
    if kind == "min":
        if dtype.kind == "f":
            return dtype.type(np.inf)
        if dtype.kind == "b":
            return dtype.type(True)
        return np.iinfo(dtype).max
    if kind == "max":
        if dtype.kind == "f":
            return dtype.type(-np.inf)
        if dtype.kind == "b":
            return dtype.type(False)
        return np.iinfo(dtype).min
    if kind == "lor":
        return dtype.type(0)
    if kind == "land":
        return dtype.type(1)
    raise InvalidValue(f"unknown monoid kind {kind!r}")


def _kind_of(monoid: Union[str, object]) -> str:
    """Accept either a kind string or anything with a ``.kind`` attribute."""
    kind = monoid if isinstance(monoid, str) else getattr(monoid, "kind", None)
    if kind not in MONOID_KINDS:
        raise InvalidValue(f"unknown monoid kind {kind!r}")
    return kind


def segment_starts(sorted_ids: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal ids in a sorted id array."""
    if len(sorted_ids) == 0:
        return np.empty(0, dtype=np.int64)
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    return np.concatenate(([0], boundaries))


def _reduceat_dense(
    ufunc, values: np.ndarray, starts: np.ndarray, seg_of_start: np.ndarray,
    n_segments: int, identity, dtype,
) -> np.ndarray:
    """Dense output from one reduceat over contiguous segment runs."""
    out = np.full(n_segments, identity, dtype=dtype)
    if len(starts):
        out[seg_of_start] = ufunc.reduceat(values, starts)
    return out


def select_plan(kind: str, dtype, sorted_ids: bool,
                has_row_splits: bool) -> str:
    """Pick the execution plan for one (monoid, dtype, sortedness) shape.

    The branch precedence is load-bearing for bit-identity — plus/float
    and lor claim their plans *before* the presorted reduceat hints are
    consulted (reduceat's blocked accumulation rounds float sums
    differently; see the module docstring).  The choice is a pure function
    of this signature, which is what makes it cacheable per matrix.
    """
    dtype = np.dtype(dtype)
    if kind == "plus" and dtype.kind == "f":
        # bincount accumulates in array order — bit-identical to the
        # sequential np.add.at loop, unlike reduceat's blocked sums.
        # Narrower floats must round after *every* addition to match the
        # np.add.at loops they replace; bincount's float64 accumulator and
        # reduceat's blocked sums both round differently, so the sequential
        # indexed scatter is the only bit-identical plan for them.
        return "bincount_f64" if dtype == np.float64 else "add_at_float"
    if kind == "lor":
        return "bincount_lor"
    if has_row_splits:
        return "reduceat_splits"
    if sorted_ids:
        return "reduceat_sorted"
    return "scatter_at"


def segment_reduce(
    values: np.ndarray,
    segment_ids: Optional[np.ndarray],
    n_segments: int,
    monoid: Union[str, object],
    dtype=None,
    sorted_ids: bool = False,
    row_splits: Optional[np.ndarray] = None,
    cache_on=None,
) -> np.ndarray:
    """Reduce ``values`` grouped by ``segment_ids`` into a dense vector.

    Returns an array of length ``n_segments`` holding the monoid reduction
    of each segment's values, and the monoid identity where a segment
    received none.  ``segment_ids`` need not be sorted; pass
    ``sorted_ids=True`` when they provably are (CSR row expansions), or
    ``row_splits`` (an ``indptr``-style boundary array of length
    ``n_segments + 1``) when the grouping boundaries are already known —
    both skip the scatter entirely.  ``segment_ids`` may be None when
    ``row_splits`` fully describes the grouping.

    ``cache_on`` (a :class:`~repro.sparse.csr.CSRMatrix` or any plan-cache
    host) memoizes the plan choice per (monoid, dtype, sortedness) so
    steady-state iterations skip :func:`select_plan`; the cache key fully
    determines the plan, so a hit cannot change the execution path.
    """
    values = np.asarray(values)
    if segment_ids is not None:
        segment_ids = np.asarray(segment_ids)
    elif row_splits is None:
        raise InvalidValue("segment_ids may only be omitted with row_splits")
    kind = _kind_of(monoid)
    dtype = np.dtype(dtype if dtype is not None else values.dtype)
    identity = identity_for(kind, dtype)
    if len(values) == 0 or n_segments == 0:
        return np.full(n_segments, identity, dtype=dtype)

    has_splits = row_splits is not None
    plan = plancache.cached(
        cache_on, "segreduce", (kind, dtype.str, bool(sorted_ids), has_splits),
        lambda: select_plan(kind, dtype, sorted_ids, has_splits))

    def ids():
        # Materialized only by the bincount plans; derived from row_splits
        # when the caller could prove the grouping without an id array.
        if segment_ids is not None:
            return np.asarray(segment_ids)
        return np.repeat(np.arange(n_segments, dtype=np.int64),
                         np.diff(row_splits))

    def _checked(counts):
        # bincount sizes its output to the max id: longer than n_segments
        # means an out-of-range id, which the ufunc.at plans would have
        # raised on — fail just as loudly instead of silently dropping.
        if len(counts) > n_segments:
            raise IndexOutOfBounds(
                f"segment id out of range for {n_segments} segments")
        return counts

    if plan == "bincount_f64":
        # copy=False: bincount only reads the weights, and float64 inputs
        # (the steady-state SpMV case) otherwise pay a full nvals-sized
        # copy on every call.
        return _checked(np.bincount(ids(),
                                    weights=values.astype(np.float64,
                                                          copy=False),
                                    minlength=n_segments))

    if plan == "add_at_float":
        out = np.full(n_segments, identity, dtype=dtype)
        np.add.at(out, ids(), values.astype(dtype, copy=False))
        return out

    if plan == "bincount_lor":
        # "Any nonzero value in the segment": count nonzeros per segment.
        out = _checked(np.bincount(ids()[np.asarray(values, dtype=bool)],
                                   minlength=n_segments)) > 0
        return out.astype(dtype, copy=False)

    ufunc = _UFUNC[kind]
    vals = values.astype(dtype, copy=False)

    if plan == "reduceat_splits":
        starts = np.asarray(row_splits[:-1], dtype=np.int64)
        nonempty = np.flatnonzero(row_splits[1:] > starts)
        # reduceat over only the nonempty starts: empty runs contribute no
        # positions, so each slice covers exactly one segment.
        return _reduceat_dense(ufunc, vals, starts[nonempty], nonempty,
                               n_segments, identity, dtype)

    if plan == "reduceat_sorted":
        starts = segment_starts(segment_ids)
        return _reduceat_dense(ufunc, vals, starts, segment_ids[starts],
                               n_segments, identity, dtype)

    # Unsorted ids: a dtype-matched indexed ufunc.at scatter is the fastest
    # plan on numpy >= 1.24 (sorting first costs more than the scatter);
    # the pre-cast above keeps it off the slow generic cast path.  This is
    # the engine's one sanctioned ufunc.at use — call sites go through here.
    out = np.full(n_segments, identity, dtype=dtype)
    ufunc.at(out, segment_ids, vals)
    return out


def scatter_reduce(
    out: np.ndarray,
    ids: np.ndarray,
    values: np.ndarray,
    monoid: Union[str, object],
) -> np.ndarray:
    """In-place ``out[ids] = monoid(out[ids], values)``, vectorized.

    The drop-in replacement for the kernels' ``np.<ufunc>.at(out, ids,
    values)`` scatter loops; ``out`` is updated in place and returned.
    Float ``plus`` keeps ``np.add.at``'s exact sequential accumulation
    order, so results are bit-identical to the loops it replaces.
    """
    ids = np.asarray(ids)
    values = np.asarray(values)
    if len(ids) == 0:
        return out
    kind = _kind_of(monoid)
    # Same reasoning as in segment_reduce: the pre-cast guarantees numpy's
    # indexed .at loop; this is the engine's sanctioned scatter primitive.
    _UFUNC[kind].at(out, ids, values.astype(out.dtype, copy=False))
    return out


def group_reduce(
    keys: np.ndarray,
    values: np.ndarray,
    n_keys: int,
    monoid: Union[str, object],
    dtype=None,
    cache_on=None,
):
    """Reduce by (possibly huge-ranged) keys densified to ``[0, n_keys)``.

    The sparse-output companion of :func:`segment_reduce` for the push-style
    kernels: ``keys`` index a dense space of size ``n_keys`` (a vector
    dimension), and only the touched keys are returned.  Returns
    ``(touched_keys, reduced_values)`` with ``touched_keys`` sorted
    ascending.  Replaces the ``np.unique(..., return_inverse=True)`` +
    reduce idiom, which costs an O(n log n) sort where two O(n) bincount
    passes suffice.
    """
    keys = np.asarray(keys)
    dense = segment_reduce(values, keys, n_keys, monoid, dtype=dtype,
                           cache_on=cache_on)
    touched = np.flatnonzero(np.bincount(keys, minlength=n_keys)[:n_keys])
    return touched, dense[touched]


#: Cap on :func:`coo_group_reduce`'s densified (row span x ncols) table.
COO_DENSE_BUDGET = 1 << 22


def coo_group_reduce(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    ncols: int,
    monoid: Union[str, object],
    dtype=None,
):
    """Combine duplicate (row, col) pairs of one COO batch.

    ``rows`` must be non-decreasing (SpGEMM's batched expansions are: the
    batch walks A's rows in order).  Returns ``(out_rows, out_cols,
    out_values)`` sorted by (row, col) with one entry per distinct pair —
    exactly what the ``np.unique(keys, return_inverse=True)`` + reduce
    idiom produces, but via the two-pass densify/bincount strategy the
    push-style SpMV kernels use (:func:`group_reduce`): when the batch's
    row span densifies to an affordable table, two O(n) passes replace the
    O(n log n) key sort.  Batches whose span is too sparse to densify keep
    the sort; both paths reduce values in array order, so results are
    bit-identical either way.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    dtype = np.dtype(dtype if dtype is not None else
                     np.asarray(values).dtype)
    if len(rows) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=dtype))
    row_lo = int(rows[0])
    row_hi = int(rows[-1])
    table = (row_hi - row_lo + 1) * int(ncols)
    if table <= COO_DENSE_BUDGET and table <= 8 * len(rows):
        base = np.int64(row_lo) * np.int64(ncols)
        local = rows * np.int64(ncols) + cols - base
        touched, vals = group_reduce(local, values, table, monoid,
                                     dtype=dtype)
        keys = touched + base
    else:
        keys = rows * np.int64(ncols) + cols
        uniq, inverse = np.unique(keys, return_inverse=True)
        vals = segment_reduce(values, inverse, len(uniq), monoid,
                              dtype=dtype)
        keys = uniq
    return keys // ncols, keys % ncols, vals
