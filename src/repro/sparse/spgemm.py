"""Sparse general matrix-matrix multiplication (SpGEMM) kernels.

SuiteSparse implements SpGEMM with two families (§III-A of the paper):

* **SAXPY** (Gustavson / hash): enumerate explicit entries of ``A`` by row
  and accumulate scaled rows of ``B`` into the output row.  Our vectorized
  equivalent expands ``A``'s entries into contributions, then combines them
  with a key sort — the memory behaviour (an intermediate proportional to
  the flop count) is the same as a hash accumulator's traffic.
* **SDOT**: transpose ``B`` and compute each output entry as a dot product
  of two sorted sparse rows.  Needs the output pattern up front, which is
  why it shines for *masked* multiplication (e.g. the SandiaDot triangle
  counting variant: ``C<L> = L * U'``).

All kernels return flop counts for the machine model; allocation of the
result is charged by the GraphBLAS backends that call them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine import cancel
from repro.errors import DimensionMismatch
from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, PTR_DTYPE, gather_rows
from repro.sparse.join import cast_values, masked_row_join
from repro.sparse.segreduce import coo_group_reduce, segment_reduce
from repro.sparse.semiring_ops import BinaryFn, MonoidFn, SegmentReducer

#: Default cap on the expansion buffer of one SAXPY batch (elements).
DEFAULT_BATCH_FLOPS = 1 << 21


def spgemm_flop_count(A: CSRMatrix, B: CSRMatrix) -> int:
    """Exact flop count of ``A @ B``: sum over entries (i,k) of deg_B(k).

    This is what SuiteSparse's inspector computes to choose a method and to
    size allocations.
    """
    return int(B.row_degrees()[A.indices].sum())


def spgemm_saxpy(
    A: CSRMatrix,
    B: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> Tuple[CSRMatrix, int]:
    """Row-batched SAXPY (Gustavson-style) SpGEMM.  Returns ``(C, flops)``.

    A :class:`repro.sparse.blocked.BlockedCSR` left operand runs
    shard-by-shard (bit-identical result, O(shard) expansion buffers).
    """
    if hasattr(A, "shards"):
        from repro.sparse import blocked

        return blocked.spgemm_saxpy(A, B, add, mult, out_dtype=out_dtype,
                                    batch_flops=batch_flops)
    if A.ncols != B.nrows:
        raise DimensionMismatch(f"inner dimensions differ: {A.ncols} vs {B.nrows}")
    out_dtype = np.dtype(out_dtype)
    b_deg = B.row_degrees()

    # Partition A's rows into batches whose expansion fits the buffer.  The
    # cached row-id expansion is shared with the batch loop below, which
    # slices it instead of rebuilding np.repeat per batch.
    a_rows = A.row_ids()
    row_flops = segment_reduce(b_deg[A.indices], a_rows, A.nrows, "plus",
                               dtype=np.int64, row_splits=A.indptr)
    total_flops = int(row_flops.sum())

    chunks_rows = []
    chunks_cols = []
    chunks_vals = []
    row_lo = 0
    cum = np.concatenate(([0], np.cumsum(row_flops)))
    while row_lo < A.nrows:
        # A tripped deadline cancels a long SpGEMM at the next flop-bounded
        # batch, not only at the next OpEvent boundary.
        cancel.check()
        # Largest row_hi such that batch flops stay within budget (always >= 1 row).
        target = cum[row_lo] + batch_flops
        row_hi = int(np.searchsorted(cum, target, side="right")) - 1
        row_hi = max(row_hi, row_lo + 1)
        row_hi = min(row_hi, A.nrows)
        lo, hi = A.indptr[row_lo], A.indptr[row_hi]
        ks = A.indices[lo:hi].astype(np.int64)
        if len(ks):
            entry_rows = a_rows[lo:hi]
            cols, positions, seg = gather_rows(B, ks)
            if len(cols):
                a_vals = (
                    np.ones(hi - lo, dtype=out_dtype)
                    if A.values is None
                    else A.values[lo:hi].astype(out_dtype, copy=False)
                )
                b_vals = (
                    np.ones(len(cols), dtype=out_dtype)
                    if B.values is None
                    else B.values[positions].astype(out_dtype, copy=False)
                )
                products = mult.apply(a_vals[seg], b_vals)
                # Combine duplicate (row, col) contributions: densify/
                # bincount when the batch's row span affords it, key sort
                # otherwise (bit-identical either way).
                r_rows, r_cols, vals = coo_group_reduce(
                    entry_rows[seg], cols.astype(np.int64), products,
                    B.ncols, add, dtype=out_dtype)
                chunks_rows.append(r_rows)
                chunks_cols.append(r_cols.astype(INDEX_DTYPE))
                chunks_vals.append(vals)
        row_lo = row_hi

    if chunks_rows:
        out_rows = np.concatenate(chunks_rows)
        out_cols = np.concatenate(chunks_cols)
        out_vals = np.concatenate(chunks_vals)
    else:
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=INDEX_DTYPE)
        out_vals = np.empty(0, dtype=out_dtype)
    counts = np.bincount(out_rows, minlength=A.nrows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
    C = CSRMatrix(A.nrows, B.ncols, indptr, out_cols, out_vals)
    return C, total_flops


def spgemm_masked_dot(
    A: CSRMatrix,
    Bt: CSRMatrix,
    mask: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
) -> Tuple[CSRMatrix, int]:
    """SDOT SpGEMM restricted to a structural mask: ``C<mask> = A @ Bt'``.

    ``Bt`` is the transpose of the right operand, in CSR.  Only entries in
    ``mask``'s pattern are computed; mask positions whose dot product has no
    contributing pair produce no explicit entry (GraphBLAS semantics).
    Returns ``(C, work)`` where work counts merge comparisons.

    All mask rows are intersected at once through the batched merge-join
    engine (:mod:`repro.sparse.join`); the operand value casts are hoisted
    to one whole-array cast per side (the seed re-materialized Bt's values
    inside its per-row loop — O(nrows * nnz)).

    A :class:`repro.sparse.blocked.BlockedCSR` left operand joins
    shard-by-shard, with the mask row-sliced along the shard bounds.
    """
    if hasattr(A, "shards"):
        from repro.sparse import blocked

        return blocked.spgemm_masked_dot(A, Bt, mask, add, mult,
                                         out_dtype=out_dtype)
    if A.nrows != mask.nrows or Bt.nrows != mask.ncols:
        raise DimensionMismatch("mask shape must match A.nrows x Bt.nrows")
    out_dtype = np.dtype(out_dtype)
    reducer = SegmentReducer(add)
    res = masked_row_join(A, Bt, mask)

    if len(res.a_pos):
        a_vals = (
            np.ones(len(res.a_pos), dtype=out_dtype)
            if A.values is None
            else cast_values(A.values, out_dtype)[res.a_pos]
        )
        b_vals = (
            np.ones(len(res.b_pos), dtype=out_dtype)
            if Bt.values is None
            else cast_values(Bt.values, out_dtype)[res.b_pos]
        )
        # Matches arrive pair-major in B-row order — the per-row loops'
        # order — so this one global reduce accumulates each dot product
        # in exactly the sequence the per-row reduces did.
        products = mult.apply(a_vals, b_vals)
        vals = reducer.reduce(products, res.out_seg, mask.nvals,
                              dtype=out_dtype, sorted_ids=True)
        exists = res.hits > 0
        out_rows = mask.row_ids()[exists]
        out_cols = mask.indices[exists]
        out_vals = vals[exists]
    else:
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=INDEX_DTYPE)
        out_vals = np.empty(0, dtype=out_dtype)
    counts = np.bincount(out_rows, minlength=mask.nrows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
    C = CSRMatrix(mask.nrows, mask.ncols, indptr, out_cols, out_vals)
    return C, res.work


def spgemm_masked_saxpy(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> Tuple[CSRMatrix, int]:
    """SAXPY SpGEMM followed by a structural-mask filter.

    The full expansion is computed (that is what the hash/Gustavson methods
    do — the mask only filters the output), so the flop count equals the
    unmasked product's.
    """
    C, flops = spgemm_saxpy(A, B, add, mult, out_dtype, batch_flops)
    mask_keys = mask.row_ids() * np.int64(mask.ncols) + mask.indices
    c_keys = C.row_ids() * np.int64(C.ncols) + C.indices
    keep = np.isin(c_keys, mask_keys, assume_unique=True)
    return C.filter_entries(keep), flops


def spgemm_diag_left(
    diag: np.ndarray, B: CSRMatrix, mult: BinaryFn, out_dtype=np.float64
) -> Tuple[CSRMatrix, int]:
    """GaloisBLAS's optimized ``D @ B`` for diagonal ``D`` (§III-B).

    Each row of ``B`` is scaled by the corresponding diagonal entry, with no
    expansion or key sort — the optimization GaloisBLAS applies when it
    detects a diagonal operand.
    """
    if len(diag) != B.nrows:
        raise DimensionMismatch("diagonal length must equal B.nrows")
    out_dtype = np.dtype(out_dtype)
    row_of = B.row_ids()
    b_vals = B.value_array(out_dtype)
    vals = mult.apply(diag[row_of].astype(out_dtype, copy=False), b_vals)
    C = CSRMatrix(B.nrows, B.ncols, B.indptr.copy(), B.indices.copy(), vals)
    return C, B.nvals
