"""Sparse general matrix-matrix multiplication (SpGEMM) kernels.

SuiteSparse implements SpGEMM with two families (§III-A of the paper):

* **SAXPY** (Gustavson / hash): enumerate explicit entries of ``A`` by row
  and accumulate scaled rows of ``B`` into the output row.  Our vectorized
  equivalent expands ``A``'s entries into contributions, then combines them
  with a key sort — the memory behaviour (an intermediate proportional to
  the flop count) is the same as a hash accumulator's traffic.
* **SDOT**: transpose ``B`` and compute each output entry as a dot product
  of two sorted sparse rows.  Needs the output pattern up front, which is
  why it shines for *masked* multiplication (e.g. the SandiaDot triangle
  counting variant: ``C<L> = L * U'``).

All kernels return flop counts for the machine model; allocation of the
result is charged by the GraphBLAS backends that call them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DimensionMismatch
from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, PTR_DTYPE, gather_rows
from repro.sparse.segreduce import segment_reduce
from repro.sparse.semiring_ops import BinaryFn, MonoidFn, SegmentReducer

#: Default cap on the expansion buffer of one SAXPY batch (elements).
DEFAULT_BATCH_FLOPS = 1 << 21


def spgemm_flop_count(A: CSRMatrix, B: CSRMatrix) -> int:
    """Exact flop count of ``A @ B``: sum over entries (i,k) of deg_B(k).

    This is what SuiteSparse's inspector computes to choose a method and to
    size allocations.
    """
    return int(B.row_degrees()[A.indices].sum())


def spgemm_saxpy(
    A: CSRMatrix,
    B: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> Tuple[CSRMatrix, int]:
    """Row-batched SAXPY (Gustavson-style) SpGEMM.  Returns ``(C, flops)``."""
    if A.ncols != B.nrows:
        raise DimensionMismatch(f"inner dimensions differ: {A.ncols} vs {B.nrows}")
    out_dtype = np.dtype(out_dtype)
    reducer = SegmentReducer(add)
    b_deg = B.row_degrees()

    # Partition A's rows into batches whose expansion fits the buffer.  The
    # cached row-id expansion is shared with the batch loop below, which
    # slices it instead of rebuilding np.repeat per batch.
    a_rows = A.row_ids()
    row_flops = segment_reduce(b_deg[A.indices], a_rows, A.nrows, "plus",
                               dtype=np.int64, row_splits=A.indptr)
    total_flops = int(row_flops.sum())

    chunks_rows = []
    chunks_cols = []
    chunks_vals = []
    row_lo = 0
    cum = np.concatenate(([0], np.cumsum(row_flops)))
    while row_lo < A.nrows:
        # Largest row_hi such that batch flops stay within budget (always >= 1 row).
        target = cum[row_lo] + batch_flops
        row_hi = int(np.searchsorted(cum, target, side="right")) - 1
        row_hi = max(row_hi, row_lo + 1)
        row_hi = min(row_hi, A.nrows)
        lo, hi = A.indptr[row_lo], A.indptr[row_hi]
        ks = A.indices[lo:hi].astype(np.int64)
        if len(ks):
            entry_rows = a_rows[lo:hi]
            cols, positions, seg = gather_rows(B, ks)
            if len(cols):
                a_vals = (
                    np.ones(hi - lo, dtype=out_dtype)
                    if A.values is None
                    else A.values[lo:hi].astype(out_dtype, copy=False)
                )
                b_vals = (
                    np.ones(len(cols), dtype=out_dtype)
                    if B.values is None
                    else B.values[positions].astype(out_dtype, copy=False)
                )
                products = mult.apply(a_vals[seg], b_vals)
                keys = entry_rows[seg] * np.int64(B.ncols) + cols.astype(np.int64)
                uniq, inverse = np.unique(keys, return_inverse=True)
                vals = reducer.reduce(products, inverse, len(uniq), dtype=out_dtype)
                chunks_rows.append((uniq // B.ncols).astype(np.int64))
                chunks_cols.append((uniq % B.ncols).astype(INDEX_DTYPE))
                chunks_vals.append(vals)
        row_lo = row_hi

    if chunks_rows:
        out_rows = np.concatenate(chunks_rows)
        out_cols = np.concatenate(chunks_cols)
        out_vals = np.concatenate(chunks_vals)
    else:
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=INDEX_DTYPE)
        out_vals = np.empty(0, dtype=out_dtype)
    counts = np.bincount(out_rows, minlength=A.nrows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
    C = CSRMatrix(A.nrows, B.ncols, indptr, out_cols, out_vals)
    return C, total_flops


def spgemm_masked_dot(
    A: CSRMatrix,
    Bt: CSRMatrix,
    mask: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
) -> Tuple[CSRMatrix, int]:
    """SDOT SpGEMM restricted to a structural mask: ``C<mask> = A @ Bt'``.

    ``Bt`` is the transpose of the right operand, in CSR.  Only entries in
    ``mask``'s pattern are computed; mask positions whose dot product has no
    contributing pair produce no explicit entry (GraphBLAS semantics).
    Returns ``(C, work)`` where work counts merge comparisons.
    """
    if A.nrows != mask.nrows or Bt.nrows != mask.ncols:
        raise DimensionMismatch("mask shape must match A.nrows x Bt.nrows")
    out_dtype = np.dtype(out_dtype)
    reducer = SegmentReducer(add)
    total_work = 0

    all_rows = []
    all_cols = []
    all_vals = []
    for i in range(mask.nrows):
        mlo, mhi = mask.indptr[i], mask.indptr[i + 1]
        if mlo == mhi:
            continue
        j_list = mask.indices[mlo:mhi].astype(np.int64)
        a_lo, a_hi = A.indptr[i], A.indptr[i + 1]
        a_cols = A.indices[a_lo:a_hi]
        if len(a_cols) == 0:
            continue
        cat_cols, cat_pos, seg = gather_rows(Bt, j_list)
        total_work += len(cat_cols)
        if len(cat_cols) == 0:
            continue
        pos = np.searchsorted(a_cols, cat_cols)
        pos_clipped = np.minimum(pos, len(a_cols) - 1)
        matched = a_cols[pos_clipped] == cat_cols
        if not matched.any():
            continue
        a_vals = (
            np.ones(len(a_cols), dtype=out_dtype)
            if A.values is None
            else A.values[a_lo:a_hi].astype(out_dtype, copy=False)
        )
        b_vals = (
            np.ones(Bt.nvals, dtype=out_dtype)
            if Bt.values is None
            else Bt.values.astype(out_dtype, copy=False)
        )
        products = mult.apply(
            a_vals[pos_clipped[matched]], b_vals[cat_pos[matched]]
        )
        seg_m = seg[matched]
        vals = reducer.reduce(products, seg_m, len(j_list), dtype=out_dtype)
        exists = reducer.touched(seg_m, len(j_list))
        if exists.any():
            cols_i = j_list[exists]
            all_rows.append(np.full(len(cols_i), i, dtype=np.int64))
            all_cols.append(cols_i.astype(INDEX_DTYPE))
            all_vals.append(vals[exists])

    if all_rows:
        out_rows = np.concatenate(all_rows)
        out_cols = np.concatenate(all_cols)
        out_vals = np.concatenate(all_vals)
    else:
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=INDEX_DTYPE)
        out_vals = np.empty(0, dtype=out_dtype)
    counts = np.bincount(out_rows, minlength=mask.nrows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(PTR_DTYPE)
    C = CSRMatrix(mask.nrows, mask.ncols, indptr, out_cols, out_vals)
    return C, total_work


def spgemm_masked_saxpy(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: CSRMatrix,
    add: MonoidFn,
    mult: BinaryFn,
    out_dtype=np.float64,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> Tuple[CSRMatrix, int]:
    """SAXPY SpGEMM followed by a structural-mask filter.

    The full expansion is computed (that is what the hash/Gustavson methods
    do — the mask only filters the output), so the flop count equals the
    unmasked product's.
    """
    C, flops = spgemm_saxpy(A, B, add, mult, out_dtype, batch_flops)
    mask_keys = mask.row_ids() * np.int64(mask.ncols) + mask.indices
    c_keys = C.row_ids() * np.int64(C.ncols) + C.indices
    keep = np.isin(c_keys, mask_keys, assume_unique=True)
    return C.filter_entries(keep), flops


def spgemm_diag_left(
    diag: np.ndarray, B: CSRMatrix, mult: BinaryFn, out_dtype=np.float64
) -> Tuple[CSRMatrix, int]:
    """GaloisBLAS's optimized ``D @ B`` for diagonal ``D`` (§III-B).

    Each row of ``B`` is scaled by the corresponding diagonal entry, with no
    expansion or key sort — the optimization GaloisBLAS applies when it
    detects a diagonal operand.
    """
    if len(diag) != B.nrows:
        raise DimensionMismatch("diagonal length must equal B.nrows")
    out_dtype = np.dtype(out_dtype)
    row_of = B.row_ids()
    b_vals = B.value_array(out_dtype)
    vals = mult.apply(diag[row_of].astype(out_dtype, copy=False), b_vals)
    C = CSRMatrix(B.nrows, B.ncols, B.indptr.copy(), B.indices.copy(), vals)
    return C, B.nvals
