"""Per-graph kernel plan cache keyed on CSR structural memos.

The kernel engines re-derive their execution plan on every call from
dtype/sortedness/degree statistics: :func:`repro.sparse.segreduce.segment_reduce`
walks its monoid/dtype branch chain, and :func:`repro.sparse.join.row_pair_join`
re-materializes its hoisted composite keys and re-decides merge-vs-densify
per batch.  Steady-state iterative algorithms (PageRank, BFS, SSSP rounds)
call the same kernel on the same matrix thousands of times, so the plan —
a pure function of the matrix structure and the (kernel, monoid, dtype)
signature — never changes after the first call.

This module memoizes those decisions *on the matrix itself*, in the same
numpy-level structural-memo family as ``CSRMatrix.row_degrees()`` /
``row_ids()``: a ``_plan_cache`` dict living in a slot on the host CSR.
Cached plans never appear in the machine model's memory accounting, and a
cache hit can never change results — every cached value is a pure function
of structure that the deriving code would recompute identically (the
tier-1 suite runs with ``REPRO_PLAN_CACHE=0`` in CI to prove it).

Import-order note: :mod:`repro.sparse.csr` imports ``segreduce`` which
imports this module, so this module imports neither — hosts are duck-typed
on the ``_plan_cache`` slot.

Thread discipline: the shard-parallel executor
(:mod:`repro.sparse.parallel`) runs shard tasks concurrently, and while
each shard keys its plans on its *own* ``_plan_cache`` slot, the shared
right-hand operands (SpGEMM's ``B``/``Bt``) are hosts too — two shard
tasks can race to create the same host's cache dict or to count the same
entry.  One module lock serializes every cache/stats mutation; lookups
and stores are per-kernel-call (never per-element), so the uncontended
lock costs nanoseconds against kernels that run milliseconds.

Knobs:

* ``REPRO_PLAN_CACHE=0`` disables all lookups (plans re-derived per call);
* ``REPRO_PLAN_CACHE_STATS=1`` makes ``repro-study`` print the per-kernel
  hit/miss summary (:func:`summary_line`) to stderr.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional

__all__ = [
    "cached", "get", "put", "drop", "enabled", "set_enabled",
    "plan_cache_stats", "reset_stats", "hit_rate", "summary_line",
]

_ENABLED = os.environ.get("REPRO_PLAN_CACHE", "1") != "0"

#: Per-kernel lookup bookkeeping: kernel -> {"hits", "misses", "entries"}.
_STATS: Dict[str, Dict[str, int]] = {}

#: Serializes cache-dict creation and stats mutation across the kernel
#: threads of :mod:`repro.sparse.parallel` (see the module docstring).
_LOCK = threading.Lock()


def enabled() -> bool:
    """Whether lookups are live (REPRO_PLAN_CACHE, overridable per run)."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Force the cache on/off at runtime; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def _bucket(kernel: str) -> Dict[str, int]:
    bucket = _STATS.get(kernel)
    if bucket is None:
        bucket = _STATS[kernel] = {"hits": 0, "misses": 0, "entries": 0}
    return bucket


def get(host, kernel: str, key):
    """The cached value for ``(kernel, key)`` on ``host``, or None.

    Counts one hit or miss per call.  ``host`` is anything carrying a
    ``_plan_cache`` slot (a :class:`~repro.sparse.csr.CSRMatrix`); a None
    host always misses without touching the stats, so call sites can pass
    optional hosts unconditionally.  A slot-less host counts a regular
    miss (indistinguishable from a host whose slot is still empty).
    """
    if not _ENABLED or host is None:
        return None
    with _LOCK:
        cache = getattr(host, "_plan_cache", None)
        if cache is None:
            _bucket(kernel)["misses"] += 1
            return None
        value = cache.get((kernel, key))
        if value is None:
            _bucket(kernel)["misses"] += 1
            return None
        _bucket(kernel)["hits"] += 1
        return value


def put(host, kernel: str, key, value) -> None:
    """Store ``value`` for ``(kernel, key)`` on ``host`` (no-op if disabled)."""
    if not _ENABLED or host is None or value is None:
        return
    if not hasattr(host, "_plan_cache"):
        return
    with _LOCK:
        cache = host._plan_cache
        if cache is None:
            cache = host._plan_cache = {}
        if (kernel, key) not in cache:
            _bucket(kernel)["entries"] += 1
        cache[(kernel, key)] = value


def cached(host, kernel: str, key, derive: Callable):
    """Memoized ``derive()`` keyed by ``(kernel, key)`` on ``host``.

    The one-liner most call sites want: a hit returns the stored plan, a
    miss derives, stores and returns it.  With the cache disabled (or a
    host that cannot cache) every call derives fresh — byte-identical by
    construction, since ``derive`` is a pure function of structure.
    """
    value = get(host, kernel, key)
    if value is not None:
        return value
    value = derive()
    put(host, kernel, key, value)
    return value


def drop(host) -> None:
    """Forget every plan cached on ``host`` (structural invalidation)."""
    with _LOCK:
        cache = getattr(host, "_plan_cache", None)
        if cache:
            for kernel, _key in cache:
                _bucket(kernel)["entries"] -= 1
        if cache is not None:
            host._plan_cache = None


def plan_cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-kernel ``{"hits", "misses", "entries"}`` since the last reset."""
    return {kernel: dict(bucket) for kernel, bucket in sorted(_STATS.items())}


def reset_stats() -> None:
    """Zero the bookkeeping (benchmarks isolate their steady-state rate)."""
    _STATS.clear()


def hit_rate() -> Optional[float]:
    """Aggregate hits / lookups across kernels, or None with no lookups."""
    hits = sum(b["hits"] for b in _STATS.values())
    lookups = hits + sum(b["misses"] for b in _STATS.values())
    if lookups == 0:
        return None
    return hits / lookups


def summary_line() -> str:
    """One-line per-kernel summary for the REPRO_PLAN_CACHE_STATS report."""
    if not _ENABLED:
        return "plan-cache: disabled (REPRO_PLAN_CACHE=0)"
    if not _STATS:
        return "plan-cache: no lookups"
    parts = []
    for kernel, bucket in sorted(_STATS.items()):
        lookups = bucket["hits"] + bucket["misses"]
        parts.append(f"{kernel} {bucket['hits']}/{lookups} hits, "
                     f"{bucket['entries']} entries")
    return "plan-cache: " + "; ".join(parts)
