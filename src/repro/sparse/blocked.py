"""Row-partitioned (blocked) CSR storage and shard-wise kernel drivers.

A :class:`BlockedCSR` splits one logical sparse matrix into contiguous
**row-range shards**.  Each :class:`CSRShard` is a self-contained local
``(indptr, indices, values)`` triple (a :class:`~repro.sparse.csr.CSRMatrix`
over its own rows, with global column ids) plus the structural metadata the
planners want without touching the payload arrays: ``nnz`` and the degree
extrema.  Because every shard *is* a ``CSRMatrix``, each one carries its own
``_plan_cache``/``row_ids`` memo slots, so the plan cache of
:mod:`repro.sparse.plancache` keys per shard exactly as it keys per matrix.

Two properties make this the storage substrate for out-of-core graphs:

* **Lazy shards.**  A shard may be constructed from a ``loader`` callable
  instead of live arrays (the artifact store passes ``np.load(...,
  mmap_mode="r")`` thunks).  ``shard.csr`` materializes on first touch and
  ``shard.release()`` drops the reference again, so a shard-wise sweep maps
  one shard at a time and its peak incremental resident set is O(shard),
  not O(graph) — measured, not just claimed, in
  ``benchmarks/bench_artifacts.py``.
* **Bit-identical results.**  The shard-wise drivers below (`spmv_pull`,
  `vxm_push`, `spgemm_saxpy`, `spgemm_masked_dot`) partition only the *row*
  dimension, and every one of the monolithic kernels reduces rows
  independently (SpMV pull) or streams contributions in row-major order
  (push / SAXPY / masked dot), so concatenating per-shard outputs
  reproduces the monolithic result byte for byte.  Sharding changes where
  the bytes live, never what a kernel computes or what the machine model
  charges — the reproducibility invariant the artifact store relies on.

The monolithic kernels in :mod:`repro.sparse.spmv` and
:mod:`repro.sparse.spgemm` accept a ``BlockedCSR`` for their matrix operand
and delegate here, so callers never need to know which storage they hold.

``REPRO_SHARD_ROWS`` sets the default shard geometry (rows per shard); the
default keeps every built-in study graph in a single shard, which makes
``to_csr()`` a zero-copy view over the (possibly mmap-backed) shard arrays.

``REPRO_KERNEL_THREADS`` fans the shard loops below out over the
persistent thread pool of :mod:`repro.sparse.parallel` (the shard kernels
are numpy-bound and release the GIL).  Partials always merge in fixed
shard order, so the result bytes are independent of the thread count;
every shard task starts with a :func:`repro.engine.cancel.check`, so a
tripped deadline stops a long SpGEMM at the next shard boundary instead
of the next OpEvent boundary.  Shard-task plan memos key on each shard's
own ``_plan_cache`` slot; the shared right-hand operands' memos are
guarded by the plan cache's lock (see :mod:`repro.sparse.plancache`).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

import numpy as np

import repro.sparse.spgemm as _spgemm
import repro.sparse.spmv as _spmv
from repro.engine import cancel
from repro.errors import DimensionMismatch, InvalidValue
from repro.sparse import parallel
from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, PTR_DTYPE
from repro.sparse.segreduce import group_reduce, segment_reduce

#: Rows per shard when ``REPRO_SHARD_ROWS`` is unset.  Large enough that
#: each of the nine study twins stays monolithic (single shard, zero-copy
#: ``to_csr``); small enough that beyond-RAM graphs split usefully.
DEFAULT_SHARD_ROWS = 1 << 16


def shard_rows_from_env(environ: Optional[dict] = None) -> int:
    """The ``REPRO_SHARD_ROWS`` knob, validated (positive int)."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_SHARD_ROWS", "").strip()
    if not raw:
        return DEFAULT_SHARD_ROWS
    try:
        value = int(raw)
    except ValueError:
        raise InvalidValue(
            f"REPRO_SHARD_ROWS wants a row count, got {raw!r}") from None
    if value < 1:
        raise InvalidValue(f"REPRO_SHARD_ROWS must be >= 1; got {value}")
    return value


def shard_bounds(nrows: int, shard_rows: int) -> List[Tuple[int, int]]:
    """Contiguous ``(row_start, row_stop)`` ranges covering ``[0, nrows)``.

    An empty matrix still gets one empty shard so every ``BlockedCSR`` has
    at least one shard to anchor shape metadata.
    """
    if shard_rows < 1:
        raise InvalidValue(f"shard_rows must be >= 1; got {shard_rows}")
    if nrows <= 0:
        return [(0, 0)]
    return [(lo, min(lo + shard_rows, nrows))
            for lo in range(0, nrows, shard_rows)]


def row_slice(csr: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """The rows ``[start, stop)`` of ``csr`` as a local CSRMatrix.

    ``indices``/``values`` are zero-copy views into the parent's arrays;
    only the O(rows) local ``indptr`` is fresh.  Column ids stay global.
    """
    if not 0 <= start <= stop <= csr.nrows:
        raise DimensionMismatch(
            f"row range [{start}, {stop}) outside [0, {csr.nrows})")
    lo = int(csr.indptr[start])
    hi = int(csr.indptr[stop]) if stop > start else lo
    local_indptr = csr.indptr[start:stop + 1] - lo
    if stop == start:
        local_indptr = np.zeros(1, dtype=PTR_DTYPE)
    return CSRMatrix(
        stop - start, csr.ncols, local_indptr,
        csr.indices[lo:hi],
        None if csr.values is None else csr.values[lo:hi])


class CSRShard:
    """One row-range shard: a local CSR plus structural metadata.

    Exactly one of ``csr`` / ``loader`` must be given.  A loader-backed
    shard materializes its arrays on first ``.csr`` access (the artifact
    store's mmap path) and can be dropped again with :meth:`release`;
    metadata (``nnz``, degree extrema) comes from the manifest, so planning
    a sweep over a blocked graph touches no payload bytes.
    """

    __slots__ = ("row_start", "row_stop", "nnz", "degree_min", "degree_max",
                 "_csr", "_loader")

    def __init__(self, row_start: int, row_stop: int,
                 csr: Optional[CSRMatrix] = None,
                 loader: Optional[Callable[[], CSRMatrix]] = None,
                 nnz: Optional[int] = None,
                 degree_min: Optional[int] = None,
                 degree_max: Optional[int] = None):
        if (csr is None) == (loader is None):
            raise InvalidValue("a shard wants exactly one of csr/loader")
        self.row_start = int(row_start)
        self.row_stop = int(row_stop)
        self._csr = csr
        self._loader = loader
        if csr is not None:
            if csr.nrows != self.nrows:
                raise DimensionMismatch(
                    f"shard rows [{row_start}, {row_stop}) but local CSR "
                    f"has {csr.nrows} rows")
            degrees = csr.row_degrees()
            nnz = csr.nvals
            degree_min = int(degrees.min()) if len(degrees) else 0
            degree_max = int(degrees.max()) if len(degrees) else 0
        elif nnz is None or degree_min is None or degree_max is None:
            raise InvalidValue(
                "a loader-backed shard wants nnz/degree_min/degree_max "
                "metadata up front")
        self.nnz = int(nnz)
        self.degree_min = int(degree_min)
        self.degree_max = int(degree_max)

    @property
    def nrows(self) -> int:
        """Rows this shard covers."""
        return self.row_stop - self.row_start

    @property
    def loaded(self) -> bool:
        """Whether the payload arrays are currently materialized."""
        return self._csr is not None

    @property
    def csr(self) -> CSRMatrix:
        """The shard's local CSR, materializing a lazy shard on demand."""
        if self._csr is None:
            csr = self._loader()
            if csr.nrows != self.nrows or csr.nvals != self.nnz:
                raise InvalidValue(
                    f"shard loader returned {csr.nrows} rows/{csr.nvals} "
                    f"entries, manifest says {self.nrows}/{self.nnz}")
            self._csr = csr
        return self._csr

    def release(self) -> None:
        """Drop a lazy shard's arrays (and their plan memos) again.

        A shard constructed from live arrays keeps them — only
        loader-backed shards can re-materialize, so only they release.
        """
        if self._loader is not None:
            self._csr = None

    def __repr__(self):
        state = "loaded" if self.loaded else "lazy"
        return (f"CSRShard(rows=[{self.row_start}, {self.row_stop}), "
                f"nnz={self.nnz}, deg=[{self.degree_min}, "
                f"{self.degree_max}], {state})")


class BlockedCSR:
    """A logical sparse matrix stored as contiguous row-range shards."""

    __slots__ = ("nrows", "ncols", "shards", "_monolith")

    def __init__(self, nrows: int, ncols: int, shards: List[CSRShard]):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.shards = list(shards)
        self._monolith: Optional[CSRMatrix] = None
        if not self.shards:
            raise InvalidValue("a BlockedCSR wants at least one shard")
        expect = 0
        for shard in self.shards:
            if shard.row_start != expect:
                raise DimensionMismatch(
                    f"shard starting at row {shard.row_start} leaves a gap "
                    f"(expected {expect})")
            expect = shard.row_stop
        if expect != self.nrows:
            raise DimensionMismatch(
                f"shards cover {expect} rows, matrix has {self.nrows}")

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix,
                 shard_rows: Optional[int] = None) -> "BlockedCSR":
        """Partition a monolithic CSR into row-range view shards.

        Shard ``indices``/``values`` are zero-copy views; only the local
        ``indptr`` arrays (O(rows) total) are fresh.
        """
        shard_rows = shard_rows_from_env() if shard_rows is None \
            else int(shard_rows)
        shards = [CSRShard(lo, hi, csr=row_slice(csr, lo, hi))
                  for lo, hi in shard_bounds(csr.nrows, shard_rows)]
        return cls(csr.nrows, csr.ncols, shards)

    @property
    def nvals(self) -> int:
        """Explicit entries, summed over shard metadata (no payload touch)."""
        return sum(shard.nnz for shard in self.shards)

    @property
    def nshards(self) -> int:
        return len(self.shards)

    @property
    def nbytes(self) -> int:
        """Payload bytes of the materialized form (metadata-derived)."""
        entry = INDEX_DTYPE().itemsize
        ptr = PTR_DTYPE().itemsize
        total = (self.nrows + self.nshards) * ptr + self.nvals * entry
        for shard in self.shards:
            if shard.loaded and shard.csr.values is not None:
                total += shard.csr.values.nbytes
        return total

    def iter_shards(self, release: bool = False):
        """Yield each shard in row order; ``release=True`` drops each lazy
        shard's arrays after its iteration step (the streaming sweep)."""
        for shard in self.shards:
            yield shard
            if release:
                shard.release()

    def row_degrees(self) -> np.ndarray:
        """Per-row explicit-entry counts, concatenated shard-by-shard."""
        return np.concatenate(
            [shard.csr.row_degrees() for shard in self.shards])

    def reduce_rows(self, monoid, values: Optional[np.ndarray] = None,
                    dtype=np.float64) -> np.ndarray:
        """Shard-wise segment reduction of per-entry values into rows.

        ``values`` is entry-aligned over the whole matrix (defaults to the
        stored values / implicit ones); each shard reduces through
        :func:`repro.sparse.segreduce.segment_reduce` with its own
        ``indptr`` as ``row_splits``, so the working set is one shard
        per kernel thread.
        """
        dtype = np.dtype(dtype)
        offsets = np.concatenate(
            ([0], np.cumsum([shard.nnz for shard in self.shards])))

        def task(entry):
            shard, offset = entry
            cancel.check()
            csr = shard.csr
            if values is None:
                vals = csr.value_array(dtype)
            else:
                vals = values[offset:offset + shard.nnz]
            return segment_reduce(vals, None, csr.nrows, monoid,
                                  dtype=dtype, row_splits=csr.indptr,
                                  cache_on=csr)

        threads = parallel.effective_threads(self.nshards)
        out = parallel.map_shards(task, zip(self.shards, offsets),
                                  threads=threads)
        parallel.record_fanout(self.nshards, threads)
        return np.concatenate(out) if len(out) > 1 else out[0]

    def to_csr(self) -> CSRMatrix:
        """The monolithic CSR (memoized).

        Single-shard blocks — the default geometry for every study graph —
        return the shard's CSR itself: zero copies, so an mmap-backed
        artifact stays mmap-backed.  Multi-shard blocks concatenate.
        """
        if self._monolith is not None:
            return self._monolith
        if len(self.shards) == 1:
            self._monolith = self.shards[0].csr
            return self._monolith
        indptr = np.zeros(self.nrows + 1, dtype=PTR_DTYPE)
        chunks_idx = []
        chunks_val = []
        offset = 0
        has_values = None
        for shard in self.shards:
            csr = shard.csr
            indptr[shard.row_start + 1:shard.row_stop + 1] = \
                csr.indptr[1:] + offset
            offset += csr.nvals
            chunks_idx.append(csr.indices)
            if has_values is None:
                has_values = csr.values is not None
            elif has_values != (csr.values is not None):
                raise InvalidValue("shards disagree on having values")
            if csr.values is not None:
                chunks_val.append(csr.values)
        indices = (np.concatenate(chunks_idx) if chunks_idx
                   else np.empty(0, dtype=INDEX_DTYPE))
        values = np.concatenate(chunks_val) if chunks_val else None
        self._monolith = CSRMatrix(self.nrows, self.ncols, indptr,
                                   indices, values)
        return self._monolith

    def release(self) -> None:
        """Drop every lazy shard's arrays and the monolith memo."""
        self._monolith = None
        for shard in self.shards:
            shard.release()

    def __repr__(self):
        return (f"BlockedCSR({self.nrows}x{self.ncols}, "
                f"nvals={self.nvals}, shards={self.nshards})")


def is_blocked(matrix) -> bool:
    """Duck-typed blocked check used by the kernel dispatchers."""
    return isinstance(matrix, BlockedCSR)


# ----------------------------------------------------------------------
# Shard-wise kernel drivers (bit-identical to their monolithic twins)
# ----------------------------------------------------------------------

def spmv_pull(A: BlockedCSR, x: np.ndarray, add, mult, out_dtype=None,
              release: bool = False):
    """Shard-wise ``y = A (+.x) x`` (SDOT pull).  Same contract as
    :func:`repro.sparse.spmv.spmv_pull`.

    Rows reduce independently, so per-shard outputs concatenate to the
    monolithic result bit for bit while the working set (the products
    array) is O(shard) per thread.  ``release=True`` drops each lazy
    shard's mmap after its rows are done — the streaming sweep stays
    O(threads x shard) resident.
    """
    def task(shard):
        cancel.check()
        try:
            return _spmv.spmv_pull(shard.csr, x, add, mult,
                                   out_dtype=out_dtype)
        finally:
            if release:
                shard.release()

    threads = parallel.effective_threads(A.nshards)
    parts = parallel.map_shards(task, A.shards, threads=threads)
    parallel.record_fanout(A.nshards, threads)
    flops = sum(part[2] for part in parts)
    if len(parts) == 1:
        return parts[0][0], parts[0][1], flops
    return (np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]), flops)


def vxm_push(A: BlockedCSR, x_idx: np.ndarray, x_vals: np.ndarray,
             add, mult, out_dtype=None, release: bool = False):
    """Shard-wise sparse ``y' = x' (+.x) A`` (SAXPY push).

    ``x_idx`` must be sorted ascending (every call site's frontiers are).
    Each shard gathers the contributions of the frontier entries landing
    in its row range; the streams concatenate in exactly the order the
    monolithic gather produces, and one final reduction combines them —
    bit-identical to :func:`repro.sparse.spmv.vxm_push`.
    """
    out_dtype = np.dtype(out_dtype or x_vals.dtype)
    if len(x_idx) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    starts = np.searchsorted(
        x_idx, [shard.row_start for shard in A.shards], side="left")
    stops = np.searchsorted(
        x_idx, [shard.row_stop for shard in A.shards], side="left")

    def task(entry):
        shard, lo, hi = entry
        cancel.check()
        if hi == lo:
            if release:
                shard.release()
            return None
        try:
            csr = shard.csr
            local_idx = x_idx[lo:hi] - shard.row_start
            cols, positions, seg = _spmv.gather_rows(csr, local_idx)
            if not len(cols):
                return None
            a_vals = (np.ones(len(cols), dtype=out_dtype)
                      if csr.values is None
                      else csr.values[positions].astype(out_dtype,
                                                        copy=False))
            seg_vals = x_vals[lo:hi][seg].astype(out_dtype, copy=False)
            return cols.astype(np.int64), mult.apply(seg_vals, a_vals)
        finally:
            if release:
                shard.release()

    threads = parallel.effective_threads(A.nshards)
    parts = parallel.map_shards(task, zip(A.shards, starts, stops),
                                threads=threads)
    parallel.record_fanout(A.nshards, threads)
    chunks_cols = [part[0] for part in parts if part is not None]
    chunks_products = [part[1] for part in parts if part is not None]
    flops = sum(len(chunk) for chunk in chunks_cols)
    if not chunks_cols:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(out_dtype), 0
    cols = np.concatenate(chunks_cols) if len(chunks_cols) > 1 \
        else chunks_cols[0]
    products = np.concatenate(chunks_products) \
        if len(chunks_products) > 1 else chunks_products[0]
    y_idx, y_vals = group_reduce(cols, products, A.ncols, add,
                                 dtype=out_dtype)
    return y_idx, y_vals, flops


def _stack_row_blocks(blocks: List[CSRMatrix], nrows: int,
                      ncols: int) -> CSRMatrix:
    """Vertically concatenate row-range result blocks into one CSR."""
    indptr = np.zeros(nrows + 1, dtype=PTR_DTYPE)
    chunks_idx = []
    chunks_val = []
    offset = 0
    row = 0
    for block in blocks:
        indptr[row + 1:row + block.nrows + 1] = block.indptr[1:] + offset
        offset += block.nvals
        row += block.nrows
        chunks_idx.append(block.indices)
        if block.values is not None:
            chunks_val.append(block.values)
    indices = (np.concatenate(chunks_idx) if chunks_idx
               else np.empty(0, dtype=INDEX_DTYPE))
    values = np.concatenate(chunks_val) if chunks_val else None
    return CSRMatrix(nrows, ncols, indptr, indices, values)


def spgemm_saxpy(A: BlockedCSR, B: CSRMatrix, add, mult,
                 out_dtype=np.float64,
                 batch_flops: int = _spgemm.DEFAULT_BATCH_FLOPS,
                 release: bool = False):
    """Shard-wise SAXPY SpGEMM over ``A``'s row shards.

    Each output row is produced entirely by the shard owning it (the
    monolithic kernel already batches by whole rows), so stacking the
    per-shard blocks is bit-identical to the monolithic product.
    """
    def task(shard):
        cancel.check()
        try:
            return _spgemm.spgemm_saxpy(shard.csr, B, add, mult,
                                        out_dtype=out_dtype,
                                        batch_flops=batch_flops)
        finally:
            if release:
                shard.release()

    threads = parallel.effective_threads(A.nshards)
    parts = parallel.map_shards(task, A.shards, threads=threads)
    parallel.record_fanout(A.nshards, threads)
    blocks = [part[0] for part in parts]
    flops = sum(part[1] for part in parts)
    if len(blocks) == 1:
        return blocks[0], flops
    return _stack_row_blocks(blocks, A.nrows, B.ncols), flops


def spgemm_masked_dot(A: BlockedCSR, Bt: CSRMatrix, mask: CSRMatrix,
                      add, mult, out_dtype=np.float64,
                      release: bool = False):
    """Shard-wise masked SDOT SpGEMM: ``C<mask> = A @ Bt'``.

    The mask is row-sliced along ``A``'s shard bounds so each shard joins
    only its own mask rows through the merge-join engine — shard-by-shard
    row intersections, O(shard) candidate buffers.
    """
    if A.nrows != mask.nrows:
        raise DimensionMismatch("mask rows must match A rows")

    def task(shard):
        cancel.check()
        try:
            mask_block = row_slice(mask, shard.row_start, shard.row_stop)
            return _spgemm.spgemm_masked_dot(shard.csr, Bt, mask_block,
                                             add, mult,
                                             out_dtype=out_dtype)
        finally:
            if release:
                shard.release()

    threads = parallel.effective_threads(A.nshards)
    parts = parallel.map_shards(task, A.shards, threads=threads)
    parallel.record_fanout(A.nshards, threads)
    blocks = [part[0] for part in parts]
    work = sum(part[1] for part in parts)
    if len(blocks) == 1:
        return blocks[0], work
    return _stack_row_blocks(blocks, A.nrows, mask.ncols), work
