"""Set-intersection kernels for triangle counting and truss support.

These back both stacks' triangle work, but with different *materialization*
behaviour, which is the paper's limitation #2:

* Lonestar counts triangles by accumulating a scalar inside the search loop
  (:func:`count_triangles_lower`) — no output matrix;
* the GraphBLAS SandiaDot path (``spgemm_masked_dot`` in
  :mod:`repro.sparse.spgemm`) materializes the per-edge counts into C and
  reduces it afterwards.

:func:`edge_supports` computes per-edge common-neighbor counts restricted
to a set of rows and an aliveness filter, which is what the Gauss-Seidel
Lonestar ktruss needs.

Both kernels are one call into the batched merge-join engine
(:mod:`repro.sparse.join`) — no per-row Python loop — and report the same
work/row_work counts the per-row loops they replaced did, so the machine
model sees identical numbers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, expand_ranges
from repro.sparse.join import masked_row_join, row_pair_join
from repro.sparse.segreduce import segment_reduce


def count_triangles_lower(L: CSRMatrix, check_order: bool = True):
    """Triangles via ordered listing on a lower-triangular pattern.

    For every edge (i, j) in ``L`` (j < i), counts ``|L[i] ∩ L[j]|``.
    Returns ``(ntri, work, row_work)`` where ``work`` counts merge
    comparisons and ``row_work[i]`` is row i's share (the load-balance
    weights of the counting loop).  With ``check_order`` the per-edge
    ordering test (u > v > w) is included in the caller's instruction
    accounting — Lonestar performs it at runtime where gb-ll's
    preprocessing removed the need (§V-B "tc").
    """
    # One batched join, one pair per edge (i, j): intersect row i with
    # row j.  cand[k] is the gathered length of row j, so row-summing it
    # reproduces the per-row loop's `len(cat)` work shares exactly.
    res = masked_row_join(L, L, L)
    row_work = segment_reduce(res.cand, None, L.nrows, "plus",
                              dtype=np.int64, row_splits=L.indptr)
    return int(res.hits.sum()), res.work, row_work


def edge_supports(
    csr: CSRMatrix,
    alive: np.ndarray,
    rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Common-neighbor count per (alive) edge of the given rows.

    ``alive`` is a boolean over csr entries; dead entries neither receive a
    support value nor participate as wedges.  Returns
    ``(supports, work, row_work)`` where ``supports`` is aligned with csr
    entries (0 where dead or not in ``rows``) and ``row_work`` aligns with
    ``rows``.
    """
    supports = np.zeros(csr.nvals, dtype=np.int64)
    row_arr = (np.arange(csr.nrows, dtype=np.int64) if rows is None
               else np.asarray(rows, dtype=np.int64))
    row_work = np.zeros(len(row_arr), dtype=np.int64)
    # One pair per live entry (i, nbr) of the requested rows: intersect
    # row i's live adjacency with row nbr's (both sides filtered by
    # ``alive``, like the per-row loop's pre- and post-gather filters).
    starts = csr.indptr[row_arr]
    stops = csr.indptr[row_arr + 1]
    entry_pos = expand_ranges(starts, stops)
    if len(entry_pos) == 0:
        return supports, 0, row_work
    pair_row = np.repeat(np.arange(len(row_arr), dtype=np.int64),
                         stops - starts)
    live = alive[entry_pos]
    entry_pos = entry_pos[live]
    pair_row = pair_row[live]
    if len(entry_pos) == 0:
        return supports, 0, row_work
    res = row_pair_join(csr, row_arr[pair_row],
                        csr, csr.indices[entry_pos].astype(np.int64),
                        a_keep=alive, b_keep=alive)
    supports[entry_pos] = res.hits
    row_work = segment_reduce(res.cand, pair_row, len(row_arr), "plus",
                              dtype=np.int64, sorted_ids=True)
    return supports, res.work, row_work


def twin_positions(csr: CSRMatrix) -> np.ndarray:
    """For a symmetric pattern, the entry position of each entry's reverse.

    ``twin[p]`` is the index of (col, row) given entry ``p`` = (row, col);
    used to remove both orientations of an undirected edge together.
    """
    if csr.nvals == 0:
        return np.empty(0, dtype=np.int64)
    rows = csr.row_ids()
    cols = csr.indices.astype(np.int64)
    # CSR entries are sorted by (row, col), so the flattened keys are sorted
    # ascending and each reversed key can be located with one binary search.
    keys = rows * csr.ncols + cols
    rev = cols * csr.ncols + rows
    twin = np.searchsorted(keys, rev)
    if twin.max(initial=0) >= csr.nvals or not np.array_equal(keys[twin], rev):
        raise ValueError("matrix is not structurally symmetric")
    return twin
