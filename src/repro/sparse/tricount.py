"""Set-intersection kernels for triangle counting and truss support.

These back both stacks' triangle work, but with different *materialization*
behaviour, which is the paper's limitation #2:

* Lonestar counts triangles by accumulating a scalar inside the search loop
  (:func:`count_triangles_lower`) — no output matrix;
* the GraphBLAS SandiaDot path (``spgemm_masked_dot`` in
  :mod:`repro.sparse.spgemm`) materializes the per-edge counts into C and
  reduces it afterwards.

:func:`edge_supports` computes per-edge common-neighbor counts restricted
to a set of rows and an aliveness filter, which is what the Gauss-Seidel
Lonestar ktruss needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, gather_rows


def count_triangles_lower(L: CSRMatrix, check_order: bool = True):
    """Triangles via ordered listing on a lower-triangular pattern.

    For every edge (i, j) in ``L`` (j < i), counts ``|L[i] ∩ L[j]|``.
    Returns ``(ntri, work, row_work)`` where ``work`` counts merge
    comparisons and ``row_work[i]`` is row i's share (the load-balance
    weights of the counting loop).  With ``check_order`` the per-edge
    ordering test (u > v > w) is included in the caller's instruction
    accounting — Lonestar performs it at runtime where gb-ll's
    preprocessing removed the need (§V-B "tc").
    """
    total = 0
    work = 0
    indptr, indices = L.indptr, L.indices
    row_work = np.zeros(L.nrows, dtype=np.int64)
    for i in range(L.nrows):
        lo, hi = indptr[i], indptr[i + 1]
        if lo == hi:
            continue
        row_i = indices[lo:hi]
        cat, _, _ = gather_rows(L, row_i.astype(np.int64))
        work += len(cat)
        row_work[i] = len(cat)
        if len(cat) == 0:
            continue
        pos = np.searchsorted(row_i, cat)
        pos = np.minimum(pos, len(row_i) - 1)
        total += int(np.count_nonzero(row_i[pos] == cat))
    return total, work, row_work


def edge_supports(
    csr: CSRMatrix,
    alive: np.ndarray,
    rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Common-neighbor count per (alive) edge of the given rows.

    ``alive`` is a boolean over csr entries; dead entries neither receive a
    support value nor participate as wedges.  Returns
    ``(supports, work, row_work)`` where ``supports`` is aligned with csr
    entries (0 where dead or not in ``rows``) and ``row_work`` aligns with
    ``rows``.
    """
    n = csr.nrows
    indptr, indices = csr.indptr, csr.indices
    supports = np.zeros(csr.nvals, dtype=np.int64)
    work = 0
    row_iter = range(n) if rows is None else np.asarray(rows)
    row_work = np.zeros(len(row_iter) if rows is not None else n,
                        dtype=np.int64)
    for k, i in enumerate(row_iter):
        lo, hi = indptr[i], indptr[i + 1]
        if lo == hi:
            continue
        live_pos = np.flatnonzero(alive[lo:hi]) + lo
        if len(live_pos) == 0:
            continue
        nbrs = indices[live_pos].astype(np.int64)
        # Gather the (live) adjacency of every live neighbor.
        cat, cat_positions, seg = gather_rows(csr, nbrs)
        if len(cat) == 0:
            continue
        cat_live = alive[cat_positions]
        cat = cat[cat_live]
        seg = seg[cat_live]
        work += len(cat)
        row_work[k] = len(cat)
        if len(cat) == 0:
            continue
        # Membership of each gathered neighbor in i's live adjacency.
        pos = np.searchsorted(nbrs, cat)
        pos = np.minimum(pos, len(nbrs) - 1)
        matched = nbrs[pos] == cat
        counts = np.bincount(seg[matched], minlength=len(nbrs))
        supports[live_pos] = counts
    return supports, work, row_work


def twin_positions(csr: CSRMatrix) -> np.ndarray:
    """For a symmetric pattern, the entry position of each entry's reverse.

    ``twin[p]`` is the index of (col, row) given entry ``p`` = (row, col);
    used to remove both orientations of an undirected edge together.
    """
    if csr.nvals == 0:
        return np.empty(0, dtype=np.int64)
    rows = csr.row_ids()
    cols = csr.indices.astype(np.int64)
    # CSR entries are sorted by (row, col), so the flattened keys are sorted
    # ascending and each reversed key can be located with one binary search.
    keys = rows * csr.ncols + cols
    rev = cols * csr.ncols + rows
    twin = np.searchsorted(keys, rev)
    if twin.max(initial=0) >= csr.nvals or not np.array_equal(keys[twin], rev):
        raise ValueError("matrix is not structurally symmetric")
    return twin
