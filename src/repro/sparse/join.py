"""Batched merge-join engine for sorted-sparse-row intersections.

Every set-intersection hot path in the repo — the masked SDOT SpGEMM
(``C<L> = L * U'``, the SandiaDot triangle-counting variant of §III-A),
both tricount kernels, the ktruss support pass — is some instance of
*row-pair join*: for a list of (a_row, b_row) pairs, find the entries the
two sorted CSR rows share.  This module is the single vectorized entry
point for that operation, the intersection companion of the
:mod:`repro.sparse.segreduce` reduction engine.

:func:`row_pair_join` processes **all** pairs at once in flop-bounded
batches (the same batching discipline as ``spgemm_saxpy``): each batch
gathers its B-side rows with :func:`repro.sparse.csr.gather_rows`, forms
composite ``row * ncols + col`` candidate keys, and then tests membership
against the A side with one of two plans:

* **merge** — one two-sided ``searchsorted`` of the candidate keys into
  the (globally sorted) A-side key slice covering the batch's row span.
  Cost ``O(n_cand * log(slice))``; always applicable.
* **densify-by-column** — scatter the A-side slice into a dense
  ``row_span x ncols`` position table and answer every candidate with one
  gather.  Cost ``O(table + slice + n_cand)``; chosen when the batch's
  row degrees are high enough that the table is comparable to the
  candidate count (and the table fits a fixed budget).

Both plans return *identical* outputs in identical order, so the plan
choice — like the batch boundaries — can never change results.  The
engine changes wall-clock time only: all modeled accounting (OpEvents,
flop/work counts) is derived from the returned candidate counts, which
replicate exactly what the per-row loops this engine replaced counted.

:func:`dedup_bounded` is the worklist companion: an O(n) flag-array
deduplication for id arrays with a known domain bound, replacing the
Lonestar frontiers' O(n log n) sort-based ``np.unique``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine import cancel
from repro.errors import DimensionMismatch, InvalidValue
from repro.sparse import plancache
from repro.sparse.csr import CSRMatrix, expand_ranges, gather_rows

#: Cap on the gathered candidate buffer of one join batch (elements).
DEFAULT_BATCH_FLOPS = 1 << 21

#: Cap on the densify plan's position table (elements per batch).
DENSIFY_TABLE_BUDGET = 1 << 22

#: Value-array cast bookkeeping for the hoisted-cast regression test:
#: ``calls`` counts :func:`cast_values` invocations since last reset.
CAST_COUNTS = {"calls": 0}


def cast_values(values: np.ndarray, dtype) -> np.ndarray:
    """One sanctioned whole-array value cast (counted; see CAST_COUNTS).

    Kernel call sites route their operand-value casts through here so the
    regression tests can assert the casts happen once per kernel call, not
    once per row (the seed ``spgemm_masked_dot`` re-materialized the full
    B value array inside its per-row loop — O(nrows * nnz)).
    """
    CAST_COUNTS["calls"] += 1
    return values.astype(dtype, copy=False)


class JoinResult:
    """The output of one batched row-pair join.

    ``hits[k]`` counts the matches of pair ``k``; ``a_pos``/``b_pos`` are
    the global entry positions (into the A/B value arrays) of every match,
    and ``out_seg`` maps each match back to its pair index
    (non-decreasing).  ``cand[k]`` is the number of gathered B-side
    candidates pair ``k`` was charged (after the ``b_keep`` filter) and
    ``work`` is their total — exactly the merge-comparison count the
    per-row kernels report to the machine model.

    Unpacks as ``hits, a_pos, b_pos, out_seg = result``.
    """

    __slots__ = ("hits", "a_pos", "b_pos", "out_seg", "cand", "work")

    def __init__(self, hits, a_pos, b_pos, out_seg, cand, work):
        self.hits = hits
        self.a_pos = a_pos
        self.b_pos = b_pos
        self.out_seg = out_seg
        self.cand = cand
        self.work = int(work)

    def __iter__(self):
        return iter((self.hits, self.a_pos, self.b_pos, self.out_seg))

    def __repr__(self):
        return (f"JoinResult(pairs={len(self.hits)}, "
                f"matches={len(self.a_pos)}, work={self.work})")


def _empty_result(n_pairs: int) -> JoinResult:
    empty = np.empty(0, dtype=np.int64)
    return JoinResult(np.zeros(n_pairs, dtype=np.int64), empty, empty,
                      empty, np.zeros(n_pairs, dtype=np.int64), 0)


def _hoisted_keys(A: CSRMatrix, col_mult: np.int64) -> np.ndarray:
    """The full sorted composite-key array of A (read-only, memoizable)."""
    keys = A.row_ids() * col_mult + A.indices
    keys.setflags(write=False)
    return keys


def row_pair_join(
    A: CSRMatrix,
    a_rows: np.ndarray,
    Bt: CSRMatrix,
    b_rows: np.ndarray,
    a_keep: Optional[np.ndarray] = None,
    b_keep: Optional[np.ndarray] = None,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
    plan: Optional[str] = None,
) -> JoinResult:
    """Intersect ``A`` row ``a_rows[k]`` with ``Bt`` row ``b_rows[k]`` for
    every pair ``k``, vectorized across all pairs.

    ``a_keep``/``b_keep`` are optional boolean masks over the entries of
    ``A``/``Bt`` restricting each side to its kept entries (the ktruss
    aliveness filter).  A pair whose (kept) A row is empty is *inactive*:
    it gathers no candidates and charges no work, matching the per-row
    kernels' skip-empty-row short-circuit.  ``plan`` forces ``"merge"``
    or ``"densify"`` for every batch (tests); the default picks per batch.

    Matches are reported in candidate order — pair-major, B-row order
    within a pair — which is exactly the order the per-row loops produced,
    so downstream reductions accumulate bit-identically.
    """
    if A.ncols != Bt.ncols:
        raise DimensionMismatch(
            f"join operands disagree on ncols: {A.ncols} vs {Bt.ncols}")
    if plan not in (None, "merge", "densify"):
        raise InvalidValue(f"unknown join plan {plan!r}")
    a_rows = np.asarray(a_rows, dtype=np.int64)
    b_rows = np.asarray(b_rows, dtype=np.int64)
    if len(a_rows) != len(b_rows):
        raise DimensionMismatch("a_rows and b_rows must have equal length")
    n_pairs = len(a_rows)
    if n_pairs == 0 or A.nvals == 0 or Bt.nvals == 0:
        return _empty_result(n_pairs)

    # Per-pair A-side degrees (after a_keep): pairs with an empty A row are
    # inactive and never gather candidates, like the loops they replace.
    if a_keep is None:
        a_deg = A.row_degrees()[a_rows]
    else:
        from repro.sparse.segreduce import segment_reduce

        kept_deg = segment_reduce(a_keep, None, A.nrows, "plus",
                                  dtype=np.int64, row_splits=A.indptr)
        a_deg = kept_deg[a_rows]
    act_idx = np.flatnonzero(a_deg > 0)
    if len(act_idx) == 0:
        return _empty_result(n_pairs)
    act_a = a_rows[act_idx]
    act_b = b_rows[act_idx]

    # Hoist the A-side composite keys once per call.  CSR entries sorted by
    # (row, col) make `row * ncols + col` globally ascending, so any row
    # span maps to one sorted contiguous slice; `key_ptr` translates row
    # ids to slice offsets (compacted when a_keep drops entries).  The
    # unfiltered key array is a pure function of A's structure, so it is
    # memoized on A across calls (triangle counting joins the same L per
    # batch; pagerank-style loops rejoin the same matrix per round).
    col_mult = np.int64(A.ncols)
    if a_keep is None:
        keys_a = plancache.cached(A, "join_keys", (),
                                  lambda: _hoisted_keys(A, col_mult))
        a_entry_of = None  # keys_a position == global entry position
        key_ptr = A.indptr
    else:
        a_entry_of = np.flatnonzero(a_keep)
        keys_a = (A.row_ids()[a_entry_of] * col_mult
                  + A.indices[a_entry_of].astype(np.int64))
        key_ptr = np.searchsorted(a_entry_of, A.indptr)

    # Sticky merge/densify decision: the first adaptive call on A records
    # the majority of its per-batch choices; later calls with the same
    # configuration replay it without re-deriving the batch statistics.
    # Both plans produce identical outputs (module invariant), so the
    # sticky replay — like an explicit ``plan`` — can never change results.
    # The key includes the pair count's density decile relative to A's row
    # count: a near-diagonal mask (few pairs) and a dense mask (~nrows
    # pairs or more) have opposite merge-vs-densify economics, so each
    # decile keeps its own sticky slot instead of one mask shape deciding
    # for all of them.
    density_decile = int(min(9, (10 * n_pairs) // max(1, A.nrows)))
    plan_key = (a_keep is None, b_keep is None, int(batch_flops),
                density_decile)
    forced = plan if plan is not None else plancache.get(A, "join_plan",
                                                         plan_key)
    batch_choices = [] if forced is None else None

    hits = np.zeros(n_pairs, dtype=np.int64)
    cand = np.zeros(n_pairs, dtype=np.int64)
    a_chunks = []
    b_chunks = []
    seg_chunks = []

    b_deg = Bt.row_degrees()[act_b]
    cum = np.concatenate(([0], np.cumsum(b_deg)))
    n_act = len(act_idx)
    lo = 0
    while lo < n_act:
        # A tripped deadline stops a long join at the next flop-bounded
        # batch (~2M gathered candidates), not only at the next OpEvent.
        cancel.check()
        # Largest hi keeping the gathered batch within budget (>= 1 pair).
        target = cum[lo] + batch_flops
        hi = int(np.searchsorted(cum, target, side="right")) - 1
        hi = max(hi, lo + 1)
        hi = min(hi, n_act)
        pair_a = act_a[lo:hi]
        cols, positions, seg = gather_rows(Bt, act_b[lo:hi])
        # Composite candidate keys: segment-repeat of the per-pair row
        # base (int64) plus the gathered columns in one broadcast add —
        # cheaper than a per-candidate row gather and an explicit cast.
        cand_keys = np.repeat(pair_a * col_mult, b_deg[lo:hi]) + cols
        if b_keep is not None and len(cols):
            kept = b_keep[positions]
            cand_keys = cand_keys[kept]
            positions = positions[kept]
            seg = seg[kept]
            cand[act_idx[lo:hi]] = np.bincount(seg, minlength=hi - lo)
        else:
            cand[act_idx[lo:hi]] = b_deg[lo:hi]
        if len(cand_keys) == 0:
            lo = hi
            continue

        # The A-side slice covering this batch's row span.
        row_lo = int(pair_a.min())
        row_hi = int(pair_a.max())
        ent_lo = int(key_ptr[row_lo])
        ent_hi = int(key_ptr[row_hi + 1])
        key_slice = keys_a[ent_lo:ent_hi]
        table_elems = (row_hi - row_lo + 1) * A.ncols
        if forced is not None:
            densify = forced == "densify"
        else:
            densify = (table_elems <= DENSIFY_TABLE_BUDGET
                       and table_elems <= 4 * (len(cand_keys)
                                               + len(key_slice)))
            batch_choices.append(densify)
        # A cache-replayed densify must still respect the table budget (a
        # later call may cover a wider row span than the deciding one); an
        # explicit caller ``plan`` keeps its forced choice.
        if densify and plan is None and table_elems > DENSIFY_TABLE_BUDGET:
            densify = False
        base = np.int64(row_lo) * col_mult
        if densify:
            table = np.full(table_elems, -1, dtype=np.int64)
            table[key_slice - base] = np.arange(ent_lo, ent_hi,
                                                dtype=np.int64)
            found = table[cand_keys - base]
            midx = np.flatnonzero(found >= 0)
            slice_pos = found[midx]
        else:
            pos = np.searchsorted(key_slice, cand_keys)
            np.minimum(pos, len(key_slice) - 1, out=pos)
            midx = np.flatnonzero(key_slice[pos] == cand_keys)
            slice_pos = pos[midx] + ent_lo
        if len(midx):
            a_chunks.append(slice_pos if a_entry_of is None
                            else a_entry_of[slice_pos])
            b_chunks.append(positions[midx])
            seg_m = seg[midx]
            seg_chunks.append(act_idx[lo + seg_m])
            hits[act_idx[lo:hi]] = np.bincount(seg_m, minlength=hi - lo)
        lo = hi

    if batch_choices:
        majority = ("densify" if 2 * sum(batch_choices) >= len(batch_choices)
                    else "merge")
        plancache.put(A, "join_plan", plan_key, majority)

    if a_chunks:
        a_pos = np.concatenate(a_chunks)
        b_pos = np.concatenate(b_chunks)
        out_seg = np.concatenate(seg_chunks)
    else:
        a_pos = np.empty(0, dtype=np.int64)
        b_pos = np.empty(0, dtype=np.int64)
        out_seg = np.empty(0, dtype=np.int64)
    return JoinResult(hits, a_pos, b_pos, out_seg, cand, int(cand.sum()))


def masked_row_join(
    A: CSRMatrix,
    Bt: CSRMatrix,
    mask: CSRMatrix,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
    plan: Optional[str] = None,
) -> JoinResult:
    """Row-pair join driven by a structural mask: one pair per mask entry.

    Mask entry (i, j) intersects ``A`` row i with ``Bt`` row j — the
    access pattern of the masked SDOT SpGEMM and of triangle counting
    (where A = Bt = mask = L).  Pair k is mask entry k, so ``hits``/
    ``cand`` align with the mask's value positions.
    """
    if A.nrows != mask.nrows or Bt.nrows != mask.ncols:
        raise DimensionMismatch("mask shape must match A.nrows x Bt.nrows")
    return row_pair_join(A, mask.row_ids(),
                         Bt, mask.indices.astype(np.int64),
                         batch_flops=batch_flops, plan=plan)


def join_sorted(a: np.ndarray,
                b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Positions of the common elements of two sorted arrays.

    Returns ``(ia, ib)`` with ``a[ia] == b[ib]``, ordered by position in
    ``a`` — the single-pair primitive for call sites (the ktruss removal
    cascade) whose sequential dependences forbid batching pairs.
    """
    if len(a) == 0 or len(b) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pos = np.searchsorted(b, a)
    pos = np.minimum(pos, len(b) - 1)
    matched = b[pos] == a
    return np.flatnonzero(matched), pos[matched]


def dedup_bounded(ids: np.ndarray, bound: int) -> np.ndarray:
    """Sorted unique ids, O(n + bound) via a flag array.

    Drop-in for ``np.unique`` over integer ids known to lie in
    ``[0, bound)`` (vertex frontiers, entry positions): identical output
    — sorted, deduplicated, int64 — without the O(n log n) sort.  Tiny
    inputs keep ``np.unique``, since zeroing a |V|-sized flag array would
    dominate a near-empty frontier's round.
    """
    ids = np.asarray(ids)
    if len(ids) <= max(16, int(bound) >> 7):
        return np.unique(ids).astype(np.int64, copy=False)
    flags = np.zeros(int(bound), dtype=bool)
    flags[ids] = True
    return np.flatnonzero(flags)


def naive_row_pair_join(
    A: CSRMatrix,
    a_rows: np.ndarray,
    Bt: CSRMatrix,
    b_rows: np.ndarray,
    a_keep: Optional[np.ndarray] = None,
    b_keep: Optional[np.ndarray] = None,
) -> JoinResult:
    """Per-pair reference implementation (the seed kernels' idiom).

    One Python iteration per pair, one ``searchsorted`` each — the shape
    of the loops :func:`row_pair_join` replaces.  Kept as the property-
    test oracle and the benchmark baseline; never called by kernels.
    """
    a_rows = np.asarray(a_rows, dtype=np.int64)
    b_rows = np.asarray(b_rows, dtype=np.int64)
    n_pairs = len(a_rows)
    hits = np.zeros(n_pairs, dtype=np.int64)
    cand = np.zeros(n_pairs, dtype=np.int64)
    a_chunks, b_chunks, seg_chunks = [], [], []
    work = 0
    for k in range(n_pairs):
        i = int(a_rows[k])
        a_lo, a_hi = int(A.indptr[i]), int(A.indptr[i + 1])
        a_idx = np.arange(a_lo, a_hi, dtype=np.int64)
        if a_keep is not None:
            a_idx = a_idx[a_keep[a_lo:a_hi]]
        if len(a_idx) == 0:
            continue
        j = int(b_rows[k])
        b_lo, b_hi = int(Bt.indptr[j]), int(Bt.indptr[j + 1])
        b_idx = np.arange(b_lo, b_hi, dtype=np.int64)
        if b_keep is not None:
            b_idx = b_idx[b_keep[b_lo:b_hi]]
        cand[k] = len(b_idx)
        work += len(b_idx)
        if len(b_idx) == 0:
            continue
        a_cols = A.indices[a_idx]
        b_cols = Bt.indices[b_idx]
        pos = np.searchsorted(a_cols, b_cols)
        pos = np.minimum(pos, len(a_cols) - 1)
        matched = a_cols[pos] == b_cols
        n_match = int(np.count_nonzero(matched))
        if n_match:
            hits[k] = n_match
            a_chunks.append(a_idx[pos[matched]])
            b_chunks.append(b_idx[matched])
            seg_chunks.append(np.full(n_match, k, dtype=np.int64))
    if a_chunks:
        a_pos = np.concatenate(a_chunks)
        b_pos = np.concatenate(b_chunks)
        out_seg = np.concatenate(seg_chunks)
    else:
        a_pos = np.empty(0, dtype=np.int64)
        b_pos = np.empty(0, dtype=np.int64)
        out_seg = np.empty(0, dtype=np.int64)
    return JoinResult(hits, a_pos, b_pos, out_seg, cand, work)
