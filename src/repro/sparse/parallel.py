"""Shard-parallel kernel executor: fan shard tasks out, merge in order.

The blocked kernel drivers (:mod:`repro.sparse.blocked`) process one
row-range shard at a time; every study kernel is numpy-bound inside a
shard, and numpy releases the GIL for its element loops, so running shard
tasks on a small **thread** pool buys real multi-core speedup without a
process boundary (no pickling, shards mmap-share for free).  This module
is the one place that owns the pool:

* ``REPRO_KERNEL_THREADS=N`` sets the fan-out width (default 1 — exactly
  today's sequential shard loop, zero new machinery on the hot path);
* :func:`map_shards` applies one task per shard and returns the results
  **in shard order** regardless of completion order, so every caller's
  merge (concatenate / stack / reduce) consumes partials in the same
  fixed order the sequential loop produced them — results stay
  byte-identical to monolithic at every thread count;
* the executor is persistent (one pool per process, grown on demand), so
  iterative algorithms pay thread-spawn cost once, not per round.

Cancellation: each shard task begins with :func:`repro.engine.cancel.check`,
so a tripped deadline stops a fanned-out SpGEMM at the next *shard*
boundary, not only at the next OpEvent boundary.  A task that raises makes
:func:`map_shards` re-raise the first error in shard order after letting
the in-flight siblings finish (they observe the same token and exit at
their own next check).

Observability: the blocked drivers call :func:`record_fanout` with the
``(shards, threads)`` geometry they actually used; the GraphBLAS emitters
collect it with :func:`take_fanout` and stamp the ``shards``/``threads``
fields of the :class:`~repro.engine.events.OpEvent` they emit.  These
fields are wall-clock observability only — like ``seconds``, no charge
handler reads them, so modeled accounting is unchanged at every thread
count (the determinism matrix test proves it).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import InvalidValue

__all__ = [
    "DEFAULT_KERNEL_THREADS", "kernel_threads_from_env", "kernel_threads",
    "set_kernel_threads", "effective_threads", "map_shards",
    "record_fanout", "take_fanout", "clear_fanout", "fanout_fields",
]

#: Fan-out width when ``REPRO_KERNEL_THREADS`` is unset: one, the
#: sequential shard loop every result in the repo was produced with.
DEFAULT_KERNEL_THREADS = 1


def kernel_threads_from_env(environ: Optional[dict] = None) -> int:
    """The ``REPRO_KERNEL_THREADS`` knob, validated (positive int)."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_KERNEL_THREADS", "").strip()
    if not raw:
        return DEFAULT_KERNEL_THREADS
    try:
        value = int(raw)
    except ValueError:
        raise InvalidValue(
            f"REPRO_KERNEL_THREADS wants a thread count, got {raw!r}"
        ) from None
    if value < 1:
        raise InvalidValue(
            f"REPRO_KERNEL_THREADS must be >= 1; got {value}")
    return value


#: Runtime override (tests, benchmarks); None defers to the environment,
#: so a worker's per-task ``REPRO_KERNEL_THREADS`` env scope just works.
_FORCED: Optional[int] = None


def kernel_threads() -> int:
    """The active fan-out width: the runtime override, else the knob."""
    if _FORCED is not None:
        return _FORCED
    return kernel_threads_from_env()


def set_kernel_threads(threads: Optional[int]) -> Optional[int]:
    """Force the fan-out width at runtime (None = back to the env knob).

    Returns the previous override so tests can restore it.
    """
    global _FORCED
    previous = _FORCED
    if threads is not None:
        threads = int(threads)
        if threads < 1:
            raise InvalidValue(
                f"kernel threads must be >= 1; got {threads}")
    _FORCED = threads
    return previous


def effective_threads(nshards: int,
                      threads: Optional[int] = None) -> int:
    """Threads a fan-out over ``nshards`` will actually use (>= 1).

    Never more threads than shards: a single-shard matrix (every default
    study graph) stays on the calling thread with no pool touch at all.
    """
    if threads is None:
        threads = kernel_threads()
    return max(1, min(int(threads), int(nshards)))


# ----------------------------------------------------------------------
# The persistent pool
# ----------------------------------------------------------------------

_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WORKERS = 0


def _executor(workers: int) -> ThreadPoolExecutor:
    """The process-wide pool, grown (never shrunk) to ``workers``."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-kernel")
            _POOL_WORKERS = workers
        return _POOL


def map_shards(fn: Callable, items: Sequence,
               threads: Optional[int] = None) -> List:
    """``[fn(item) for item in items]``, fanned out over the kernel pool.

    Results come back **in item (shard) order** — the merge-determinism
    contract — regardless of which thread finished first.  With one
    effective thread (the default) this is literally the sequential list
    comprehension: no pool, no futures, no overhead.

    If any task raises, the first error *in shard order* is re-raised
    after every submitted task has settled, so no worker thread is left
    holding a shard mid-flight (cooperative cancellation makes siblings
    exit at their own next check).
    """
    items = list(items)
    n = effective_threads(len(items), threads)
    if n <= 1:
        return [fn(item) for item in items]
    pool = _executor(n)
    futures = [pool.submit(fn, item) for item in items]
    results = []
    first_error = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # re-raised below, in shard order
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results


# ----------------------------------------------------------------------
# Fan-out observability (OpEvent shards/threads stamping)
# ----------------------------------------------------------------------

_FANOUT = threading.local()


def record_fanout(shards: int, threads: int) -> None:
    """Note the geometry of the fan-out a blocked driver just ran.

    Called on the *driver's* thread (the one the emitter runs on), so a
    thread-local slot cannot be clobbered by a concurrent cell in another
    worker thread.
    """
    _FANOUT.value = (int(shards), int(threads))


def take_fanout() -> Optional[Tuple[int, int]]:
    """The last recorded ``(shards, threads)``, cleared on read."""
    value = getattr(_FANOUT, "value", None)
    _FANOUT.value = None
    return value


def clear_fanout() -> None:
    """Drop any stale record (emitters call this before their kernel)."""
    _FANOUT.value = None


def fanout_fields() -> dict:
    """OpEvent kwargs for the last fan-out (empty when none recorded).

    The emitters splat this into their event construction; a monolithic
    kernel records nothing, so the fields keep their 0 defaults and the
    event bytes are unchanged from every pre-parallel trace.
    """
    record = take_fanout()
    if record is None:
        return {}
    return {"shards": record[0], "threads": record[1]}
