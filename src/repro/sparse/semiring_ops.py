"""Numpy-backed element-wise operators and segment reducers.

These are the computational primitives underneath the GraphBLAS semirings:
a :class:`BinaryFn` is a vectorized "multiply"; a :class:`MonoidFn` is an
associative-commutative "add" with a dtype-aware identity, which the
:class:`SegmentReducer` applies across CSR row/column segments.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import InvalidValue
from repro.sparse.segreduce import identity_for, segment_reduce

__all__ = [
    "identity_for", "BinaryFn", "BINARY_FNS", "MonoidFn", "MONOID_FNS",
    "SegmentReducer",
]


class BinaryFn:
    """A vectorized binary operator (the semiring 'multiply')."""

    def __init__(self, name: str, fn: Optional[Callable] = None):
        self.name = name
        self._fn = fn

    def apply(self, a, b):
        """Apply element-wise; ``a`` and ``b`` broadcast like numpy arrays."""
        if self.name == "first":
            return np.broadcast_arrays(a, b)[0].copy()
        if self.name == "second":
            return np.broadcast_arrays(a, b)[1].copy()
        if self.name == "pair":
            shape = np.broadcast_shapes(np.shape(a), np.shape(b))
            ref = np.asarray(a if np.shape(a) == shape else b)
            dtype = ref.dtype if ref.dtype != np.bool_ else np.int64
            return np.ones(shape, dtype=dtype)
        if self._fn is None:
            raise InvalidValue(f"binary op {self.name!r} has no function")
        return self._fn(a, b)

    def __repr__(self):
        return f"BinaryFn({self.name})"


#: Registry of multiply operators used by the study's semirings.
BINARY_FNS = {
    "plus": BinaryFn("plus", np.add),
    "minus": BinaryFn("minus", np.subtract),
    "times": BinaryFn("times", np.multiply),
    "div": BinaryFn("div", np.divide),
    "min": BinaryFn("min", np.minimum),
    "max": BinaryFn("max", np.maximum),
    "first": BinaryFn("first"),
    "second": BinaryFn("second"),
    "pair": BinaryFn("pair"),
    "land": BinaryFn("land", np.logical_and),
    "lor": BinaryFn("lor", np.logical_or),
    "eq": BinaryFn("eq", np.equal),
    "ne": BinaryFn("ne", np.not_equal),
    "gt": BinaryFn("gt", np.greater),
    "lt": BinaryFn("lt", np.less),
    "ge": BinaryFn("ge", np.greater_equal),
    "le": BinaryFn("le", np.less_equal),
}


class MonoidFn:
    """An associative reduction operator (the semiring 'add')."""

    def __init__(self, kind: str):
        if kind not in ("plus", "times", "min", "max", "lor", "land"):
            raise InvalidValue(f"unknown monoid kind {kind!r}")
        self.kind = kind

    def identity(self, dtype) -> object:
        """The identity value for ``dtype``."""
        return identity_for(self.kind, dtype)

    def combine(self, a, b):
        """Element-wise combine of two arrays."""
        if self.kind == "plus":
            return np.add(a, b)
        if self.kind == "times":
            return np.multiply(a, b)
        if self.kind == "min":
            return np.minimum(a, b)
        if self.kind == "max":
            return np.maximum(a, b)
        if self.kind == "lor":
            return np.logical_or(a, b)
        return np.logical_and(a, b)

    def reduce_all(self, values: np.ndarray, dtype=None):
        """Reduce a flat array to a scalar (identity when empty)."""
        dtype = dtype or (values.dtype if len(values) else np.float64)
        if len(values) == 0:
            return self.identity(dtype)
        if self.kind == "plus":
            return values.sum(dtype=np.int64 if np.dtype(dtype).kind in "iu" else None)
        if self.kind == "times":
            return values.prod()
        if self.kind == "min":
            return values.min()
        if self.kind == "max":
            return values.max()
        if self.kind == "lor":
            return bool(values.any())
        return bool(values.all())

    def __repr__(self):
        return f"MonoidFn({self.kind})"


MONOID_FNS = {kind: MonoidFn(kind) for kind in ("plus", "times", "min", "max", "lor", "land")}


class SegmentReducer:
    """Reduces values grouped by segment id with a monoid."""

    def __init__(self, monoid: MonoidFn):
        self.monoid = monoid

    def reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        n_segments: int,
        dtype=None,
        sorted_ids: bool = False,
        row_splits=None,
        cache_on=None,
    ) -> np.ndarray:
        """Dense output of length ``n_segments``; identity where no values.

        ``segment_ids`` need not be sorted; the ``sorted_ids`` /
        ``row_splits`` hints unlock the engine's presorted reduceat plans.
        Delegates to :func:`repro.sparse.segreduce.segment_reduce`, which
        picks the fastest plan per monoid/dtype — memoized on ``cache_on``
        (the source matrix) when given.
        """
        return segment_reduce(values, segment_ids, n_segments,
                              self.monoid.kind, dtype=dtype,
                              sorted_ids=sorted_ids, row_splits=row_splits,
                              cache_on=cache_on)

    def touched(self, segment_ids: np.ndarray, n_segments: int) -> np.ndarray:
        """Boolean array marking segments that received at least one value."""
        if len(segment_ids) == 0:
            return np.zeros(n_segments, dtype=bool)
        return np.bincount(segment_ids, minlength=n_segments)[:n_segments] > 0
