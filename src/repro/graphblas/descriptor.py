"""Descriptors and masks (GraphBLAS execution modifiers).

A :class:`Descriptor` bundles the GrB_Descriptor fields the LAGraph
algorithms use: output REPLACE, mask complement, structural mask, and
operand transposition.  ``GrB_ALL`` is the sentinel index set meaning
"all indices" in assign/extract, as in Algorithm 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


class _All:
    """Sentinel: every index of the target object (GrB_ALL)."""

    def __repr__(self):
        return "GrB_ALL"


GrB_ALL = _All()


@dataclass(frozen=True)
class Descriptor:
    """Execution modifiers for one GraphBLAS call."""

    #: Clear output entries not written through the mask (GrB_REPLACE).
    replace: bool = False
    #: Use the complement of the mask (GrB_COMP).
    mask_comp: bool = False
    #: Use only the mask's structure, ignoring stored values (GrB_STRUCTURE).
    mask_structure: bool = False
    #: Transpose the first matrix operand (GrB_TRAN on INP0).
    transpose_a: bool = False
    #: Transpose the second matrix operand (GrB_TRAN on INP1).
    transpose_b: bool = False


#: The plain descriptor (all defaults).
DEFAULT_DESC = Descriptor()

#: LAGraph bfs's "Replace_Complemented_Desc" (§II-C, Algorithm 2 line 17).
REPLACE_COMP = Descriptor(replace=True, mask_comp=True)

#: Replace with a complemented *structural* mask.
REPLACE_COMP_STRUCT = Descriptor(replace=True, mask_comp=True, mask_structure=True)

#: Structural mask, replace output.
REPLACE_STRUCT = Descriptor(replace=True, mask_structure=True)


class Mask:
    """Convenience pairing of a mask object with its interpretation flags.

    Operations also accept a bare Vector/Matrix as mask, taking the flags
    from the call's descriptor; this wrapper is for call sites that want the
    flags attached to the mask itself.
    """

    def __init__(self, obj, complement: bool = False, structural: bool = False):
        self.obj = obj
        self.complement = complement
        self.structural = structural
