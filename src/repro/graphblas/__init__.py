"""A GraphBLAS API in Python (the paper's matrix-based API, §II-C).

The surface follows the C GraphBLAS spec the paper's LAGraph 3.2.1 codes are
written against, translated to Python conventions:

* :class:`~repro.graphblas.matrix.Matrix` and
  :class:`~repro.graphblas.vector.Vector` objects are created from a
  *backend* — :class:`repro.suitesparse.SuiteSparseBackend` or
  :class:`repro.galoisblas.GaloisBLASBackend` — which owns the runtime and
  machine model the operation costs are charged to;
* operations (:func:`mxm`, :func:`mxv`, :func:`vxm`, :func:`eWiseAdd`,
  :func:`eWiseMult`, :func:`apply`, :func:`assign`, :func:`extract`,
  :func:`select`, :func:`reduce`) mutate their output object in place and
  accept ``mask``, ``accum`` and ``desc`` arguments with GraphBLAS
  semantics (structural/complemented masks, REPLACE, transpose);
* semirings generalize plus/times — e.g. ``LOR_LAND`` for bfs reachability,
  ``MIN_PLUS`` for sssp, ``PLUS_PAIR`` for triangle counting.

Every operation is one or more parallel loop nests on the simulated machine;
this is precisely the "lightweight loops" property of matrix APIs the paper
quantifies, so the accounting here is load-bearing for the study.
"""

from repro.graphblas.types import BOOL, FP32, FP64, INT32, INT64, UINT64, GrBType
from repro.graphblas.ops import (
    BinaryOp,
    Monoid,
    Semiring,
    UnaryOp,
    binary,
    monoid,
    semiring,
    unary,
)
from repro.graphblas.descriptor import Descriptor, GrB_ALL, Mask
from repro.graphblas.vector import Vector
from repro.graphblas.matrix import Matrix
from repro.graphblas.operations import (
    apply,
    applyMatrix,
    assign,
    eWiseAdd,
    eWiseAddMatrix,
    eWiseMult,
    eWiseMultMatrix,
    extract,
    extractMatrix,
    mxm,
    mxv,
    reduce_to_scalar,
    reduce_to_vector,
    select,
    vxm,
)

__all__ = [
    "BOOL", "FP32", "FP64", "INT32", "INT64", "UINT64", "GrBType",
    "BinaryOp", "Monoid", "Semiring", "UnaryOp",
    "binary", "monoid", "semiring", "unary",
    "Descriptor", "GrB_ALL", "Mask",
    "Matrix", "Vector",
    "apply", "applyMatrix", "assign",
    "eWiseAdd", "eWiseAddMatrix", "eWiseMult", "eWiseMultMatrix",
    "extract", "extractMatrix",
    "mxm", "mxv", "reduce_to_scalar", "reduce_to_vector", "select", "vxm",
]
