"""GraphBLAS operator objects: unary ops, binary ops, monoids, semirings.

Construction helpers follow GraphBLAS naming:

>>> semiring("min_plus")        # sssp relaxation
Semiring(min_plus)
>>> semiring("lor_land")        # bfs reachability
Semiring(lor_land)
>>> semiring("plus_pair")       # triangle counting (SandiaDot)
Semiring(plus_pair)

Binary ops may be *bound* to a scalar to make a unary op for ``apply`` —
the GxB "binop with thunk" idiom LAGraph uses heavily:

>>> binary("plus").bind_second(1)
UnaryOp(plus_bound)

Not to be confused with :mod:`repro.graphblas.operations`, which defines
the *operations* (``mxv``, ``eWiseAdd``, ``assign``, ...) these operator
objects parameterize.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import InvalidValue
from repro.sparse.semiring_ops import BINARY_FNS, MONOID_FNS, BinaryFn, MonoidFn

__all__ = [
    "UnaryOp",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "unary",
    "binary",
    "monoid",
    "semiring",
]


class UnaryOp:
    """An element-wise unary operator."""

    def __init__(self, name: str, fn: Callable):
        self.name = name
        self.fn = fn

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Apply element-wise to an array."""
        return self.fn(values)

    def __repr__(self):
        return f"UnaryOp({self.name})"


_UNARY = {
    "identity": UnaryOp("identity", lambda v: np.asarray(v).copy()),
    "ainv": UnaryOp("ainv", np.negative),
    "minv": UnaryOp("minv", np.reciprocal),
    "lnot": UnaryOp("lnot", np.logical_not),
    "one": UnaryOp("one", lambda v: np.ones_like(np.asarray(v))),
    "abs": UnaryOp("abs", np.abs),
}


def unary(name: str) -> UnaryOp:
    """Look up a predefined unary operator by name."""
    key = name.lower()
    if key not in _UNARY:
        raise InvalidValue(f"unknown unary op {name!r}")
    return _UNARY[key]


class BinaryOp:
    """An element-wise binary operator."""

    def __init__(self, fn: BinaryFn):
        self.fn = fn
        self.name = fn.name

    def apply(self, a, b):
        """Apply element-wise with numpy broadcasting."""
        return self.fn.apply(a, b)

    def bind_first(self, scalar) -> UnaryOp:
        """``f(x) = op(scalar, x)`` — GxB bind-first."""
        return UnaryOp(f"{self.name}_bound1", lambda v: self.fn.apply(scalar, v))

    def bind_second(self, scalar) -> UnaryOp:
        """``f(x) = op(x, scalar)`` — GxB bind-second."""
        return UnaryOp(f"{self.name}_bound2", lambda v: self.fn.apply(v, scalar))

    def __repr__(self):
        return f"BinaryOp({self.name})"


def binary(name: str) -> BinaryOp:
    """Look up a predefined binary operator by name."""
    key = name.lower()
    if key not in BINARY_FNS:
        raise InvalidValue(f"unknown binary op {name!r}")
    return BinaryOp(BINARY_FNS[key])


class Monoid:
    """A commutative, associative binary op with identity."""

    def __init__(self, fn: MonoidFn):
        self.fn = fn
        self.name = fn.kind

    def identity(self, dtype):
        """The identity value for ``dtype``."""
        return self.fn.identity(dtype)

    def combine(self, a, b):
        """Element-wise combine of two arrays."""
        return self.fn.combine(a, b)

    def reduce_all(self, values, dtype=None):
        """Reduce a flat array to a scalar (identity when empty)."""
        return self.fn.reduce_all(values, dtype)

    def as_binary(self) -> BinaryOp:
        """This monoid viewed as a plain binary op (for accumulators)."""
        return binary(self.name)

    def __repr__(self):
        return f"Monoid({self.name})"


def monoid(name: str) -> Monoid:
    """Look up a predefined monoid by name (plus/min/max/times/lor/land)."""
    key = name.lower()
    if key not in MONOID_FNS:
        raise InvalidValue(f"unknown monoid {name!r}")
    return Monoid(MONOID_FNS[key])


class Semiring:
    """A (add-monoid, multiply) pair generalizing (+, x)."""

    def __init__(self, add: Monoid, mult: BinaryOp):
        self.add = add
        self.mult = mult
        self.name = f"{add.name}_{mult.name}"

    def __repr__(self):
        return f"Semiring({self.name})"


def semiring(name: str) -> Semiring:
    """Build a semiring from an ``add_mult`` name, e.g. ``"min_plus"``.

    The add part must name a monoid, the rest a binary op (which may itself
    contain underscores, so the split is on the first underscore).
    """
    parts = name.lower().split("_", 1)
    if len(parts) != 2:
        raise InvalidValue(f"semiring name must be add_mult, got {name!r}")
    return Semiring(monoid(parts[0]), binary(parts[1]))


# Predefined semirings the LAGraph algorithms use.
LOR_LAND = semiring("lor_land")
MIN_PLUS = semiring("min_plus")
MIN_MIN = semiring("min_min")
MIN_SECOND = semiring("min_second")
MIN_FIRST = semiring("min_first")
PLUS_TIMES = semiring("plus_times")
PLUS_SECOND = semiring("plus_second")
PLUS_FIRST = semiring("plus_first")
PLUS_PAIR = semiring("plus_pair")
