"""Backend interface: where GraphBLAS operations meet the machine model.

A backend owns a runtime (OpenMP-style or Galois-style) and converts the
typed :class:`~repro.engine.events.OpEvent` stream emitted by
:mod:`repro.graphblas.operations` into charged parallel loops via
:meth:`BaseBackend.emit`; each event's span is closed against the machine's
:class:`~repro.engine.context.ExecutionContext`, so the trace records what
ran and how many loops it cost.  The two concrete backends differ exactly
where the paper says the implementations differ (§III):

* :class:`repro.suitesparse.SuiteSparseBackend` — vectors are 1-wide sparse
  matrices, every operation materializes a fresh output object, loops run
  under OpenMP static/dynamic scheduling without huge pages;
* :class:`repro.galoisblas.GaloisBLASBackend` — three sparse-vector
  representations chosen per use, custom mxv/vxm (lower per-call overhead),
  a diagonal-SpGEMM fast path, work stealing and huge pages.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.engine.events import GRAPHBLAS_KINDS, OpEvent
from repro.errors import InvalidValue
from repro.graphblas.vector import (
    REP_DENSE_ARRAY,
    REP_ORDERED_MAP,
    REP_SS_SPARSE,
    REP_UNORDERED_LIST,
)
from repro.perf.costmodel import Schedule
from repro.runtime.base import Runtime
from repro.sparse.csr import CSRMatrix

#: Instruction proxy per semiring multiply-add in a sparse kernel.
INSTR_PER_FLOP = 3.0
#: Instruction proxy per element in an element-wise pass.
INSTR_PER_ELEM = 2.0

#: Kinds whose result is a scalar — nothing materialized in the trace.
_SCALAR_RESULT_KINDS = frozenset({"reduce_vector", "reduce_matrix"})


class BaseBackend:
    """Shared cost-accounting logic for GraphBLAS backends."""

    name = "base"
    default_vector_rep = REP_DENSE_ARRAY
    #: Fixed time overhead per GraphBLAS call (argument checking,
    #: descriptor handling, dispatch) in nanoseconds; scale-independent.
    call_overhead_ns = 20_000.0
    #: Whether mxm detects diagonal operands and takes the scaling fast
    #: path (GaloisBLAS's optimization, §III-B).
    supports_diag_opt = False
    #: Whether the wall-clock fused pipeline
    #: (:mod:`repro.graphblas.pipeline`) may execute driver chains on this
    #: backend.  Purely a numpy-speed property: fused stages emit the same
    #: charge-relevant events, so the modeled accounting is unaffected.
    supports_wallclock_fusion = True

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.machine = runtime.machine

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def charge_vector_alloc(self, vec):
        """Track a new vector's modeled storage."""
        return self.machine.allocator.allocate(
            vec.nbytes_modeled() or vec.size, f"Vector:{vec.label}")

    def charge_matrix_alloc(self, mat):
        """Track a new matrix's modeled storage."""
        return self.machine.allocator.allocate(
            mat.nbytes_modeled() or 64, f"Matrix:{mat.label}")

    def recharge_matrix(self, mat, old_bytes: int, new_bytes: int) -> None:
        """Swap a matrix's tracked allocation for its new storage size."""
        self.machine.allocator.free(mat._allocation)
        mat._allocation = self.machine.allocator.allocate(
            max(new_bytes, 64), f"Matrix:{mat.label}")

    def release(self, allocation) -> None:
        """Free a tracked allocation (GrB_free)."""
        self.machine.allocator.free(allocation)

    def charge_transpose_build(self, mat):
        """Building the CSC view: read the CSR once, scatter into the new.

        Returns the allocation handle so the matrix can release it when the
        cached transpose is dropped.
        """
        nvals = mat.csr.nvals
        nbytes = mat.csr.nbytes
        rt = self.runtime
        ctx = self.machine.context
        ctx.open_span()
        try:
            rt.parallel(
                n_items=nvals,
                instr_per_item=4.0,
                streams=[rt.seq(nbytes, nvals), rt.rand(nbytes, nvals)],
            )
        finally:
            ctx.close_span(OpEvent(
                kind="transpose_build", label=mat.label, items=nvals,
                bytes_materialized=nbytes))
        return self.machine.allocator.allocate(
            nbytes, f"Matrix:{mat.label}:transpose")

    # ------------------------------------------------------------------
    # The op-event protocol
    # ------------------------------------------------------------------
    def emit(self, event: OpEvent, out, *,
             mat=None, mat2=None, weights=None) -> OpEvent:
        """Charge one typed op event's loops and record it in the trace.

        Dispatches on ``event.kind`` to the matching cost handler, charges
        the fixed per-call overhead, and closes the event's span so the
        context stamps it with the loops attributed to this operation.
        Returns the recorded (stamped) event.
        """
        if event.kind not in GRAPHBLAS_KINDS:
            raise InvalidValue(
                f"GraphBLAS backends emit only GraphBLAS kinds, got "
                f"{event.kind!r}")
        ctx = self.machine.context
        ctx.open_span()
        try:
            kind = event.kind
            if kind in ("mxv", "vxm"):
                self._charge_mxv(event, out, mat, weights)
            elif kind == "mxm":
                self._charge_mxm(event, out, mat, mat2)
            elif kind == "diag_mxm":
                self._charge_diag_mxm(event, out, mat2)
            elif kind == "ewise_matrix":
                self._charge_ewise_matrix(event, out)
            elif kind == "select_matrix":
                self._charge_select_matrix(event, out)
            elif kind == "reduce_matrix":
                self._charge_reduce_matrix(event, out)
            else:
                self._charge_elementwise(event, out)
            # Per-call overhead (dispatch, descriptor handling) is a fixed
            # cost of the real machine, independent of the dataset's scale.
            self.machine.charge_loop(
                schedule=Schedule.SERIAL, barrier=False,
                fixed_ns=self.call_overhead_ns)
        finally:
            recorded = ctx.close_span(replace(
                event,
                bytes_materialized=self._materialized_bytes(event, out)))
        return recorded

    def _materialized_bytes(self, event: OpEvent, out) -> int:
        """Output bytes this operation materialized (trace attribution)."""
        if event.kind in _SCALAR_RESULT_KINDS:
            return 0
        return self._vector_bytes(out)

    # --- matrix-vector products ---------------------------------------
    def _charge_mxv(self, event: OpEvent, out, mat, weights):
        rt = self.runtime
        flops = event.flops
        mat_bytes = mat.csr.nbytes
        vec_bytes = self._vector_bytes(out)
        dense_bytes = out.size * out.type.itemsize
        streams = []
        if event.mode == "pull":
            # One pass over all rows of the matrix plus random gathers from
            # the dense input vector.
            streams.append(rt.seq(mat_bytes, flops))
            streams.append(rt.rand(dense_bytes, flops,
                                   elem_bytes=out.type.itemsize))
            n_items = out.size
        else:
            # Gather the frontier's rows.  A sparse frontier hops between
            # rows (strided); a frontier covering most rows degenerates to
            # a sequential pass over the CSR.
            if event.in_nvals * 2 >= mat.csr.nrows:
                streams.append(rt.seq(mat_bytes, flops))
            else:
                streams.append(rt.strided(mat_bytes, flops))
            # Every produced candidate hits the result accumulator before
            # masking filters it (hash/dense accumulator traffic) — the
            # extra memory accesses Table IV attributes to the matrix API.
            streams.append(rt.rand(vec_bytes,
                                   max(event.out_nvals, flops, 1)))
            n_items = max(event.in_nvals, 1)
        if event.masked and event.mask_bytes:
            # The mask is consulted per produced candidate (SuiteSparse
            # fuses the mask into the multiply; the accesses remain).
            streams.append(rt.rand(event.mask_bytes, flops))
        streams.extend(self._output_pass_streams(
            out, event.masked, n_processed=event.out_nvals))
        rt.parallel(
            n_items=n_items,
            instr_per_item=1.0,
            extra_instr=int(flops * INSTR_PER_FLOP),
            streams=streams,
            weights=weights,
            schedule=self._spmv_schedule(event.mode),
        )
        self._post_op_materialize(out, n_touched=max(event.out_nvals, 1))

    # --- matrix-matrix product ------------------------------------------
    def _charge_mxm(self, event: OpEvent, out, mat, mat2):
        rt = self.runtime
        flops = event.flops
        a_bytes = mat.csr.nbytes
        b_bytes = mat2.csr.nbytes
        out_bytes = out.csr.nbytes
        streams = [rt.seq(a_bytes, mat.csr.nvals),
                   rt.strided(b_bytes, flops)]
        instr = flops * INSTR_PER_FLOP
        if event.method == "saxpy":
            # The expansion buffer (Gustavson accumulator / hash table
            # traffic): written and re-read once per flop.
            buffer_bytes = min(flops, out.csr.ncols) * 12
            streams.append(rt.rand(buffer_bytes, 2 * flops, elem_bytes=12))
            instr += flops * 2.0
        # Write the materialized output.
        streams.append(rt.seq(out_bytes, max(event.out_nvals, 1)))
        row_weights = np.diff(mat.csr.indptr) if mat.csr.nrows else None
        rt.parallel(
            n_items=max(mat.csr.nrows, 1),
            instr_per_item=1.0,
            extra_instr=int(instr),
            streams=streams,
            weights=row_weights,
            schedule=self._mxm_schedule(),
        )

    def _charge_diag_mxm(self, event: OpEvent, out, mat2):
        """GaloisBLAS's diagonal fast path: one scaling pass over B."""
        rt = self.runtime
        flops = event.flops
        b_bytes = mat2.csr.nbytes
        rt.parallel(
            n_items=max(mat2.csr.nrows, 1),
            instr_per_item=1.0,
            extra_instr=int(flops * 1.0),
            streams=[rt.seq(b_bytes, flops), rt.seq(out.csr.nbytes, flops)],
            weights=np.diff(mat2.csr.indptr) if mat2.csr.nrows else None,
        )

    # --- element-wise passes ---------------------------------------------
    def _charge_elementwise(self, event: OpEvent, out):
        rt = self.runtime
        vec_bytes = self._vector_bytes(out)
        n = max(event.items, 1)
        # Masked/gather passes touch scattered positions of the operand;
        # unmasked passes stream it.
        scattered = event.gather or event.masked
        streams = [rt.rand(vec_bytes, n) if scattered
                   else rt.seq(vec_bytes, n)]
        streams.extend(self._output_pass_streams(out, event.masked,
                                                 n_processed=n))
        rt.parallel(
            n_items=n,
            instr_per_item=INSTR_PER_ELEM + (self._rep_lookup_instr(out)),
            streams=streams,
        )
        self._post_op_materialize(out, n_touched=n)

    def _charge_ewise_matrix(self, event: OpEvent, out):
        rt = self.runtime
        n_processed = event.items
        rt.parallel(
            n_items=max(n_processed, 1),
            instr_per_item=INSTR_PER_ELEM,
            streams=[rt.seq(out.csr.nbytes, max(n_processed, 1)),
                     rt.seq(out.csr.nbytes, max(event.out_nvals, 1))],
        )

    def _charge_select_matrix(self, event: OpEvent, out):
        rt = self.runtime
        n_processed = event.items
        rt.parallel(
            n_items=max(n_processed, 1),
            instr_per_item=INSTR_PER_ELEM,
            streams=[rt.seq(out.csr.nbytes, n_processed),
                     rt.seq(out.csr.nbytes, max(event.out_nvals, 1))],
        )

    def _charge_reduce_matrix(self, event: OpEvent, out):
        rt = self.runtime
        n_processed = event.items
        rt.parallel(
            n_items=max(n_processed, 1),
            instr_per_item=INSTR_PER_ELEM,
            streams=[rt.seq(out.csr.nbytes, n_processed)],
        )

    # ------------------------------------------------------------------
    # Representation-dependent helpers (overridden per backend)
    # ------------------------------------------------------------------
    def _vector_bytes(self, vec) -> int:
        if hasattr(vec, "csr"):
            return vec.csr.nbytes
        return max(vec.nbytes_modeled(), 64)

    def _rep_lookup_instr(self, vec) -> float:
        """Extra instructions per element for the vector representation."""
        rep = getattr(vec, "rep", None)
        if rep == REP_ORDERED_MAP:
            return 6.0  # tree/sorted lookup
        if rep == REP_SS_SPARSE:
            return 3.0  # binary search / merge bookkeeping
        return 0.0

    def _output_pass_streams(self, out, masked: bool, n_processed=None):
        """Streams of the write-back pass (plus the mask read if masked).

        SuiteSparse and GaloisBLAS both exploit mask sparsity: the pass
        touches the processed entries (scattered through the output), not
        the whole vector.
        """
        vec_bytes = self._vector_bytes(out)
        if n_processed is None:
            n = out.size if not hasattr(out, "csr") else max(out.nvals, 1)
        else:
            n = max(n_processed, 1)
        if masked:
            return [self.runtime.rand(vec_bytes, n),
                    self.runtime.rand(max(n, 64), n, elem_bytes=1)]
        return [self.runtime.seq(vec_bytes, n)]

    def _post_op_materialize(self, out, n_touched: int = 1) -> None:
        """Hook: SuiteSparse materializes each result into a new object."""

    def _spmv_schedule(self, mode: str):
        return None  # runtime default

    def _mxm_schedule(self):
        return None  # runtime default

    # ------------------------------------------------------------------
    # Method selection
    # ------------------------------------------------------------------
    def choose_mxm_method(self, a_csr: CSRMatrix, b_csr: CSRMatrix,
                          mask) -> str:
        """SAXPY vs SDOT, following SuiteSparse's inspector heuristic:
        masked products with a usable output pattern go dot; unmasked
        products go SAXPY (Gustavson/hash)."""
        if mask is not None:
            return "dot"
        return "saxpy"
