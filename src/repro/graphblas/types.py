"""GraphBLAS type system mapped onto numpy dtypes.

The paper's experiments exercise the type system in one interesting way:
sssp distances are 32-bit integers everywhere *except* eukarya, whose heavy
edge weights overflow 32 bits, so the authors switch that one graph to
64-bit (§IV).  Types here carry their numpy dtype plus overflow-relevant
metadata so the harness can reproduce that switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidValue


@dataclass(frozen=True)
class GrBType:
    """One GraphBLAS scalar type."""

    name: str
    dtype: np.dtype

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def max_value(self):
        """The dtype's maximum (the MIN monoid identity / 'infinity')."""
        if self.dtype.kind == "f":
            return np.inf
        if self.dtype.kind == "b":
            return True
        return np.iinfo(self.dtype).max

    def __repr__(self):
        return f"GrB_{self.name}"


BOOL = GrBType("BOOL", np.dtype(np.bool_))
INT32 = GrBType("INT32", np.dtype(np.int32))
INT64 = GrBType("INT64", np.dtype(np.int64))
UINT32 = GrBType("UINT32", np.dtype(np.uint32))
UINT64 = GrBType("UINT64", np.dtype(np.uint64))
FP32 = GrBType("FP32", np.dtype(np.float32))
FP64 = GrBType("FP64", np.dtype(np.float64))

_BY_NAME = {t.name: t for t in (BOOL, INT32, INT64, UINT32, UINT64, FP32, FP64)}
_BY_DTYPE = {t.dtype: t for t in (BOOL, INT32, INT64, UINT32, UINT64, FP32, FP64)}


def type_of(obj) -> GrBType:
    """Resolve a GrBType from a name, numpy dtype, or GrBType."""
    if isinstance(obj, GrBType):
        return obj
    if isinstance(obj, str):
        key = obj.upper().replace("GRB_", "")
        if key in _BY_NAME:
            return _BY_NAME[key]
        raise InvalidValue(f"unknown GraphBLAS type {obj!r}")
    dtype = np.dtype(obj)
    if dtype in _BY_DTYPE:
        return _BY_DTYPE[dtype]
    raise InvalidValue(f"no GraphBLAS type for dtype {dtype}")
