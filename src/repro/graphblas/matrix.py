"""GraphBLAS matrices.

A :class:`Matrix` wraps a :class:`~repro.sparse.csr.CSRMatrix` (the format
SuiteSparse and GaloisBLAS both use, §III) plus a lazily-built, cached CSC
view (the transpose in CSR form).  Building the transpose is charged to the
machine the first time an operation needs it, matching SuiteSparse's
behaviour of keeping both orientations when an algorithm demands them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch, NoValue
from repro.graphblas.types import GrBType, type_of
from repro.sparse.csr import CSRMatrix, build_csr


class Matrix:
    """A GraphBLAS matrix over one scalar type."""

    def __init__(self, backend, gtype, nrows: int, ncols: int,
                 csr: Optional[CSRMatrix] = None, label: str = "matrix"):
        self.backend = backend
        self.type: GrBType = type_of(gtype)
        self.label = label
        if csr is None:
            csr = CSRMatrix(
                nrows, ncols,
                np.zeros(nrows + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                None,
            )
        if csr.nrows != nrows or csr.ncols != ncols:
            raise DimensionMismatch("csr shape does not match declared shape")
        self._csr = csr
        self._transpose_cache: Optional[CSRMatrix] = None
        self._transpose_allocation = None
        self._allocation = backend.charge_matrix_alloc(self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, backend, gtype, nrows, ncols, rows, cols, values=None,
                 dedup: str = "last", label: str = "matrix") -> "Matrix":
        gtype = type_of(gtype)
        vals = None
        if values is not None:
            vals = np.asarray(values).astype(gtype.dtype, copy=False)
        csr = build_csr(nrows, ncols, rows, cols, vals, dedup=dedup)
        return cls(backend, gtype, nrows, ncols, csr=csr, label=label)

    @classmethod
    def from_csr(cls, backend, gtype, csr: CSRMatrix, label: str = "matrix") -> "Matrix":
        return cls(backend, gtype, csr.nrows, csr.ncols, csr=csr, label=label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self._csr.nrows

    @property
    def ncols(self) -> int:
        return self._csr.ncols

    @property
    def nvals(self) -> int:
        return self._csr.nvals

    @property
    def csr(self) -> CSRMatrix:
        """The underlying CSR storage (read-only by convention)."""
        return self._csr

    def extract_element(self, i: int, j: int):
        """Value at (i, j); raises NoValue when not explicit."""
        value = self._csr.get(i, j)
        if value is None:
            raise NoValue(f"no explicit entry at ({i}, {j})")
        return value

    def nbytes_modeled(self) -> int:
        """Modeled storage footprint including the cached transpose."""
        total = self._csr.nbytes
        if self._transpose_cache is not None:
            total += self._transpose_cache.nbytes
        return total

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    def transposed_csr(self) -> CSRMatrix:
        """CSR of the transpose (the CSC view), built and charged once."""
        if self._transpose_cache is None:
            self._transpose_cache = self._csr.transpose()
            self._transpose_allocation = self.backend.charge_transpose_build(
                self)
        return self._transpose_cache

    def replace_csr(self, csr: CSRMatrix) -> None:
        """Swap in new storage (used by select/assign outputs)."""
        if csr.nrows != self.nrows or csr.ncols != self.ncols:
            raise DimensionMismatch("replacement csr changes matrix shape")
        self._drop_transpose()
        self.backend.recharge_matrix(self, old_bytes=self.nbytes_modeled(),
                                     new_bytes=csr.nbytes)
        self._csr = csr

    def _drop_transpose(self) -> None:
        self._transpose_cache = None
        if self._transpose_allocation is not None:
            self.backend.release(self._transpose_allocation)
            self._transpose_allocation = None

    def dup(self, label: Optional[str] = None) -> "Matrix":
        """Deep copy (GrB_Matrix_dup)."""
        return Matrix(self.backend, self.type, self.nrows, self.ncols,
                      csr=self._csr.copy(), label=label or f"{self.label}_dup")

    def free(self) -> None:
        """Release the modeled storage (GrB_free)."""
        self._drop_transpose()
        self.backend.release(self._allocation)

    def __repr__(self):
        return (f"Matrix({self.label!r}, {self.nrows}x{self.ncols}, "
                f"nvals={self.nvals}, {self.type!r})")
