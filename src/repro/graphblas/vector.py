"""GraphBLAS vectors.

Storage is canonical across backends — a dense value array plus a dense
presence mask — so numerical results are bit-identical between SuiteSparse
and GaloisBLAS (the paper's LAGraph programs produce the same answers on
both).  What *differs* per backend is the modeled representation
(``rep``): SuiteSparse stores vectors as 1-wide sparse matrices, while
GaloisBLAS chooses among an ordered map, an unordered list, and a dense
array (§III-B); the backends charge memory traffic according to that
choice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch, IndexOutOfBounds, NoValue
from repro.graphblas.types import GrBType, type_of

#: Representation tags (GaloisBLAS's three, plus SuiteSparse's).
REP_DENSE_ARRAY = "dense_array"
REP_ORDERED_MAP = "ordered_map"
REP_UNORDERED_LIST = "unordered_list"
REP_SS_SPARSE = "ss_sparse"


class Vector:
    """A GraphBLAS vector of length ``size`` over one scalar type."""

    def __init__(self, backend, gtype, size: int, rep: Optional[str] = None,
                 label: str = "vector"):
        self.backend = backend
        self.type: GrBType = type_of(gtype)
        self.size = int(size)
        self.rep = rep or backend.default_vector_rep
        self.label = label
        self._values = np.zeros(self.size, dtype=self.type.dtype)
        self._present = np.zeros(self.size, dtype=bool)
        self._allocation = backend.charge_vector_alloc(self)

    # ------------------------------------------------------------------
    # Element access (GrB_Vector_setElement / extractElement / removeElement)
    # ------------------------------------------------------------------
    def set_element(self, index: int, value) -> None:
        """Set one entry (GrB_Vector_setElement)."""
        if not 0 <= index < self.size:
            raise IndexOutOfBounds(f"index {index} out of range [0, {self.size})")
        self._values[index] = value
        self._present[index] = True

    def extract_element(self, index: int):
        """Read one explicit entry; raises NoValue when absent."""
        if not 0 <= index < self.size:
            raise IndexOutOfBounds(f"index {index} out of range [0, {self.size})")
        if not self._present[index]:
            raise NoValue(f"no explicit entry at index {index}")
        return self._values[index].item()

    def remove_element(self, index: int) -> None:
        """Make one entry implicit (GrB_Vector_removeElement)."""
        if not 0 <= index < self.size:
            raise IndexOutOfBounds(f"index {index} out of range [0, {self.size})")
        self._present[index] = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of explicit entries (GrB_Vector_nvals)."""
        return int(self._present.sum())

    def indices(self) -> np.ndarray:
        """Sorted indices of explicit entries."""
        return np.flatnonzero(self._present)

    def values_at(self, indices: np.ndarray) -> np.ndarray:
        """Stored values at the given indices (no presence check)."""
        return self._values[indices]

    def to_pairs(self):
        """(indices, values) of explicit entries — the sparse view."""
        idx = self.indices()
        return idx, self._values[idx]

    def dense_values(self, fill=None) -> np.ndarray:
        """Dense copy with ``fill`` at non-explicit positions."""
        out = self._values.copy()
        if fill is not None:
            out[~self._present] = fill
        return out

    def present_mask(self) -> np.ndarray:
        """Copy of the presence bitmap."""
        return self._present.copy()

    def nbytes_modeled(self) -> int:
        """Modeled storage footprint under the current representation."""
        n = self.size
        nv = self.nvals
        itemsize = self.type.itemsize
        if self.rep == REP_DENSE_ARRAY:
            return n * itemsize
        if self.rep == REP_ORDERED_MAP:
            return nv * (itemsize + 8)
        if self.rep == REP_UNORDERED_LIST:
            return nv * (itemsize + 8) + 64
        # SuiteSparse stores a vector as an n x 1 sparse matrix.
        return nv * (itemsize + 8) + 16

    # ------------------------------------------------------------------
    # Whole-vector operations
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Remove all entries (GrB_Vector_clear)."""
        self._present[:] = False

    def dup(self, label: Optional[str] = None) -> "Vector":
        """Deep copy (GrB_Vector_dup)."""
        out = Vector(self.backend, self.type, self.size, rep=self.rep,
                     label=label or f"{self.label}_dup")
        out._values = self._values.copy()
        out._present = self._present.copy()
        return out

    def build(self, indices, values) -> None:
        """Populate from (index, value) pairs (GrB_Vector_build)."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexOutOfBounds("build index out of range")
        vals = np.asarray(values)
        if np.ndim(vals) == 0:
            vals = np.full(len(indices), vals, dtype=self.type.dtype)
        if len(vals) != len(indices):
            raise DimensionMismatch("indices and values lengths differ")
        self.clear()
        self._values[indices] = vals.astype(self.type.dtype, copy=False)
        self._present[indices] = True

    def free(self) -> None:
        """Release the modeled storage (GrB_free)."""
        self.backend.release(self._allocation)

    # Internal: overwrite storage wholesale (used by operations.py).
    def _store(self, values: np.ndarray, present: np.ndarray) -> None:
        if len(values) != self.size or len(present) != self.size:
            raise DimensionMismatch("store arrays must match vector size")
        self._values = values.astype(self.type.dtype, copy=False)
        self._present = present

    def __repr__(self):
        return (f"Vector({self.label!r}, size={self.size}, nvals={self.nvals}, "
                f"{self.type!r}, rep={self.rep})")
