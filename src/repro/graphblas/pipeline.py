"""Fused operator pipelines for the numpy execution path.

:mod:`repro.graphblas.operations` implements every GraphBLAS call as an
independent pass: defensive copies of the operands (``dense_values`` /
``present_mask``), a fresh dense temporary for the result, and a
``np.where`` write-back through the mask machinery.  That is the right
shape for the *modeled* accounting — one call, one loop nest — but it
makes the wall-clock numpy path materialize several full-length arrays
per call that the real GaloisBLAS runtime never writes (its operator
fusion keeps the chain's intermediate in registers; see the
``galoisblas-fused`` ablation backend).

:class:`FusedPipeline` closes that gap for the hot driver loops.  Each
stage is a streamlined transcription of its
:mod:`~repro.graphblas.operations` counterpart that executes immediately
against the vectors' dense storage — same kernels, same operation order,
same dtypes — but skips the defensive copies and intermediate
temporaries.  Results are **bit-identical** to the unfused path and the
emitted :class:`~repro.engine.events.OpEvent` stream carries the same
charge-relevant fields, so the modeled counters (and every modeled
artifact derived from them) do not change.  Fusion is a wall-clock
artifact only; events executed by a fused stage are stamped
``fused=True`` with the bytes of dense intermediates they skipped in
``bytes_not_materialized`` so the trace can quantify the recovered gap.

Shapes a stage does not recognize (accumulators, exotic descriptors,
value-typed corner cases) fall back to the plain ``operations`` call —
correctness never depends on a stage being fused.  With ``REPRO_FUSION=0``
every stage delegates, making the pipeline a transparent pass-through;
the equivalence suite in ``tests/test_fusion.py`` pins both properties.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.engine.events import OpEvent
from repro.graphblas import operations as ops
from repro.graphblas.descriptor import DEFAULT_DESC, Descriptor, GrB_ALL
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import Monoid, Semiring, UnaryOp
from repro.graphblas.vector import Vector
from repro.sparse import parallel as _parallel
from repro.sparse import plancache
from repro.sparse import spmv as _spmv
from repro.sparse.segreduce import segment_reduce

__all__ = [
    "FusedPipeline",
    "fusion_enabled",
    "set_enabled",
    "fusion_stats",
    "reset_fusion_stats",
]

#: Kill switch: ``REPRO_FUSION=0`` disables the fused wall-clock path and
#: every pipeline stage delegates to the plain operation (the modeled
#: accounting is identical either way).
_ENABLED = os.environ.get("REPRO_FUSION", "1") != "0"

_STATS = {
    # Runs of >= 2 consecutive fused stages (one chain per run).
    "chains": 0,
    # Stages executed on the fused path.
    "fused_ops": 0,
    # Stages that bailed to the plain operation while fusion was enabled.
    "fallbacks": 0,
    # Estimated bytes of dense intermediates never written (wall-clock
    # attribution only; mirrors the per-event field).
    "bytes_not_materialized": 0,
}


def fusion_enabled() -> bool:
    """Whether the wall-clock fused path is active."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Toggle fusion; returns the previous setting (for test scoping)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def fusion_stats() -> dict:
    """Snapshot of the process-wide fusion counters."""
    return dict(_STATS)


def reset_fusion_stats() -> None:
    """Zero the fusion counters (benchmarks reset after warmup)."""
    for key in _STATS:
        _STATS[key] = 0


def _dense_cost(size: int, itemsize: int) -> int:
    """Bytes of one dense temporary pair (values + presence bools)."""
    return size * (itemsize + 1)


class FusedPipeline:
    """Fused execution of ``mxv/vxm -> ewise -> apply/assign`` chains.

    One pipeline wraps one backend.  Stage methods mirror the
    :mod:`~repro.graphblas.operations` signatures the drivers use; each
    either executes fused (bit-identical, fewer dense passes) or falls
    back to the plain operation.
    """

    def __init__(self, backend):
        self.backend = backend
        self._run = 0  # length of the current consecutive fused-stage run

    @property
    def enabled(self) -> bool:
        return _ENABLED and getattr(self.backend, "supports_wallclock_fusion",
                                    False)

    # ------------------------------------------------------------------
    # Chain bookkeeping
    # ------------------------------------------------------------------
    def round(self) -> None:
        """Advance the algorithm round; a round boundary ends the chain."""
        self.backend.runtime.round()
        self._run = 0

    def _mark(self, saved: int) -> None:
        self._run += 1
        if self._run == 2:
            _STATS["chains"] += 1
        _STATS["fused_ops"] += 1
        _STATS["bytes_not_materialized"] += saved

    def _fallback(self) -> None:
        if self.enabled:
            _STATS["fallbacks"] += 1
        self._run = 0

    # ------------------------------------------------------------------
    # Storage helpers (no events)
    # ------------------------------------------------------------------
    def dense(self, v: Vector, fill=None) -> np.ndarray:
        """Dense view of ``v``: ``fill=None`` returns the backing array
        itself (callers must treat it as read-only), otherwise a fresh
        array with absent positions set to ``fill``."""
        if not self.enabled:
            return v.dense_values(fill)
        if fill is None:
            return v._values
        return np.where(v._present, v._values, v.type.dtype.type(fill))

    def densify(self, w: Vector) -> None:
        """Make every position of ``w`` explicit (absent -> 0) in place."""
        if not self.enabled:
            w.build(np.arange(w.size), w.dense_values(fill=0.0))
            return
        w._values[~w._present] = 0
        w._present[:] = True

    # ------------------------------------------------------------------
    # Element-wise stages
    # ------------------------------------------------------------------
    def ewise_add(self, w: Vector, u: Vector, v: Vector, op) -> Vector:
        """Unmasked, unaccumulated ``w = u (+) v`` (pattern union)."""
        if not self.enabled or u.size != v.size or u.size != w.size:
            self._fallback()
            return ops.eWiseAdd(w, u, v, op)
        binop = op.as_binary() if isinstance(op, Monoid) else op
        dtype = w.type.dtype
        u_p, v_p = u._present, v._present
        if u_p.all():
            # Dense-u fast path (dist/accumulator vectors): start from a
            # copy of u and combine only where v has entries — same values
            # the zeros+three-subset writes of the plain path produce.
            t_vals = u._values.astype(dtype, copy=True)
            sub = np.asarray(binop.apply(u._values[v_p], v._values[v_p]))
            t_vals[v_p] = sub
            t_present = np.ones(w.size, dtype=bool)
            items = w.size
        else:
            t_present = u_p | v_p
            t_vals = np.zeros(w.size, dtype=dtype)
            both = u_p & v_p
            t_vals[both] = np.asarray(binop.apply(u._values[both],
                                                  v._values[both]))
            only_u = u_p & ~v_p
            t_vals[only_u] = u._values[only_u]
            only_v = v_p & ~u_p
            t_vals[only_v] = v._values[only_v]
            items = int(t_present.sum())
        w._values = np.ascontiguousarray(t_vals)
        w._present = t_present
        self._emit_elementwise("ewise_add", items, w,
                               saved=3 * _dense_cost(w.size, dtype.itemsize))
        return w

    def ewise_mult(self, w: Vector, u: Vector, v: Vector, op) -> Vector:
        """Unmasked, unaccumulated ``w = u (x) v`` (pattern intersection)."""
        if not self.enabled or u.size != v.size or u.size != w.size:
            self._fallback()
            return ops.eWiseMult(w, u, v, op)
        binop = op.as_binary() if isinstance(op, Monoid) else op
        dtype = w.type.dtype
        u_p, v_p = u._present, v._present
        if u_p.all() and v_p.all():
            res = np.asarray(binop.apply(u._values, v._values))
            if res is u._values or res is v._values or res.dtype != dtype:
                res = res.astype(dtype)
            t_vals = res
            t_present = np.ones(w.size, dtype=bool)
            items = w.size
        else:
            t_present = u_p & v_p
            t_vals = np.zeros(w.size, dtype=dtype)
            t_vals[t_present] = np.asarray(binop.apply(u._values[t_present],
                                                       v._values[t_present]))
            items = int(t_present.sum())
        w._values = np.ascontiguousarray(t_vals)
        w._present = t_present
        self._emit_elementwise("ewise_mult", items, w,
                               saved=3 * _dense_cost(w.size, dtype.itemsize))
        return w

    def apply(self, w: Vector, op: UnaryOp, u: Vector) -> Vector:
        """Unmasked, unaccumulated ``w = op(u)``."""
        if not self.enabled or u.size != w.size:
            self._fallback()
            return ops.apply(w, op, u)
        dtype = w.type.dtype
        u_p = u._present
        if u_p.all():
            res = np.asarray(op.apply(u._values))
            if res is u._values or res.dtype != dtype:
                res = res.astype(dtype)
            t_vals = res
            t_present = np.ones(w.size, dtype=bool)
            items = w.size
        else:
            t_present = u_p if w is u else u_p.copy()
            t_vals = np.zeros(w.size, dtype=dtype)
            t_vals[u_p] = np.asarray(op.apply(u._values[u_p])).astype(dtype)
            items = int(t_present.sum())
        w._values = np.ascontiguousarray(t_vals)
        w._present = t_present
        self._emit_elementwise("apply", items, w,
                               saved=2 * _dense_cost(w.size, dtype.itemsize))
        return w

    def assign(self, w: Vector, value, indices=GrB_ALL,
               mask: Optional[Vector] = None,
               desc: Descriptor = DEFAULT_DESC) -> Vector:
        """Scalar ``w<mask>(:) = value`` (the drivers' init / level write)."""
        fusable = (self.enabled and not isinstance(value, Vector)
                   and indices is GrB_ALL
                   and not desc.replace and not desc.mask_comp)
        if not fusable:
            self._fallback()
            return ops.assign(w, value, indices=indices, mask=mask, desc=desc)
        dtype = w.type.dtype
        if mask is None:
            w._values[:] = value
            w._present[:] = True
            items = w.size
            saved = 2 * _dense_cost(w.size, dtype.itemsize)
        else:
            if mask.size != w.size:
                self._fallback()
                return ops.assign(w, value, indices=indices, mask=mask,
                                  desc=desc)
            if desc.mask_structure:
                write_idx = np.flatnonzero(mask._present)
                mask_nvals = len(write_idx)
            else:
                write_idx = np.flatnonzero(mask._present
                                           & mask._values.astype(bool))
                mask_nvals = int(mask._present.sum())
            w._values[write_idx] = value
            w._present[write_idx] = True
            items = min(w.size, max(mask_nvals, 1))
            saved = (2 * _dense_cost(w.size, dtype.itemsize)
                     + _dense_cost(mask.size, mask.type.itemsize))
        self._emit_elementwise("assign", items, w, masked=mask is not None,
                               saved=saved)
        return w

    def _emit_elementwise(self, kind: str, items: int, w: Vector,
                          masked: bool = False, saved: int = 0) -> None:
        self._mark(saved)
        self.backend.emit(OpEvent(
            kind=kind, items=items, out_nvals=w.nvals, masked=masked,
            fused=True, bytes_not_materialized=saved,
        ), out=w)

    # ------------------------------------------------------------------
    # Matrix-vector stage
    # ------------------------------------------------------------------
    def vxm(self, w: Vector, u: Vector, A: Matrix, semiring: Semiring,
            mask: Optional[Vector] = None,
            desc: Descriptor = DEFAULT_DESC) -> Vector:
        """``w'<mask> = u' (+.x) A`` for the drivers' loop shapes."""
        if (not self.enabled or desc.transpose_a
                or u.size != A.csr.nrows or w.size != A.csr.ncols):
            self._fallback()
            return ops.vxm(w, u, A, semiring, mask=mask, desc=desc)
        u_idx = np.flatnonzero(u._present)
        dense_input = len(u_idx) == u.size
        if dense_input and mask is None and not desc.mask_comp:
            return self._vxm_pull(w, u, A, semiring)
        if not dense_input:
            if mask is None and not desc.mask_comp:
                return self._vxm_push(w, u, A, semiring, u_idx)
            if (mask is not None and mask.size == w.size
                    and desc.replace and desc.mask_comp):
                return self._vxm_push_masked(w, u, A, semiring, u_idx,
                                             mask, desc)
        self._fallback()
        return ops.vxm(w, u, A, semiring, mask=mask, desc=desc)

    def _vxm_pull(self, w, u, A, semiring):
        add, mult = semiring.add, semiring.mult
        dtype = w.type.dtype
        at = A.transposed_csr()
        x = u._values  # dense input: every position is explicit
        _parallel.clear_fanout()
        if mult.name == "first":
            # PLUS_FIRST-style pull (PageRank): the swapped multiply is
            # "second", whose result is exactly the gathered input —
            # skip the matrix-value array (a fresh ones() for pattern
            # matrices) and the broadcast copy entirely.
            # The gathered products are consumed before this call returns,
            # so steady-state iterations reuse one per-matrix scratch
            # buffer instead of allocating nvals * itemsize fresh pages
            # every round (an allocation the unfused path cannot avoid:
            # its broadcast product is a new temporary by construction).
            buf = plancache.get(at, "scratch", ("pull", x.dtype.str))
            if buf is None:
                products = x[at.indices]
                plancache.put(at, "scratch", ("pull", x.dtype.str),
                              products)
            else:
                products = np.take(x, at.indices, out=buf)
            y_vals = segment_reduce(products, at.row_ids(), at.nrows,
                                    add.fn, dtype=dtype,
                                    row_splits=at.indptr, cache_on=at)
            flops = at.nvals
            saved = (u.size * u.type.itemsize
                     + at.nvals * (dtype.itemsize + x.dtype.itemsize)
                     + _dense_cost(w.size, dtype.itemsize))
        else:
            y_vals, touched, flops = _spmv.spmv_pull(
                at, x, add.fn, ops._swapped(mult), out_dtype=dtype)
            saved = (u.size * u.type.itemsize
                     + _dense_cost(w.size, dtype.itemsize))
        w._values = np.ascontiguousarray(y_vals.astype(dtype, copy=False))
        w._present = at.row_degrees() > 0
        # Per-row loop weights (degree + 1) are structural: memoize the
        # read-only array on the transpose instead of rebuilding it every
        # iteration.
        weights = plancache.cached(at, "weights", ("pull",),
                                   lambda: _pull_weights(at))
        self._mark(saved)
        self.backend.emit(OpEvent(
            kind="vxm", items=u.size, flops=flops, mode="pull",
            masked=False, in_nvals=u.size, out_nvals=w.nvals,
            fused=True, bytes_not_materialized=saved,
            **_parallel.fanout_fields(),
        ), out=w, mat=A, weights=weights)
        return w

    def _vxm_push(self, w, u, A, semiring, u_idx):
        add, mult = semiring.add, semiring.mult
        dtype = w.type.dtype
        csr = A.csr
        u_vals = u._values[u_idx]
        _parallel.clear_fanout()
        y_idx, y_vals, flops = _spmv.vxm_push(csr, u_idx, u_vals,
                                              add.fn, mult, out_dtype=dtype)
        t_vals = np.zeros(w.size, dtype=dtype)
        t_present = np.zeros(w.size, dtype=bool)
        t_vals[y_idx] = y_vals
        t_present[y_idx] = True
        w._values = t_vals
        w._present = t_present
        saved = _dense_cost(w.size, dtype.itemsize)
        weights = csr.row_degrees()[u_idx] + 1
        self._mark(saved)
        self.backend.emit(OpEvent(
            kind="vxm", items=len(u_idx), flops=flops, mode="push",
            masked=False, in_nvals=len(u_idx), out_nvals=w.nvals,
            fused=True, bytes_not_materialized=saved,
            **_parallel.fanout_fields(),
        ), out=w, mat=A, weights=weights)
        return w

    def _vxm_push_masked(self, w, u, A, semiring, u_idx, mask, desc):
        """Push with a complemented mask under REPLACE (the BFS shape)."""
        add, mult = semiring.add, semiring.mult
        dtype = w.type.dtype
        csr = A.csr
        # Extract the frontier before mutating w: the drivers pass w is u.
        u_vals = u._values[u_idx]
        _parallel.clear_fanout()
        y_idx, y_vals, flops = _spmv.vxm_push(csr, u_idx, u_vals,
                                              add.fn, mult, out_dtype=dtype)
        if desc.mask_structure:
            allowed = ~mask._present
        else:
            allowed = ~(mask._present & mask._values.astype(bool))
        # REPLACE through the complemented mask, in place: positions the
        # mask blocks keep w's old value but lose their entry; allowed
        # positions take the push result (implicit zero where untouched).
        w._values[allowed] = 0
        kept = allowed[y_idx]
        kept_idx = y_idx[kept]
        w._values[kept_idx] = y_vals[kept]
        new_present = np.zeros(w.size, dtype=bool)
        new_present[kept_idx] = True
        w._present = new_present
        saved = (3 * _dense_cost(w.size, dtype.itemsize)
                 + _dense_cost(mask.size, mask.type.itemsize))
        weights = csr.row_degrees()[u_idx] + 1
        self._mark(saved)
        self.backend.emit(OpEvent(
            kind="vxm", items=len(u_idx), flops=flops, mode="push",
            masked=True, in_nvals=len(u_idx), out_nvals=w.nvals,
            mask_bytes=mask.size * mask.type.itemsize,
            fused=True, bytes_not_materialized=saved,
            **_parallel.fanout_fields(),
        ), out=w, mat=A, weights=weights)
        return w


def _pull_weights(at) -> np.ndarray:
    weights = at.row_degrees() + 1
    weights.setflags(write=False)
    return weights
