"""GraphBLAS operations with mask / accumulator / descriptor semantics.

Each function mutates its output object in place, GraphBLAS-style:

>>> mxv(w, A, u, semiring("min_plus"), mask=frontier, desc=REPLACE_COMP)

Semantics follow the GraphBLAS C spec:

1. compute ``T`` from the inputs with the operation's semiring/operator;
2. ``Z = accum(C, T)`` element-wise if an accumulator is given, else ``Z=T``;
3. write ``Z`` into ``C`` through the (optionally complemented, optionally
   structural) mask; with ``REPLACE``, entries of ``C`` outside the mask are
   deleted, otherwise they are kept.

Every operation emits one typed :class:`~repro.engine.events.OpEvent` to the
output's backend (``backend.emit``), which converts it into parallel loops
on the simulated machine and records it in the machine's execution trace.
One GraphBLAS call is at least one full loop nest plus a barrier — the
"lightweight loops" property (§II-D observation 1) the paper's analysis
builds on.

Not to be confused with :mod:`repro.graphblas.ops`, which defines the
*operators* (unary/binary operators, monoids, semirings) these operations
are parameterized by.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.engine.events import OpEvent
from repro.errors import DimensionMismatch, InvalidValue
from repro.graphblas.descriptor import DEFAULT_DESC, Descriptor, GrB_ALL
from repro.graphblas.matrix import Matrix
from repro.graphblas.ops import BinaryOp, Monoid, Semiring, UnaryOp
from repro.graphblas.vector import Vector
from repro.sparse import parallel as _parallel
from repro.sparse import spgemm as _spgemm
from repro.sparse import spmv as _spmv
from repro.sparse.csr import CSRMatrix
from repro.sparse.segreduce import scatter_reduce
from repro.sparse.semiring_ops import BinaryFn

__all__ = [
    "mxv",
    "vxm",
    "mxm",
    "eWiseAdd",
    "eWiseMult",
    "apply",
    "select",
    "assign",
    "extract",
    "reduce_to_scalar",
    "reduce_to_vector",
    "eWiseAddMatrix",
    "eWiseMultMatrix",
    "applyMatrix",
    "extractMatrix",
]


# ----------------------------------------------------------------------
# Mask / write-back machinery
# ----------------------------------------------------------------------

def _mask_allowed(mask, size: int, desc: Descriptor) -> Optional[np.ndarray]:
    """Dense boolean 'may write here' array, or None for no mask."""
    if mask is None:
        if desc.mask_comp:
            # Complement of an absent mask forbids every write.
            return np.zeros(size, dtype=bool)
        return None
    if mask.size != size:
        raise DimensionMismatch("mask size does not match output size")
    allowed = mask.present_mask()
    if not desc.mask_structure:
        allowed &= mask.dense_values(fill=0).astype(bool)
    if desc.mask_comp:
        allowed = ~allowed
    return allowed


def _write_back(
    out: Vector,
    t_vals: np.ndarray,
    t_present: np.ndarray,
    allowed: Optional[np.ndarray],
    accum: Optional[BinaryOp],
    replace: bool,
) -> None:
    """Steps 2 and 3 of the GraphBLAS execution semantics."""
    c_vals = out.dense_values()
    c_present = out.present_mask()
    if accum is not None:
        both = c_present & t_present
        only_t = t_present & ~c_present
        z_vals = c_vals.copy()
        if both.any():
            z_vals[both] = accum.apply(c_vals[both], t_vals[both])
        z_vals[only_t] = t_vals[only_t]
        z_present = c_present | t_present
    else:
        z_vals = t_vals
        z_present = t_present

    if allowed is None:
        new_vals = z_vals.astype(out.type.dtype, copy=False)
        new_present = z_present
    else:
        new_present = np.where(allowed, z_present,
                               c_present if not replace else False)
        new_vals = np.where(allowed, z_vals, c_vals).astype(out.type.dtype,
                                                            copy=False)
    out._store(np.ascontiguousarray(new_vals), new_present)


def _as_semiring_parts(op: Union[Semiring, Monoid, BinaryOp]):
    if isinstance(op, Semiring):
        return op.add, op.mult
    raise InvalidValue("expected a Semiring")


def _mask_dense_bytes(mask) -> int:
    """Dense footprint of a vector mask (0 when unmasked)."""
    if mask is None:
        return 0
    return mask.size * mask.type.itemsize


def _is_full_diagonal(csr: CSRMatrix) -> bool:
    """True when the matrix has exactly one entry per row, on the diagonal."""
    if csr.nrows != csr.ncols or csr.nvals != csr.nrows:
        return False
    return bool(np.array_equal(csr.indices, csr.row_ids()))


def _swapped(mult: BinaryOp) -> BinaryOp:
    """mult with reversed operand order (for pull-mode vxm)."""
    if mult.name == "first":
        from repro.graphblas.ops import binary
        return binary("second")
    if mult.name == "second":
        from repro.graphblas.ops import binary
        return binary("first")
    return BinaryOp(BinaryFn(f"{mult.name}_swapped",
                             lambda a, b: mult.apply(b, a)))


# ----------------------------------------------------------------------
# Matrix-vector products
# ----------------------------------------------------------------------

def mxv(
    w: Vector,
    A: Matrix,
    u: Vector,
    semiring: Semiring,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, A (+.x) u)`` (GrB_mxv)."""
    csr = A.transposed_csr() if desc.transpose_a else A.csr
    nrows = csr.nrows if not desc.transpose_a else A.ncols
    if u.size != (A.ncols if not desc.transpose_a else A.nrows):
        raise DimensionMismatch("u length must match A's column count")
    if w.size != (A.nrows if not desc.transpose_a else A.ncols):
        raise DimensionMismatch("w length must match A's row count")
    add, mult = semiring.add, semiring.mult
    dtype = w.type.dtype

    u_idx, u_vals = u.to_pairs()
    dense_input = len(u_idx) == u.size
    _parallel.clear_fanout()
    if dense_input:
        # Pull (SDOT): iterate output rows, dot with the dense input.
        y_vals, touched, flops = _spmv.spmv_pull(
            csr, u.dense_values(), add.fn, mult, out_dtype=dtype)
        t_vals, t_present = y_vals, touched
        mode = "pull"
    else:
        # Push (SAXPY): scatter the explicit input entries along A's
        # columns, i.e. the rows of A-transpose.
        at = A.csr if desc.transpose_a else A.transposed_csr()
        y_idx, y_vals, flops = _spmv.mxv_push_transposed(
            at, u_idx, u_vals, add.fn, mult, out_dtype=dtype)
        t_vals = np.zeros(w.size, dtype=dtype)
        t_present = np.zeros(w.size, dtype=bool)
        t_vals[y_idx] = y_vals
        t_present[y_idx] = True
        mode = "push"

    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    if mode == "pull":
        weights = np.diff(csr.indptr) + 1
    else:
        at_deg = np.diff(at.indptr)
        weights = at_deg[u_idx] + 1
    w.backend.emit(OpEvent(
        kind="mxv", items=len(u_idx), flops=flops, mode=mode,
        masked=mask is not None, in_nvals=len(u_idx), out_nvals=w.nvals,
        mask_bytes=_mask_dense_bytes(mask),
        **_parallel.fanout_fields(),
    ), out=w, mat=A, weights=weights)
    return w


def vxm(
    w: Vector,
    u: Vector,
    A: Matrix,
    semiring: Semiring,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w'<mask> = accum(w, u' (+.x) A)`` (GrB_vxm)."""
    csr = A.transposed_csr() if desc.transpose_a else A.csr
    if u.size != csr.nrows:
        raise DimensionMismatch("u length must match A's row count")
    if w.size != csr.ncols:
        raise DimensionMismatch("w length must match A's column count")
    add, mult = semiring.add, semiring.mult
    dtype = w.type.dtype

    u_idx, u_vals = u.to_pairs()
    dense_input = len(u_idx) == u.size
    _parallel.clear_fanout()
    if dense_input:
        # Pull over columns: dot rows of A-transpose with dense u, with the
        # multiply order swapped back to (u, A).
        at = A.csr if desc.transpose_a else A.transposed_csr()
        y_vals, touched, flops = _spmv.spmv_pull(
            at, u.dense_values(), add.fn, _swapped(mult), out_dtype=dtype)
        t_vals, t_present = y_vals, touched
        mode = "pull"
    else:
        y_idx, y_vals, flops = _spmv.vxm_push(
            csr, u_idx, u_vals, add.fn, mult, out_dtype=dtype)
        t_vals = np.zeros(w.size, dtype=dtype)
        t_present = np.zeros(w.size, dtype=bool)
        t_vals[y_idx] = y_vals
        t_present[y_idx] = True
        mode = "push"

    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    if mode == "pull":
        weights = np.diff(at.indptr) + 1
    else:
        weights = np.diff(csr.indptr)[u_idx] + 1
    w.backend.emit(OpEvent(
        kind="vxm", items=len(u_idx), flops=flops, mode=mode,
        masked=mask is not None, in_nvals=len(u_idx), out_nvals=w.nvals,
        mask_bytes=_mask_dense_bytes(mask),
        **_parallel.fanout_fields(),
    ), out=w, mat=A, weights=weights)
    return w


# ----------------------------------------------------------------------
# Matrix-matrix product
# ----------------------------------------------------------------------

def mxm(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    semiring: Semiring,
    mask: Optional[Matrix] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
    method: Optional[str] = None,
) -> Matrix:
    """``C<mask> = accum(C, A (+.x) B)`` (GrB_mxm).

    Matrix masks are *structural* (all the study's algorithms use pattern
    masks); value masks on matrices are not supported.  The multiply method
    (SAXPY vs SDOT) is chosen by the backend unless forced via ``method``.
    """
    if mask is not None and not desc.mask_structure:
        raise InvalidValue("matrix masks are supported as structural only")
    if accum is not None:
        raise InvalidValue("mxm accumulators are not needed by the study")
    a_csr = A.transposed_csr() if desc.transpose_a else A.csr
    b_csr = B.transposed_csr() if desc.transpose_b else B.csr
    if a_csr.ncols != b_csr.nrows:
        raise DimensionMismatch("inner dimensions of A and B differ")
    add, mult = semiring.add, semiring.mult
    dtype = C.type.dtype

    # GaloisBLAS's diagonal-times-matrix fast path (§III-B): scale each row
    # of B by the matching diagonal entry of A, skipping SpGEMM entirely.
    if (C.backend.supports_diag_opt and mask is None
            and _is_full_diagonal(a_csr)):
        diag = np.zeros(a_csr.nrows, dtype=dtype)
        diag[:] = a_csr.value_array(dtype)
        result, flops = _spgemm.spgemm_diag_left(diag, b_csr, mult.fn,
                                                 out_dtype=dtype)
        C.replace_csr(result)
        C.backend.emit(OpEvent(
            kind="diag_mxm", items=result.nvals, flops=flops,
            out_nvals=result.nvals,
        ), out=C, mat2=B)
        return C

    chosen = method or C.backend.choose_mxm_method(a_csr, b_csr, mask)
    _parallel.clear_fanout()
    if mask is not None:
        if chosen == "dot":
            # SDOT wants B transposed; reuse the cache when possible.
            bt = B.csr if desc.transpose_b else B.transposed_csr()
            result, flops = _spgemm.spgemm_masked_dot(
                a_csr, bt, mask.csr, add.fn, mult.fn, out_dtype=dtype)
        else:
            result, flops = _spgemm.spgemm_masked_saxpy(
                a_csr, b_csr, mask.csr, add.fn, mult.fn, out_dtype=dtype)
    else:
        result, flops = _spgemm.spgemm_saxpy(
            a_csr, b_csr, add.fn, mult.fn, out_dtype=dtype)

    if desc.mask_comp:
        raise InvalidValue("complemented matrix masks are not supported")
    C.replace_csr(result)
    C.backend.emit(OpEvent(
        kind="mxm", items=result.nvals, flops=flops, method=chosen,
        masked=mask is not None, out_nvals=result.nvals,
        **_parallel.fanout_fields(),
    ), out=C, mat=A, mat2=B)
    return C


# ----------------------------------------------------------------------
# Element-wise operations
# ----------------------------------------------------------------------

def eWiseAdd(
    w: Vector,
    u: Vector,
    v: Vector,
    op: Union[BinaryOp, Monoid],
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, u (+) v)`` — set *union* of patterns."""
    if u.size != v.size or u.size != w.size:
        raise DimensionMismatch("eWiseAdd operands must have equal size")
    binop = op.as_binary() if isinstance(op, Monoid) else op
    u_p, v_p = u.present_mask(), v.present_mask()
    u_d, v_d = u.dense_values(), v.dense_values()
    t_present = u_p | v_p
    t_vals = np.zeros(w.size, dtype=w.type.dtype)
    both = u_p & v_p
    if both.any():
        t_vals[both] = binop.apply(u_d[both], v_d[both])
    only_u = u_p & ~v_p
    t_vals[only_u] = u_d[only_u]
    only_v = v_p & ~u_p
    t_vals[only_v] = v_d[only_v]

    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    w.backend.emit(OpEvent(
        kind="ewise_add", items=int(t_present.sum()), out_nvals=w.nvals,
        masked=mask is not None,
    ), out=w)
    return w


def eWiseMult(
    w: Vector,
    u: Vector,
    v: Vector,
    op: Union[BinaryOp, Monoid],
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, u (x) v)`` — set *intersection* of patterns."""
    if u.size != v.size or u.size != w.size:
        raise DimensionMismatch("eWiseMult operands must have equal size")
    binop = op.as_binary() if isinstance(op, Monoid) else op
    t_present = u.present_mask() & v.present_mask()
    t_vals = np.zeros(w.size, dtype=w.type.dtype)
    if t_present.any():
        t_vals[t_present] = binop.apply(
            u.dense_values()[t_present], v.dense_values()[t_present])

    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    w.backend.emit(OpEvent(
        kind="ewise_mult", items=int(t_present.sum()), out_nvals=w.nvals,
        masked=mask is not None,
    ), out=w)
    return w


# ----------------------------------------------------------------------
# Apply / select
# ----------------------------------------------------------------------

def apply(
    w: Vector,
    op: UnaryOp,
    u: Vector,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, op(u))`` (GrB_apply)."""
    if u.size != w.size:
        raise DimensionMismatch("apply operands must have equal size")
    t_present = u.present_mask()
    t_vals = np.zeros(w.size, dtype=w.type.dtype)
    if t_present.any():
        t_vals[t_present] = np.asarray(
            op.apply(u.dense_values()[t_present])).astype(w.type.dtype)
    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    w.backend.emit(OpEvent(
        kind="apply", items=int(t_present.sum()), out_nvals=w.nvals,
        masked=mask is not None,
    ), out=w)
    return w


_VALUE_SELECTORS = {
    "gt": lambda vals, thunk: vals > thunk,
    "ge": lambda vals, thunk: vals >= thunk,
    "lt": lambda vals, thunk: vals < thunk,
    "le": lambda vals, thunk: vals <= thunk,
    "eq": lambda vals, thunk: vals == thunk,
    "ne": lambda vals, thunk: vals != thunk,
}


def select(
    out: Union[Vector, Matrix],
    op_name: str,
    source: Union[Vector, Matrix],
    thunk=0,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Union[Vector, Matrix]:
    """``out<mask> = select(source, op, thunk)`` (GxB_select).

    Vector selectors: value comparisons (gt/ge/lt/le/eq/ne).  Matrix
    selectors additionally include ``tril``/``triu`` (strict, with ``thunk``
    as the diagonal offset) and ``diag``/``offdiag``.
    """
    if isinstance(source, Vector):
        if op_name not in _VALUE_SELECTORS:
            raise InvalidValue(f"unknown vector selector {op_name!r}")
        pred = _VALUE_SELECTORS[op_name]
        t_present = source.present_mask()
        vals = source.dense_values()
        keep = np.zeros(source.size, dtype=bool)
        keep[t_present] = pred(vals[t_present], thunk)
        t_vals = np.where(keep, vals, 0).astype(out.type.dtype)
        allowed = _mask_allowed(mask, out.size, desc)
        _write_back(out, t_vals, keep, allowed, accum, desc.replace)
        out.backend.emit(OpEvent(
            kind="select", items=int(t_present.sum()), out_nvals=out.nvals,
            masked=mask is not None,
        ), out=out)
        return out

    csr: CSRMatrix = source.csr
    rows = csr.row_ids()
    if op_name == "tril":
        keep = csr.indices <= rows + thunk
    elif op_name == "triu":
        keep = csr.indices >= rows + thunk
    elif op_name == "diag":
        keep = csr.indices == rows + thunk
    elif op_name == "offdiag":
        keep = csr.indices != rows + thunk
    elif op_name in _VALUE_SELECTORS:
        keep = _VALUE_SELECTORS[op_name](csr.value_array(), thunk)
    else:
        raise InvalidValue(f"unknown matrix selector {op_name!r}")
    result = csr.filter_entries(np.asarray(keep, dtype=bool))
    out.replace_csr(result)
    out.backend.emit(OpEvent(
        kind="select_matrix", items=csr.nvals, out_nvals=result.nvals,
    ), out=out)
    return out


# ----------------------------------------------------------------------
# Assign / extract
# ----------------------------------------------------------------------

def assign(
    w: Vector,
    value,
    indices=GrB_ALL,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask>(indices) = accum(w, value)`` (GrB_assign).

    ``value`` may be a scalar (GrB_Vector_assign_Scalar, as in Algorithm 2's
    initialization and distance update) or a Vector aligned with ``indices``.
    Duplicate indices with a min/max accumulator combine with the
    accumulator, which is the behaviour LAGraph's FastSV relies on.
    """
    t_vals = np.zeros(w.size, dtype=w.type.dtype)
    t_present = np.zeros(w.size, dtype=bool)

    if isinstance(value, Vector):
        src_idx, src_vals = value.to_pairs()
        if indices is GrB_ALL:
            if value.size != w.size:
                raise DimensionMismatch("assign source must match w's size")
            t_vals[src_idx] = src_vals.astype(w.type.dtype)
            t_present[src_idx] = True
            n_processed = len(src_idx)
        else:
            idx = np.asarray(indices, dtype=np.int64)
            if value.size != len(idx):
                raise DimensionMismatch("assign source must match index count")
            # Only explicit entries of the source are assigned.
            targets = idx[src_idx]
            vals = src_vals.astype(w.type.dtype)
            if accum is not None and accum.name in ("min", "max"):
                fill = (np.iinfo(w.type.dtype).max
                        if w.type.dtype.kind in "iu" else np.inf)
                if accum.name == "max":
                    fill = (np.iinfo(w.type.dtype).min
                            if w.type.dtype.kind in "iu" else -np.inf)
                combine = np.full(w.size, fill, dtype=w.type.dtype)
                scatter_reduce(combine, targets, vals, accum.name)
                touched = np.zeros(w.size, dtype=bool)
                touched[targets] = True
                t_vals[touched] = combine[touched]
                t_present = touched
            else:
                t_vals[targets] = vals
                t_present[targets] = True
            n_processed = len(targets)
    else:
        if indices is GrB_ALL:
            t_vals[:] = value
            t_present[:] = True
            n_processed = w.size
        else:
            idx = np.asarray(indices, dtype=np.int64)
            t_vals[idx] = value
            t_present[idx] = True
            n_processed = len(idx)

    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    if mask is not None:
        # Both implementations exploit mask sparsity (§III): a masked
        # assign touches the mask's explicit entries, not all of w.
        n_processed = min(n_processed, max(mask.nvals, 1))
    w.backend.emit(OpEvent(
        kind="assign", items=n_processed, out_nvals=w.nvals,
        masked=mask is not None,
    ), out=w)
    return w


def extract(
    w: Vector,
    u: Vector,
    indices,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, u(indices))`` (GrB_extract) — a gather.

    Duplicate indices are allowed (FastSV gathers grandparents with
    ``extract(gp, f, f)``).
    """
    if indices is GrB_ALL:
        idx = np.arange(u.size, dtype=np.int64)
    else:
        idx = np.asarray(indices, dtype=np.int64)
    if w.size != len(idx):
        raise DimensionMismatch("w length must equal the index count")
    src_present = u.present_mask()
    src_vals = u.dense_values()
    t_present = src_present[idx]
    t_vals = np.where(t_present, src_vals[idx], 0).astype(w.type.dtype)
    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    w.backend.emit(OpEvent(
        kind="extract", items=len(idx), out_nvals=w.nvals,
        masked=mask is not None, gather=True,
    ), out=w)
    return w


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def reduce_to_scalar(source: Union[Vector, Matrix], mon: Monoid):
    """``s = reduce(source)`` over explicit entries (GrB_reduce)."""
    if isinstance(source, Vector):
        idx, vals = source.to_pairs()
        result = mon.reduce_all(vals, dtype=source.type.dtype)
        source.backend.emit(OpEvent(kind="reduce_vector", items=len(idx)),
                            out=source)
        return result
    vals = source.csr.value_array(source.type.dtype)
    result = mon.reduce_all(vals, dtype=source.type.dtype)
    source.backend.emit(OpEvent(kind="reduce_matrix", items=source.nvals),
                        out=source)
    return result


def reduce_to_vector(
    w: Vector,
    A: Matrix,
    mon: Monoid,
    mask: Optional[Vector] = None,
    accum: Optional[BinaryOp] = None,
    desc: Descriptor = DEFAULT_DESC,
) -> Vector:
    """``w<mask> = accum(w, reduce_rows(A))``; transpose_a reduces columns."""
    csr = A.transposed_csr() if desc.transpose_a else A.csr
    if w.size != csr.nrows:
        raise DimensionMismatch("w length must match the reduced dimension")
    from repro.sparse.semiring_ops import SegmentReducer

    rows = csr.row_ids()
    reducer = SegmentReducer(mon.fn)
    # Row expansions are sorted by construction: presorted reduceat path.
    t_vals = reducer.reduce(csr.value_array(w.type.dtype), rows, csr.nrows,
                            dtype=w.type.dtype, row_splits=csr.indptr,
                            cache_on=csr)
    t_present = csr.row_degrees() > 0
    allowed = _mask_allowed(mask, w.size, desc)
    _write_back(w, t_vals, t_present, allowed, accum, desc.replace)
    w.backend.emit(OpEvent(
        kind="reduce_matrix_to_vector", items=csr.nvals, out_nvals=w.nvals,
    ), out=w, mat=A)
    return w


# ----------------------------------------------------------------------
# Matrix element-wise operations
# ----------------------------------------------------------------------

def eWiseAddMatrix(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    op: Union[BinaryOp, Monoid],
) -> Matrix:
    """``C = A (+) B`` — pattern *union* on matrices (GrB_eWiseAdd).

    Matrix masks/accumulators are not needed by the study's algorithms and
    are not supported here; the vector forms carry the full semantics.
    """
    if A.nrows != B.nrows or A.ncols != B.ncols:
        raise DimensionMismatch("eWiseAddMatrix operands differ in shape")
    binop = op.as_binary() if isinstance(op, Monoid) else op
    result = _combine_matrices(A.csr, B.csr, binop, union=True,
                               dtype=C.type.dtype)
    C.replace_csr(result)
    C.backend.emit(OpEvent(
        kind="ewise_matrix", items=A.nvals + B.nvals,
        out_nvals=result.nvals,
    ), out=C)
    return C


def eWiseMultMatrix(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    op: Union[BinaryOp, Monoid],
) -> Matrix:
    """``C = A (x) B`` — pattern *intersection* on matrices."""
    if A.nrows != B.nrows or A.ncols != B.ncols:
        raise DimensionMismatch("eWiseMultMatrix operands differ in shape")
    binop = op.as_binary() if isinstance(op, Monoid) else op
    result = _combine_matrices(A.csr, B.csr, binop, union=False,
                               dtype=C.type.dtype)
    C.replace_csr(result)
    C.backend.emit(OpEvent(
        kind="ewise_matrix", items=A.nvals + B.nvals,
        out_nvals=result.nvals,
    ), out=C)
    return C


def applyMatrix(C: Matrix, op: UnaryOp, A: Matrix) -> Matrix:
    """``C = op(A)`` element-wise over A's explicit entries (GrB_apply)."""
    if A.nrows != C.nrows or A.ncols != C.ncols:
        raise DimensionMismatch("applyMatrix operands differ in shape")
    vals = np.asarray(op.apply(A.csr.value_array(C.type.dtype)))
    result = CSRMatrix(A.nrows, A.ncols, A.csr.indptr.copy(),
                       A.csr.indices.copy(),
                       vals.astype(C.type.dtype, copy=False))
    C.replace_csr(result)
    C.backend.emit(OpEvent(
        kind="ewise_matrix", items=A.nvals, out_nvals=result.nvals,
    ), out=C)
    return C


def _combine_matrices(a: CSRMatrix, b: CSRMatrix, binop: BinaryOp,
                      union: bool, dtype) -> CSRMatrix:
    """Key-aligned union/intersection combine of two CSR matrices."""
    from repro.sparse.csr import build_csr

    a_rows = a.row_ids()
    b_rows = b.row_ids()
    a_keys = a_rows * a.ncols + a.indices
    b_keys = b_rows * b.ncols + b.indices
    a_vals = a.value_array(dtype)
    b_vals = b.value_array(dtype)

    pos_in_b = np.searchsorted(b_keys, a_keys)
    pos_clip = np.minimum(pos_in_b, max(len(b_keys) - 1, 0))
    matched = (b_keys[pos_clip] == a_keys) if len(b_keys) else         np.zeros(len(a_keys), dtype=bool)

    both_keys = a_keys[matched]
    both_vals = np.asarray(binop.apply(a_vals[matched],
                                       b_vals[pos_clip[matched]]))
    if union:
        only_a = ~matched
        in_a = np.zeros(len(b_keys), dtype=bool)
        in_a[pos_clip[matched]] = True
        keys = np.concatenate([both_keys, a_keys[only_a], b_keys[~in_a]])
        vals = np.concatenate([both_vals.astype(dtype),
                               a_vals[only_a].astype(dtype),
                               b_vals[~in_a].astype(dtype)])
    else:
        keys, vals = both_keys, both_vals.astype(dtype)
    rows = keys // a.ncols
    cols = keys % a.ncols
    return build_csr(a.nrows, a.ncols, rows, cols, vals, dedup="error")


def extractMatrix(C: Matrix, A: Matrix, row_indices, col_indices) -> Matrix:
    """``C = A(I, J)`` — submatrix extraction (GrB_Matrix_extract).

    ``row_indices`` / ``col_indices`` are index arrays or ``GrB_ALL``;
    duplicate indices are permitted (rows/columns are then replicated).
    """
    from repro.sparse.csr import build_csr

    rows = (np.arange(A.nrows, dtype=np.int64) if row_indices is GrB_ALL
            else np.asarray(row_indices, dtype=np.int64))
    cols = (np.arange(A.ncols, dtype=np.int64) if col_indices is GrB_ALL
            else np.asarray(col_indices, dtype=np.int64))
    if C.nrows != len(rows) or C.ncols != len(cols):
        raise DimensionMismatch("C's shape must match the index counts")
    if len(rows) and (rows.min() < 0 or rows.max() >= A.nrows):
        raise InvalidValue("row index out of range")
    if len(cols) and (cols.min() < 0 or cols.max() >= A.ncols):
        raise InvalidValue("col index out of range")

    # Column remap: old id -> list of new positions (duplicates allowed).
    from repro.sparse.csr import expand_ranges, gather_rows

    src = A.csr
    cat_cols, positions, seg = gather_rows(src, rows)
    n_processed = len(cat_cols)
    if n_processed:
        order = np.argsort(cols, kind="stable")
        sorted_cols = cols[order]
        lo = np.searchsorted(sorted_cols, cat_cols, side="left")
        hi = np.searchsorted(sorted_cols, cat_cols, side="right")
        counts = hi - lo
        keep = counts > 0
        # Expand entries whose column appears multiple times in J.
        rep = counts[keep]
        out_rows = np.repeat(seg[keep], rep)
        out_cols = order[expand_ranges(lo[keep], hi[keep])]
        vals = None
        if src.values is not None:
            vals = np.repeat(src.values[positions[keep]], rep)
    else:
        out_rows = np.empty(0, dtype=np.int64)
        out_cols = np.empty(0, dtype=np.int64)
        vals = None if src.values is None else np.empty(0, src.values.dtype)
    result = build_csr(len(rows), len(cols), out_rows, out_cols,
                       None if vals is None else
                       vals.astype(C.type.dtype, copy=False),
                       dedup="last")
    C.replace_csr(result)
    C.backend.emit(OpEvent(
        kind="select_matrix", items=n_processed, out_nvals=result.nvals,
    ), out=C)
    return C
