"""SuiteSparse:GraphBLAS analog — the paper's "SS" system (§III-A).

A full implementation of the study's GraphBLAS API subset, with the cost
characteristics of SuiteSparse 3.2.1 on OpenMP: vectors stored as 1-wide
sparse matrices, every operation materializing a fresh output object,
static/dynamic OpenMP scheduling, no huge pages, and on-demand allocation
with slack (the Table III memory behaviour).
"""

from repro.suitesparse.backend import SS_ALLOC_SLACK, SuiteSparseBackend

__all__ = ["SS_ALLOC_SLACK", "SuiteSparseBackend"]
