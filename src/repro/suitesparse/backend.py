"""The SuiteSparse-flavored GraphBLAS backend."""

from __future__ import annotations

from repro.graphblas.backend import BaseBackend
from repro.graphblas.vector import REP_SS_SPARSE
from repro.perf.costmodel import Schedule
from repro.perf.machine import Machine
from repro.runtime.openmp import OpenMPRuntime

#: SuiteSparse's on-demand allocation slack: amortized growth plus the
#: temporary copies its non-destructive kernels keep (drives the large-graph
#: MRSS gap in Table III).
SS_ALLOC_SLACK = 1.35


class SuiteSparseBackend(BaseBackend):
    """GraphBLAS kernels with SuiteSparse's runtime and storage behaviour."""

    name = "suitesparse"
    default_vector_rep = REP_SS_SPARSE
    #: SuiteSparse routes vector ops through its matrix machinery (vectors
    #: are 1-wide matrices, §III-A), so per-call overhead is higher than a
    #: dedicated vector kernel's (nanoseconds, scale-independent).
    call_overhead_ns = 80_000.0
    supports_diag_opt = False

    def __init__(self, machine: Machine):
        super().__init__(OpenMPRuntime(machine))

    def _spmv_schedule(self, mode: str):
        # SuiteSparse self-schedules its matrix kernels on top of OpenMP
        # (§III-A), so both SpMV styles behave like dynamic scheduling.
        return Schedule.DYNAMIC

    def _mxm_schedule(self):
        # SpGEMM rows are self-scheduled as well.
        return Schedule.DYNAMIC

    def _charge_mxm(self, event, out, mat, mat2):
        """SuiteSparse SpGEMM additionally holds the inspector's per-row
        flop/size arrays and assembles C in a workspace before moving it
        into place — the allocation churn behind the tc/ktruss OOMs of
        Table II on the biggest inputs."""
        inspector = self.machine.allocator.allocate(
            (mat.csr.nvals + mat.csr.nrows) * 8, "mxm:inspector")
        workspace = self.machine.allocator.allocate(
            max(out.csr.nbytes, event.out_nvals * 12, 64), "mxm:workspace")
        super()._charge_mxm(event, out, mat, mat2)
        self.machine.allocator.free(workspace)
        self.machine.allocator.free(inspector)

    def _post_op_materialize(self, out, n_touched: int = 1) -> None:
        """Every SuiteSparse op builds its result in a fresh object and
        moves it into place — an extra write pass (over the entries the op
        produced) plus allocator churn."""
        rt = self.runtime
        nbytes = self._vector_bytes(out)
        temp = self.machine.allocator.allocate(
            min(nbytes, max(n_touched, 1) * 16), f"{out.label}:temp")
        rt.parallel(
            n_items=max(n_touched, 1),
            instr_per_item=1.0,
            streams=[rt.seq(nbytes, max(n_touched, 1))],
        )
        self.machine.allocator.free(temp)
